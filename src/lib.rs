//! # glsc — Atomic Vector Operations on Chip Multiprocessors
//!
//! A from-scratch Rust reproduction of *Atomic Vector Operations on Chip
//! Multiprocessors* (Kumar et al., ISCA 2008): architectural support for
//! **atomic vector operations** via two new instructions,
//! **`vgatherlink`** (gather-linked) and **`vscattercond`**
//! (scatter-conditional), collectively called **GLSC**.
//!
//! The workspace contains everything the paper's evaluation depends on,
//! re-exported here:
//!
//! * [`isa`] — the simulated vector ISA with mask registers,
//!   gather/scatter, `ll`/`sc`, and the GLSC pair, plus an assembler.
//! * [`mem`] — the memory hierarchy: private L1s carrying GLSC
//!   reservation tags, an inclusive banked L2 with an MSI directory, DRAM,
//!   and a stride prefetcher.
//! * [`core`] — the paper's hardware contribution: the gather/scatter
//!   unit with same-line combining and alias resolution, the LSU, and the
//!   shared L1 port.
//! * [`sim`] — the cycle-level CMP simulator (in-order 2-issue SMT cores).
//! * [`kernels`] — the seven RMS benchmarks of Table 2 in Base and GLSC
//!   variants, plus the §5.2 microbenchmark.
//!
//! ## Quickstart
//!
//! Run the parallel histogram of the paper's Fig. 3(A) on a 4-core,
//! 4-thread, 4-wide machine:
//!
//! ```
//! use glsc::kernels::{hip::Hip, run_workload, Dataset, Variant};
//! use glsc::sim::MachineConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = MachineConfig::paper(4, 4, 4);
//! let workload = Hip::new(Dataset::Tiny).build(Variant::Glsc, &cfg);
//! let outcome = run_workload(&workload, &cfg)?;
//! println!("completed in {} cycles", outcome.report.cycles);
//! # Ok(())
//! # }
//! ```
//!
//! The benchmark harness regenerating every figure/table of the paper
//! lives in `crates/bench`; see `EXPERIMENTS.md` for measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use glsc_core as core;
pub use glsc_isa as isa;
pub use glsc_kernels as kernels;
pub use glsc_mem as mem;
pub use glsc_sim as sim;
