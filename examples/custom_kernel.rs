//! Writing a custom workload against the public API: a SIMD-width
//! sensitivity sweep of an atomic "histogram of strides" kernel, showing
//! how GLSC policy knobs (§3.2) change behavior.
//!
//! Demonstrates:
//! * building programs with the assembler,
//! * sweeping `MachineConfig` (SIMD width) like §5.3 of the paper,
//! * toggling `GlscConfig::fail_on_l1_miss` (hardware design freedom (c)).
//!
//! Run with: `cargo run --release --example custom_kernel`

use glsc::core::GlscConfig;
use glsc::isa::{MReg, Program, ProgramBuilder, Reg, VReg};
use glsc::sim::{Machine, MachineConfig};

/// Counters and iteration count of the toy kernel.
const COUNTERS: i64 = 256;
const ITERS: i64 = 200;
const COUNTER_BASE: i64 = 0x2_0000;

fn build(width: usize) -> Result<Program, Box<dyn std::error::Error>> {
    let mut b = ProgramBuilder::new();
    let (r_cnt, r_i, r_stride) = (Reg::new(2), Reg::new(3), Reg::new(4));
    let (v_idx, v_tmp, v_stride) = (VReg::new(0), VReg::new(1), VReg::new(2));
    let (f_todo, f_tmp) = (MReg::new(0), MReg::new(1));
    b.li(r_cnt, COUNTER_BASE);
    // Each thread strides its own lane pattern: idx = (iota*17 + gid*29 + i*13) % COUNTERS.
    b.li(r_i, 0);
    b.mul(r_stride, Reg::new(0), 29);
    let top = b.here();
    b.viota(v_idx);
    b.vmul(v_idx, v_idx, 17, None);
    b.vsplat(v_stride, r_stride);
    b.vadd(v_idx, v_idx, v_stride, None);
    b.vmod(v_idx, v_idx, COUNTERS, None);
    b.sync_on();
    b.mall(f_todo);
    let retry = b.here();
    b.vgatherlink(f_tmp, v_tmp, r_cnt, v_idx, f_todo);
    b.vadd(v_tmp, v_tmp, 1, Some(f_tmp));
    b.vscattercond(f_tmp, v_tmp, r_cnt, v_idx, f_tmp);
    b.mxor(f_todo, f_todo, f_tmp);
    b.bmnz(f_todo, retry);
    b.sync_off();
    b.addi(r_stride, r_stride, 13);
    b.addi(r_i, r_i, 1);
    b.blt(r_i, ITERS, top);
    b.halt();
    let _ = width;
    Ok(b.build()?)
}

fn run_once(width: usize, glsc: GlscConfig) -> Result<(u64, f64), Box<dyn std::error::Error>> {
    let mut cfg = MachineConfig::paper(4, 4, width);
    cfg.glsc = glsc;
    let mut machine = Machine::new(cfg);
    machine.load_program(build(width)?);
    let report = machine.run()?;
    // Sanity: total increments must equal threads * iters * width.
    let total: u64 = (0..COUNTERS)
        .map(|c| {
            machine
                .mem()
                .backing()
                .read_u32((COUNTER_BASE + 4 * c) as u64) as u64
        })
        .sum();
    assert_eq!(total, 16 * ITERS as u64 * width as u64);
    Ok((report.cycles, report.glsc_failure_rate()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("custom kernel: atomic stride histogram on a 4x4 CMP");
    println!(
        "{:<7} {:>14} {:>10} | {:>14} {:>10}",
        "width", "cycles(wait)", "fail(wait)", "cycles(drop)", "fail(drop)"
    );
    for width in [1usize, 4, 16] {
        let wait = run_once(width, GlscConfig::default())?;
        let drop = run_once(
            width,
            GlscConfig {
                fail_on_l1_miss: true,
                ..GlscConfig::default()
            },
        )?;
        println!(
            "{:<7} {:>14} {:>9.2}% | {:>14} {:>9.2}%",
            width,
            wait.0,
            100.0 * wait.1,
            drop.0,
            100.0 * drop.1
        );
    }
    println!();
    println!("'wait' = default policy (gather-link waits for L1 misses);");
    println!("'drop' = fail-on-miss policy of §3.2(c): lower reservation hold");
    println!("times at the cost of more element retries.");
    Ok(())
}
