//! Access patterns as data: the glsc-patterns spec grammar from the
//! public API (DESIGN.md §16).
//!
//! One spec string describes an index-generation pattern, an update
//! kind, and a read/write mix; the pattern builder compiles it to both
//! a Base (ll/sc) and a GLSC (vgatherlink/vscattercond) program through
//! the same emitter as the §5.2 microbenchmark. This example dials
//! conflict density from 0 to 1 — scenario C to scenario D in spec
//! form — and prints the Base/GLSC cycle ratio at each point.
//!
//! Run with: `cargo run --release --example pattern_quickstart`

use glsc::kernels::pattern::Pattern;
use glsc::kernels::{run_workload, Variant};
use glsc::sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MachineConfig::paper(1, 4, 4);

    println!("conflict-density sweep, 1x4 machine, 4-wide SIMD");
    println!(
        "{:<26} {:>10} {:>10} {:>7}",
        "spec", "Base", "GLSC", "ratio"
    );
    for pm in [0, 250, 500, 750, 1000] {
        // p is parsed to per-mille internally; format it back as text to
        // show the grammar (a PatternSpec can also be built directly).
        let spec = format!("conflict:p=0.{pm:03}x256*16");
        let spec = spec.replace("0.1000", "1"); // p=1 is the canonical form
        let pattern = Pattern::parse(&spec)?;
        let mut cycles = [0u64; 2];
        for (slot, variant) in [Variant::Base, Variant::Glsc].into_iter().enumerate() {
            let w = pattern.build(variant, &cfg);
            cycles[slot] = run_workload(&w, &cfg)?.report.cycles;
        }
        println!(
            "{:<26} {:>10} {:>10} {:>6.2}x",
            spec,
            cycles[0],
            cycles[1],
            cycles[0] as f64 / cycles[1] as f64
        );
    }

    // Any grammar string works — stride, outliers, tiles, traces, a
    // read-heavy mix, a different update amount:
    for spec in [
        "stride:16x1024*16",
        "mostly:1x1024/p=0.05*16",
        "block:8/64*16!add3+r2",
        "trace:8:0,1,2,3,0,1,2,3",
    ] {
        let w = Pattern::parse(spec)?.build(Variant::Glsc, &cfg);
        let out = run_workload(&w, &cfg)?;
        println!("{:<26} GLSC {:>8} cycles", spec, out.report.cycles);
    }
    Ok(())
}
