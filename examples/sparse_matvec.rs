//! Base-vs-GLSC comparison on a realistic workload: the TMS kernel
//! (`y = Aᵀx` over a sparse matrix, Table 2) across the paper's four
//! machine shapes — a miniature of Fig. 6 for one benchmark.
//!
//! Run with: `cargo run --release --example sparse_matvec`

use glsc::kernels::{run_workload, tms::Tms, Dataset, Variant};
use glsc::sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 4;
    println!("TMS (y = A^T x), 4-wide SIMD, dataset Tiny-scaled");
    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "config", "Base cyc", "GLSC cyc", "speedup", "Base instrs", "GLSC instrs"
    );
    let tms = Tms::new(Dataset::Tiny);
    for (cores, tpc) in [(1, 1), (1, 4), (4, 1), (4, 4)] {
        let cfg = MachineConfig::paper(cores, tpc, width);
        let base = run_workload(&tms.build(Variant::Base, &cfg), &cfg).map_err(to_err)?;
        let glsc = run_workload(&tms.build(Variant::Glsc, &cfg), &cfg).map_err(to_err)?;
        println!(
            "{:<8} {:>12} {:>12} {:>8.2}x {:>14} {:>14}",
            format!("{cores}x{tpc}"),
            base.report.cycles,
            glsc.report.cycles,
            base.report.cycles as f64 / glsc.report.cycles as f64,
            base.report.total_instructions(),
            glsc.report.total_instructions(),
        );
    }
    println!();
    println!("Both variants validate against the same host-computed reference;");
    println!("the speedup comes from replacing per-lane ll/fadd/sc retry loops");
    println!("with one vgatherlink/vfadd/vscattercond sequence per vector.");
    Ok(())
}

fn to_err(e: String) -> Box<dyn std::error::Error> {
    e.into()
}
