//! Temporary: dump pre-PR golden timing numbers for the NoC Ideal differential test.
use glsc::kernels::{build_named, micro, run_workload, Dataset, Variant, KERNEL_NAMES};
use glsc::sim::MachineConfig;

fn main() {
    let shapes = [(1usize, 1usize), (1, 4), (4, 1), (4, 4)];
    for kernel in KERNEL_NAMES {
        for (c, t) in shapes {
            for v in [Variant::Base, Variant::Glsc] {
                let cfg = MachineConfig::paper(c, t, 4);
                let w = build_named(kernel, Dataset::Tiny, v, &cfg).expect("known kernel");
                let out = run_workload(&w, &cfg).unwrap();
                println!(
                    "(\"{kernel}\", {c}, {t}, Variant::{}, {}, {}),",
                    if v == Variant::Base { "Base" } else { "Glsc" },
                    out.report.cycles,
                    out.report.l1_accesses()
                );
            }
        }
    }
    for s in micro::Scenario::ALL {
        for v in [Variant::Base, Variant::Glsc] {
            let cfg = MachineConfig::paper(4, 4, 4);
            let w = micro::Micro::new(s, Dataset::Tiny).build(v, &cfg);
            let out = run_workload(&w, &cfg).unwrap();
            println!(
                "// micro {} {:?}: cycles={} l1={}",
                s.label(),
                v,
                out.report.cycles,
                out.report.l1_accesses()
            );
        }
    }
    for width in [1usize, 16] {
        for v in [Variant::Base, Variant::Glsc] {
            let cfg = MachineConfig::paper(4, 4, width);
            let w = build_named("HIP", Dataset::Tiny, v, &cfg).expect("known kernel");
            let out = run_workload(&w, &cfg).unwrap();
            println!(
                "// HIP w{width} {:?}: cycles={} l1={}",
                v,
                out.report.cycles,
                out.report.l1_accesses()
            );
        }
    }
}
