//! Quickstart: the paper's Fig. 3(A) — a parallel histogram whose atomic
//! updates run as *vector* operations via `vgatherlink`/`vscattercond`.
//!
//! Builds the program with the assembler API, runs it on the Table-1
//! machine, validates the result against a host-computed histogram, and
//! prints the statistics the paper's evaluation is built from.
//!
//! Run with: `cargo run --release --example quickstart`

use glsc::isa::{MReg, ProgramBuilder, Reg, VReg};
use glsc::sim::{Machine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (cores, threads, width) = (4, 4, 4);
    let pixels: i64 = 4096;
    let bins: i64 = 13;
    let (input_addr, hist_addr) = (0x1_0000i64, 0x8_0000i64);

    // ---- assemble the SPMD program (Fig. 3(A) of the paper) ----
    let mut b = ProgramBuilder::new();
    let (r_in, r_hist, r_i, r_step, r_n, r_addr) = (
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
    );
    let (v_in, v_bins, v_tmp) = (VReg::new(0), VReg::new(1), VReg::new(2));
    let (f_todo, f_tmp) = (MReg::new(0), MReg::new(1));

    b.li(r_in, input_addr);
    b.li(r_hist, hist_addr);
    b.li(r_n, pixels);
    // Threads interleave chunks of `width` pixels: i0 = gid*width,
    // step = nthreads*width (r0 = thread id, r1 = thread count).
    b.mul(r_step, Reg::new(1), width as i64);
    b.mul(r_i, Reg::new(0), width as i64);
    let outer = b.here();
    let done = b.label();
    b.bge(r_i, r_n, done);
    b.shl(r_addr, r_i, 2);
    b.add(r_addr, r_addr, r_in);
    b.vload(v_in, r_addr, 0, None); // load the next SIMD_WIDTH inputs
    b.vmod(v_bins, v_in, bins, None); // compute the bins
    b.sync_on(); // attribute this region to synchronization time
    b.mall(f_todo); // FtoDo = ALL_ONES
    let retry = b.here();
    b.vgatherlink(f_tmp, v_tmp, r_hist, v_bins, f_todo);
    b.vadd(v_tmp, v_tmp, 1, Some(f_tmp)); // increment bins
    b.vscattercond(f_tmp, v_tmp, r_hist, v_bins, f_tmp);
    b.mxor(f_todo, f_todo, f_tmp); // record lanes that succeeded
    b.bmnz(f_todo, retry); // while (FtoDo != 0)
    b.sync_off();
    b.add(r_i, r_i, r_step);
    b.jmp(outer);
    b.bind(done)?;
    b.halt();
    let program = b.build()?;

    // ---- set up the machine and the input image ----
    let mut machine = Machine::new(MachineConfig::paper(cores, threads, width));
    let mut expected = vec![0u32; bins as usize];
    let mut x = 0x1234_5678u32;
    for i in 0..pixels {
        x = x.wrapping_mul(1103515245).wrapping_add(12345);
        let pixel = (x >> 8) % 1021;
        machine
            .mem_mut()
            .backing_mut()
            .write_u32((input_addr + 4 * i) as u64, pixel);
        expected[(pixel % bins as u32) as usize] += 1;
    }
    machine.load_program(program);

    // ---- run and validate ----
    let report = machine.run()?;
    let got = machine
        .mem()
        .backing()
        .read_u32_vec(hist_addr as u64, bins as usize);
    assert_eq!(got, expected, "histogram must match the host reference");

    println!("GLSC histogram on a {cores}x{threads} CMP, {width}-wide SIMD");
    println!("  pixels                  {pixels}");
    println!("  cycles                  {}", report.cycles);
    println!("  dynamic instructions    {}", report.total_instructions());
    println!(
        "  sync-time fraction      {:.1}%",
        100.0 * report.sync_fraction()
    );
    println!("  vgatherlink executed    {}", report.gsu.gatherlinks);
    println!("  vscattercond executed   {}", report.gsu.scatterconds);
    println!(
        "  element failures        {:.2}% (aliasing {}, lost reservations {})",
        100.0 * report.glsc_failure_rate(),
        report.gsu.sc_fail_alias,
        report.gsu.sc_fail_reservation
    );
    println!(
        "  atomic L1 accesses      {} ({} saved by same-line combining)",
        report.atomic_l1_accesses(),
        report.gsu.combining_savings()
    );
    println!("histogram verified: {:?}", got);
    Ok(())
}
