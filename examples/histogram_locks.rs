//! The paper's Fig. 3(B): using GLSC to implement **vector locks**
//! (`VLOCK`/`VUNLOCK`) for fine-grained critical sections, demonstrated on
//! the same histogram — each bin protected by its own test-and-set lock.
//!
//! This is the second programming model GLSC enables: instead of
//! retry-until-committed reductions, lanes acquire a *subset* of the locks,
//! do arbitrary critical-section work under the acquired mask, release,
//! and retry the rest. Deadlock is impossible because acquisition is
//! conditional (§3.2).
//!
//! Run with: `cargo run --release --example histogram_locks`

use glsc::isa::{CmpOp, MReg, ProgramBuilder, Reg, VReg};
use glsc::sim::{Machine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (cores, threads, width) = (2, 4, 4);
    let pixels: i64 = 2048;
    let bins: i64 = 17;
    let (input_addr, hist_addr, lock_addr) = (0x1_0000i64, 0x8_0000i64, 0x9_0000i64);

    let mut b = ProgramBuilder::new();
    let (r_in, r_hist, r_lock, r_i, r_step, r_n, r_addr, r_one, r_zero) = (
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
        Reg::new(8),
        Reg::new(9),
        Reg::new(10),
    );
    let (v_in, v_bins, v_val, v_tmp, v_one, v_zero) = (
        VReg::new(0),
        VReg::new(1),
        VReg::new(2),
        VReg::new(3),
        VReg::new(4),
        VReg::new(5),
    );
    let (f_todo, f, f_t1, f_t2) = (MReg::new(0), MReg::new(1), MReg::new(2), MReg::new(3));

    b.li(r_in, input_addr);
    b.li(r_hist, hist_addr);
    b.li(r_lock, lock_addr);
    b.li(r_n, pixels);
    b.li(r_one, 1);
    b.li(r_zero, 0);
    b.vsplat(v_one, r_one); // Vone = {1,1,...}
    b.vsplat(v_zero, r_zero); // Vzero = {0,0,...}
    b.mul(r_step, Reg::new(1), width as i64);
    b.mul(r_i, Reg::new(0), width as i64);
    let outer = b.here();
    let done = b.label();
    b.bge(r_i, r_n, done);
    b.shl(r_addr, r_i, 2);
    b.add(r_addr, r_addr, r_in);
    b.vload(v_in, r_addr, 0, None);
    b.vmod(v_bins, v_in, bins, None);
    b.sync_on();
    b.mall(f_todo);
    let retry = b.here();
    b.mmov(f, f_todo);
    // ---- VLOCK(MlockArray, Vindex, F) — Fig. 3(B) lines 5-13 ----
    b.vgatherlink(f_t1, v_tmp, r_lock, v_bins, f); // gather-linked locks
    b.vcmp(CmpOp::Eq, f_t2, v_tmp, 0, Some(f_t1)); // which are available
    b.vscattercond(f, v_one, r_lock, v_bins, f_t2); // try to obtain them
                                                    // ---- critical section under mask F (updateFn of Fig. 3(B)) ----
                                                    // Locked bins are unique within the vector, so plain gather/scatter
                                                    // is safe here.
    b.vgather(v_val, r_hist, v_bins, Some(f));
    b.vadd(v_val, v_val, 1, Some(f));
    b.vscatter(v_val, r_hist, v_bins, Some(f));
    // ---- VUNLOCK(MlockArray, Vindex, F) — Fig. 3(B) lines 15-18 ----
    b.vscatter(v_zero, r_lock, v_bins, Some(f));
    b.mxor(f_todo, f_todo, f);
    b.bmnz(f_todo, retry);
    b.sync_off();
    b.add(r_i, r_i, r_step);
    b.jmp(outer);
    b.bind(done)?;
    b.halt();
    let program = b.build()?;

    let mut machine = Machine::new(MachineConfig::paper(cores, threads, width));
    let mut expected = vec![0u32; bins as usize];
    let mut x = 42u32;
    for i in 0..pixels {
        x = x.wrapping_mul(1103515245).wrapping_add(12345);
        let pixel = (x >> 8) % 997;
        machine
            .mem_mut()
            .backing_mut()
            .write_u32((input_addr + 4 * i) as u64, pixel);
        expected[(pixel % bins as u32) as usize] += 1;
    }
    machine.load_program(program);
    let report = machine.run()?;

    let got = machine
        .mem()
        .backing()
        .read_u32_vec(hist_addr as u64, bins as usize);
    assert_eq!(got, expected, "lock-based histogram must match");
    for bin in 0..bins as u64 {
        assert_eq!(
            machine.mem().backing().read_u32(lock_addr as u64 + 4 * bin),
            0,
            "all locks released"
        );
    }

    println!("VLOCK/VUNLOCK histogram on a {cores}x{threads} CMP, {width}-wide SIMD");
    println!("  cycles                {}", report.cycles);
    println!("  lock acquires (sc ok) {}", report.gsu.sc_elem_successes);
    println!(
        "  failed acquisitions   {} aliased + {} contended",
        report.gsu.sc_fail_alias, report.gsu.sc_fail_reservation
    );
    println!(
        "  sync-time fraction    {:.1}%",
        100.0 * report.sync_fraction()
    );
    println!("histogram verified: {:?}", got);
    Ok(())
}
