//! Injected faults must reach the pipeline through the normal completion
//! path (DESIGN.md §9): the LSU neither hides DRAM jitter nor masks a
//! destroyed reservation — completions simply carry the perturbed `done`
//! cycle and the failed `sc_ok`.

use glsc_core::{Lsu, LsuAction, LsuCompletion, LsuEntry};
use glsc_mem::{ChaosConfig, FaultPlan, MemConfig, MemOp, MemorySystem};

const CLEAN_COLD_MISS: u64 = 3 + 12 + 280; // l1 probe + l2 + dram

fn mem() -> MemorySystem {
    let cfg = MemConfig {
        prefetch: false,
        ..MemConfig::default()
    };
    MemorySystem::new(cfg, 1, 4)
}

fn jitter_only(seed: u64, max: u64) -> FaultPlan {
    FaultPlan::new(ChaosConfig {
        period: 1,
        clear_line_prob: 0.0,
        flush_core_prob: 0.0,
        evict_line_prob: 0.0,
        dram_jitter_prob: 1.0,
        dram_jitter_max: max,
        buffer_pressure_prob: 0.0,
        ..ChaosConfig::from_seed(seed)
    })
}

fn load_completion(lsu: &mut Lsu, mem: &mut MemorySystem, addr: u64, now: u64) -> u64 {
    lsu.push(
        LsuEntry {
            tid: 0,
            addr,
            action: LsuAction::LoadTo { rd: 3 },
        },
        0,
    );
    match lsu.tick(0, mem, now) {
        Some(LsuCompletion::ScalarLoad { done, .. }) => done,
        other => panic!("expected a scalar-load completion, got {other:?}"),
    }
}

#[test]
fn lsu_completion_carries_dram_jitter() {
    // Baseline: no fault plan, cold miss completes at the documented
    // latency sum.
    let mut m = mem();
    let mut lsu = Lsu::new(4, 4);
    assert_eq!(
        load_completion(&mut lsu, &mut m, 0x1000, 0),
        CLEAN_COLD_MISS
    );

    // With jitter on every access the same cold miss completes strictly
    // later, bounded by dram_jitter_max, and the delay is visible to the
    // pipeline through the completion's `done` field.
    let mut m = mem();
    m.install_fault_plan(jitter_only(17, 32));
    let mut lsu = Lsu::new(4, 4);
    let done = load_completion(&mut lsu, &mut m, 0x1000, 0);
    assert!(done > CLEAN_COLD_MISS, "jitter must delay the completion");
    assert!(done <= CLEAN_COLD_MISS + 32, "jitter is bounded");
    assert!(m.chaos_stats().unwrap().jitter_events > 0);
}

#[test]
fn lsu_sc_completion_reports_chaos_killed_reservation() {
    let mut m = mem();
    let mut lsu = Lsu::new(4, 4);

    // Acquire a reservation through the LSU.
    lsu.push(
        LsuEntry {
            tid: 0,
            addr: 0x1000,
            action: LsuAction::LlTo { rd: 3 },
        },
        0,
    );
    let t = match lsu.tick(0, &mut m, 0) {
        Some(LsuCompletion::ScalarLoad { done, .. }) => done,
        other => panic!("expected the ll completion, got {other:?}"),
    };
    assert!(m.holds_reservation(0, 0, 0x1000));

    // A chaos plan that clears reservations on every access fires on an
    // unrelated load...
    m.install_fault_plan(FaultPlan::new(ChaosConfig {
        period: 1,
        clear_line_prob: 1.0,
        flush_core_prob: 0.0,
        evict_line_prob: 0.0,
        dram_jitter_prob: 0.0,
        buffer_pressure_prob: 0.0,
        ..ChaosConfig::from_seed(17)
    }));
    let _ = m.access(0, 1, MemOp::Load, 0x2000, t);

    // ...and the subsequent sc through the LSU must report failure so the
    // pipeline's retry loop re-executes.
    lsu.push(
        LsuEntry {
            tid: 0,
            addr: 0x1000,
            action: LsuAction::ScVal { rd: 5, value: 7 },
        },
        0,
    );
    match lsu.tick(0, &mut m, t + 400) {
        Some(LsuCompletion::ScalarSc { ok, .. }) => {
            assert!(!ok, "sc over a chaos-killed reservation must fail");
        }
        other => panic!("expected the sc completion, got {other:?}"),
    }
    assert_eq!(lsu.stats().scs, 1);
    assert_eq!(lsu.stats().sc_successes, 0);
    assert_eq!(m.backing().read_u32(0x1000), 0, "the store must not land");
}
