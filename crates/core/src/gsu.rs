//! The gather/scatter unit with GLSC support.
//!
//! Reproduces the organization of Fig. 1/Fig. 4 and the timing rules of
//! §4.1 of the paper:
//!
//! * one instruction-buffer entry ("slot") per SMT thread;
//! * an instruction waits until the issuing thread's LSU requests have
//!   drained (memory-ordering conflict check of §2.2);
//! * the control logic generates **one element address per cycle** overall;
//! * accesses falling on the same cache line are **combined** into a single
//!   L1 request (Fig. 4 sends one request for elements A and C on line
//!   100). Address generation and cache accesses are pipelined (§4.1) for
//!   gathers, gather-links and plain scatters; `vscattercond` requests are
//!   held until the instruction's address generation completes so that the
//!   combined request's reservation check and data movement stay atomic at
//!   the port (a gather-link may read lanes after its line request was
//!   accepted: a later `vscattercond` success implies the reservation was
//!   never invalidated, i.e. no intervening write, so the late read equals
//!   the accept-time value);
//! * the unit assembles the destination vector and the **output mask** as
//!   replies return;
//! * minimum instruction latency is `overhead + SIMD-width` cycles.
//!
//! For `vscattercond`, element aliasing (two active lanes targeting the
//! same address) is detected and exactly one lane — the lowest — succeeds
//! (§3.1 allows either instruction to resolve aliases; this implementation
//! resolves them in the scatter, so aliased `vgatherlink` lanes all load).

use crate::config::GlscConfig;
use glsc_mem::{line_of, MemOp, MemorySystem};

/// Which GSU instruction a slot executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GsuKind {
    /// `vgather` — plain indexed load into vector register `vd`.
    Gather {
        /// Destination vector register index.
        vd: u8,
    },
    /// `vscatter` — plain indexed store.
    Scatter,
    /// `vgatherlink` — indexed load-linked into `vd`, success mask in `fd`.
    GatherLink {
        /// Output mask register index.
        fd: u8,
        /// Destination vector register index.
        vd: u8,
    },
    /// `vscattercond` — indexed store-conditional, success mask in `fd`.
    ScatterCond {
        /// Output mask register index.
        fd: u8,
    },
}

impl GsuKind {
    fn is_atomic(self) -> bool {
        matches!(
            self,
            GsuKind::GatherLink { .. } | GsuKind::ScatterCond { .. }
        )
    }
}

/// Completion record for one GSU instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GsuCompletion {
    /// Issuing SMT thread.
    pub tid: u8,
    /// Cycle at which the instruction (and the blocked thread) completes.
    pub done: u64,
    /// Destination vector register, when the instruction loads data.
    pub vd: Option<u8>,
    /// Gathered `(lane, value)` pairs for `vd`.
    pub lane_values: Vec<(u8, u32)>,
    /// Output mask register, when the instruction produces a mask.
    pub fd: Option<u8>,
    /// Output mask value (bit per successful lane).
    pub mask: u32,
}

/// GSU event counters (feed the Table 4 analysis).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GsuStats {
    /// `vgather` instructions executed.
    pub gathers: u64,
    /// `vscatter` instructions executed.
    pub scatters: u64,
    /// `vgatherlink` instructions executed.
    pub gatherlinks: u64,
    /// `vscattercond` instructions executed.
    pub scatterconds: u64,
    /// Active elements processed (address generations).
    pub elems_active: u64,
    /// L1 line requests actually sent (post-combining), all kinds.
    pub line_requests: u64,
    /// L1 line requests sent by the two atomic instructions.
    pub atomic_line_requests: u64,
    /// Active elements of the two atomic instructions (what an uncombined
    /// implementation would have sent to the L1).
    pub atomic_elems: u64,
    /// `vgatherlink` element attempts.
    pub gl_elem_attempts: u64,
    /// `vgatherlink` elements failed (policy-induced, §3.2).
    pub gl_elem_failures: u64,
    /// `vscattercond` element attempts.
    pub sc_elem_attempts: u64,
    /// `vscattercond` elements that stored successfully.
    pub sc_elem_successes: u64,
    /// `vscattercond` elements failed by alias resolution (§3.1).
    pub sc_fail_alias: u64,
    /// `vscattercond` elements failed by a lost line reservation
    /// (conflicting store, eviction, or displaced link).
    pub sc_fail_reservation: u64,
}

impl GsuStats {
    /// Element failure rate of the atomic instructions, as in the last
    /// columns of Table 4: failed scatter-cond elements (alias + lost
    /// reservation) plus failed gather-link elements, over attempts.
    pub fn element_failure_rate(&self) -> f64 {
        let attempts = self.sc_elem_attempts + self.gl_elem_attempts;
        if attempts == 0 {
            return 0.0;
        }
        let failures = self.sc_fail_alias + self.sc_fail_reservation + self.gl_elem_failures;
        failures as f64 / attempts as f64
    }

    /// L1 accesses saved by same-line combining on atomic instructions.
    pub fn combining_savings(&self) -> u64 {
        self.atomic_elems.saturating_sub(self.atomic_line_requests)
    }

    /// Adds another core's counters into this one (for machine-wide
    /// aggregation).
    pub fn accumulate(&mut self, other: &GsuStats) {
        self.gathers += other.gathers;
        self.scatters += other.scatters;
        self.gatherlinks += other.gatherlinks;
        self.scatterconds += other.scatterconds;
        self.elems_active += other.elems_active;
        self.line_requests += other.line_requests;
        self.atomic_line_requests += other.atomic_line_requests;
        self.atomic_elems += other.atomic_elems;
        self.gl_elem_attempts += other.gl_elem_attempts;
        self.gl_elem_failures += other.gl_elem_failures;
        self.sc_elem_attempts += other.sc_elem_attempts;
        self.sc_elem_successes += other.sc_elem_successes;
        self.sc_fail_alias += other.sc_fail_alias;
        self.sc_fail_reservation += other.sc_fail_reservation;
    }
}

#[derive(Clone, Debug)]
struct Elem {
    lane: u8,
    addr: u64,
    value: u32,
    alias_loser: bool,
    generated: bool,
}

#[derive(Clone, Debug)]
struct LineReq {
    line: u64,
    issued: bool,
    done: u64,
    ok: bool,
    policy_fail: bool,
}

#[derive(Clone, Debug)]
struct Slot {
    kind: GsuKind,
    elems: Vec<Elem>,
    next_gen: usize,
    requests: Vec<LineReq>,
    started: bool,
    start_cycle: u64,
    width: usize,
    lane_values: Vec<(u8, u32)>,
    mask: u32,
}

impl Slot {
    fn all_generated(&self) -> bool {
        self.next_gen >= self.elems.len()
    }

    fn all_issued(&self) -> bool {
        self.requests.iter().all(|r| r.issued)
    }
}

/// The gather/scatter unit of one core.
#[derive(Clone, Debug)]
pub struct Gsu {
    slots: Vec<Option<Slot>>,
    rr: usize,
    cfg: GlscConfig,
    stats: GsuStats,
}

impl Gsu {
    /// Creates a GSU with one instruction-buffer entry per SMT thread.
    pub fn new(threads: usize, cfg: GlscConfig) -> Self {
        Self {
            slots: vec![None; threads],
            rr: 0,
            cfg,
            stats: GsuStats::default(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &GsuStats {
        &self.stats
    }

    /// Whether thread `tid` has an instruction in flight.
    pub fn busy(&self, tid: u8) -> bool {
        self.slots[tid as usize].is_some()
    }

    /// Whether any thread has an instruction in flight.
    pub fn any_busy(&self) -> bool {
        self.slots.iter().any(Option::is_some)
    }

    /// The next cycle (relative to `now`) at which this unit changes
    /// state, or `None` when no instruction is in flight. A busy GSU
    /// generates/issues/retires every cycle, so its next event is always
    /// the next cycle.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        self.any_busy().then_some(now + 1)
    }

    /// Inserts an instruction into `tid`'s buffer entry. `elems` holds the
    /// active lanes only, as `(lane, element address, value)` (values are
    /// ignored by loads). `width` is the machine SIMD width, used for the
    /// minimum-latency bound.
    ///
    /// # Panics
    ///
    /// Panics if the thread already has an instruction in flight (the
    /// pipeline must block the thread while [`busy`](Self::busy)).
    pub fn start(&mut self, tid: u8, kind: GsuKind, elems: Vec<(u8, u64, u32)>, width: usize) {
        assert!(
            !self.busy(tid),
            "GSU slot for thread {tid} already occupied"
        );
        match kind {
            GsuKind::Gather { .. } => self.stats.gathers += 1,
            GsuKind::Scatter => self.stats.scatters += 1,
            GsuKind::GatherLink { .. } => self.stats.gatherlinks += 1,
            GsuKind::ScatterCond { .. } => self.stats.scatterconds += 1,
        }
        let mut es: Vec<Elem> = elems
            .into_iter()
            .map(|(lane, addr, value)| Elem {
                lane,
                addr,
                value,
                alias_loser: false,
                generated: false,
            })
            .collect();
        // Alias detection for vscattercond: exactly one lane (the lowest)
        // per distinct address succeeds.
        if matches!(kind, GsuKind::ScatterCond { .. }) {
            for i in 0..es.len() {
                if es[..i]
                    .iter()
                    .any(|prev| prev.addr == es[i].addr && !prev.alias_loser)
                {
                    es[i].alias_loser = true;
                }
            }
        }
        self.slots[tid as usize] = Some(Slot {
            kind,
            elems: es,
            next_gen: 0,
            requests: Vec::new(),
            started: false,
            start_cycle: 0,
            width,
            lane_values: Vec::new(),
            mask: 0,
        });
    }

    /// Marks `tid`'s pending instruction as started (the memory-ordering
    /// gate: its LSU requests have drained). Idempotent.
    pub fn mark_started(&mut self, tid: u8, now: u64) {
        if let Some(slot) = self.slots[tid as usize].as_mut() {
            if !slot.started {
                slot.started = true;
                slot.start_cycle = now;
            }
        }
    }

    /// Whether any started slot still has an unissued line request (i.e.
    /// the GSU competes for the L1 port this cycle).
    pub fn wants_port(&self) -> bool {
        self.slots
            .iter()
            .flatten()
            .any(|s| s.started && !s.all_issued())
    }

    /// Generates one element address (at most one per cycle across all
    /// slots, §4.1), combining it into an existing same-line request when
    /// possible. `core` identifies the owning core for the atomicity
    /// oracle's global thread numbering.
    pub fn generate_one(&mut self, core: usize, mem: &mut MemorySystem) {
        let n = self.slots.len();
        for off in 0..n {
            let idx = (self.rr + off) % n;
            let Some(slot) = self.slots[idx].as_mut() else {
                continue;
            };
            if !slot.started || slot.all_generated() {
                continue;
            }
            self.rr = (idx + 1) % n;
            let e = slot.next_gen;
            slot.next_gen += 1;
            slot.elems[e].generated = true;
            self.stats.elems_active += 1;
            let kind = slot.kind;
            if kind.is_atomic() {
                self.stats.atomic_elems += 1;
            }
            match kind {
                GsuKind::GatherLink { .. } => self.stats.gl_elem_attempts += 1,
                GsuKind::ScatterCond { .. } => self.stats.sc_elem_attempts += 1,
                _ => {}
            }
            if slot.elems[e].alias_loser {
                self.stats.sc_fail_alias += 1;
                return; // mask bit stays 0; generation cycle consumed
            }
            let line = line_of(slot.elems[e].addr, mem.cfg().line_bytes);
            if let Some(req_idx) = slot.requests.iter().position(|r| r.line == line) {
                if slot.requests[req_idx].issued {
                    // Pipelined instruction kinds let late elements ride an
                    // already-serviced request (never reached for
                    // vscattercond, whose requests wait for generation).
                    let req = slot.requests[req_idx].clone();
                    Self::apply_elem(&mut self.stats, slot, e, &req, core, idx as u8, mem);
                }
            } else {
                slot.requests.push(LineReq {
                    line,
                    issued: false,
                    done: 0,
                    ok: false,
                    policy_fail: false,
                });
            }
            return;
        }
    }

    /// Issues one pending line request to the L1 (called when the GSU wins
    /// the port). Applies data movement for every already-generated element
    /// riding on the request.
    pub fn issue_one(
        &mut self,
        core: usize,
        tid_hint: Option<u8>,
        mem: &mut MemorySystem,
        now: u64,
    ) {
        let n = self.slots.len();
        let order: Vec<usize> = match tid_hint {
            Some(t) => vec![t as usize],
            None => (0..n).map(|off| (self.rr + off) % n).collect(),
        };
        for idx in order {
            let Some(slot) = self.slots[idx].as_mut() else {
                continue;
            };
            if !slot.started {
                continue;
            }
            // vscattercond requests are held until address generation (and
            // therefore same-line combining) completes, keeping each
            // combined conditional store atomic at the L1 port. The other
            // kinds pipeline generation with issue (§4.1).
            if matches!(slot.kind, GsuKind::ScatterCond { .. }) && !slot.all_generated() {
                continue;
            }
            let Some(req_idx) = slot.requests.iter().position(|r| !r.issued) else {
                continue;
            };
            let tid = idx as u8;
            let kind = slot.kind;
            let line = slot.requests[req_idx].line;

            let mut policy_fail = false;
            if matches!(kind, GsuKind::GatherLink { .. }) {
                if self.cfg.fail_on_l1_miss && mem.l1(core).peek(line).is_none() {
                    policy_fail = true;
                    // The element fails fast, but the fetch is still
                    // initiated (as a plain load, no link) so a retry can
                    // hit — otherwise cold data could never be linked and
                    // the software retry loop would spin forever.
                    let _ = mem.access(core, tid, MemOp::Load, line, now);
                    self.stats.line_requests += 1;
                }
                if self.cfg.fail_on_remote_link && mem.l1(core).other_reservations(line, tid) {
                    policy_fail = true;
                }
            }

            let (done, ok) = if policy_fail {
                (now + mem.cfg().l1_hit_latency, false)
            } else {
                let op = match kind {
                    GsuKind::Gather { .. } => MemOp::Load,
                    GsuKind::Scatter => MemOp::Store,
                    GsuKind::GatherLink { .. } => MemOp::LoadLinked,
                    GsuKind::ScatterCond { .. } => MemOp::StoreCond,
                };
                let r = mem.access(core, tid, op, line, now);
                self.stats.line_requests += 1;
                if kind.is_atomic() {
                    self.stats.atomic_line_requests += 1;
                }
                (r.done, r.sc_ok)
            };

            {
                let req = &mut slot.requests[req_idx];
                req.issued = true;
                req.done = done;
                req.ok = ok;
                req.policy_fail = policy_fail;
            }
            let req = slot.requests[req_idx].clone();
            let line_bytes = mem.cfg().line_bytes;
            let riders: Vec<usize> = (0..slot.elems.len())
                .filter(|&e| {
                    slot.elems[e].generated
                        && !slot.elems[e].alias_loser
                        && line_of(slot.elems[e].addr, line_bytes) == req.line
                })
                .collect();
            for e in riders {
                Self::apply_elem(&mut self.stats, slot, e, &req, core, tid, mem);
            }
            return;
        }
    }

    /// Performs one element's data movement and mask update against the
    /// outcome of its (possibly combined) line request, reporting the
    /// element to the atomicity oracle when one is installed.
    fn apply_elem(
        stats: &mut GsuStats,
        slot: &mut Slot,
        e: usize,
        req: &LineReq,
        core: usize,
        tid: u8,
        mem: &mut MemorySystem,
    ) {
        let lane = slot.elems[e].lane;
        let addr = slot.elems[e].addr;
        match slot.kind {
            GsuKind::Gather { .. } => {
                let v = mem.backing().read_u32(addr);
                slot.lane_values.push((lane, v));
                slot.mask |= 1 << lane;
            }
            GsuKind::GatherLink { .. } => {
                if req.policy_fail {
                    stats.gl_elem_failures += 1;
                } else {
                    let v = mem.backing().read_u32(addr);
                    slot.lane_values.push((lane, v));
                    slot.mask |= 1 << lane;
                    mem.oracle_note_link(core, tid, addr);
                }
            }
            GsuKind::Scatter => {
                mem.backing_mut().write_u32(addr, slot.elems[e].value);
                mem.oracle_note_store(core, tid, addr);
            }
            GsuKind::ScatterCond { .. } => {
                if req.ok {
                    mem.backing_mut().write_u32(addr, slot.elems[e].value);
                    slot.mask |= 1 << lane;
                    stats.sc_elem_successes += 1;
                    mem.oracle_note_sc_success(core, tid, addr);
                } else {
                    stats.sc_fail_reservation += 1;
                }
            }
        }
    }

    /// Retires finished instructions: every element generated, every
    /// request issued. The reported completion cycle respects the minimum
    /// GSU latency (`overhead + SIMD-width`).
    pub fn collect_done(&mut self, now: u64) -> Vec<GsuCompletion> {
        let mut out = Vec::new();
        self.collect_done_into(now, |c| out.push(c));
        out
    }

    /// Sink-based variant of [`collect_done`](Self::collect_done): hands
    /// each retired instruction to `sink` without allocating an output
    /// vector, so the steady-state cycle loop can reuse one buffer.
    pub fn collect_done_into(&mut self, _now: u64, mut sink: impl FnMut(GsuCompletion)) {
        for idx in 0..self.slots.len() {
            let ready = self.slots[idx]
                .as_ref()
                .is_some_and(|s| s.started && s.all_generated() && s.all_issued());
            if !ready {
                continue;
            }
            let slot = self.slots[idx].take().expect("checked above");
            let min_done = slot.start_cycle + self.cfg.min_latency_overhead + slot.width as u64;
            let done = slot
                .requests
                .iter()
                .map(|r| r.done)
                .max()
                .unwrap_or(0)
                .max(min_done);
            let (vd, fd) = match slot.kind {
                GsuKind::Gather { vd } => (Some(vd), None),
                GsuKind::Scatter => (None, None),
                GsuKind::GatherLink { fd, vd } => (Some(vd), Some(fd)),
                GsuKind::ScatterCond { fd } => (None, Some(fd)),
            };
            sink(GsuCompletion {
                tid: idx as u8,
                done,
                vd,
                lane_values: slot.lane_values,
                fd,
                mask: slot.mask,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsc_mem::MemConfig;

    fn mem() -> MemorySystem {
        let cfg = MemConfig {
            prefetch: false,
            ..MemConfig::default()
        };
        MemorySystem::new(cfg, 1, 4)
    }

    /// Drives the GSU alone (generate + issue every cycle) to completion.
    fn run(gsu: &mut Gsu, mem: &mut MemorySystem, start: u64) -> GsuCompletion {
        for t in 0..4 {
            gsu.mark_started(t, start);
        }
        let mut now = start;
        loop {
            gsu.generate_one(0, mem);
            gsu.issue_one(0, None, mem, now);
            let done = gsu.collect_done(now);
            if let Some(c) = done.into_iter().next() {
                return c;
            }
            now += 1;
            assert!(now < start + 10_000, "GSU failed to complete");
        }
    }

    #[test]
    fn gather_reads_values_and_combines_lines() {
        let mut m = mem();
        m.backing_mut().write_u32_slice(0x100, &[10, 20, 30, 40]);
        m.backing_mut().write_u32(0x1000, 99);
        let mut g = Gsu::new(4, GlscConfig::default());
        // Lanes 0,1,3 on line 0x100; lane 2 on line 0x1000.
        g.start(
            0,
            GsuKind::Gather { vd: 3 },
            vec![(0, 0x100, 0), (1, 0x104, 0), (2, 0x1000, 0), (3, 0x10c, 0)],
            4,
        );
        let c = run(&mut g, &mut m, 0);
        assert_eq!(c.vd, Some(3));
        let mut lv = c.lane_values.clone();
        lv.sort();
        assert_eq!(lv, vec![(0, 10), (1, 20), (2, 99), (3, 40)]);
        assert_eq!(g.stats().line_requests, 2, "same-line accesses combined");
        assert_eq!(g.stats().elems_active, 4);
    }

    #[test]
    fn min_latency_respected_on_all_hit() {
        let mut m = mem();
        // Warm the line.
        m.access(0, 0, glsc_mem::MemOp::Load, 0x100, 0);
        let mut g = Gsu::new(4, GlscConfig::default());
        g.start(0, GsuKind::Gather { vd: 1 }, vec![(0, 0x100, 0)], 4);
        let c = run(&mut g, &mut m, 1000);
        assert!(c.done >= 1000 + 4 + 4, "min GLSC latency is 4 + SIMD-width");
    }

    #[test]
    fn gatherlink_sets_reservations_and_mask() {
        let mut m = mem();
        let mut g = Gsu::new(4, GlscConfig::default());
        g.start(
            2,
            GsuKind::GatherLink { fd: 1, vd: 5 },
            vec![(0, 0x100, 0), (2, 0x2000, 0)],
            4,
        );
        let c = run(&mut g, &mut m, 0);
        assert_eq!(c.mask, 0b101);
        assert_eq!(c.fd, Some(1));
        assert!(m.holds_reservation(0, 2, 0x100));
        assert!(m.holds_reservation(0, 2, 0x2000));
    }

    #[test]
    fn scattercond_succeeds_after_link_and_writes() {
        let mut m = mem();
        let mut g = Gsu::new(4, GlscConfig::default());
        g.start(
            0,
            GsuKind::GatherLink { fd: 0, vd: 0 },
            vec![(0, 0x100, 0), (1, 0x104, 0)],
            4,
        );
        let c1 = run(&mut g, &mut m, 0);
        assert_eq!(c1.mask, 0b11);
        g.start(
            0,
            GsuKind::ScatterCond { fd: 0 },
            vec![(0, 0x100, 7), (1, 0x104, 8)],
            4,
        );
        let c2 = run(&mut g, &mut m, c1.done);
        assert_eq!(c2.mask, 0b11);
        assert_eq!(m.backing().read_u32(0x100), 7);
        assert_eq!(m.backing().read_u32(0x104), 8);
        // Both elements on one line: one ll + one sc request in total.
        assert_eq!(g.stats().atomic_line_requests, 2);
        assert_eq!(g.stats().atomic_elems, 4);
        assert_eq!(g.stats().combining_savings(), 2);
    }

    #[test]
    fn scattercond_alias_lets_exactly_one_lane_win() {
        let mut m = mem();
        let mut g = Gsu::new(4, GlscConfig::default());
        g.start(
            0,
            GsuKind::GatherLink { fd: 0, vd: 0 },
            vec![(0, 0x100, 0), (1, 0x100, 0), (2, 0x100, 0)],
            4,
        );
        let c1 = run(&mut g, &mut m, 0);
        assert_eq!(c1.mask, 0b111, "aliased gather-links all load");
        g.start(
            0,
            GsuKind::ScatterCond { fd: 0 },
            vec![(0, 0x100, 5), (1, 0x100, 6), (2, 0x100, 7)],
            4,
        );
        let c2 = run(&mut g, &mut m, c1.done);
        assert_eq!(c2.mask, 0b001, "lowest lane wins the alias");
        assert_eq!(m.backing().read_u32(0x100), 5);
        assert_eq!(g.stats().sc_fail_alias, 2);
        assert_eq!(g.stats().sc_elem_successes, 1);
    }

    #[test]
    fn scattercond_fails_when_reservation_lost() {
        let mut m = mem();
        let mut g = Gsu::new(4, GlscConfig::default());
        g.start(
            0,
            GsuKind::GatherLink { fd: 0, vd: 0 },
            vec![(0, 0x100, 0)],
            4,
        );
        let c1 = run(&mut g, &mut m, 0);
        // An intervening store (same core, different thread) kills the link.
        m.access(0, 3, glsc_mem::MemOp::Store, 0x100, c1.done);
        g.start(0, GsuKind::ScatterCond { fd: 0 }, vec![(0, 0x100, 9)], 4);
        let c2 = run(&mut g, &mut m, c1.done + 1);
        assert_eq!(c2.mask, 0);
        assert_ne!(m.backing().read_u32(0x100), 9);
        assert_eq!(g.stats().sc_fail_reservation, 1);
        assert!(g.stats().element_failure_rate() > 0.0);
    }

    #[test]
    fn fail_on_miss_policy_fails_cold_elements() {
        let mut m = mem();
        let cfg = GlscConfig {
            fail_on_l1_miss: true,
            ..GlscConfig::default()
        };
        let mut g = Gsu::new(4, cfg);
        // Warm one line only.
        m.access(0, 0, glsc_mem::MemOp::Load, 0x100, 0);
        g.start(
            0,
            GsuKind::GatherLink { fd: 0, vd: 0 },
            vec![(0, 0x100, 0), (1, 0x5000, 0)],
            4,
        );
        let c = run(&mut g, &mut m, 400);
        assert_eq!(c.mask, 0b01, "cold lane fails under the miss policy");
        assert_eq!(g.stats().gl_elem_failures, 1);
    }

    #[test]
    fn empty_mask_instruction_still_completes() {
        let mut m = mem();
        let mut g = Gsu::new(4, GlscConfig::default());
        g.start(1, GsuKind::ScatterCond { fd: 2 }, vec![], 4);
        let c = run(&mut g, &mut m, 10);
        assert_eq!(c.mask, 0);
        assert_eq!(c.done, 10 + 4 + 4);
    }

    #[test]
    fn slots_are_per_thread_and_busy_tracked() {
        let mut g = Gsu::new(2, GlscConfig::default());
        assert!(!g.busy(0));
        g.start(0, GsuKind::Scatter, vec![(0, 0x100, 1)], 4);
        assert!(g.busy(0));
        assert!(!g.busy(1));
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_start_panics() {
        let mut g = Gsu::new(1, GlscConfig::default());
        g.start(0, GsuKind::Scatter, vec![], 4);
        g.start(0, GsuKind::Scatter, vec![], 4);
    }

    #[test]
    fn two_threads_interleave_generation() {
        let mut m = mem();
        let mut g = Gsu::new(2, GlscConfig::default());
        g.start(
            0,
            GsuKind::Gather { vd: 0 },
            vec![(0, 0x100, 0), (1, 0x200, 0)],
            4,
        );
        g.start(
            1,
            GsuKind::Gather { vd: 1 },
            vec![(0, 0x300, 0), (1, 0x400, 0)],
            4,
        );
        g.mark_started(0, 0);
        g.mark_started(1, 0);
        let mut done = Vec::new();
        let mut now = 0;
        while done.len() < 2 {
            g.generate_one(0, &mut m);
            g.issue_one(0, None, &mut m, now);
            done.extend(g.collect_done(now));
            now += 1;
            assert!(now < 1000);
        }
        assert_eq!(g.stats().gathers, 2);
        assert_eq!(g.stats().elems_active, 4);
    }
}

// ---- durable-snapshot serialization --------------------------------------

impl glsc_wire::Wire for GsuKind {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        match self {
            GsuKind::Gather { vd } => {
                w.put_u8(0);
                vd.encode(w);
            }
            GsuKind::Scatter => w.put_u8(1),
            GsuKind::GatherLink { fd, vd } => {
                w.put_u8(2);
                fd.encode(w);
                vd.encode(w);
            }
            GsuKind::ScatterCond { fd } => {
                w.put_u8(3);
                fd.encode(w);
            }
        }
    }

    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        use glsc_wire::Wire;
        let at = r.pos();
        Ok(match r.get_u8()? {
            0 => GsuKind::Gather {
                vd: Wire::decode(r)?,
            },
            1 => GsuKind::Scatter,
            2 => GsuKind::GatherLink {
                fd: Wire::decode(r)?,
                vd: Wire::decode(r)?,
            },
            3 => GsuKind::ScatterCond {
                fd: Wire::decode(r)?,
            },
            _ => {
                return Err(glsc_wire::WireError::Invalid {
                    at,
                    what: "GsuKind tag",
                })
            }
        })
    }
}

glsc_wire::wire_struct!(GsuStats {
    gathers,
    scatters,
    gatherlinks,
    scatterconds,
    elems_active,
    line_requests,
    atomic_line_requests,
    atomic_elems,
    gl_elem_attempts,
    gl_elem_failures,
    sc_elem_attempts,
    sc_elem_successes,
    sc_fail_alias,
    sc_fail_reservation,
});
glsc_wire::wire_struct!(Elem {
    lane,
    addr,
    value,
    alias_loser,
    generated,
});
glsc_wire::wire_struct!(LineReq {
    line,
    issued,
    done,
    ok,
    policy_fail,
});
glsc_wire::wire_struct!(Slot {
    kind,
    elems,
    next_gen,
    requests,
    started,
    start_cycle,
    width,
    lane_values,
    mask,
});
glsc_wire::wire_struct!(Gsu {
    slots,
    rr,
    cfg,
    stats,
});
