//! Per-core memory unit: LSU + GSU behind one L1 port.
//!
//! Arbitration follows §4.1: "The L1 cache arbitrates between the LSU and
//! the GSU, giving the LSU higher priority", and the GSU "generates at most
//! one cache request per cycle".

use crate::config::GlscConfig;
use crate::gsu::{Gsu, GsuCompletion, GsuKind};
use crate::lsu::{Lsu, LsuCompletion, LsuEntry};
use glsc_mem::{MemoryOrder, MemorySystem};

/// A completion event from either unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemCompletion {
    /// From the load/store unit.
    Lsu(LsuCompletion),
    /// From the gather/scatter unit.
    Gsu(GsuCompletion),
}

/// One core's memory-side machinery (Fig. 1 right-hand side).
#[derive(Clone, Debug)]
pub struct CoreMemUnit {
    core_id: usize,
    threads: usize,
    lsu: Lsu,
    gsu: Gsu,
}

impl CoreMemUnit {
    /// Creates a sequentially-consistent memory unit for core `core_id`
    /// with `threads` SMT threads.
    pub fn new(core_id: usize, threads: usize, cfg: GlscConfig) -> Self {
        Self::with_order(core_id, threads, cfg, MemoryOrder::Sc, 64, 1)
    }

    /// Creates the memory unit for core `core_id` implementing `order`.
    /// `line_bytes`/`l2_banks` must match the memory system the unit will
    /// be ticked against (they fix the relaxed model's drain-skew bank
    /// function).
    pub fn with_order(
        core_id: usize,
        threads: usize,
        cfg: GlscConfig,
        order: MemoryOrder,
        line_bytes: u64,
        l2_banks: usize,
    ) -> Self {
        Self {
            core_id,
            threads,
            lsu: Lsu::with_order(
                threads,
                cfg.write_buffer_entries,
                order,
                line_bytes,
                l2_banks,
            ),
            gsu: Gsu::new(threads, cfg),
        }
    }

    /// The core this unit belongs to.
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// LSU counters.
    pub fn lsu_stats(&self) -> &crate::lsu::LsuStats {
        self.lsu.stats()
    }

    /// GSU counters.
    pub fn gsu_stats(&self) -> &crate::gsu::GsuStats {
        self.gsu.stats()
    }

    /// Whether thread `tid` may issue a store this cycle.
    pub fn can_accept_store(&self, tid: u8) -> bool {
        self.lsu.can_accept_store(tid)
    }

    /// Enqueues an LSU request issued at cycle `now` (see [`Lsu::push`]).
    ///
    /// # Panics
    ///
    /// Panics on write-buffer overflow.
    pub fn lsu_push(&mut self, entry: LsuEntry, now: u64) {
        self.lsu.push(entry, now);
    }

    /// Number of LSU entries pending for `tid` (queue only; see
    /// [`lsu_thread_pending`](Self::lsu_thread_pending) for the
    /// fence-relevant total).
    pub fn lsu_thread_entries(&self, tid: u8) -> usize {
        self.lsu.thread_entries(tid)
    }

    /// Queued entries plus buffered stores pending for `tid` — what
    /// fences and the GSU ordering gate wait on.
    pub fn lsu_thread_pending(&self, tid: u8) -> usize {
        self.lsu.thread_pending(tid)
    }

    /// Stores `tid` currently holds in its write buffer.
    pub fn lsu_buffered_stores(&self, tid: u8) -> usize {
        self.lsu.buffered_stores(tid)
    }

    /// Counts one retired fence for the Table-4 counters.
    pub fn note_fence(&mut self) {
        self.lsu.note_fence();
    }

    /// Whether `tid` has a GSU instruction in flight.
    pub fn gsu_busy(&self, tid: u8) -> bool {
        self.gsu.busy(tid)
    }

    /// Whether both units are drained (no queued LSU requests, no GSU
    /// instructions in flight). The machine only finishes once every
    /// core's memory unit is idle, so buffered stores always commit.
    pub fn is_idle(&self) -> bool {
        !self.lsu.is_busy() && !self.gsu.any_busy()
    }

    /// Inserts a GSU instruction for `tid` (see [`Gsu::start`]). Ordering
    /// point: the thread's buffered stores are flushed into the LSU queue
    /// first (§2.2 — the GSU instruction then waits until "corresponding
    /// requests in the LSU and write buffer have been sent to the L1").
    ///
    /// # Panics
    ///
    /// Panics if the thread's GSU slot is occupied.
    pub fn gsu_start(&mut self, tid: u8, kind: GsuKind, elems: Vec<(u8, u64, u32)>, width: usize) {
        self.lsu.flush_thread_for_ordering(tid);
        self.gsu.start(tid, kind, elems, width);
    }

    /// The next cycle (relative to `now`) at which this unit changes
    /// state, or `None` when both the LSU and the GSU are drained. Busy
    /// units make progress every cycle under the latency-at-accept timing
    /// model, so a busy unit's next event is always the next cycle; the
    /// machine's fast-forward only skips cycles while every unit returns
    /// `None`.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        match (
            self.lsu.next_event_cycle(now),
            self.gsu.next_event_cycle(now),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Advances the unit one cycle: releases GSU instructions whose
    /// thread's LSU traffic has drained, generates one GSU address, grants
    /// the single L1 port (LSU first), and collects completions.
    ///
    /// Allocating wrapper around [`tick_into`](Self::tick_into), kept for
    /// tests and one-shot callers.
    pub fn tick(&mut self, mem: &mut MemorySystem, now: u64) -> Vec<MemCompletion> {
        let mut out = Vec::new();
        self.tick_into(mem, now, &mut out);
        out
    }

    /// Advances the unit one cycle, appending completions to `out` so the
    /// per-cycle machine loop can reuse a single buffer instead of
    /// allocating a fresh vector per core per cycle.
    pub fn tick_into(&mut self, mem: &mut MemorySystem, now: u64, out: &mut Vec<MemCompletion>) {
        // Memory-ordering gate: a thread's GSU instruction starts only once
        // its earlier LSU requests — including buffered stores — have been
        // sent to the L1.
        for tid in 0..self.threads as u8 {
            if self.gsu.busy(tid) && self.lsu.thread_pending(tid) == 0 {
                self.gsu.mark_started(tid, now);
            }
        }

        self.gsu.generate_one(self.core_id, mem);

        if self.lsu.wants_port(now) {
            if let Some(c) = self.lsu.tick(self.core_id, mem, now) {
                out.push(MemCompletion::Lsu(c));
            }
        } else if self.gsu.wants_port() {
            self.gsu.issue_one(self.core_id, None, mem, now);
        }

        self.gsu
            .collect_done_into(now, |c| out.push(MemCompletion::Gsu(c)));
    }

    /// Captures a point-in-time copy of this unit's in-flight state: the
    /// LSU queue and write buffer, every thread's GSU instruction slot
    /// (kind, remaining elements, partial results), and both units'
    /// statistics counters. All of it is owned data, so the snapshot stays
    /// valid however the unit evolves afterwards.
    pub fn snapshot(&self) -> CoreMemUnitSnapshot {
        CoreMemUnitSnapshot {
            state: self.clone(),
        }
    }

    /// Replaces this unit's state with the snapshot's. The snapshot must
    /// come from a unit of the same shape (thread count, GLSC config);
    /// `glsc_sim::Machine::restore` validates this at the machine level.
    pub fn restore(&mut self, snap: &CoreMemUnitSnapshot) {
        *self = snap.state.clone();
    }
}

/// An opaque point-in-time copy of a [`CoreMemUnit`], produced by
/// [`CoreMemUnit::snapshot`].
#[derive(Clone, Debug)]
pub struct CoreMemUnitSnapshot {
    state: CoreMemUnit,
}

impl CoreMemUnitSnapshot {
    /// The core the snapshotted unit belongs to.
    pub fn core_id(&self) -> usize {
        self.state.core_id()
    }

    /// Whether the unit was fully drained at snapshot time.
    pub fn is_idle(&self) -> bool {
        self.state.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsu::LsuAction;
    use glsc_mem::MemConfig;

    fn mem() -> MemorySystem {
        let cfg = MemConfig {
            prefetch: false,
            ..MemConfig::default()
        };
        MemorySystem::new(cfg, 1, 4)
    }

    fn drain(
        unit: &mut CoreMemUnit,
        mem: &mut MemorySystem,
        mut now: u64,
        want: usize,
    ) -> Vec<MemCompletion> {
        let mut out = Vec::new();
        while out.len() < want {
            out.extend(unit.tick(mem, now));
            now += 1;
            assert!(now < 100_000, "memory unit wedged");
        }
        out
    }

    #[test]
    fn lsu_has_priority_over_gsu() {
        let mut m = mem();
        let mut u = CoreMemUnit::new(0, 4, GlscConfig::default());
        // Thread 1 queues a load; thread 0 starts a gather. The load's
        // completion must be produced by the first tick (port granted to
        // the LSU).
        u.lsu_push(
            LsuEntry {
                tid: 1,
                addr: 0x40,
                action: LsuAction::LoadTo { rd: 1 },
            },
            0,
        );
        u.gsu_start(0, GsuKind::Gather { vd: 0 }, vec![(0, 0x80, 0)], 4);
        let first = u.tick(&mut m, 0);
        assert!(matches!(
            first[0],
            MemCompletion::Lsu(LsuCompletion::ScalarLoad { .. })
        ));
        // The gather still completes afterwards.
        let rest = drain(&mut u, &mut m, 1, 1);
        assert!(matches!(rest[0], MemCompletion::Gsu(_)));
    }

    #[test]
    fn gsu_waits_for_same_thread_lsu_traffic() {
        let mut m = mem();
        let mut u = CoreMemUnit::new(0, 4, GlscConfig::default());
        u.lsu_push(
            LsuEntry {
                tid: 0,
                addr: 0x40,
                action: LsuAction::StoreVal { value: 3 },
            },
            0,
        );
        u.gsu_start(0, GsuKind::Gather { vd: 0 }, vec![(0, 0x40, 0)], 4);
        // Tick once: the store drains this very cycle, so the GSU gate
        // opens only on the *next* tick.
        let c0 = u.tick(&mut m, 0);
        assert!(matches!(
            c0[0],
            MemCompletion::Lsu(LsuCompletion::StoreDrained { .. })
        ));
        let rest = drain(&mut u, &mut m, 1, 1);
        match &rest[0] {
            MemCompletion::Gsu(g) => {
                // The gather observes the stored value (FIFO ordering).
                assert_eq!(g.lane_values, vec![(0, 3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn glsc_retry_loop_converges_via_unit() {
        // A full gather-link / increment / scatter-cond sequence driven
        // through the unit, with an aliased pair: needs two rounds.
        let mut m = mem();
        let mut u = CoreMemUnit::new(0, 4, GlscConfig::default());
        m.backing_mut().write_u32(0x100, 0);
        let mut todo: Vec<u8> = vec![0, 1]; // both lanes target 0x100
        let mut rounds = 0;
        while !todo.is_empty() {
            rounds += 1;
            let elems: Vec<(u8, u64, u32)> = todo.iter().map(|&l| (l, 0x100, 0)).collect();
            u.gsu_start(0, GsuKind::GatherLink { fd: 0, vd: 0 }, elems, 4);
            let gl = loop {
                let cs = u.tick(&mut m, 0);
                if let Some(MemCompletion::Gsu(g)) = cs.into_iter().next() {
                    break g;
                }
            };
            let elems: Vec<(u8, u64, u32)> = todo
                .iter()
                .filter(|&&l| gl.mask & (1 << l) != 0)
                .map(|&l| {
                    let old = gl
                        .lane_values
                        .iter()
                        .find(|(lane, _)| *lane == l)
                        .unwrap()
                        .1;
                    (l, 0x100, old + 1)
                })
                .collect();
            u.gsu_start(0, GsuKind::ScatterCond { fd: 0 }, elems, 4);
            let sc = loop {
                let cs = u.tick(&mut m, 0);
                if let Some(MemCompletion::Gsu(g)) = cs.into_iter().next() {
                    break g;
                }
            };
            todo.retain(|&l| sc.mask & (1 << l) == 0);
            assert!(rounds < 10, "retry loop failed to converge");
        }
        assert_eq!(m.backing().read_u32(0x100), 2, "both increments landed");
        assert_eq!(rounds, 2, "alias forces exactly one retry");
    }
}

glsc_wire::wire_struct!(CoreMemUnit {
    core_id,
    threads,
    lsu,
    gsu,
});
glsc_wire::wire_struct!(CoreMemUnitSnapshot { state });
