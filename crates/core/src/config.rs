//! GLSC implementation-policy knobs.
//!
//! §3.2 of the paper deliberately leaves hardware freedom in *when* a
//! `vgatherlink` element may fail: "(a) another thread has already linked a
//! cache line containing one of the elements, (b) bringing one of the
//! elements into the cache will evict an already linked line, (c) the
//! latency for accessing the element is higher than others in the same
//! set". This struct selects among those designs; the default accepts all
//! elements (failures then come only from aliasing and lost reservations,
//! matching the 1×1 failure rates of Table 4).

/// Policy choices for the GLSC hardware (paper §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlscConfig {
    /// `vgatherlink` fails elements whose line misses the L1 instead of
    /// waiting for the fill (design freedom (c) of §3.2). Reduces the
    /// reservation-holding window under contention.
    pub fail_on_l1_miss: bool,
    /// `vgatherlink` fails elements whose line is currently linked by a
    /// different SMT thread on the same core (design freedom (a)); by
    /// default the new link displaces the old one.
    pub fail_on_remote_link: bool,
    /// Pipeline start-up overhead of a GSU instruction; the minimum
    /// instruction latency is `overhead + SIMD-width` cycles (Table 1 uses
    /// 4, for a minimum of `4 + SIMD-width`).
    pub min_latency_overhead: u64,
    /// Maximum write-buffer (pending store) entries per SMT thread.
    pub write_buffer_entries: usize,
}

impl Default for GlscConfig {
    fn default() -> Self {
        Self {
            fail_on_l1_miss: false,
            fail_on_remote_link: false,
            min_latency_overhead: 4,
            write_buffer_entries: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_1() {
        let c = GlscConfig::default();
        assert_eq!(c.min_latency_overhead, 4);
        assert!(!c.fail_on_l1_miss);
        assert!(!c.fail_on_remote_link);
        assert_eq!(c.write_buffer_entries, 8);
    }
}

glsc_wire::wire_struct!(GlscConfig {
    fail_on_l1_miss,
    fail_on_remote_link,
    min_latency_overhead,
    write_buffer_entries,
});
