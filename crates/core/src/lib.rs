//! # glsc-core — the GLSC hardware model
//!
//! This crate implements the paper's contribution (*Atomic Vector
//! Operations on Chip Multiprocessors*, ISCA 2008, §3): the per-core memory
//! units that sit between the pipeline and the L1 cache.
//!
//! * [`Lsu`] — the load/store unit: a FIFO request queue with a per-thread
//!   write buffer, servicing scalar loads/stores, scalar `ll`/`sc`, and
//!   unit-stride vector loads/stores (one request per distinct line).
//! * [`Gsu`] — the gather/scatter unit (Fig. 1 and Fig. 4 of the paper):
//!   one instruction-buffer entry per SMT thread, one generated address per
//!   cycle, same-line request **combining**, and output-mask assembly. The
//!   GSU executes `vgather`/`vscatter` and the new **`vgatherlink`** /
//!   **`vscattercond`** instructions, sending load-linked and
//!   store-conditional requests to the L1 (§3.3) and resolving **element
//!   aliasing** so exactly one lane per address succeeds (§3.1).
//! * [`CoreMemUnit`] — glues the two together and arbitrates the single L1
//!   port, giving the LSU priority over the GSU (§4.1).
//!
//! Timing follows Table 1: the GSU generates at most one cache request per
//! cycle, requests to the same line are combined, and the minimum GSU
//! instruction latency is `4 + SIMD-width` cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod gsu;
mod lsu;
mod unit;

pub use config::GlscConfig;
pub use gsu::{Gsu, GsuCompletion, GsuKind, GsuStats};
pub use lsu::{Lsu, LsuAction, LsuCompletion, LsuEntry, LsuStats};
pub use unit::{CoreMemUnit, CoreMemUnitSnapshot, MemCompletion};
