//! Load/store unit: FIFO request queue + per-thread write buffer.
//!
//! One entry is dequeued per cycle when the unit wins the L1 port (the LSU
//! always has priority over the GSU, §4.1). Stores occupy write-buffer
//! slots from issue until their port grant, so a thread with a full write
//! buffer stalls.
//!
//! ## Memory ordering (DESIGN.md §17)
//!
//! Under the default [`MemoryOrder::Sc`] every request — including stores
//! — travels through the shared FIFO queue and commits at port grant, so
//! a thread's loads always observe its earlier stores and one total store
//! order exists: sequential consistency, byte-identical to the historical
//! simulator.
//!
//! Under [`MemoryOrder::Tso`] plain scalar stores are instead *held* in
//! the issuing thread's write buffer for a residency delay
//! ([`STORE_DRAIN_DELAY`]) and drain FIFO per thread when the L1 port is
//! otherwise free; loads bypass buffered stores (taking exact-address
//! store-to-load forwarding from the thread's own buffer), which exhibits
//! the classic SB store-buffering relaxation while keeping store-store
//! order.
//!
//! Under [`MemoryOrder::RelaxedFence`] a buffered store only becomes
//! drain-*eligible* after a per-L2-bank skewed delay
//! ([`RELAXED_BANK_SKEW`]) and the earliest-eligible store drains first,
//! so same-thread stores to different banks commit out of program order
//! (the MP message-passing relaxation) until a fence intervenes.
//!
//! Atomics (`sc`) and vector loads/stores are ordering points under every
//! model: pushing one first flushes the thread's write buffer into the
//! FIFO queue ahead of it, as x86 atomics drain the store buffer.

use glsc_mem::{MemOp, MemoryOrder, MemorySystem};
use std::collections::VecDeque;

/// Cycles a buffered store must stay resident before it may drain (TSO
/// and relaxed models). Long enough that a load issued the cycle after
/// its store wins the race to the L1 port — the SB relaxation window.
pub const STORE_DRAIN_DELAY: u64 = 8;

/// Extra residency cycles per L2-bank class (bank index mod 4) under
/// [`MemoryOrder::RelaxedFence`], modelling skewed per-bank drain queues.
/// Large enough that a store to a skewed bank is still buffered while a
/// later same-thread store to bank class 0 drains and is observed — the
/// MP relaxation window.
pub const RELAXED_BANK_SKEW: u64 = 24;

/// What to do when an LSU entry wins the port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LsuAction {
    /// Scalar 32-bit load into register `rd`.
    LoadTo {
        /// Destination scalar register index.
        rd: u8,
    },
    /// Scalar 32-bit store of `value`.
    StoreVal {
        /// Value to store.
        value: u32,
    },
    /// Scalar load-linked into register `rd`.
    LlTo {
        /// Destination scalar register index.
        rd: u8,
    },
    /// Scalar store-conditional of `value`; `rd` receives 1/0.
    ScVal {
        /// Success-flag destination register index.
        rd: u8,
        /// Value to store on success.
        value: u32,
    },
    /// One line's worth of a blocking unit-stride vector load: each lane is
    /// `(lane index, element address)`.
    VLoadLanes {
        /// Lanes on this line.
        lanes: Vec<(u8, u64)>,
    },
    /// One line's worth of a blocking unit-stride vector store: each lane
    /// is `(element address, value)`.
    VStoreLanes {
        /// Lanes on this line.
        lanes: Vec<(u64, u32)>,
    },
}

/// A queued LSU request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LsuEntry {
    /// Issuing SMT thread.
    pub tid: u8,
    /// Request address (any address within the target line).
    pub addr: u64,
    /// Action at port grant.
    pub action: LsuAction,
}

/// Completion event handed back to the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LsuCompletion {
    /// A scalar load's data is available in `rd` at `done`.
    ScalarLoad {
        /// Thread.
        tid: u8,
        /// Destination register index.
        rd: u8,
        /// Loaded value.
        value: u32,
        /// Completion cycle.
        done: u64,
    },
    /// A store-conditional resolved; `rd` gets `ok as u32` at `done`.
    ScalarSc {
        /// Thread.
        tid: u8,
        /// Success-flag register index.
        rd: u8,
        /// Whether the reservation held and the store was performed.
        ok: bool,
        /// Completion cycle.
        done: u64,
    },
    /// A buffered store drained (write-buffer slot freed at grant time).
    StoreDrained {
        /// Thread.
        tid: u8,
    },
    /// Part of a blocking vector load/store finished; the pipeline unblocks
    /// the thread when its outstanding part count reaches zero.
    VectorPart {
        /// Thread.
        tid: u8,
        /// Loaded `(lane, value)` pairs (empty for stores).
        lane_values: Vec<(u8, u32)>,
        /// Completion cycle of this part.
        done: u64,
    },
}

/// Counters for Table 4-style analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LsuStats {
    /// Scalar loads serviced.
    pub loads: u64,
    /// Scalar stores serviced.
    pub stores: u64,
    /// Load-linked requests serviced (atomic-op L1 accesses in Base).
    pub lls: u64,
    /// Store-conditional requests serviced.
    pub scs: u64,
    /// Store-conditional requests that succeeded.
    pub sc_successes: u64,
    /// Line requests serviced for vector loads/stores.
    pub vector_line_requests: u64,
    /// Fence instructions retired (always 0 in programs without fences).
    pub fences: u64,
    /// Buffered stores drained from a write buffer to the L1 port (always
    /// 0 under [`MemoryOrder::Sc`], where stores use the FIFO queue).
    pub wbuf_drains: u64,
    /// Scalar loads satisfied by store-to-load forwarding from the
    /// issuing thread's own write buffer.
    pub load_forwards: u64,
}

impl LsuStats {
    /// Adds another core's counters into this one (for machine-wide
    /// aggregation).
    pub fn accumulate(&mut self, other: &LsuStats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.lls += other.lls;
        self.scs += other.scs;
        self.sc_successes += other.sc_successes;
        self.vector_line_requests += other.vector_line_requests;
        self.fences += other.fences;
        self.wbuf_drains += other.wbuf_drains;
        self.load_forwards += other.load_forwards;
    }
}

/// One store held in a thread's write buffer under a non-SC model.
#[derive(Clone, Debug, PartialEq, Eq)]
struct BufferedStore {
    /// Word address.
    addr: u64,
    /// Value to commit at drain.
    value: u32,
    /// First cycle at which this entry may drain.
    ready: u64,
}

glsc_wire::wire_struct!(BufferedStore { addr, value, ready });

/// The load/store unit of one core.
#[derive(Clone, Debug)]
pub struct Lsu {
    queue: VecDeque<LsuEntry>,
    store_slots_used: Vec<usize>,
    store_slots_max: usize,
    /// Queued entries per thread, kept in sync with `queue` so the GSU's
    /// per-cycle ordering gate is O(1) instead of a queue scan.
    thread_counts: Vec<usize>,
    stats: LsuStats,
    /// Memory-consistency model in effect (selects the store path).
    order: MemoryOrder,
    /// Per-thread write buffers holding not-yet-drained stores. Always
    /// empty under [`MemoryOrder::Sc`].
    wbuf: Vec<VecDeque<BufferedStore>>,
    /// Round-robin pointer for fair TSO drains across threads.
    drain_rr: usize,
    /// Line size, for the relaxed model's per-bank drain skew.
    line_bytes: u64,
    /// L2 bank count, for the relaxed model's per-bank drain skew.
    l2_banks: usize,
}

impl Lsu {
    /// Creates a sequentially-consistent LSU for `threads` SMT threads
    /// with `write_buffer_entries` store slots each.
    pub fn new(threads: usize, write_buffer_entries: usize) -> Self {
        Self::with_order(threads, write_buffer_entries, MemoryOrder::Sc, 64, 1)
    }

    /// Creates an LSU implementing `order`. `line_bytes` and `l2_banks`
    /// fix the bank function used by the relaxed model's drain skew (they
    /// must match the memory system the unit will be ticked against).
    pub fn with_order(
        threads: usize,
        write_buffer_entries: usize,
        order: MemoryOrder,
        line_bytes: u64,
        l2_banks: usize,
    ) -> Self {
        Self {
            queue: VecDeque::new(),
            store_slots_used: vec![0; threads],
            store_slots_max: write_buffer_entries,
            thread_counts: vec![0; threads],
            stats: LsuStats::default(),
            order,
            wbuf: vec![VecDeque::new(); threads],
            drain_rr: 0,
            line_bytes,
            l2_banks: l2_banks.max(1),
        }
    }

    /// The memory-consistency model this unit implements.
    pub fn order(&self) -> MemoryOrder {
        self.order
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &LsuStats {
        &self.stats
    }

    /// Whether thread `tid` can issue a store this cycle (write buffer not
    /// full).
    pub fn can_accept_store(&self, tid: u8) -> bool {
        self.store_slots_used[tid as usize] < self.store_slots_max
    }

    /// Number of queued entries belonging to `tid` (used by the GSU to
    /// order GSU instructions after the thread's pending LSU requests,
    /// §2.2: "a conflicting request waits in the GSU until corresponding
    /// requests in the LSU and write buffer have been sent to the L1").
    /// Does **not** include buffered stores; see
    /// [`thread_pending`](Self::thread_pending).
    pub fn thread_entries(&self, tid: u8) -> usize {
        self.thread_counts[tid as usize]
    }

    /// Number of stores `tid` currently holds in its write buffer (always
    /// 0 under [`MemoryOrder::Sc`]).
    pub fn buffered_stores(&self, tid: u8) -> usize {
        self.wbuf[tid as usize].len()
    }

    /// Total pending work for `tid`: queued entries plus buffered stores.
    /// This is the quantity fences and the GSU ordering gate wait on.
    pub fn thread_pending(&self, tid: u8) -> usize {
        self.thread_counts[tid as usize] + self.wbuf[tid as usize].len()
    }

    /// Whether any request is queued or any store is buffered. The
    /// machine must not finish while this holds — buffered stores always
    /// commit.
    pub fn is_busy(&self) -> bool {
        !self.queue.is_empty() || self.wbuf.iter().any(|q| !q.is_empty())
    }

    /// Whether the unit would use the L1 port at cycle `now`: the queue
    /// has a head, or some buffered store is drain-eligible. Unlike
    /// [`is_busy`](Self::is_busy) this lets the GSU take the port while
    /// buffered stores are merely waiting out their residency delay.
    pub fn wants_port(&self, now: u64) -> bool {
        !self.queue.is_empty() || self.wbuf.iter().any(|q| q.iter().any(|e| e.ready <= now))
    }

    /// The next cycle (relative to `now`) at which this unit changes
    /// state, or `None` when it is drained. A busy queue is serviced every
    /// cycle; a buffered store's next event is its drain-eligibility
    /// cycle, so the machine's fast-forward can skip the residency delay.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        if !self.queue.is_empty() {
            return Some(now + 1);
        }
        self.wbuf
            .iter()
            .flat_map(|q| q.iter().map(|e| e.ready))
            .min()
            .map(|ready| ready.max(now + 1))
    }

    /// Counts one retired fence instruction (the pipeline enforces fence
    /// ordering; the LSU only keeps the Table-4 counter).
    pub fn note_fence(&mut self) {
        self.stats.fences += 1;
    }

    /// First cycle at which a store to `addr` pushed at `now` may drain.
    fn drain_ready(&self, addr: u64, now: u64) -> u64 {
        match self.order {
            MemoryOrder::Sc => now,
            MemoryOrder::Tso => now + STORE_DRAIN_DELAY,
            MemoryOrder::RelaxedFence => {
                let bank = (addr / self.line_bytes) % self.l2_banks as u64;
                now + STORE_DRAIN_DELAY + RELAXED_BANK_SKEW * (bank % 4)
            }
        }
    }

    /// Moves every buffered store of `tid` into the FIFO queue, ahead of
    /// whatever is pushed next. Flushed stores ignore their residency
    /// delay — they commit at queue service like SC stores (their write-
    /// buffer slots stay occupied until then).
    fn flush_thread(&mut self, tid: u8) {
        while let Some(e) = self.wbuf[tid as usize].pop_front() {
            self.thread_counts[tid as usize] += 1;
            self.queue.push_back(LsuEntry {
                tid,
                addr: e.addr,
                action: LsuAction::StoreVal { value: e.value },
            });
        }
    }

    /// Ordering-point flush used by the per-core unit when a GSU
    /// instruction starts: see [`flush_thread`](Self::flush_thread).
    pub fn flush_thread_for_ordering(&mut self, tid: u8) {
        self.flush_thread(tid);
    }

    /// Store-to-load forwarding: the value of the youngest buffered store
    /// of `tid` to exactly `addr`, if any (all data is 4-byte words, so
    /// exact word match is exact overlap).
    fn forward_from_wbuf(&self, tid: u8, addr: u64) -> Option<u32> {
        self.wbuf[tid as usize]
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.value)
    }

    /// Enqueues a request issued at cycle `now`.
    ///
    /// Under a non-SC model, plain stores are diverted into the issuing
    /// thread's write buffer, and ordering points (`sc`, vector
    /// loads/stores) first flush that buffer into the queue.
    ///
    /// # Panics
    ///
    /// Panics if a store is pushed while the thread's write buffer is full
    /// (the pipeline must check [`can_accept_store`](Self::can_accept_store)
    /// first).
    pub fn push(&mut self, entry: LsuEntry, now: u64) {
        if matches!(entry.action, LsuAction::StoreVal { .. }) {
            assert!(
                self.can_accept_store(entry.tid),
                "write buffer overflow for thread {}",
                entry.tid
            );
            self.store_slots_used[entry.tid as usize] += 1;
            if self.order.buffers_stores() {
                if let LsuAction::StoreVal { value } = entry.action {
                    let ready = self.drain_ready(entry.addr, now);
                    self.wbuf[entry.tid as usize].push_back(BufferedStore {
                        addr: entry.addr,
                        value,
                        ready,
                    });
                    return;
                }
            }
        } else if self.order.buffers_stores()
            && matches!(
                entry.action,
                LsuAction::ScVal { .. }
                    | LsuAction::VLoadLanes { .. }
                    | LsuAction::VStoreLanes { .. }
            )
        {
            // Ordering point: earlier buffered stores must commit first.
            self.flush_thread(entry.tid);
        }
        self.thread_counts[entry.tid as usize] += 1;
        self.queue.push_back(entry);
    }

    /// Drains one drain-eligible buffered store to the L1 port, if any.
    /// TSO picks each thread's oldest store (per-thread FIFO), round-robin
    /// across threads; the relaxed model picks the earliest-eligible store
    /// machine-wide, which reorders same-thread stores across bank
    /// classes. Same-address stores share a bank and therefore a delay, so
    /// coherence order always matches program order.
    fn drain_one(
        &mut self,
        core: usize,
        mem: &mut MemorySystem,
        now: u64,
    ) -> Option<LsuCompletion> {
        let n = self.wbuf.len();
        let (tid, idx) = match self.order {
            MemoryOrder::Sc => return None,
            MemoryOrder::Tso => {
                let mut pick = None;
                for off in 0..n {
                    let t = (self.drain_rr + off) % n;
                    if self.wbuf[t].front().is_some_and(|e| e.ready <= now) {
                        pick = Some(t);
                        break;
                    }
                }
                let t = pick?;
                self.drain_rr = (t + 1) % n;
                (t, 0)
            }
            MemoryOrder::RelaxedFence => {
                let mut best: Option<(u64, usize, usize)> = None;
                for (t, q) in self.wbuf.iter().enumerate() {
                    for (i, e) in q.iter().enumerate() {
                        if e.ready <= now && best.is_none_or(|b| (e.ready, t, i) < b) {
                            best = Some((e.ready, t, i));
                        }
                    }
                }
                let (_, t, i) = best?;
                (t, i)
            }
        };
        let e = self.wbuf[tid].remove(idx).expect("picked entry exists");
        self.stats.stores += 1;
        self.stats.wbuf_drains += 1;
        self.store_slots_used[tid] -= 1;
        let _ = mem.access(core, tid as u8, MemOp::Store, e.addr, now);
        mem.backing_mut().write_u32(e.addr, e.value);
        mem.oracle_note_store(core, tid as u8, e.addr);
        Some(LsuCompletion::StoreDrained { tid: tid as u8 })
    }

    /// Services at most one request at cycle `now`: the FIFO queue head
    /// if present, otherwise one drain-eligible buffered store. Each
    /// serviced request produces exactly one completion event, so the
    /// return is an `Option` and the steady-state cycle loop never
    /// heap-allocates here.
    pub fn tick(&mut self, core: usize, mem: &mut MemorySystem, now: u64) -> Option<LsuCompletion> {
        let Some(entry) = self.queue.pop_front() else {
            return self.drain_one(core, mem, now);
        };
        self.thread_counts[entry.tid as usize] -= 1;
        let out = match entry.action {
            LsuAction::LoadTo { rd } => {
                self.stats.loads += 1;
                let r = mem.access(core, entry.tid, MemOp::Load, entry.addr, now);
                let value = match self.forward_from_wbuf(entry.tid, entry.addr) {
                    Some(v) => {
                        self.stats.load_forwards += 1;
                        v
                    }
                    None => mem.backing().read_u32(entry.addr),
                };
                LsuCompletion::ScalarLoad {
                    tid: entry.tid,
                    rd,
                    value,
                    done: r.done,
                }
            }
            LsuAction::StoreVal { value } => {
                self.stats.stores += 1;
                self.store_slots_used[entry.tid as usize] -= 1;
                let _ = mem.access(core, entry.tid, MemOp::Store, entry.addr, now);
                mem.backing_mut().write_u32(entry.addr, value);
                mem.oracle_note_store(core, entry.tid, entry.addr);
                LsuCompletion::StoreDrained { tid: entry.tid }
            }
            LsuAction::LlTo { rd } => {
                self.stats.lls += 1;
                let r = mem.access(core, entry.tid, MemOp::LoadLinked, entry.addr, now);
                let value = match self.forward_from_wbuf(entry.tid, entry.addr) {
                    Some(v) => {
                        self.stats.load_forwards += 1;
                        v
                    }
                    None => mem.backing().read_u32(entry.addr),
                };
                mem.oracle_note_link(core, entry.tid, entry.addr);
                LsuCompletion::ScalarLoad {
                    tid: entry.tid,
                    rd,
                    value,
                    done: r.done,
                }
            }
            LsuAction::ScVal { rd, value } => {
                self.stats.scs += 1;
                let r = mem.access(core, entry.tid, MemOp::StoreCond, entry.addr, now);
                if r.sc_ok {
                    self.stats.sc_successes += 1;
                    mem.backing_mut().write_u32(entry.addr, value);
                    mem.oracle_note_sc_success(core, entry.tid, entry.addr);
                }
                LsuCompletion::ScalarSc {
                    tid: entry.tid,
                    rd,
                    ok: r.sc_ok,
                    done: r.done,
                }
            }
            LsuAction::VLoadLanes { lanes } => {
                self.stats.vector_line_requests += 1;
                let r = mem.access(core, entry.tid, MemOp::Load, entry.addr, now);
                let lane_values = lanes
                    .iter()
                    .map(|&(lane, addr)| (lane, mem.backing().read_u32(addr)))
                    .collect();
                LsuCompletion::VectorPart {
                    tid: entry.tid,
                    lane_values,
                    done: r.done,
                }
            }
            LsuAction::VStoreLanes { lanes } => {
                self.stats.vector_line_requests += 1;
                let r = mem.access(core, entry.tid, MemOp::Store, entry.addr, now);
                for &(addr, value) in &lanes {
                    mem.backing_mut().write_u32(addr, value);
                    mem.oracle_note_store(core, entry.tid, addr);
                }
                LsuCompletion::VectorPart {
                    tid: entry.tid,
                    lane_values: Vec::new(),
                    done: r.done,
                }
            }
        };
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsc_mem::MemConfig;

    fn mem() -> MemorySystem {
        let cfg = MemConfig {
            prefetch: false,
            ..MemConfig::default()
        };
        MemorySystem::new(cfg, 1, 4)
    }

    #[test]
    fn load_returns_backing_value() {
        let mut m = mem();
        m.backing_mut().write_u32(0x100, 77);
        let mut lsu = Lsu::new(4, 8);
        lsu.push(
            LsuEntry {
                tid: 0,
                addr: 0x100,
                action: LsuAction::LoadTo { rd: 5 },
            },
            0,
        );
        let c = lsu
            .tick(0, &mut m, 0)
            .expect("one completion per serviced entry");
        match &c {
            LsuCompletion::ScalarLoad {
                tid: 0,
                rd: 5,
                value: 77,
                done,
            } => {
                assert_eq!(*done, 3 + 12 + 280);
            }
            other => panic!("unexpected completion {other:?}"),
        }
        assert_eq!(lsu.stats().loads, 1);
    }

    #[test]
    fn fifo_order_makes_loads_see_own_stores() {
        let mut m = mem();
        let mut lsu = Lsu::new(4, 8);
        lsu.push(
            LsuEntry {
                tid: 0,
                addr: 0x40,
                action: LsuAction::StoreVal { value: 9 },
            },
            0,
        );
        lsu.push(
            LsuEntry {
                tid: 0,
                addr: 0x40,
                action: LsuAction::LoadTo { rd: 1 },
            },
            0,
        );
        let mut now = 0;
        let mut seen = Vec::new();
        while lsu.is_busy() {
            seen.extend(lsu.tick(0, &mut m, now));
            now += 1;
        }
        assert!(matches!(seen[0], LsuCompletion::StoreDrained { tid: 0 }));
        assert!(matches!(
            seen[1],
            LsuCompletion::ScalarLoad { value: 9, .. }
        ));
    }

    #[test]
    fn write_buffer_slots_tracked_per_thread() {
        let mut lsu = Lsu::new(2, 2);
        assert!(lsu.can_accept_store(0));
        lsu.push(
            LsuEntry {
                tid: 0,
                addr: 0,
                action: LsuAction::StoreVal { value: 1 },
            },
            0,
        );
        lsu.push(
            LsuEntry {
                tid: 0,
                addr: 4,
                action: LsuAction::StoreVal { value: 2 },
            },
            0,
        );
        assert!(!lsu.can_accept_store(0));
        assert!(lsu.can_accept_store(1), "other thread unaffected");
        let mut m = mem();
        lsu.tick(0, &mut m, 0);
        assert!(lsu.can_accept_store(0), "slot freed at drain");
    }

    #[test]
    #[should_panic(expected = "write buffer overflow")]
    fn overflow_panics() {
        let mut lsu = Lsu::new(1, 1);
        lsu.push(
            LsuEntry {
                tid: 0,
                addr: 0,
                action: LsuAction::StoreVal { value: 1 },
            },
            0,
        );
        lsu.push(
            LsuEntry {
                tid: 0,
                addr: 4,
                action: LsuAction::StoreVal { value: 2 },
            },
            0,
        );
    }

    #[test]
    fn ll_sc_round_trip_updates_memory() {
        let mut m = mem();
        m.backing_mut().write_u32(0x80, 41);
        let mut lsu = Lsu::new(4, 8);
        lsu.push(
            LsuEntry {
                tid: 2,
                addr: 0x80,
                action: LsuAction::LlTo { rd: 1 },
            },
            0,
        );
        lsu.push(
            LsuEntry {
                tid: 2,
                addr: 0x80,
                action: LsuAction::ScVal { rd: 2, value: 42 },
            },
            0,
        );
        let mut now = 0;
        let mut comps = Vec::new();
        while lsu.is_busy() {
            comps.extend(lsu.tick(0, &mut m, now));
            now += 1;
        }
        assert!(matches!(comps[1], LsuCompletion::ScalarSc { ok: true, .. }));
        assert_eq!(m.backing().read_u32(0x80), 42);
        assert_eq!(lsu.stats().lls, 1);
        assert_eq!(lsu.stats().sc_successes, 1);
    }

    #[test]
    fn sc_without_ll_fails_and_preserves_memory() {
        let mut m = mem();
        m.backing_mut().write_u32(0x80, 5);
        let mut lsu = Lsu::new(4, 8);
        lsu.push(
            LsuEntry {
                tid: 0,
                addr: 0x80,
                action: LsuAction::ScVal { rd: 2, value: 9 },
            },
            0,
        );
        let comp = lsu.tick(0, &mut m, 0).unwrap();
        assert!(matches!(comp, LsuCompletion::ScalarSc { ok: false, .. }));
        assert_eq!(m.backing().read_u32(0x80), 5);
    }

    #[test]
    fn vector_parts_move_data() {
        let mut m = mem();
        m.backing_mut().write_u32_slice(0x100, &[1, 2, 3, 4]);
        let mut lsu = Lsu::new(4, 8);
        lsu.push(
            LsuEntry {
                tid: 1,
                addr: 0x100,
                action: LsuAction::VLoadLanes {
                    lanes: vec![(0, 0x100), (1, 0x104), (2, 0x108), (3, 0x10c)],
                },
            },
            0,
        );
        let comp = lsu.tick(0, &mut m, 0).unwrap();
        match &comp {
            LsuCompletion::VectorPart { lane_values, .. } => {
                assert_eq!(lane_values, &vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        lsu.push(
            LsuEntry {
                tid: 1,
                addr: 0x200,
                action: LsuAction::VStoreLanes {
                    lanes: vec![(0x200, 10), (0x204, 20)],
                },
            },
            0,
        );
        lsu.tick(0, &mut m, 1);
        assert_eq!(m.backing().read_u32(0x200), 10);
        assert_eq!(m.backing().read_u32(0x204), 20);
        assert_eq!(lsu.stats().vector_line_requests, 2);
    }

    #[test]
    fn thread_entries_counts_only_that_thread() {
        let mut lsu = Lsu::new(4, 8);
        lsu.push(
            LsuEntry {
                tid: 0,
                addr: 0,
                action: LsuAction::LoadTo { rd: 0 },
            },
            0,
        );
        lsu.push(
            LsuEntry {
                tid: 1,
                addr: 4,
                action: LsuAction::LoadTo { rd: 0 },
            },
            0,
        );
        lsu.push(
            LsuEntry {
                tid: 0,
                addr: 8,
                action: LsuAction::LoadTo { rd: 1 },
            },
            0,
        );
        assert_eq!(lsu.thread_entries(0), 2);
        assert_eq!(lsu.thread_entries(1), 1);
        assert_eq!(lsu.thread_entries(2), 0);
    }
}

// ---- durable-snapshot serialization --------------------------------------

impl glsc_wire::Wire for LsuAction {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        match self {
            LsuAction::LoadTo { rd } => {
                w.put_u8(0);
                rd.encode(w);
            }
            LsuAction::StoreVal { value } => {
                w.put_u8(1);
                value.encode(w);
            }
            LsuAction::LlTo { rd } => {
                w.put_u8(2);
                rd.encode(w);
            }
            LsuAction::ScVal { rd, value } => {
                w.put_u8(3);
                rd.encode(w);
                value.encode(w);
            }
            LsuAction::VLoadLanes { lanes } => {
                w.put_u8(4);
                lanes.encode(w);
            }
            LsuAction::VStoreLanes { lanes } => {
                w.put_u8(5);
                lanes.encode(w);
            }
        }
    }

    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        use glsc_wire::Wire;
        let at = r.pos();
        Ok(match r.get_u8()? {
            0 => LsuAction::LoadTo {
                rd: Wire::decode(r)?,
            },
            1 => LsuAction::StoreVal {
                value: Wire::decode(r)?,
            },
            2 => LsuAction::LlTo {
                rd: Wire::decode(r)?,
            },
            3 => LsuAction::ScVal {
                rd: Wire::decode(r)?,
                value: Wire::decode(r)?,
            },
            4 => LsuAction::VLoadLanes {
                lanes: Wire::decode(r)?,
            },
            5 => LsuAction::VStoreLanes {
                lanes: Wire::decode(r)?,
            },
            _ => {
                return Err(glsc_wire::WireError::Invalid {
                    at,
                    what: "LsuAction tag",
                })
            }
        })
    }
}

glsc_wire::wire_struct!(LsuEntry { tid, addr, action });
glsc_wire::wire_struct!(LsuStats {
    loads,
    stores,
    lls,
    scs,
    sc_successes,
    vector_line_requests,
    fences,
    wbuf_drains,
    load_forwards,
});
glsc_wire::wire_struct!(Lsu {
    queue,
    store_slots_used,
    store_slots_max,
    thread_counts,
    stats,
    order,
    wbuf,
    drain_rr,
    line_bytes,
    l2_banks,
});
