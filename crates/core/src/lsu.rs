//! Load/store unit: FIFO request queue + per-thread write buffer.
//!
//! One entry is dequeued per cycle when the unit wins the L1 port (the LSU
//! always has priority over the GSU, §4.1). Stores occupy write-buffer
//! slots from issue until their port grant, so a thread with a full write
//! buffer stalls. Because the queue drains in FIFO order, a thread's loads
//! always observe its earlier stores (data is committed to the backing
//! store at port-accept time).

use glsc_mem::{MemOp, MemorySystem};
use std::collections::VecDeque;

/// What to do when an LSU entry wins the port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LsuAction {
    /// Scalar 32-bit load into register `rd`.
    LoadTo {
        /// Destination scalar register index.
        rd: u8,
    },
    /// Scalar 32-bit store of `value`.
    StoreVal {
        /// Value to store.
        value: u32,
    },
    /// Scalar load-linked into register `rd`.
    LlTo {
        /// Destination scalar register index.
        rd: u8,
    },
    /// Scalar store-conditional of `value`; `rd` receives 1/0.
    ScVal {
        /// Success-flag destination register index.
        rd: u8,
        /// Value to store on success.
        value: u32,
    },
    /// One line's worth of a blocking unit-stride vector load: each lane is
    /// `(lane index, element address)`.
    VLoadLanes {
        /// Lanes on this line.
        lanes: Vec<(u8, u64)>,
    },
    /// One line's worth of a blocking unit-stride vector store: each lane
    /// is `(element address, value)`.
    VStoreLanes {
        /// Lanes on this line.
        lanes: Vec<(u64, u32)>,
    },
}

/// A queued LSU request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LsuEntry {
    /// Issuing SMT thread.
    pub tid: u8,
    /// Request address (any address within the target line).
    pub addr: u64,
    /// Action at port grant.
    pub action: LsuAction,
}

/// Completion event handed back to the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LsuCompletion {
    /// A scalar load's data is available in `rd` at `done`.
    ScalarLoad {
        /// Thread.
        tid: u8,
        /// Destination register index.
        rd: u8,
        /// Loaded value.
        value: u32,
        /// Completion cycle.
        done: u64,
    },
    /// A store-conditional resolved; `rd` gets `ok as u32` at `done`.
    ScalarSc {
        /// Thread.
        tid: u8,
        /// Success-flag register index.
        rd: u8,
        /// Whether the reservation held and the store was performed.
        ok: bool,
        /// Completion cycle.
        done: u64,
    },
    /// A buffered store drained (write-buffer slot freed at grant time).
    StoreDrained {
        /// Thread.
        tid: u8,
    },
    /// Part of a blocking vector load/store finished; the pipeline unblocks
    /// the thread when its outstanding part count reaches zero.
    VectorPart {
        /// Thread.
        tid: u8,
        /// Loaded `(lane, value)` pairs (empty for stores).
        lane_values: Vec<(u8, u32)>,
        /// Completion cycle of this part.
        done: u64,
    },
}

/// Counters for Table 4-style analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LsuStats {
    /// Scalar loads serviced.
    pub loads: u64,
    /// Scalar stores serviced.
    pub stores: u64,
    /// Load-linked requests serviced (atomic-op L1 accesses in Base).
    pub lls: u64,
    /// Store-conditional requests serviced.
    pub scs: u64,
    /// Store-conditional requests that succeeded.
    pub sc_successes: u64,
    /// Line requests serviced for vector loads/stores.
    pub vector_line_requests: u64,
}

impl LsuStats {
    /// Adds another core's counters into this one (for machine-wide
    /// aggregation).
    pub fn accumulate(&mut self, other: &LsuStats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.lls += other.lls;
        self.scs += other.scs;
        self.sc_successes += other.sc_successes;
        self.vector_line_requests += other.vector_line_requests;
    }
}

/// The load/store unit of one core.
#[derive(Clone, Debug)]
pub struct Lsu {
    queue: VecDeque<LsuEntry>,
    store_slots_used: Vec<usize>,
    store_slots_max: usize,
    /// Queued entries per thread, kept in sync with `queue` so the GSU's
    /// per-cycle ordering gate is O(1) instead of a queue scan.
    thread_counts: Vec<usize>,
    stats: LsuStats,
}

impl Lsu {
    /// Creates an LSU for `threads` SMT threads with `write_buffer_entries`
    /// store slots each.
    pub fn new(threads: usize, write_buffer_entries: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            store_slots_used: vec![0; threads],
            store_slots_max: write_buffer_entries,
            thread_counts: vec![0; threads],
            stats: LsuStats::default(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &LsuStats {
        &self.stats
    }

    /// Whether thread `tid` can issue a store this cycle (write buffer not
    /// full).
    pub fn can_accept_store(&self, tid: u8) -> bool {
        self.store_slots_used[tid as usize] < self.store_slots_max
    }

    /// Number of queued entries belonging to `tid` (used by the GSU to
    /// order GSU instructions after the thread's pending LSU requests,
    /// §2.2: "a conflicting request waits in the GSU until corresponding
    /// requests in the LSU and write buffer have been sent to the L1").
    pub fn thread_entries(&self, tid: u8) -> usize {
        self.thread_counts[tid as usize]
    }

    /// Whether any request is queued.
    pub fn is_busy(&self) -> bool {
        !self.queue.is_empty()
    }

    /// The next cycle (relative to `now`) at which this unit changes
    /// state, or `None` when it is drained. A busy LSU services its queue
    /// head every cycle, so its next event is always the next cycle.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        self.is_busy().then_some(now + 1)
    }

    /// Enqueues a request.
    ///
    /// # Panics
    ///
    /// Panics if a store is pushed while the thread's write buffer is full
    /// (the pipeline must check [`can_accept_store`](Self::can_accept_store)
    /// first).
    pub fn push(&mut self, entry: LsuEntry) {
        if matches!(entry.action, LsuAction::StoreVal { .. }) {
            assert!(
                self.can_accept_store(entry.tid),
                "write buffer overflow for thread {}",
                entry.tid
            );
            self.store_slots_used[entry.tid as usize] += 1;
        }
        self.thread_counts[entry.tid as usize] += 1;
        self.queue.push_back(entry);
    }

    /// Services at most one request (FIFO head) at cycle `now`, performing
    /// its timing access and data movement. Each serviced request produces
    /// exactly one completion event, so the return is an `Option` and the
    /// steady-state cycle loop never heap-allocates here.
    pub fn tick(&mut self, core: usize, mem: &mut MemorySystem, now: u64) -> Option<LsuCompletion> {
        let entry = self.queue.pop_front()?;
        self.thread_counts[entry.tid as usize] -= 1;
        let out = match entry.action {
            LsuAction::LoadTo { rd } => {
                self.stats.loads += 1;
                let r = mem.access(core, entry.tid, MemOp::Load, entry.addr, now);
                let value = mem.backing().read_u32(entry.addr);
                LsuCompletion::ScalarLoad {
                    tid: entry.tid,
                    rd,
                    value,
                    done: r.done,
                }
            }
            LsuAction::StoreVal { value } => {
                self.stats.stores += 1;
                self.store_slots_used[entry.tid as usize] -= 1;
                let _ = mem.access(core, entry.tid, MemOp::Store, entry.addr, now);
                mem.backing_mut().write_u32(entry.addr, value);
                LsuCompletion::StoreDrained { tid: entry.tid }
            }
            LsuAction::LlTo { rd } => {
                self.stats.lls += 1;
                let r = mem.access(core, entry.tid, MemOp::LoadLinked, entry.addr, now);
                let value = mem.backing().read_u32(entry.addr);
                LsuCompletion::ScalarLoad {
                    tid: entry.tid,
                    rd,
                    value,
                    done: r.done,
                }
            }
            LsuAction::ScVal { rd, value } => {
                self.stats.scs += 1;
                let r = mem.access(core, entry.tid, MemOp::StoreCond, entry.addr, now);
                if r.sc_ok {
                    self.stats.sc_successes += 1;
                    mem.backing_mut().write_u32(entry.addr, value);
                }
                LsuCompletion::ScalarSc {
                    tid: entry.tid,
                    rd,
                    ok: r.sc_ok,
                    done: r.done,
                }
            }
            LsuAction::VLoadLanes { lanes } => {
                self.stats.vector_line_requests += 1;
                let r = mem.access(core, entry.tid, MemOp::Load, entry.addr, now);
                let lane_values = lanes
                    .iter()
                    .map(|&(lane, addr)| (lane, mem.backing().read_u32(addr)))
                    .collect();
                LsuCompletion::VectorPart {
                    tid: entry.tid,
                    lane_values,
                    done: r.done,
                }
            }
            LsuAction::VStoreLanes { lanes } => {
                self.stats.vector_line_requests += 1;
                let r = mem.access(core, entry.tid, MemOp::Store, entry.addr, now);
                for &(addr, value) in &lanes {
                    mem.backing_mut().write_u32(addr, value);
                }
                LsuCompletion::VectorPart {
                    tid: entry.tid,
                    lane_values: Vec::new(),
                    done: r.done,
                }
            }
        };
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsc_mem::MemConfig;

    fn mem() -> MemorySystem {
        let cfg = MemConfig {
            prefetch: false,
            ..MemConfig::default()
        };
        MemorySystem::new(cfg, 1, 4)
    }

    #[test]
    fn load_returns_backing_value() {
        let mut m = mem();
        m.backing_mut().write_u32(0x100, 77);
        let mut lsu = Lsu::new(4, 8);
        lsu.push(LsuEntry {
            tid: 0,
            addr: 0x100,
            action: LsuAction::LoadTo { rd: 5 },
        });
        let c = lsu
            .tick(0, &mut m, 0)
            .expect("one completion per serviced entry");
        match &c {
            LsuCompletion::ScalarLoad {
                tid: 0,
                rd: 5,
                value: 77,
                done,
            } => {
                assert_eq!(*done, 3 + 12 + 280);
            }
            other => panic!("unexpected completion {other:?}"),
        }
        assert_eq!(lsu.stats().loads, 1);
    }

    #[test]
    fn fifo_order_makes_loads_see_own_stores() {
        let mut m = mem();
        let mut lsu = Lsu::new(4, 8);
        lsu.push(LsuEntry {
            tid: 0,
            addr: 0x40,
            action: LsuAction::StoreVal { value: 9 },
        });
        lsu.push(LsuEntry {
            tid: 0,
            addr: 0x40,
            action: LsuAction::LoadTo { rd: 1 },
        });
        let mut now = 0;
        let mut seen = Vec::new();
        while lsu.is_busy() {
            seen.extend(lsu.tick(0, &mut m, now));
            now += 1;
        }
        assert!(matches!(seen[0], LsuCompletion::StoreDrained { tid: 0 }));
        assert!(matches!(
            seen[1],
            LsuCompletion::ScalarLoad { value: 9, .. }
        ));
    }

    #[test]
    fn write_buffer_slots_tracked_per_thread() {
        let mut lsu = Lsu::new(2, 2);
        assert!(lsu.can_accept_store(0));
        lsu.push(LsuEntry {
            tid: 0,
            addr: 0,
            action: LsuAction::StoreVal { value: 1 },
        });
        lsu.push(LsuEntry {
            tid: 0,
            addr: 4,
            action: LsuAction::StoreVal { value: 2 },
        });
        assert!(!lsu.can_accept_store(0));
        assert!(lsu.can_accept_store(1), "other thread unaffected");
        let mut m = mem();
        lsu.tick(0, &mut m, 0);
        assert!(lsu.can_accept_store(0), "slot freed at drain");
    }

    #[test]
    #[should_panic(expected = "write buffer overflow")]
    fn overflow_panics() {
        let mut lsu = Lsu::new(1, 1);
        lsu.push(LsuEntry {
            tid: 0,
            addr: 0,
            action: LsuAction::StoreVal { value: 1 },
        });
        lsu.push(LsuEntry {
            tid: 0,
            addr: 4,
            action: LsuAction::StoreVal { value: 2 },
        });
    }

    #[test]
    fn ll_sc_round_trip_updates_memory() {
        let mut m = mem();
        m.backing_mut().write_u32(0x80, 41);
        let mut lsu = Lsu::new(4, 8);
        lsu.push(LsuEntry {
            tid: 2,
            addr: 0x80,
            action: LsuAction::LlTo { rd: 1 },
        });
        lsu.push(LsuEntry {
            tid: 2,
            addr: 0x80,
            action: LsuAction::ScVal { rd: 2, value: 42 },
        });
        let mut now = 0;
        let mut comps = Vec::new();
        while lsu.is_busy() {
            comps.extend(lsu.tick(0, &mut m, now));
            now += 1;
        }
        assert!(matches!(comps[1], LsuCompletion::ScalarSc { ok: true, .. }));
        assert_eq!(m.backing().read_u32(0x80), 42);
        assert_eq!(lsu.stats().lls, 1);
        assert_eq!(lsu.stats().sc_successes, 1);
    }

    #[test]
    fn sc_without_ll_fails_and_preserves_memory() {
        let mut m = mem();
        m.backing_mut().write_u32(0x80, 5);
        let mut lsu = Lsu::new(4, 8);
        lsu.push(LsuEntry {
            tid: 0,
            addr: 0x80,
            action: LsuAction::ScVal { rd: 2, value: 9 },
        });
        let comp = lsu.tick(0, &mut m, 0).unwrap();
        assert!(matches!(comp, LsuCompletion::ScalarSc { ok: false, .. }));
        assert_eq!(m.backing().read_u32(0x80), 5);
    }

    #[test]
    fn vector_parts_move_data() {
        let mut m = mem();
        m.backing_mut().write_u32_slice(0x100, &[1, 2, 3, 4]);
        let mut lsu = Lsu::new(4, 8);
        lsu.push(LsuEntry {
            tid: 1,
            addr: 0x100,
            action: LsuAction::VLoadLanes {
                lanes: vec![(0, 0x100), (1, 0x104), (2, 0x108), (3, 0x10c)],
            },
        });
        let comp = lsu.tick(0, &mut m, 0).unwrap();
        match &comp {
            LsuCompletion::VectorPart { lane_values, .. } => {
                assert_eq!(lane_values, &vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        lsu.push(LsuEntry {
            tid: 1,
            addr: 0x200,
            action: LsuAction::VStoreLanes {
                lanes: vec![(0x200, 10), (0x204, 20)],
            },
        });
        lsu.tick(0, &mut m, 1);
        assert_eq!(m.backing().read_u32(0x200), 10);
        assert_eq!(m.backing().read_u32(0x204), 20);
        assert_eq!(lsu.stats().vector_line_requests, 2);
    }

    #[test]
    fn thread_entries_counts_only_that_thread() {
        let mut lsu = Lsu::new(4, 8);
        lsu.push(LsuEntry {
            tid: 0,
            addr: 0,
            action: LsuAction::LoadTo { rd: 0 },
        });
        lsu.push(LsuEntry {
            tid: 1,
            addr: 4,
            action: LsuAction::LoadTo { rd: 0 },
        });
        lsu.push(LsuEntry {
            tid: 0,
            addr: 8,
            action: LsuAction::LoadTo { rd: 1 },
        });
        assert_eq!(lsu.thread_entries(0), 2);
        assert_eq!(lsu.thread_entries(1), 1);
        assert_eq!(lsu.thread_entries(2), 0);
    }
}

// ---- durable-snapshot serialization --------------------------------------

impl glsc_wire::Wire for LsuAction {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        match self {
            LsuAction::LoadTo { rd } => {
                w.put_u8(0);
                rd.encode(w);
            }
            LsuAction::StoreVal { value } => {
                w.put_u8(1);
                value.encode(w);
            }
            LsuAction::LlTo { rd } => {
                w.put_u8(2);
                rd.encode(w);
            }
            LsuAction::ScVal { rd, value } => {
                w.put_u8(3);
                rd.encode(w);
                value.encode(w);
            }
            LsuAction::VLoadLanes { lanes } => {
                w.put_u8(4);
                lanes.encode(w);
            }
            LsuAction::VStoreLanes { lanes } => {
                w.put_u8(5);
                lanes.encode(w);
            }
        }
    }

    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        use glsc_wire::Wire;
        let at = r.pos();
        Ok(match r.get_u8()? {
            0 => LsuAction::LoadTo {
                rd: Wire::decode(r)?,
            },
            1 => LsuAction::StoreVal {
                value: Wire::decode(r)?,
            },
            2 => LsuAction::LlTo {
                rd: Wire::decode(r)?,
            },
            3 => LsuAction::ScVal {
                rd: Wire::decode(r)?,
                value: Wire::decode(r)?,
            },
            4 => LsuAction::VLoadLanes {
                lanes: Wire::decode(r)?,
            },
            5 => LsuAction::VStoreLanes {
                lanes: Wire::decode(r)?,
            },
            _ => {
                return Err(glsc_wire::WireError::Invalid {
                    at,
                    what: "LsuAction tag",
                })
            }
        })
    }
}

glsc_wire::wire_struct!(LsuEntry { tid, addr, action });
glsc_wire::wire_struct!(LsuStats {
    loads,
    stores,
    lls,
    scs,
    sc_successes,
    vector_line_requests,
});
glsc_wire::wire_struct!(Lsu {
    queue,
    store_slots_used,
    store_slots_max,
    thread_counts,
    stats,
});
