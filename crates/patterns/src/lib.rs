//! # glsc-patterns — gather/scatter access patterns as data
//!
//! The seven RMS kernels hard-code their access patterns; this crate
//! makes patterns **declarative**, in the spirit of Spatter (Lavin et
//! al.): a [`PatternSpec`] is a small value describing how a workload's
//! atomic-update indices are generated, parseable from a compact text
//! form and serializable over the wire, so the same spec can come from a
//! CLI flag, a jobspec file, or a `glsc-serve` protocol frame. The
//! kernel builder in `glsc-kernels` compiles any spec into Base and GLSC
//! programs; this crate owns only the *data* side — taxonomy, grammar,
//! bounds, and deterministic index generation.
//!
//! ## Spec grammar
//!
//! ```text
//! <spec>    := <kind> [ '*' <iters> ] [ '@' <seed> ] [ '!' <update> ] [ '+r' <reads> ]
//! <kind>    := "stride:" <stride> [ 'x' <len> ]
//!            | "mostly:" <stride> 'x' <len> "/p=" <prob>
//!            | "block:"  <block> '/' <blocks>
//!            | "conflict:p=" <prob> [ 'x' <len> ]
//!            | "trace:"  <len> ':' <idx> ( ',' <idx> )*
//! <update>  := "inc" | "add" <k>
//! <prob>    := decimal in [0, 1], at most 3 fraction digits
//! ```
//!
//! Examples: `stride:4x1024`, `block:8/64`, `conflict:p=0.25`,
//! `mostly:1x512/p=0.05*100@7`, `trace:64:0,16,32,48*10!add2+r1`.
//!
//! * `stride` — uniform stride over a `len`-word table; lane `l` of the
//!   `p`-th vector element overall touches `(p * stride) mod len`.
//! * `mostly` — the stride pattern, but each element is replaced by a
//!   uniform random index with probability `p` (MOSTLY-STRIDED with
//!   outliers, the irregular-but-mostly-regular middle ground).
//! * `block` — each vector touches one randomly chosen tile of `block`
//!   consecutive words out of `blocks` tiles (`len = block * blocks`).
//! * `conflict` — seeded-random indices with controllable intra-vector
//!   conflict density: each lane repeats its left neighbour's index with
//!   probability `p`, otherwise draws fresh. `p=0` is scenario-C-like
//!   scatter, `p=1` is the paper's worst-case scenario D (all lanes
//!   alias, GLSC resolves them serially).
//! * `trace` — an explicit index list over a `len`-word table, split
//!   evenly across threads (element `p` of the flat all-threads stream
//!   reads entry `p mod list-len`); this is how trace-derived workloads
//!   and exact-equivalence oracles are expressed.
//!
//! Suffixes: `*N` iterations per thread (default 64), `@S` RNG seed
//! (default 9), `!inc`/`!addK` the atomic update applied per element
//! (default `inc`), `+rN` extra plain (non-atomic) gathers per vector —
//! the read/write-mix knob (default 0).
//!
//! Parsing is total: any garbage input yields a typed [`ParseError`],
//! never a panic — specs cross the trust boundary of the serve protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use glsc_rng::rngs::StdRng;
use glsc_rng::{Rng, SeedableRng};
use glsc_wire::{Reader, Wire, WireError, Writer};

/// Default iterations per thread when a spec has no `*N` suffix.
pub const DEFAULT_ITERS: u32 = 64;
/// Default RNG seed when a spec has no `@S` suffix.
pub const DEFAULT_SEED: u64 = 9;
/// Default table length in words for kinds that allow omitting it.
pub const DEFAULT_LEN: u32 = 1024;

/// Largest counter table a spec may request, in 4-byte words (4 MiB).
pub const MAX_TABLE_WORDS: u32 = 1 << 20;
/// Largest per-thread iteration count.
pub const MAX_ITERS: u32 = 100_000;
/// Largest explicit trace list.
pub const MAX_TRACE_ENTRIES: usize = 65_536;
/// Largest stride.
pub const MAX_STRIDE: u32 = 4096;
/// Largest read-mix count (`+rN`).
pub const MAX_READS: u8 = 8;
/// Largest `!addK` amount.
pub const MAX_ADD: u32 = 1 << 20;

/// How a spec generates the word indices its atomic updates touch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexPattern {
    /// `stride:S[xN]` — uniform stride `S` over an `N`-word table.
    Stride {
        /// Stride in words between consecutive elements.
        stride: u32,
        /// Table length in words.
        len: u32,
    },
    /// `mostly:SxN/p=P` — the stride pattern with random outliers.
    MostlyStride {
        /// Stride in words between consecutive elements.
        stride: u32,
        /// Table length in words.
        len: u32,
        /// Outlier probability in per-mille (0..=1000).
        outlier_pm: u32,
    },
    /// `block:B/N` — random tiles of `B` consecutive words, `N` tiles.
    Block {
        /// Tile size in words.
        block: u32,
        /// Number of tiles (table length is `block * blocks`).
        blocks: u32,
    },
    /// `conflict:p=P[xN]` — seeded-random with intra-vector conflict
    /// density `P`.
    Conflict {
        /// Probability (per-mille) that a lane repeats its left
        /// neighbour's index.
        density_pm: u32,
        /// Table length in words.
        len: u32,
    },
    /// `trace:N:i,j,k,...` — explicit index list over an `N`-word table.
    Trace {
        /// Table length in words (every index must be below it).
        len: u32,
        /// The index stream, consumed modulo its length.
        indices: Vec<u32>,
    },
}

impl IndexPattern {
    /// Counter-table length in words.
    pub fn table_words(&self) -> u32 {
        match self {
            IndexPattern::Stride { len, .. }
            | IndexPattern::MostlyStride { len, .. }
            | IndexPattern::Conflict { len, .. }
            | IndexPattern::Trace { len, .. } => *len,
            IndexPattern::Block { block, blocks } => block.saturating_mul(*blocks),
        }
    }

    /// Short kind name (`"stride"`, `"mostly"`, `"block"`, `"conflict"`,
    /// `"trace"`) — used for job labels.
    pub fn kind(&self) -> &'static str {
        match self {
            IndexPattern::Stride { .. } => "stride",
            IndexPattern::MostlyStride { .. } => "mostly",
            IndexPattern::Block { .. } => "block",
            IndexPattern::Conflict { .. } => "conflict",
            IndexPattern::Trace { .. } => "trace",
        }
    }
}

/// The atomic update applied per touched element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateKind {
    /// `counters[idx] += 1` (the default).
    Inc,
    /// `counters[idx] += k`.
    Add(u32),
}

impl UpdateKind {
    /// The per-element increment amount.
    pub fn amount(self) -> u32 {
        match self {
            UpdateKind::Inc => 1,
            UpdateKind::Add(k) => k,
        }
    }
}

/// A complete pattern-workload description: index generation plus the
/// iteration count, seed, update kind, and read/write mix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternSpec {
    /// How indices are generated.
    pub index: IndexPattern,
    /// Vectors processed per thread.
    pub iters: u32,
    /// Seed for all randomized kinds (one stream across threads, like
    /// the §5.2 microbenchmark's generator).
    pub seed: u64,
    /// Atomic update per element.
    pub update: UpdateKind,
    /// Extra plain (non-atomic) gathers of the index vector before each
    /// atomic update — the read/write-mix knob.
    pub reads: u8,
}

/// Why a spec string (or a decoded spec) was rejected. Parsing is total:
/// hostile input always lands here, never in a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The spec string was empty.
    Empty,
    /// The kind prefix is not one of the five pattern kinds.
    UnknownKind(String),
    /// A structural element was missing or misplaced.
    Malformed {
        /// What was being parsed.
        what: &'static str,
        /// The offending text.
        text: String,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// What was being parsed.
        what: &'static str,
        /// The offending text.
        text: String,
    },
    /// A probability was not a decimal in `[0, 1]` with ≤ 3 fraction
    /// digits.
    BadProbability(String),
    /// The same suffix option (`*`, `@`, `!`, `+r`) appeared twice.
    DuplicateOption(char),
    /// A field exceeded the crate's hard bounds.
    OutOfRange {
        /// Which field tripped.
        what: &'static str,
        /// The rejected value.
        value: u64,
        /// Inclusive upper bound.
        max: u64,
    },
    /// A field that must be non-zero was zero.
    Zero(&'static str),
    /// A trace spec with no indices.
    EmptyTrace,
    /// A trace index at or past the declared table length.
    TraceIndexOutOfRange {
        /// The offending index.
        index: u32,
        /// The declared table length.
        len: u32,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty pattern spec"),
            ParseError::UnknownKind(k) => write!(
                f,
                "unknown pattern kind {k:?} (want stride/mostly/block/conflict/trace)"
            ),
            ParseError::Malformed { what, text } => write!(f, "malformed {what}: {text:?}"),
            ParseError::BadNumber { what, text } => write!(f, "bad {what}: {text:?}"),
            ParseError::BadProbability(t) => write!(
                f,
                "bad probability {t:?} (want a decimal in [0, 1], ≤ 3 fraction digits)"
            ),
            ParseError::DuplicateOption(c) => write!(f, "duplicate {c:?} option"),
            ParseError::OutOfRange { what, value, max } => {
                write!(f, "{what} must be ≤ {max} (got {value})")
            }
            ParseError::Zero(what) => write!(f, "{what} must be non-zero"),
            ParseError::EmptyTrace => write!(f, "trace needs at least one index"),
            ParseError::TraceIndexOutOfRange { index, len } => {
                write!(f, "trace index {index} outside table of {len} words")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl PatternSpec {
    /// A spec with the given index pattern and every knob at its
    /// default (`*64@9!inc`, no extra reads). Bounds are *not* checked —
    /// call [`check`](Self::check) before trusting a constructed spec.
    pub fn new(index: IndexPattern) -> Self {
        Self {
            index,
            iters: DEFAULT_ITERS,
            seed: DEFAULT_SEED,
            update: UpdateKind::Inc,
            reads: 0,
        }
    }

    /// Parses the text grammar (see the crate docs). Total: never
    /// panics, and the result is already [`check`](Self::check)ed.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let text = text.trim();
        if text.is_empty() {
            return Err(ParseError::Empty);
        }
        // The kind body never contains the suffix markers: its alphabet
        // is digits, letters, ':', 'x', '/', '=', '.', ','.
        let head_end = text.find(['*', '@', '!', '+']).unwrap_or(text.len());
        let (head, mut tail) = text.split_at(head_end);

        let mut spec = Self::new(parse_kind(head)?);
        let (mut saw_iters, mut saw_seed, mut saw_update, mut saw_reads) =
            (false, false, false, false);
        while !tail.is_empty() {
            let marker = tail.chars().next().expect("non-empty tail");
            let body_start = &tail[marker.len_utf8()..];
            let body_end = body_start
                .find(['*', '@', '!', '+'])
                .unwrap_or(body_start.len());
            let (body, rest) = body_start.split_at(body_end);
            match marker {
                '*' => {
                    if saw_iters {
                        return Err(ParseError::DuplicateOption('*'));
                    }
                    saw_iters = true;
                    spec.iters = parse_num(body, "iteration count")? as u32;
                }
                '@' => {
                    if saw_seed {
                        return Err(ParseError::DuplicateOption('@'));
                    }
                    saw_seed = true;
                    spec.seed = parse_num(body, "seed")?;
                }
                '!' => {
                    if saw_update {
                        return Err(ParseError::DuplicateOption('!'));
                    }
                    saw_update = true;
                    spec.update = if body == "inc" {
                        UpdateKind::Inc
                    } else if let Some(k) = body.strip_prefix("add") {
                        UpdateKind::Add(parse_num(k, "add amount")? as u32)
                    } else {
                        return Err(ParseError::Malformed {
                            what: "update kind",
                            text: body.to_string(),
                        });
                    };
                }
                '+' => {
                    if saw_reads {
                        return Err(ParseError::DuplicateOption('+'));
                    }
                    saw_reads = true;
                    let Some(n) = body.strip_prefix('r') else {
                        return Err(ParseError::Malformed {
                            what: "read-mix option (want +rN)",
                            text: body.to_string(),
                        });
                    };
                    let n = parse_num(n, "read count")?;
                    if n > MAX_READS as u64 {
                        return Err(ParseError::OutOfRange {
                            what: "reads",
                            value: n,
                            max: MAX_READS as u64,
                        });
                    }
                    spec.reads = n as u8;
                }
                _ => unreachable!("head_end stops at a marker"),
            }
            tail = rest;
        }
        spec.check()?;
        Ok(spec)
    }

    /// Bounds-checks every field against the crate's hard limits, so a
    /// spec (parsed, wire-decoded, or hand-built) can never request an
    /// absurd table, trace, or iteration count.
    pub fn check(&self) -> Result<(), ParseError> {
        let range = |what, value: u64, max: u64| {
            if value == 0 {
                Err(ParseError::Zero(what))
            } else if value > max {
                Err(ParseError::OutOfRange { what, value, max })
            } else {
                Ok(())
            }
        };
        range("iterations", self.iters as u64, MAX_ITERS as u64)?;
        if let UpdateKind::Add(k) = self.update {
            range("add amount", k as u64, MAX_ADD as u64)?;
        }
        if self.reads > MAX_READS {
            return Err(ParseError::OutOfRange {
                what: "reads",
                value: self.reads as u64,
                max: MAX_READS as u64,
            });
        }
        match &self.index {
            IndexPattern::Stride { stride, len } => {
                range("stride", *stride as u64, MAX_STRIDE as u64)?;
                range("table length", *len as u64, MAX_TABLE_WORDS as u64)?;
            }
            IndexPattern::MostlyStride {
                stride,
                len,
                outlier_pm,
            } => {
                range("stride", *stride as u64, MAX_STRIDE as u64)?;
                range("table length", *len as u64, MAX_TABLE_WORDS as u64)?;
                if *outlier_pm > 1000 {
                    return Err(ParseError::BadProbability(format!(
                        "{}.{:03}",
                        outlier_pm / 1000,
                        outlier_pm % 1000
                    )));
                }
            }
            IndexPattern::Block { block, blocks } => {
                range("block size", *block as u64, MAX_TABLE_WORDS as u64)?;
                range("block count", *blocks as u64, MAX_TABLE_WORDS as u64)?;
                range(
                    "table length",
                    *block as u64 * *blocks as u64,
                    MAX_TABLE_WORDS as u64,
                )?;
            }
            IndexPattern::Conflict { density_pm, len } => {
                range("table length", *len as u64, MAX_TABLE_WORDS as u64)?;
                if *density_pm > 1000 {
                    return Err(ParseError::BadProbability(format!(
                        "{}.{:03}",
                        density_pm / 1000,
                        density_pm % 1000
                    )));
                }
            }
            IndexPattern::Trace { len, indices } => {
                range("table length", *len as u64, MAX_TABLE_WORDS as u64)?;
                if indices.is_empty() {
                    return Err(ParseError::EmptyTrace);
                }
                if indices.len() > MAX_TRACE_ENTRIES {
                    return Err(ParseError::OutOfRange {
                        what: "trace entries",
                        value: indices.len() as u64,
                        max: MAX_TRACE_ENTRIES as u64,
                    });
                }
                if let Some(&bad) = indices.iter().find(|&&i| i >= *len) {
                    return Err(ParseError::TraceIndexOutOfRange {
                        index: bad,
                        len: *len,
                    });
                }
            }
        }
        Ok(())
    }

    /// Generates the per-thread index sequences for a machine shape:
    /// `threads` sequences of `iters * width` word indices, all below
    /// [`IndexPattern::table_words`]. One RNG stream is drawn
    /// sequentially across threads (the same discipline as the §5.2
    /// microbenchmark), so the result is a pure function of
    /// `(spec, threads, width)` on every platform.
    pub fn gen_indices(&self, threads: usize, width: usize) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let iters = self.iters as usize;
        let mut pos: u64 = 0; // global element position across all threads
        let mut all = Vec::with_capacity(threads);
        for _t in 0..threads {
            let mut seq: Vec<u32> = Vec::with_capacity(iters * width);
            for _i in 0..iters {
                match &self.index {
                    IndexPattern::Stride { stride, len } => {
                        for _l in 0..width {
                            seq.push(((pos * *stride as u64) % *len as u64) as u32);
                            pos += 1;
                        }
                    }
                    IndexPattern::MostlyStride {
                        stride,
                        len,
                        outlier_pm,
                    } => {
                        let p = *outlier_pm as f64 / 1000.0;
                        for _l in 0..width {
                            if rng.random_bool(p) {
                                seq.push(rng.random_range(0..*len));
                            } else {
                                seq.push(((pos * *stride as u64) % *len as u64) as u32);
                            }
                            pos += 1;
                        }
                    }
                    IndexPattern::Block { block, blocks } => {
                        let tile = rng.random_range(0..*blocks);
                        for l in 0..width {
                            seq.push(tile * *block + (l as u32 % *block));
                            pos += 1;
                        }
                    }
                    IndexPattern::Conflict { density_pm, len } => {
                        let p = *density_pm as f64 / 1000.0;
                        for l in 0..width {
                            if l > 0 && rng.random_bool(p) {
                                let prev = *seq.last().expect("lane 0 already pushed");
                                seq.push(prev);
                            } else {
                                seq.push(rng.random_range(0..*len));
                            }
                            pos += 1;
                        }
                    }
                    IndexPattern::Trace { indices, .. } => {
                        for _l in 0..width {
                            seq.push(indices[(pos % indices.len() as u64) as usize]);
                            pos += 1;
                        }
                    }
                }
            }
            all.push(seq);
        }
        all
    }
}

impl std::str::FromStr for PatternSpec {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, ParseError> {
        Self::parse(s)
    }
}

/// Canonical text form: the kind, then `*iters@seed`, then `!addK` and
/// `+rN` only when non-default. `parse(format(spec)) == spec` holds for
/// every checked spec.
impl std::fmt::Display for PatternSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.index {
            IndexPattern::Stride { stride, len } => write!(f, "stride:{stride}x{len}")?,
            IndexPattern::MostlyStride {
                stride,
                len,
                outlier_pm,
            } => write!(f, "mostly:{stride}x{len}/p={}", fmt_pm(*outlier_pm))?,
            IndexPattern::Block { block, blocks } => write!(f, "block:{block}/{blocks}")?,
            IndexPattern::Conflict { density_pm, len } => {
                write!(f, "conflict:p={}x{len}", fmt_pm(*density_pm))?
            }
            IndexPattern::Trace { len, indices } => {
                write!(f, "trace:{len}:")?;
                for (i, idx) in indices.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{idx}")?;
                }
            }
        }
        write!(f, "*{}@{}", self.iters, self.seed)?;
        if let UpdateKind::Add(k) = self.update {
            write!(f, "!add{k}")?;
        }
        if self.reads > 0 {
            write!(f, "+r{}", self.reads)?;
        }
        Ok(())
    }
}

fn parse_kind(head: &str) -> Result<IndexPattern, ParseError> {
    let Some((kind, body)) = head.split_once(':') else {
        return Err(ParseError::UnknownKind(head.to_string()));
    };
    match kind {
        "stride" => {
            let (stride, len) = parse_stride_len(body)?;
            Ok(IndexPattern::Stride { stride, len })
        }
        "mostly" => {
            let Some((sl, prob)) = body.split_once('/') else {
                return Err(ParseError::Malformed {
                    what: "mostly pattern (want SxN/p=P)",
                    text: body.to_string(),
                });
            };
            let (stride, len) = parse_stride_len(sl)?;
            let Some(p) = prob.strip_prefix("p=") else {
                return Err(ParseError::Malformed {
                    what: "probability (want p=P)",
                    text: prob.to_string(),
                });
            };
            Ok(IndexPattern::MostlyStride {
                stride,
                len,
                outlier_pm: parse_pm(p)?,
            })
        }
        "block" => {
            let Some((b, n)) = body.split_once('/') else {
                return Err(ParseError::Malformed {
                    what: "block pattern (want B/N)",
                    text: body.to_string(),
                });
            };
            Ok(IndexPattern::Block {
                block: parse_num(b, "block size")? as u32,
                blocks: parse_num(n, "block count")? as u32,
            })
        }
        "conflict" => {
            let Some(p) = body.strip_prefix("p=") else {
                return Err(ParseError::Malformed {
                    what: "conflict pattern (want p=P[xN])",
                    text: body.to_string(),
                });
            };
            let (prob, len) = match p.split_once('x') {
                Some((prob, len)) => (prob, parse_num(len, "table length")? as u32),
                None => (p, DEFAULT_LEN),
            };
            Ok(IndexPattern::Conflict {
                density_pm: parse_pm(prob)?,
                len,
            })
        }
        "trace" => {
            let Some((len, list)) = body.split_once(':') else {
                return Err(ParseError::Malformed {
                    what: "trace pattern (want N:i,j,...)",
                    text: body.to_string(),
                });
            };
            let len = parse_num(len, "table length")? as u32;
            if list.is_empty() {
                return Err(ParseError::EmptyTrace);
            }
            let indices = list
                .split(',')
                .map(|i| parse_num(i, "trace index").map(|v| v as u32))
                .collect::<Result<Vec<u32>, ParseError>>()?;
            Ok(IndexPattern::Trace { len, indices })
        }
        other => Err(ParseError::UnknownKind(other.to_string())),
    }
}

/// Parses `SxN` or bare `S` (length defaults to [`DEFAULT_LEN`]).
fn parse_stride_len(text: &str) -> Result<(u32, u32), ParseError> {
    match text.split_once('x') {
        Some((s, n)) => Ok((
            parse_num(s, "stride")? as u32,
            parse_num(n, "table length")? as u32,
        )),
        None => Ok((parse_num(text, "stride")? as u32, DEFAULT_LEN)),
    }
}

/// Strict decimal u64: non-empty, digits only, and small enough that
/// narrowing to the field's real type cannot truncate (every numeric
/// field is bounds-checked against ≤ `2^32` limits right after).
fn parse_num(text: &str, what: &'static str) -> Result<u64, ParseError> {
    if text.is_empty() || !text.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ParseError::BadNumber {
            what,
            text: text.to_string(),
        });
    }
    text.parse::<u64>().map_err(|_| ParseError::BadNumber {
        what,
        text: text.to_string(),
    })
}

/// Parses a probability like `0.25`, `1`, `0.125` into per-mille.
fn parse_pm(text: &str) -> Result<u32, ParseError> {
    let bad = || ParseError::BadProbability(text.to_string());
    let (int, frac) = match text.split_once('.') {
        Some((i, f)) => (i, f),
        None => (text, ""),
    };
    if int.is_empty()
        || !int.bytes().all(|b| b.is_ascii_digit())
        || frac.len() > 3
        || !frac.bytes().all(|b| b.is_ascii_digit())
        || (text.contains('.') && frac.is_empty())
    {
        return Err(bad());
    }
    let whole: u32 = int.parse().map_err(|_| bad())?;
    let mut milli: u32 = 0;
    for (i, b) in frac.bytes().enumerate() {
        milli += (b - b'0') as u32 * 10u32.pow(2 - i as u32);
    }
    let pm = whole.checked_mul(1000).ok_or_else(bad)? + milli;
    if pm > 1000 {
        return Err(bad());
    }
    Ok(pm)
}

/// Per-mille back to the canonical decimal text (`250` → `"0.25"`).
fn fmt_pm(pm: u32) -> String {
    if pm.is_multiple_of(1000) {
        (pm / 1000).to_string()
    } else {
        let frac = format!("{:03}", pm % 1000);
        format!("{}.{}", pm / 1000, frac.trim_end_matches('0'))
    }
}

impl Wire for UpdateKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            UpdateKind::Inc => w.put_u8(0),
            UpdateKind::Add(k) => {
                w.put_u8(1);
                k.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(UpdateKind::Inc),
            1 => Ok(UpdateKind::Add(u32::decode(r)?)),
            _ => Err(r.invalid("update-kind tag")),
        }
    }
}

impl Wire for IndexPattern {
    fn encode(&self, w: &mut Writer) {
        match self {
            IndexPattern::Stride { stride, len } => {
                w.put_u8(0);
                stride.encode(w);
                len.encode(w);
            }
            IndexPattern::MostlyStride {
                stride,
                len,
                outlier_pm,
            } => {
                w.put_u8(1);
                stride.encode(w);
                len.encode(w);
                outlier_pm.encode(w);
            }
            IndexPattern::Block { block, blocks } => {
                w.put_u8(2);
                block.encode(w);
                blocks.encode(w);
            }
            IndexPattern::Conflict { density_pm, len } => {
                w.put_u8(3);
                density_pm.encode(w);
                len.encode(w);
            }
            IndexPattern::Trace { len, indices } => {
                w.put_u8(4);
                len.encode(w);
                indices.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(IndexPattern::Stride {
                stride: u32::decode(r)?,
                len: u32::decode(r)?,
            }),
            1 => Ok(IndexPattern::MostlyStride {
                stride: u32::decode(r)?,
                len: u32::decode(r)?,
                outlier_pm: u32::decode(r)?,
            }),
            2 => Ok(IndexPattern::Block {
                block: u32::decode(r)?,
                blocks: u32::decode(r)?,
            }),
            3 => Ok(IndexPattern::Conflict {
                density_pm: u32::decode(r)?,
                len: u32::decode(r)?,
            }),
            4 => Ok(IndexPattern::Trace {
                len: u32::decode(r)?,
                indices: Vec::<u32>::decode(r)?,
            }),
            _ => Err(r.invalid("index-pattern tag")),
        }
    }
}

impl Wire for PatternSpec {
    fn encode(&self, w: &mut Writer) {
        self.index.encode(w);
        self.iters.encode(w);
        self.seed.encode(w);
        self.update.encode(w);
        self.reads.encode(w);
    }
    /// Decoding re-runs [`PatternSpec::check`]: hostile bytes cannot
    /// smuggle an out-of-bounds spec past the wire boundary.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let spec = Self {
            index: IndexPattern::decode(r)?,
            iters: u32::decode(r)?,
            seed: u64::decode(r)?,
            update: UpdateKind::decode(r)?,
            reads: u8::decode(r)?,
        };
        if spec.check().is_err() {
            return Err(r.invalid("pattern spec bounds"));
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> PatternSpec {
        PatternSpec::parse(s).unwrap_or_else(|e| panic!("{s:?}: {e}"))
    }

    #[test]
    fn grammar_examples_parse() {
        assert_eq!(
            parse("stride:4x1024").index,
            IndexPattern::Stride {
                stride: 4,
                len: 1024
            }
        );
        assert_eq!(
            parse("stride:7").index,
            IndexPattern::Stride {
                stride: 7,
                len: DEFAULT_LEN
            }
        );
        assert_eq!(
            parse("block:8/64").index,
            IndexPattern::Block {
                block: 8,
                blocks: 64
            }
        );
        assert_eq!(
            parse("conflict:p=0.25").index,
            IndexPattern::Conflict {
                density_pm: 250,
                len: DEFAULT_LEN
            }
        );
        assert_eq!(
            parse("mostly:1x512/p=0.05").index,
            IndexPattern::MostlyStride {
                stride: 1,
                len: 512,
                outlier_pm: 50
            }
        );
        let spec = parse("trace:64:0,16,32,48*10@3!add2+r1");
        assert_eq!(
            spec.index,
            IndexPattern::Trace {
                len: 64,
                indices: vec![0, 16, 32, 48]
            }
        );
        assert_eq!(
            (spec.iters, spec.seed, spec.update, spec.reads),
            (10, 3, UpdateKind::Add(2), 1)
        );
    }

    #[test]
    fn canonical_format_round_trips() {
        for s in [
            "stride:4x1024",
            "stride:1x512*40@72",
            "mostly:1x512/p=0.05*100@7",
            "block:8/64!add3",
            "conflict:p=0.25x256+r2",
            "conflict:p=1x16",
            "conflict:p=0x16",
            "trace:64:0,16,32,48*10@3!add2+r1",
        ] {
            let spec = parse(s);
            let canon = spec.to_string();
            assert_eq!(parse(&canon), spec, "{s} → {canon}");
            // Canonical form is a fixed point.
            assert_eq!(parse(&canon).to_string(), canon);
        }
    }

    #[test]
    fn probability_grammar_is_strict() {
        for bad in [
            "conflict:p=1.5",
            "conflict:p=0.1234",
            "conflict:p=.5",
            "conflict:p=0.",
            "conflict:p=-0.5",
            "conflict:p=nan",
        ] {
            assert!(
                matches!(PatternSpec::parse(bad), Err(ParseError::BadProbability(_))),
                "{bad}"
            );
        }
        assert_eq!(fmt_pm(250), "0.25");
        assert_eq!(fmt_pm(500), "0.5");
        assert_eq!(fmt_pm(125), "0.125");
        assert_eq!(fmt_pm(50), "0.05");
        assert_eq!(fmt_pm(0), "0");
        assert_eq!(fmt_pm(1000), "1");
    }

    #[test]
    fn hostile_garbage_yields_typed_errors_never_panics() {
        // Handcrafted near-misses.
        let hostile = [
            "",
            " ",
            "stride",
            "stride:",
            "stride:x",
            "stride:4x",
            "stride:0x16",
            "stride:4x0",
            "stride:4x1024*",
            "stride:4x1024*1*2",
            "stride:4x1024@a",
            "stride:4x1024!dec",
            "stride:4x1024+w1",
            "stride:4x1024+r99",
            "mostly:4x16/q=0.5",
            "mostly:4x16",
            "block:8",
            "block:/64",
            "block:0/64",
            "block:2048/2048",
            "conflict:0.5",
            "conflict:p=2",
            "trace:64",
            "trace:64:",
            "trace:64:64",
            "trace:64:1,,2",
            "trace:0:0",
            "pattern:stride:4",
            "stride:99999999999999999999",
            "stride:4x1024*999999999999999999999",
            "🦀", // non-ASCII
        ];
        for s in hostile {
            assert!(PatternSpec::parse(s).is_err(), "{s:?} must not parse");
        }
        // Fuzz-ish: seeded random byte soup and random mutations of a
        // valid spec. Parsing must return, never panic (a panic fails
        // the test harness).
        let mut rng = StdRng::seed_from_u64(0xF00D);
        let valid = "conflict:p=0.25x256*10@7!add2+r1";
        for _ in 0..2000 {
            let n = rng.random_range(0..40usize);
            let soup: String = (0..n)
                .map(|_| (rng.random_range(0x20u32..0x7F) as u8) as char)
                .collect();
            let _ = PatternSpec::parse(&soup);
            let mut mutated: Vec<char> = valid.chars().collect();
            let at = rng.random_range(0..mutated.len() as u32) as usize;
            mutated[at] = (rng.random_range(0x20u32..0x7F) as u8) as char;
            let _ = PatternSpec::parse(&mutated.into_iter().collect::<String>());
        }
    }

    #[test]
    fn index_generation_is_deterministic_and_in_bounds() {
        for s in [
            "stride:4x1024",
            "mostly:1x512/p=0.05",
            "block:8/64",
            "conflict:p=0.25x256",
            "trace:64:0,16,32,48",
        ] {
            let spec = parse(s);
            let a = spec.gen_indices(4, 4);
            let b = spec.gen_indices(4, 4);
            assert_eq!(a, b, "{s}: same spec, same indices");
            let len = spec.index.table_words();
            for seq in &a {
                assert_eq!(seq.len(), spec.iters as usize * 4);
                assert!(seq.iter().all(|&i| i < len), "{s}: index in bounds");
            }
        }
    }

    #[test]
    fn conflict_density_controls_intra_vector_aliasing() {
        let alias_rate = |pm: u32| {
            let spec = PatternSpec::new(IndexPattern::Conflict {
                density_pm: pm,
                len: 4096,
            });
            let seqs = spec.gen_indices(2, 8);
            let (mut dup, mut total) = (0usize, 0usize);
            for seq in &seqs {
                for chunk in seq.chunks(8) {
                    let mut sorted = chunk.to_vec();
                    sorted.sort_unstable();
                    sorted.dedup();
                    dup += chunk.len() - sorted.len();
                    total += chunk.len();
                }
            }
            dup as f64 / total as f64
        };
        let (lo, mid, hi) = (alias_rate(100), alias_rate(500), alias_rate(900));
        assert!(lo < mid && mid < hi, "alias rates {lo:.3} {mid:.3} {hi:.3}");
        assert!(hi > 0.5, "p=0.9 must alias most lanes, got {hi:.3}");
        // p=1 repeats lane 0 forever: exactly scenario-D behaviour.
        let spec = PatternSpec::new(IndexPattern::Conflict {
            density_pm: 1000,
            len: 64,
        });
        for seq in spec.gen_indices(1, 4) {
            for chunk in seq.chunks(4) {
                assert!(chunk.iter().all(|&i| i == chunk[0]));
            }
        }
    }

    #[test]
    fn stride_covers_the_table_without_rng() {
        let spec = parse("stride:1x16*4@1");
        let seqs = spec.gen_indices(1, 4);
        assert_eq!(
            seqs[0],
            (0..16).collect::<Vec<u32>>(),
            "stride 1 walks the table in order"
        );
        // Seed changes nothing for pure-stride kinds.
        let spec2 = parse("stride:1x16*4@999");
        assert_eq!(spec2.gen_indices(1, 4), seqs);
    }

    #[test]
    fn wire_round_trips_and_rejects_hostile_bytes() {
        for s in [
            "stride:4x1024",
            "mostly:1x512/p=0.05*100@7",
            "block:8/64!add3",
            "conflict:p=0.25x256+r2",
            "trace:64:0,16,32,48*10@3",
        ] {
            let spec = parse(s);
            let bytes = glsc_wire::to_bytes(&spec);
            let back: PatternSpec = glsc_wire::from_bytes(&bytes).unwrap();
            assert_eq!(back, spec);
        }
        // A bad enum tag is a typed error.
        let mut bytes = glsc_wire::to_bytes(&parse("stride:4x1024"));
        bytes[0] = 9;
        assert!(glsc_wire::from_bytes::<PatternSpec>(&bytes).is_err());
        // An in-range encoding of an out-of-bounds spec is rejected by
        // the decode-time check.
        let evil = PatternSpec {
            index: IndexPattern::Stride {
                stride: 1,
                len: u32::MAX,
            },
            ..PatternSpec::new(IndexPattern::Stride { stride: 1, len: 1 })
        };
        let bytes = glsc_wire::to_bytes(&evil);
        assert!(glsc_wire::from_bytes::<PatternSpec>(&bytes).is_err());
        // Truncations are typed errors too.
        let bytes = glsc_wire::to_bytes(&parse("trace:64:0,16,32,48"));
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(glsc_wire::from_bytes::<PatternSpec>(&bytes[..cut]).is_err());
        }
    }
}
