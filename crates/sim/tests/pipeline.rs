//! Focused pipeline-behavior tests: issue policy, stall accounting,
//! branch penalty, store-buffer backpressure, and GSU blocking semantics.

use glsc_isa::{ProgramBuilder, Reg, VReg};
use glsc_sim::{Machine, MachineConfig};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// A chain of n dependent adds on one thread.
fn dependent_adds(n: i64) -> glsc_isa::Program {
    let mut b = ProgramBuilder::new();
    let a = r(2);
    b.li(a, 0);
    for _ in 0..n {
        b.addi(a, a, 1);
    }
    b.halt();
    b.build().unwrap()
}

#[test]
fn smt_threads_share_issue_bandwidth() {
    // Two independent threads on one 2-issue core should finish a compute
    // chain in about the same time one thread does (both issue slots used).
    let p = dependent_adds(400);
    let mut one = Machine::new(MachineConfig::paper(1, 1, 1));
    one.load_program(p.clone());
    let t1 = one.run().unwrap().cycles;

    let mut two = Machine::new(MachineConfig::paper(1, 2, 1));
    two.load_program(p);
    let t2 = two.run().unwrap().cycles;
    assert!(
        t2 < t1 * 13 / 10,
        "2 SMT threads on a 2-issue core should overlap: {t2} vs {t1}"
    );
}

#[test]
fn four_threads_on_two_issue_core_contend() {
    // Four compute-bound threads on a 2-issue core must take roughly twice
    // as long as two threads, and issue-stall cycles must appear.
    let p = dependent_adds(400);
    let mut m2 = Machine::new(MachineConfig::paper(1, 2, 1));
    m2.load_program(p.clone());
    let t2 = m2.run().unwrap().cycles;
    let mut m4 = Machine::new(MachineConfig::paper(1, 4, 1));
    m4.load_program(p);
    let rep4 = m4.run().unwrap();
    assert!(
        rep4.cycles as f64 > t2 as f64 * 1.6,
        "4 threads must contend for 2 issue slots: {} vs {t2}",
        rep4.cycles
    );
    let issue_stalls: u64 = rep4.threads.iter().map(|t| t.issue_stall_cycles).sum();
    assert!(
        issue_stalls > 100,
        "issue contention must be recorded, got {issue_stalls}"
    );
}

#[test]
fn taken_branches_pay_a_penalty() {
    // A loop of n iterations with a taken back-branch per iteration is
    // slower than the equivalent unrolled straight-line code.
    let n = 200;
    let mut looped = ProgramBuilder::new();
    let (a, i) = (r(2), r(3));
    looped.li(a, 0);
    looped.li(i, 0);
    let top = looped.here();
    looped.addi(a, a, 1);
    looped.addi(i, i, 1);
    looped.blt(i, n, top);
    looped.halt();
    let mut m1 = Machine::new(MachineConfig::paper(1, 1, 1));
    m1.load_program(looped.build().unwrap());
    let t_loop = m1.run().unwrap().cycles;

    let mut m2 = Machine::new(MachineConfig::paper(1, 1, 1));
    m2.load_program(dependent_adds(2 * n as i64));
    let t_straight = m2.run().unwrap().cycles;
    assert!(
        t_loop > t_straight,
        "taken branches must cost extra: loop {t_loop} vs straight {t_straight}"
    );
}

#[test]
fn store_buffer_backpressure_stalls_thread() {
    // Two SMT threads each issue one store per cycle (2-wide issue) while
    // the single L1 port drains one per cycle: the write buffers must
    // fill and stall the threads.
    let mut b = ProgramBuilder::new();
    let base = r(2);
    b.li(base, 0x1000);
    // Thread-private store streams (base + gid*4KiB).
    b.shl(r(3), r(0), 12);
    b.add(base, base, r(3));
    for k in 0..64 {
        b.st(base, base, (4 * k) as i64);
    }
    b.halt();
    let mut m = Machine::new(MachineConfig::paper(1, 2, 1));
    m.load_program(b.build().unwrap());
    let rep = m.run().unwrap();
    let stalls: u64 = rep.threads.iter().map(|t| t.mem_stall_cycles).sum();
    assert!(stalls > 0, "write-buffer backpressure must be visible");
}

#[test]
fn gather_blocks_thread_until_complete() {
    // An independent scalar add after a gather cannot issue until the
    // gather completes (blocking semantics, §4.1): the program takes at
    // least min-latency cycles per gather.
    let width = 4;
    let iters = 50;
    let mut b = ProgramBuilder::new();
    let (base, i) = (r(2), r(3));
    let (vd, vi) = (VReg::new(0), VReg::new(1));
    b.li(base, 0x1000);
    b.viota(vi);
    b.li(i, 0);
    let top = b.here();
    b.vgather(vd, base, vi, None);
    b.addi(i, i, 1);
    b.blt(i, iters, top);
    b.halt();
    let mut m = Machine::new(MachineConfig::paper(1, 1, width));
    m.load_program(b.build().unwrap());
    let rep = m.run().unwrap();
    let min_per_iter = (4 + width) as u64; // Table 1 minimum GSU latency
    assert!(
        rep.cycles >= iters as u64 * min_per_iter,
        "{} cycles for {} gathers (< {}/gather)",
        rep.cycles,
        iters,
        min_per_iter
    );
}

#[test]
fn scalar_loads_pipeline_under_stall_on_use() {
    // Independent loads (no use) should overlap: N loads complete in far
    // fewer than N * 3 cycles beyond the queue drain rate of 1/cycle.
    let n = 64i64;
    let mut b = ProgramBuilder::new();
    let base = r(2);
    b.li(base, 0x1000);
    // Warm the lines first.
    for k in 0..n / 16 {
        b.ld(r(3), base, 64 * k);
    }
    for k in 0..n {
        b.ld(r(4), base, 4 * k);
    }
    b.halt();
    let mut m = Machine::new(MachineConfig::paper(1, 1, 1));
    m.load_program(b.build().unwrap());
    let rep = m.run().unwrap();
    // Drain-rate bound: ~1 load/cycle once warm. The warm-up phase pays
    // ~4 serialized DRAM misses (~1200 cycles); the 64 warm loads must
    // then take ~64-250 cycles, far below 64 serialized hits would-be
    // upper region if loads blocked (64 x 295 ~ 19k when cold, 64 x 3+use
    // if serialized).
    assert!(
        rep.cycles < 2200,
        "independent loads must pipeline, took {}",
        rep.cycles
    );
}

#[test]
fn sync_attribution_only_counts_flagged_regions() {
    // A program with no sync regions must report zero sync cycles.
    let mut m = Machine::new(MachineConfig::paper(1, 2, 1));
    m.load_program(dependent_adds(50));
    let rep = m.run().unwrap();
    assert_eq!(rep.threads[0].sync_cycles, 0);
    assert_eq!(rep.sync_fraction(), 0.0);
}

#[test]
fn wider_simd_does_not_change_scalar_results() {
    for width in [1, 4, 16] {
        let mut m = Machine::new(MachineConfig::paper(1, 1, width));
        let mut b = ProgramBuilder::new();
        b.li(r(2), 0x1000);
        b.li(r(3), 7);
        b.mul(r(3), r(3), 6);
        b.st(r(3), r(2), 0);
        b.halt();
        m.load_program(b.build().unwrap());
        m.run().unwrap();
        assert_eq!(m.mem().backing().read_u32(0x1000), 42, "width {width}");
    }
}
