//! Forward-progress watchdog, typed config rejection, periodic invariant
//! checking, and §3.3 reservation-buffer behaviour under chaos pressure
//! (DESIGN.md §9).

use glsc_isa::{Program, ProgramBuilder, Reg};
use glsc_sim::{ChaosConfig, ConfigError, FaultPlan, Machine, MachineConfig, SimError};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// All threads atomically increment one shared counter `iters` times using
/// the scalar ll/sc loop of Fig. 2.
fn llsc_counter_program(iters: i64, counter: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (base, i, tmp, ok) = (r(2), r(3), r(4), r(5));
    b.li(base, counter);
    b.li(i, 0);
    let top = b.here();
    b.sync_on();
    let retry = b.here();
    b.ll(tmp, base, 0);
    b.addi(tmp, tmp, 1);
    b.sc(ok, tmp, base, 0);
    b.beq(ok, 0, retry);
    b.sync_off();
    b.addi(i, i, 1);
    b.blt(i, iters, top);
    b.halt();
    b.build().unwrap()
}

/// A thread that acquires a reservation and then blocks on the result of
/// the ll. With a pathologically slow DRAM the machine issues nothing for
/// the whole wait — the shape of a livelock from the watchdog's view.
fn blocking_ll_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.li(r(2), 0x1000);
    b.ll(r(3), r(2), 0);
    b.add(r(4), r(3), 1); // stall-on-use: no further issue until the fill
    b.halt();
    b.build().unwrap()
}

#[test]
fn watchdog_reports_livelock_with_full_dump() {
    let mut cfg = MachineConfig::paper(1, 1, 1).with_watchdog_window(Some(1_000));
    cfg.mem.dram_latency = 10_000_000; // far beyond the watchdog window
    let mut machine = Machine::new(cfg);
    machine.load_program(blocking_ll_program());
    match machine.run() {
        Err(SimError::Livelock {
            cycle,
            window,
            stuck,
            reservations,
            ..
        }) => {
            assert_eq!(window, 1_000);
            assert!(cycle >= 1_000);
            assert!(!stuck.is_empty(), "dump must name the stuck threads");
            assert_eq!(stuck[0].0, 0, "thread 0 is stuck");
            assert!(
                reservations.contains(&(0, 0x1000, 1)),
                "the ll's reservation must appear in the dump: {reservations:x?}"
            );
        }
        other => panic!("expected livelock, got {other:?}"),
    }
}

#[test]
fn livelock_identical_between_run_and_run_naive() {
    let build = || {
        let mut cfg = MachineConfig::paper(1, 1, 1).with_watchdog_window(Some(500));
        cfg.mem.dram_latency = 10_000_000;
        let mut m = Machine::new(cfg);
        m.load_program(blocking_ll_program());
        m
    };
    let fast = build().run().unwrap_err();
    let naive = build().run_naive().unwrap_err();
    assert_eq!(fast, naive, "watchdog must not depend on fast-forwarding");
    let msg = fast.to_string();
    assert!(msg.contains("livelock"), "display names the failure: {msg}");
    assert!(msg.contains("stall totals"), "display has stalls: {msg}");
}

#[test]
fn watchdog_disabled_falls_through_to_cycle_budget() {
    let mut cfg = MachineConfig::paper(1, 1, 1)
        .with_watchdog_window(None)
        .with_max_cycles(5_000);
    cfg.mem.dram_latency = 10_000_000;
    let mut machine = Machine::new(cfg);
    machine.load_program(blocking_ll_program());
    match machine.run() {
        Err(SimError::MaxCyclesExceeded { cycle, stuck, .. }) => {
            assert!(cycle >= 5_000);
            assert!(!stuck.is_empty());
        }
        other => panic!("expected cycle-budget error, got {other:?}"),
    }
}

#[test]
fn watchdog_tolerates_legitimate_memory_waits() {
    // Default DRAM latency (280) is far below a even a small window: a
    // normal run must never trip the watchdog.
    let cfg = MachineConfig::paper(2, 2, 1).with_watchdog_window(Some(10_000));
    let mut machine = Machine::new(cfg);
    machine.load_program(llsc_counter_program(25, 0x4000));
    machine.run().unwrap();
    assert_eq!(machine.mem().backing().read_u32(0x4000), 4 * 25);
}

#[test]
fn max_cycles_display_includes_stall_totals() {
    let mut b = ProgramBuilder::new();
    let top = b.here();
    b.jmp(top);
    let cfg = MachineConfig::paper(1, 1, 1).with_max_cycles(1_000);
    let mut machine = Machine::new(cfg);
    machine.load_program(b.build().unwrap());
    let err = machine.run().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("stall totals"), "got: {msg}");
}

#[test]
fn periodic_invariant_checks_pass_on_clean_and_chaotic_runs() {
    for chaos in [None, Some(ChaosConfig::aggressive(3))] {
        let cfg = MachineConfig::paper(2, 2, 1)
            .with_invariant_checks(Some(64))
            .with_max_cycles(50_000_000);
        let mut machine = Machine::new(cfg);
        if let Some(c) = chaos.clone() {
            machine.mem_mut().install_fault_plan(FaultPlan::new(c));
        }
        machine.load_program(llsc_counter_program(25, 0x4000));
        machine
            .run()
            .unwrap_or_else(|e| panic!("chaos={}: {e}", chaos.is_some()));
        assert_eq!(machine.mem().backing().read_u32(0x4000), 4 * 25);
        machine.mem().check_invariants();
    }
}

#[test]
fn buffer_evictions_under_chaos_pressure_retry_to_completion() {
    // §3.3 reservation-buffer mode under forced overflow pressure: sc
    // failures must be retried until every increment lands, and the
    // buffer-eviction counter must grow. Seeds printed on failure, per
    // the glsc-rng convention.
    let increments = 4 * 25;
    for seed in [5u64, 6, 7, 8, 9] {
        let mut cfg = MachineConfig::paper(2, 2, 1).with_max_cycles(50_000_000);
        cfg.mem.glsc_buffer_entries = Some(2);
        let mut machine = Machine::new(cfg);
        machine
            .mem_mut()
            .install_fault_plan(FaultPlan::new(ChaosConfig {
                buffer_pressure_prob: 0.5,
                ..ChaosConfig::from_seed(seed)
            }));
        machine.load_program(llsc_counter_program(25, 0x4000));
        let report = machine.run().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            machine.mem().backing().read_u32(0x4000),
            increments,
            "seed {seed}: every increment must land exactly once"
        );
        assert!(
            machine.mem().reservation_buffer_evictions() > 0,
            "seed {seed}: pressure must evict buffered reservations"
        );
        let stats = machine.mem().chaos_stats().unwrap().clone();
        assert!(
            stats.forced_buffer_evictions > 0,
            "seed {seed}: forced evictions must be counted"
        );
        assert!(
            report.lsu.scs > u64::from(increments),
            "seed {seed}: killed reservations must show up as sc retries"
        );
    }
}

#[test]
fn try_new_rejects_bad_configs() {
    let cfg = MachineConfig::paper(1, 1, 4);
    assert!(Machine::try_new(cfg.clone()).is_ok());

    let mut bad = cfg.clone();
    bad.cores = 0;
    match Machine::try_new(bad) {
        Err(SimError::InvalidConfig(ConfigError::CoresOutOfRange { cores: 0 })) => {}
        other => panic!("expected cores rejection, got {other:?}"),
    }

    let mut bad = cfg.clone();
    bad.simd_width = 1000;
    match Machine::try_new(bad) {
        Err(SimError::InvalidConfig(ConfigError::SimdWidthOutOfRange { simd_width: 1000 })) => {}
        other => panic!("expected width rejection, got {other:?}"),
    }

    let mut bad = cfg;
    bad.mem.line_bytes = 48;
    match Machine::try_new(bad) {
        Err(SimError::InvalidConfig(ConfigError::Mem(
            glsc_mem::ConfigError::LineBytesNotPowerOfTwo { line_bytes: 48 },
        ))) => {}
        other => panic!("expected mem rejection, got {other:?}"),
    }
}

#[test]
fn invariant_violation_error_is_descriptive() {
    let err = SimError::InvariantViolation {
        cycle: 42,
        violation: glsc_mem::InvariantViolation::Inclusion {
            core: 1,
            line: 0x1040,
        },
    };
    let msg = err.to_string();
    assert!(msg.contains("cycle 42"), "got: {msg}");
    assert!(msg.contains("0x1040"), "got: {msg}");
    assert!(msg.contains("inclusion"), "got: {msg}");
}
