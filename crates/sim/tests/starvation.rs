//! Starvation detection: a thread whose store-conditionals keep failing
//! must abort the run with a diagnostic [`SimError::Starvation`] naming
//! it — at the *same cycle* in `run` and `run_naive`, under every
//! arbitration policy, even when backoff delays open fast-forwardable
//! gaps that straddle the detection point.

use glsc_isa::{Program, ProgramBuilder, Reg};
use glsc_sim::{ArbitrationPolicy, Machine, MachineConfig, SimError};

const LINE: i64 = 0x4000;

/// SPMD program for 2 threads: thread 0 hammers plain stores at `LINE`
/// (each one killing any reservation there); thread 1 loops `ll`/`sc` on
/// the same word, ignoring the `sc` result. With the store stream
/// running, thread 1's reservation is cleared before nearly every `sc`.
/// `delay` inserts `divu` chains (10-cycle FU latency) in both loops so
/// the cores stall long enough for fast-forward jumps between issues.
fn duel_program(iters: i64, delay: bool) -> Program {
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    let (r_addr, r_it, r_v, r_ok, r_d) = (r(2), r(3), r(4), r(5), r(6));
    b.li(r_addr, LINE);
    b.li(r_it, 0);
    b.li(r_d, 1_000_000);
    let victim = b.label();
    let done = b.label();
    b.bne(r(0), 0, victim);

    // Thread 0: the aggressor store loop.
    let agg_top = b.here();
    b.st(r_it, r_addr, 0);
    if delay {
        b.divu(r_d, r_d, 1);
        b.divu(r_d, r_d, 1);
    }
    b.addi(r_it, r_it, 1);
    b.blt(r_it, iters, agg_top);
    b.jmp(done);

    // Thread 1: the victim ll/sc loop.
    b.bind(victim).unwrap();
    let vic_top = b.here();
    b.ll(r_v, r_addr, 0);
    b.addi(r_v, r_v, 1);
    b.sc(r_ok, r_v, r_addr, 0);
    if delay {
        b.divu(r_d, r_d, 1);
    }
    b.addi(r_it, r_it, 1);
    b.blt(r_it, iters, vic_top);

    b.bind(done).unwrap();
    b.halt();
    b.build().unwrap()
}

fn duel_cfg(threshold: u64, policy: ArbitrationPolicy) -> MachineConfig {
    MachineConfig::paper(2, 1, 1)
        .with_starvation_threshold(Some(threshold))
        .with_arbitration(policy)
}

#[test]
fn starvation_fires_and_names_the_victim() {
    let mut m = Machine::new(duel_cfg(8, ArbitrationPolicy::Free));
    m.load_program(duel_program(50_000, false));
    match m.run() {
        Err(SimError::Starvation {
            cycle,
            gid,
            streak,
            failures,
            ..
        }) => {
            assert_eq!(gid, 1, "the ll/sc thread is the starved one");
            assert!(streak >= 8, "streak {streak} below threshold");
            assert!(cycle > 0);
            assert_eq!(failures.len(), 2);
            assert!(failures[1] >= 8);
            assert_eq!(failures[0], 0, "the store thread never attempts sc");
        }
        other => panic!("expected starvation, got {other:?}"),
    }
    // The diagnostic names the thread, the streak, and the fairness index.
    let err = {
        let mut m = Machine::new(duel_cfg(8, ArbitrationPolicy::Free));
        m.load_program(duel_program(50_000, false));
        m.run().unwrap_err()
    };
    let text = err.to_string();
    assert!(text.contains("starvation: thread 1"), "display: {text}");
    assert!(text.contains("Jain fairness"), "display: {text}");
}

#[test]
fn high_threshold_lets_the_duel_finish() {
    // Same duel, but the victim's streaks stay below the threshold long
    // enough for the aggressor to halt; afterwards every sc succeeds.
    let mut m = Machine::new(duel_cfg(1_000_000, ArbitrationPolicy::Free));
    m.load_program(duel_program(300, false));
    let report = m.run().expect("finishes below the threshold");
    assert!(report.max_sc_failure_streak() > 0, "duel never contended");
}

#[test]
fn uncontended_sc_never_trips_the_detector() {
    // One thread, threshold 1: a single natural failure would abort, so a
    // clean pass proves uncontended ll/sc keeps the streak at zero.
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    let (r_addr, r_it, r_v, r_ok) = (r(2), r(3), r(4), r(5));
    b.li(r_addr, LINE);
    b.li(r_it, 0);
    let top = b.here();
    b.ll(r_v, r_addr, 0);
    b.addi(r_v, r_v, 1);
    b.sc(r_ok, r_v, r_addr, 0);
    b.beq(r_ok, 0, top);
    b.addi(r_it, r_it, 1);
    b.blt(r_it, 50, top);
    b.halt();
    let cfg = MachineConfig::paper(1, 1, 1).with_starvation_threshold(Some(1));
    let mut m = Machine::new(cfg);
    m.load_program(b.build().unwrap());
    m.run().expect("uncontended sc always succeeds");
}

/// The satellite regression: with an arbitration window in play and
/// `divu` delays opening fast-forwardable gaps that straddle the
/// detection deadline, `run` and `run_naive` must report the *identical*
/// starvation error — same cycle, same thread, same census.
#[test]
fn run_and_run_naive_starve_at_the_same_cycle() {
    for policy in [
        ArbitrationPolicy::Free,
        ArbitrationPolicy::NackHoldoff { window: 64 },
        ArbitrationPolicy::AgedPriority,
    ] {
        for delay in [false, true] {
            let mut fast = Machine::new(duel_cfg(6, policy));
            fast.load_program(duel_program(50_000, delay));
            let fast_err = fast.run().expect_err("fast path must starve");

            let mut naive = Machine::new(duel_cfg(6, policy));
            naive.load_program(duel_program(50_000, delay));
            let naive_err = naive.run_naive().expect_err("naive path must starve");

            assert_eq!(
                fast_err, naive_err,
                "run/run_naive diverged ({policy:?}, delay={delay})"
            );
            assert!(
                matches!(fast_err, SimError::Starvation { gid: 1, .. }),
                "unexpected error ({policy:?}, delay={delay}): {fast_err:?}"
            );
        }
    }
}
