//! End-to-end simulator tests: whole programs on the full machine.

use glsc_isa::{MReg, Program, ProgramBuilder, Reg, VReg};
use glsc_sim::{Machine, MachineConfig};

fn r_id() -> Reg {
    Reg::new(0)
}

fn r(i: u8) -> Reg {
    Reg::new(i)
}
fn v(i: u8) -> VReg {
    VReg::new(i)
}
fn m(i: u8) -> MReg {
    MReg::new(i)
}

/// Sum 0..n with a scalar loop; store the result.
fn sum_program(n: i64, out_addr: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (acc, i, base) = (r(2), r(3), r(4));
    b.li(acc, 0);
    b.li(i, 0);
    let top = b.here();
    b.add(acc, acc, i);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.li(base, out_addr);
    b.st(acc, base, 0);
    b.halt();
    b.build().unwrap()
}

#[test]
fn scalar_loop_computes_sum() {
    let mut machine = Machine::new(MachineConfig::paper(1, 1, 1));
    machine.load_program(sum_program(10, 0x1000));
    let report = machine.run().unwrap();
    assert_eq!(machine.mem().backing().read_u32(0x1000), 45);
    assert!(report.cycles > 10);
    assert_eq!(report.threads.len(), 1);
    assert!(report.threads[0].instructions >= 3 * 10);
}

#[test]
fn no_program_is_an_error() {
    let mut machine = Machine::new(MachineConfig::paper(1, 1, 1));
    assert!(matches!(machine.run(), Err(glsc_sim::SimError::NoProgram)));
}

#[test]
fn infinite_loop_hits_cycle_bound() {
    let mut b = ProgramBuilder::new();
    let top = b.here();
    b.jmp(top);
    let mut cfg = MachineConfig::paper(1, 1, 1);
    cfg.max_cycles = 1000;
    let mut machine = Machine::new(cfg);
    machine.load_program(b.build().unwrap());
    match machine.run() {
        Err(glsc_sim::SimError::MaxCyclesExceeded { stuck, .. }) => {
            assert_eq!(stuck.len(), 1);
        }
        other => panic!("expected cycle-bound error, got {other:?}"),
    }
}

#[test]
fn threads_see_their_ids_and_count() {
    // Each thread writes r0 (its gid) to 0x2000 + 4*gid and r1 to 0x3000+4*gid.
    let mut b = ProgramBuilder::new();
    let (base, off, nthreads) = (r(2), r(3), r(1));
    b.shl(off, r_id(), 2);
    b.li(base, 0x2000);
    b.add(base, base, off);
    b.st(r_id(), base, 0);
    b.li(base, 0x3000);
    b.add(base, base, off);
    b.st(nthreads, base, 0);
    b.halt();
    let p = b.build().unwrap();
    let mut machine = Machine::new(MachineConfig::paper(2, 2, 4));
    machine.load_program(p);
    machine.run().unwrap();
    for gid in 0..4u64 {
        assert_eq!(
            machine.mem().backing().read_u32(0x2000 + 4 * gid),
            gid as u32
        );
        assert_eq!(machine.mem().backing().read_u32(0x3000 + 4 * gid), 4);
    }
}

#[test]
fn barrier_orders_phases() {
    // Phase 1: thread 0 writes a flag. Barrier. Phase 2: all threads read
    // the flag and store it to their slot — every slot must see the value.
    let mut b = ProgramBuilder::new();
    let (base, off, val) = (r(2), r(3), r(4));
    let skip = b.label();
    b.bne(r_id(), 0, skip);
    b.li(base, 0x100);
    b.li(val, 777);
    b.st(val, base, 0);
    b.bind(skip).unwrap();
    b.barrier();
    b.li(base, 0x100);
    b.ld(val, base, 0);
    b.li(base, 0x200);
    b.shl(off, r_id(), 2);
    b.add(base, base, off);
    b.st(val, base, 0);
    b.halt();
    let p = b.build().unwrap();
    let mut machine = Machine::new(MachineConfig::paper(2, 2, 1));
    machine.load_program(p);
    machine.run().unwrap();
    for gid in 0..4u64 {
        assert_eq!(
            machine.mem().backing().read_u32(0x200 + 4 * gid),
            777,
            "thread {gid} must observe the pre-barrier store"
        );
    }
}

/// All threads atomically increment one shared counter `iters` times using
/// the scalar ll/sc loop of Fig. 2.
fn llsc_counter_program(iters: i64, counter: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (base, i, tmp, ok) = (r(2), r(3), r(4), r(5));
    b.li(base, counter);
    b.li(i, 0);
    let top = b.here();
    b.sync_on();
    let retry = b.here();
    b.ll(tmp, base, 0);
    b.addi(tmp, tmp, 1);
    b.sc(ok, tmp, base, 0);
    b.beq(ok, 0, retry);
    b.sync_off();
    b.addi(i, i, 1);
    b.blt(i, iters, top);
    b.halt();
    b.build().unwrap()
}

#[test]
fn llsc_increments_are_atomic_across_cores() {
    let mut machine = Machine::new(MachineConfig::paper(4, 4, 1));
    machine.load_program(llsc_counter_program(25, 0x4000));
    let report = machine.run().unwrap();
    assert_eq!(
        machine.mem().backing().read_u32(0x4000),
        16 * 25,
        "every increment must land exactly once"
    );
    assert!(
        report.sync_fraction() > 0.1,
        "contended ll/sc loop is sync-heavy"
    );
    assert!(report.lsu.scs >= 16 * 25, "at least one sc per increment");
}

/// SIMD histogram with vgatherlink/vscattercond, as in Fig. 3(A).
fn glsc_histogram_program(pixels: i64, bins: i64, input: i64, hist: i64, width: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let (r_in, r_hist, r_i, r_step, r_n) = (r(2), r(3), r(4), r(5), r(6));
    let (v_in, v_bins, v_tmp) = (v(0), v(1), v(2));
    let (f_todo, f_tmp) = (m(0), m(1));
    b.li(r_in, input);
    b.li(r_hist, hist);
    b.li(r_n, pixels);
    // Threads stride through the input by nthreads * width elements.
    b.mul(r_step, Reg::new(1), width as i64);
    b.mul(r_i, Reg::new(0), width as i64);
    let outer = b.here();
    let done = b.label();
    b.bge(r_i, r_n, done);
    // Load inputs: address = input + 4*i.
    let addr = r(7);
    b.shl(addr, r_i, 2);
    b.add(addr, addr, r_in);
    b.vload(v_in, addr, 0, None);
    b.vmod(v_bins, v_in, bins, None);
    b.sync_on();
    b.mall(f_todo);
    let retry = b.here();
    b.vgatherlink(f_tmp, v_tmp, r_hist, v_bins, f_todo);
    b.vadd(v_tmp, v_tmp, 1, Some(f_tmp));
    b.vscattercond(f_tmp, v_tmp, r_hist, v_bins, f_tmp);
    b.mxor(f_todo, f_todo, f_tmp);
    b.bmnz(f_todo, retry);
    b.sync_off();
    b.add(r_i, r_i, r_step);
    b.jmp(outer);
    b.bind(done).unwrap();
    b.halt();
    b.build().unwrap()
}

fn run_glsc_histogram(cores: usize, threads: usize, width: usize) {
    let pixels = 16 * width as i64 * cores as i64 * threads as i64;
    let bins = 7i64;
    let (input_addr, hist_addr) = (0x1_0000i64, 0x2_0000i64);
    let mut machine = Machine::new(MachineConfig::paper(cores, threads, width));
    // Deterministic pseudo-random pixels.
    let mut expected = vec![0u32; bins as usize];
    let mut x = 12345u32;
    for i in 0..pixels {
        x = x.wrapping_mul(1103515245).wrapping_add(12345);
        let val = (x >> 8) % 1000;
        machine
            .mem_mut()
            .backing_mut()
            .write_u32(input_addr as u64 + 4 * i as u64, val);
        expected[(val % bins as u32) as usize] += 1;
    }
    machine.load_program(glsc_histogram_program(
        pixels, bins, input_addr, hist_addr, width,
    ));
    let report = machine.run().unwrap();
    let got = machine
        .mem()
        .backing()
        .read_u32_vec(hist_addr as u64, bins as usize);
    assert_eq!(
        got, expected,
        "{cores}x{threads} w{width} histogram must be exact"
    );
    assert!(report.gsu.gatherlinks > 0);
    assert!(report.gsu.scatterconds > 0);
}

#[test]
fn glsc_histogram_single_thread() {
    run_glsc_histogram(1, 1, 4);
}

#[test]
fn glsc_histogram_smt_contention() {
    run_glsc_histogram(1, 4, 4);
}

#[test]
fn glsc_histogram_multicore_contention() {
    run_glsc_histogram(4, 4, 4);
}

#[test]
fn glsc_histogram_wide_simd() {
    run_glsc_histogram(2, 2, 16);
}

#[test]
fn glsc_histogram_width_one() {
    run_glsc_histogram(1, 2, 1);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut machine = Machine::new(MachineConfig::paper(2, 2, 4));
        machine.load_program(llsc_counter_program(10, 0x4000));
        machine.run().unwrap().cycles
    };
    assert_eq!(run(), run());
}

#[test]
fn vector_load_store_round_trip() {
    let mut b = ProgramBuilder::new();
    let (src, dst) = (r(2), r(3));
    let vv = v(1);
    b.li(src, 0x1000);
    b.li(dst, 0x2000);
    b.vload(vv, src, 0, None);
    b.vadd(vv, vv, 100, None);
    b.vstore(vv, dst, 0, None);
    b.halt();
    let mut machine = Machine::new(MachineConfig::paper(1, 1, 4));
    machine
        .mem_mut()
        .backing_mut()
        .write_u32_slice(0x1000, &[1, 2, 3, 4]);
    machine.load_program(b.build().unwrap());
    machine.run().unwrap();
    assert_eq!(
        machine.mem().backing().read_u32_vec(0x2000, 4),
        vec![101, 102, 103, 104]
    );
}

#[test]
fn gather_scatter_permutation() {
    // Reverse an 8-element array via gather with reversed indices.
    let mut b = ProgramBuilder::new();
    let (src, dst) = (r(2), r(3));
    let (vv, vi, vw) = (v(1), v(2), v(3));
    b.li(src, 0x1000);
    b.li(dst, 0x2000);
    b.viota(vi); // 0..w
    b.li(r(4), 7);
    b.vsplat(vw, r(4));
    b.vsub(vi, vw, vi, None); // 7-lane
    b.vgather(vv, src, vi, None);
    b.viota(vi);
    b.vscatter(vv, dst, vi, None);
    b.halt();
    let mut machine = Machine::new(MachineConfig::paper(1, 1, 8));
    machine
        .mem_mut()
        .backing_mut()
        .write_u32_slice(0x1000, &[0, 1, 2, 3, 4, 5, 6, 7]);
    machine.load_program(b.build().unwrap());
    machine.run().unwrap();
    assert_eq!(
        machine.mem().backing().read_u32_vec(0x2000, 8),
        vec![7, 6, 5, 4, 3, 2, 1, 0]
    );
}

#[test]
fn mem_stalls_reported_for_cold_misses() {
    let mut b = ProgramBuilder::new();
    b.li(r(2), 0x9000);
    b.ld(r(3), r(2), 0);
    b.add(r(4), r(3), 1); // stall-on-use of a DRAM miss
    b.halt();
    let mut machine = Machine::new(MachineConfig::paper(1, 1, 1));
    machine.load_program(b.build().unwrap());
    let report = machine.run().unwrap();
    assert!(
        report.threads[0].mem_stall_cycles > 200,
        "DRAM-latency stall must be attributed to memory"
    );
}
