//! Snapshot/restore correctness at the machine level: a snapshot taken
//! mid-run — including cycles with in-flight GSU operations and live
//! GLSC reservations — must resume to a `RunReport` and final memory
//! bit-identical to the uninterrupted run, whether restored into the
//! same machine or hydrated into a fresh one with
//! [`Machine::from_snapshot`].

use glsc_isa::{MReg, Program, ProgramBuilder, Reg, VReg};
use glsc_sim::{ChaosConfig, FaultPlan, Machine, MachineConfig, SimError};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

const COUNTER: i64 = 0x4000;
const INPUT: i64 = 0x1_0000;
const PIXELS: i64 = 64;
const BINS: i64 = 7;

/// Scalar ll/sc increment loop (Fig. 2), run by every hardware thread.
fn llsc_counter_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (base, i, tmp, ok) = (r(2), r(3), r(4), r(5));
    b.li(base, COUNTER);
    b.li(i, 0);
    let top = b.here();
    b.sync_on();
    let retry = b.here();
    b.ll(tmp, base, 0);
    b.addi(tmp, tmp, 1);
    b.sc(ok, tmp, base, 0);
    b.beq(ok, 0, retry);
    b.sync_off();
    b.addi(i, i, 1);
    b.blt(i, iters, top);
    b.halt();
    b.build().unwrap()
}

/// Straight-line vector-memory program: loads, gathers, a gather-link /
/// scatter-cond pair, and a store keep the GSU busy with multi-cycle
/// vector operations so mid-run snapshots catch in-flight element state
/// and live reservations.
fn vector_memory_program() -> Program {
    let mut b = ProgramBuilder::new();
    let base = r(2);
    let (vpix, vidx, vval) = (VReg::new(0), VReg::new(1), VReg::new(2));
    let (pending, got) = (MReg::new(0), MReg::new(1));
    b.li(base, INPUT);
    b.viota(vidx);
    b.vload(vpix, base, 0, None);
    b.vgather(vval, base, vidx, None);
    b.mall(pending);
    b.vgatherlink(got, vval, base, vidx, pending);
    b.valu(glsc_isa::AluOp::Add, vval, vval, 1, None);
    b.vscattercond(got, vval, base, vidx, pending);
    b.vstore(vpix, base, 256, None);
    b.halt();
    b.build().unwrap()
}

fn counter_machine(cores: usize, tpc: usize) -> Machine {
    let mut m = Machine::new(MachineConfig::paper(cores, tpc, 4));
    m.load_program(llsc_counter_program(40));
    m
}

/// Steps `n` cycles (or until halt) and returns whether the machine
/// halted.
fn step_n(m: &mut Machine, n: u64) -> bool {
    for _ in 0..n {
        if m.step() {
            return true;
        }
    }
    false
}

#[test]
fn restore_in_place_resumes_bit_identical() {
    let baseline = counter_machine(2, 2).run().unwrap();

    let mut m = counter_machine(2, 2);
    let halted = step_n(&mut m, baseline.cycles / 2);
    assert!(!halted, "snapshot point must be mid-run");
    let snap = m.snapshot();
    assert_eq!(snap.cycle(), baseline.cycles / 2);
    assert!(snap.has_program());

    // Finish the interrupted run...
    let first = m.run().unwrap();
    assert_eq!(first, baseline, "stepping then running must match run()");
    let mem_first = m.mem().backing().read_u32(COUNTER as u64);

    // ...then rewind the same machine and do it again.
    m.restore(&snap).unwrap();
    assert_eq!(m.cycle(), baseline.cycles / 2);
    let second = m.run().unwrap();
    assert_eq!(second, baseline, "restored run diverged");
    assert_eq!(m.mem().backing().read_u32(COUNTER as u64), mem_first);
}

#[test]
fn from_snapshot_hydrates_an_equivalent_machine() {
    let baseline = counter_machine(4, 1).run().unwrap();

    let mut m = counter_machine(4, 1);
    assert!(!step_n(&mut m, baseline.cycles / 3));
    let snap = m.snapshot();

    let mut fresh = Machine::from_snapshot(&snap);
    assert_eq!(fresh.cycle(), snap.cycle());
    let resumed = fresh.run().unwrap();
    assert_eq!(resumed, baseline, "hydrated machine diverged");
    assert_eq!(
        fresh.mem().backing().read_u32(COUNTER as u64),
        4 * 40,
        "counter must reach threads * iters"
    );
}

#[test]
fn snapshot_at_cycle_zero_and_after_halt() {
    // Cycle 0: a snapshot before the first step is just a (deep) copy of
    // the loaded machine.
    let mut m = counter_machine(1, 2);
    let snap0 = m.snapshot();
    assert_eq!(snap0.cycle(), 0);
    let baseline = m.run().unwrap();
    let resumed = Machine::from_snapshot(&snap0).run().unwrap();
    assert_eq!(resumed, baseline);

    // Post-halt: the snapshot captures the terminal state; its report is
    // the final report (running again would burn an extra idle cycle, so
    // resumption uses `report()`, not `run()`).
    let snap_end = m.snapshot();
    assert!(snap_end.is_quiescent());
    let hydrated = Machine::from_snapshot(&snap_end);
    assert_eq!(hydrated.report(), baseline);
}

#[test]
fn run_naive_resumes_bit_identical_too() {
    let mut b = counter_machine(2, 1);
    let baseline = b.run_naive().unwrap();

    let mut m = counter_machine(2, 1);
    assert!(!step_n(&mut m, baseline.cycles / 2));
    let snap = m.snapshot();
    let finished = m.run_naive().unwrap();
    assert_eq!(finished, baseline);

    let resumed = Machine::from_snapshot(&snap).run_naive().unwrap();
    assert_eq!(resumed, baseline);
}

#[test]
fn snapshot_with_inflight_vector_memory_ops() {
    // Snapshot at every cycle of a short vector-memory program: each
    // snapshot must resume to the same final report, including cycles
    // where the GSU/LSU holds in-flight element state.
    let program = vector_memory_program();
    let build = || {
        let mut m = Machine::new(MachineConfig::paper(1, 1, 4));
        for p in 0..PIXELS as u64 {
            m.mem_mut()
                .backing_mut()
                .write_u32(INPUT as u64 + 4 * p, (p % BINS as u64) as u32);
        }
        m.load_program(program.clone());
        m
    };
    let baseline = build().run().unwrap();
    for cut in 1..baseline.cycles {
        let mut m = build();
        assert!(!step_n(&mut m, cut), "cut {cut} past the end");
        let snap = m.snapshot();
        let resumed = Machine::from_snapshot(&snap).run().unwrap();
        assert_eq!(resumed, baseline, "resume from cycle {cut} diverged");
    }
}

#[test]
fn chaos_plan_rng_state_survives_snapshot() {
    // With a fault plan installed the resumed machine must replay the
    // exact same injection sequence: the snapshot carries the plan's RNG
    // state, so the report stays bit-identical.
    let build = || {
        let mut m = Machine::new(MachineConfig::paper(2, 2, 4));
        m.mem_mut()
            .install_fault_plan(FaultPlan::new(ChaosConfig::aggressive(7)));
        m.load_program(llsc_counter_program(40));
        m
    };
    let baseline = build().run().unwrap();

    let mut m = build();
    assert!(!step_n(&mut m, baseline.cycles / 2));
    let snap = m.snapshot();

    let mut resumed_m = Machine::from_snapshot(&snap);
    let resumed = resumed_m.run().unwrap();
    assert_eq!(resumed, baseline, "chaotic resume diverged");

    let finished = m.run().unwrap();
    assert_eq!(finished, baseline);
    assert_eq!(
        resumed_m.mem().backing().read_u32(COUNTER as u64),
        m.mem().backing().read_u32(COUNTER as u64),
        "chaotic resume left different memory"
    );
}

#[test]
fn restore_rejects_mismatched_shapes() {
    let snap = counter_machine(2, 2).snapshot();
    let mut other = Machine::new(MachineConfig::paper(1, 4, 4));
    let err = other.restore(&snap).unwrap_err();
    assert!(
        matches!(err, SimError::SnapshotMismatch { .. }),
        "expected SnapshotMismatch, got {err:?}"
    );
    let msg = format!("{err}");
    assert!(msg.contains("snapshot"), "unhelpful error: {msg}");

    // Same shape, different width: still a mismatch.
    let mut narrow = Machine::new(MachineConfig::paper(2, 2, 8));
    assert!(narrow.restore(&snap).is_err());
}
