//! Functional semantics of the compute (non-memory) instructions.
//!
//! These routines mutate a [`ThreadArch`] and report what the pipeline
//! needs for timing: the written scalar register (for the scoreboard), the
//! result latency, and control-flow outcomes. Memory instructions are
//! dispatched by the pipeline (`cpu.rs`) to the LSU/GSU models instead.

use crate::arch::ThreadArch;
use crate::config::LatencyTable;
use glsc_isa::{AluOp, CmpOp, FpOp, Instr, LaneSel, Operand, Program, Reg, VSrc};

/// Outcome of executing one compute instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Result written; `dst` (if any) becomes ready after `latency`;
    /// `serialize` requests that the thread not issue again until the
    /// latency elapses (used for vector ALU ops, which have no per-lane
    /// scoreboard).
    Compute {
        /// Written scalar register, for scoreboard tracking.
        dst: Option<Reg>,
        /// Result latency in cycles.
        latency: u64,
        /// Whether the thread must serialize on this result.
        serialize: bool,
    },
    /// Branch evaluated taken; `pc` already redirected.
    Taken,
    /// Branch evaluated not-taken; `pc` advanced.
    NotTaken,
    /// Thread finished.
    Halt,
    /// Thread reached a barrier (pc already advanced past it).
    Barrier,
    /// A memory instruction: the caller must dispatch it.
    Memory,
}

/// 64-bit scalar integer ALU semantics.
pub fn scalar_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Rem => a.checked_rem(b).unwrap_or(a),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32),
        AluOp::Shr => a.wrapping_shr(b as u32),
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
    }
}

/// 32-bit lane integer ALU semantics.
pub fn lane_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => a.checked_rem(b).unwrap_or(a),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b),
        AluOp::Shr => a.wrapping_shr(b),
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
    }
}

/// f32 lane semantics (also used for the scalar FP unit, which operates on
/// the low 32 bits of a scalar register).
pub fn lane_fp(op: FpOp, a: f32, b: f32) -> f32 {
    match op {
        FpOp::Add => a + b,
        FpOp::Sub => a - b,
        FpOp::Mul => a * b,
        FpOp::Div => a / b,
        FpOp::Min => a.min(b),
        FpOp::Max => a.max(b),
    }
}

/// Signed integer comparison.
pub fn cmp_eval(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Float comparison (IEEE semantics: comparisons with NaN are false except
/// `Ne`).
pub fn fcmp_eval(op: CmpOp, a: f32, b: f32) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn operand(arch: &ThreadArch, o: Operand) -> u64 {
    match o {
        Operand::Reg(r) => arch.reg(r),
        Operand::Imm(v) => v as u64,
    }
}

fn vsrc_lane(arch: &ThreadArch, s: VSrc, lane: usize) -> u32 {
    match s {
        VSrc::Vec(v) => arch.vreg(v)[lane],
        VSrc::Bcast(r) => arch.reg(r) as u32,
        VSrc::Imm(v) => v as u32,
    }
}

fn lane_index(arch: &ThreadArch, sel: LaneSel) -> usize {
    match sel {
        LaneSel::Imm(v) => v as usize,
        LaneSel::Reg(r) => arch.reg(r) as usize,
    }
}

/// Executes one compute or control instruction; returns [`StepOutcome`].
/// The PC is advanced (or redirected for control flow). Memory
/// instructions are left untouched and flagged [`StepOutcome::Memory`].
pub fn step_compute(
    arch: &mut ThreadArch,
    instr: &Instr,
    program: &Program,
    lat: &LatencyTable,
) -> StepOutcome {
    use Instr::*;
    let width = arch.width();
    match *instr {
        Li { rd, imm } => {
            arch.set_reg(rd, imm as u64);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: Some(rd),
                latency: lat.int_alu,
                serialize: false,
            }
        }
        Alu { op, rd, rs, src2 } => {
            let v = scalar_alu(op, arch.reg(rs), operand(arch, src2));
            arch.set_reg(rd, v);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: Some(rd),
                latency: lat.for_alu(op),
                serialize: false,
            }
        }
        Fp { op, rd, rs, rt } => {
            let a = f32::from_bits(arch.reg(rs) as u32);
            let b = f32::from_bits(arch.reg(rt) as u32);
            arch.set_reg(rd, lane_fp(op, a, b).to_bits() as u64);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: Some(rd),
                latency: lat.for_fp(op),
                serialize: false,
            }
        }
        Cmp { op, rd, rs, src2 } => {
            let v = cmp_eval(op, arch.reg(rs) as i64, operand(arch, src2) as i64);
            arch.set_reg(rd, v as u64);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: Some(rd),
                latency: lat.int_alu,
                serialize: false,
            }
        }
        FCmp { op, rd, rs, rt } => {
            let a = f32::from_bits(arch.reg(rs) as u32);
            let b = f32::from_bits(arch.reg(rt) as u32);
            arch.set_reg(rd, fcmp_eval(op, a, b) as u64);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: Some(rd),
                latency: lat.int_alu,
                serialize: false,
            }
        }
        CvtIntToF32 { rd, rs } => {
            let v = (arch.reg(rs) as i64) as f32;
            arch.set_reg(rd, v.to_bits() as u64);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: Some(rd),
                latency: lat.cvt,
                serialize: false,
            }
        }
        CvtF32ToInt { rd, rs } => {
            let v = f32::from_bits(arch.reg(rs) as u32) as i64;
            arch.set_reg(rd, v as u64);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: Some(rd),
                latency: lat.cvt,
                serialize: false,
            }
        }
        Branch {
            op,
            rs,
            src2,
            target,
        } => {
            if cmp_eval(op, arch.reg(rs) as i64, operand(arch, src2) as i64) {
                arch.pc = program.target(target);
                StepOutcome::Taken
            } else {
                arch.pc += 1;
                StepOutcome::NotTaken
            }
        }
        Jump { target } => {
            arch.pc = program.target(target);
            StepOutcome::Taken
        }
        BranchMaskZero { f, target } => {
            if arch.mreg(f) == 0 {
                arch.pc = program.target(target);
                StepOutcome::Taken
            } else {
                arch.pc += 1;
                StepOutcome::NotTaken
            }
        }
        BranchMaskNotZero { f, target } => {
            if arch.mreg(f) != 0 {
                arch.pc = program.target(target);
                StepOutcome::Taken
            } else {
                arch.pc += 1;
                StepOutcome::NotTaken
            }
        }
        Halt => StepOutcome::Halt,
        Barrier => {
            arch.pc += 1;
            StepOutcome::Barrier
        }
        Nop => {
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.int_alu,
                serialize: false,
            }
        }
        Fence { .. } => {
            // Ordering-only: the pipeline's issue stage holds a fence
            // until its drain condition clears (cpu.rs), so by the time
            // it executes it is a one-cycle no-op.
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.int_alu,
                serialize: false,
            }
        }
        VAlu {
            op,
            vd,
            vs,
            src2,
            mask,
        } => {
            let m = mask.map_or(arch.full_mask(), |f| arch.mreg(f));
            for lane in 0..width {
                if m & (1 << lane) != 0 {
                    let a = arch.vreg(vs)[lane];
                    let b = vsrc_lane(arch, src2, lane);
                    arch.set_vlane(vd, lane, lane_alu(op, a, b));
                }
            }
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.int_alu,
                serialize: true,
            }
        }
        VFp {
            op,
            vd,
            vs,
            vt,
            mask,
        } => {
            let m = mask.map_or(arch.full_mask(), |f| arch.mreg(f));
            for lane in 0..width {
                if m & (1 << lane) != 0 {
                    let a = f32::from_bits(arch.vreg(vs)[lane]);
                    let b = f32::from_bits(arch.vreg(vt)[lane]);
                    arch.set_vlane(vd, lane, lane_fp(op, a, b).to_bits());
                }
            }
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.for_fp(op),
                serialize: true,
            }
        }
        VCmp {
            op,
            fd,
            vs,
            src2,
            mask,
        } => {
            let m = mask.map_or(arch.full_mask(), |f| arch.mreg(f));
            let mut out = 0u32;
            for lane in 0..width {
                if m & (1 << lane) != 0 {
                    let a = arch.vreg(vs)[lane] as i32 as i64;
                    let b = vsrc_lane(arch, src2, lane) as i32 as i64;
                    if cmp_eval(op, a, b) {
                        out |= 1 << lane;
                    }
                }
            }
            arch.set_mreg(fd, out);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.int_alu,
                serialize: true,
            }
        }
        VFCmp {
            op,
            fd,
            vs,
            vt,
            mask,
        } => {
            let m = mask.map_or(arch.full_mask(), |f| arch.mreg(f));
            let mut out = 0u32;
            for lane in 0..width {
                if m & (1 << lane) != 0 {
                    let a = f32::from_bits(arch.vreg(vs)[lane]);
                    let b = f32::from_bits(arch.vreg(vt)[lane]);
                    if fcmp_eval(op, a, b) {
                        out |= 1 << lane;
                    }
                }
            }
            arch.set_mreg(fd, out);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.fp_add,
                serialize: true,
            }
        }
        VSplat { vd, rs } => {
            let v = arch.reg(rs) as u32;
            for lane in 0..width {
                arch.set_vlane(vd, lane, v);
            }
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.int_alu,
                serialize: true,
            }
        }
        VIota { vd } => {
            for lane in 0..width {
                arch.set_vlane(vd, lane, lane as u32);
            }
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.int_alu,
                serialize: true,
            }
        }
        VExtract { rd, vs, lane } => {
            let l = lane_index(arch, lane);
            assert!(
                l < width,
                "vextract lane {l} out of range for width {width}"
            );
            let v = arch.vreg(vs)[l];
            arch.set_reg(rd, v as u64);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: Some(rd),
                latency: lat.int_alu,
                serialize: false,
            }
        }
        VInsert { vd, rs, lane } => {
            let l = lane_index(arch, lane);
            assert!(l < width, "vinsert lane {l} out of range for width {width}");
            let v = arch.reg(rs) as u32;
            arch.set_vlane(vd, l, v);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.int_alu,
                serialize: true,
            }
        }
        MSetAll { f } => {
            let m = arch.full_mask();
            arch.set_mreg(f, m);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.mask_op,
                serialize: false,
            }
        }
        MClear { f } => {
            arch.set_mreg(f, 0);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.mask_op,
                serialize: false,
            }
        }
        MNot { fd, fs } => {
            let v = !arch.mreg(fs);
            arch.set_mreg(fd, v);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.mask_op,
                serialize: false,
            }
        }
        MAnd { fd, fa, fb } => {
            let v = arch.mreg(fa) & arch.mreg(fb);
            arch.set_mreg(fd, v);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.mask_op,
                serialize: false,
            }
        }
        MOr { fd, fa, fb } => {
            let v = arch.mreg(fa) | arch.mreg(fb);
            arch.set_mreg(fd, v);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.mask_op,
                serialize: false,
            }
        }
        MXor { fd, fa, fb } => {
            let v = arch.mreg(fa) ^ arch.mreg(fb);
            arch.set_mreg(fd, v);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.mask_op,
                serialize: false,
            }
        }
        MMov { fd, fs } => {
            let v = arch.mreg(fs);
            arch.set_mreg(fd, v);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.mask_op,
                serialize: false,
            }
        }
        MPopcount { rd, f } => {
            let v = arch.mreg(f).count_ones() as u64;
            arch.set_reg(rd, v);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: Some(rd),
                latency: lat.mask_op,
                serialize: false,
            }
        }
        MFromReg { f, rs } => {
            let v = arch.reg(rs) as u32;
            arch.set_mreg(f, v);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: None,
                latency: lat.mask_op,
                serialize: false,
            }
        }
        MToReg { rd, f } => {
            let v = arch.mreg(f) as u64;
            arch.set_reg(rd, v);
            arch.pc += 1;
            StepOutcome::Compute {
                dst: Some(rd),
                latency: lat.mask_op,
                serialize: false,
            }
        }
        Load { .. }
        | Store { .. }
        | LoadLinked { .. }
        | StoreCond { .. }
        | VLoad { .. }
        | VStore { .. }
        | VGather { .. }
        | VScatter { .. }
        | VGatherLink { .. }
        | VScatterCond { .. } => StepOutcome::Memory,
    }
}

/// Scalar source registers an instruction reads (used for scoreboard
/// checks before issue). Vector and mask registers need no scoreboard:
/// their producers either complete immediately or block the thread.
pub fn src_regs(instr: &Instr, out: &mut Vec<Reg>) {
    use Instr::*;
    out.clear();
    let push_op = |o: &Operand, out: &mut Vec<Reg>| {
        if let Operand::Reg(r) = o {
            out.push(*r);
        }
    };
    match instr {
        Li { .. } | Halt | Barrier | Nop | Fence { .. } | Jump { .. } => {}
        Alu { rs, src2, .. } | Cmp { rs, src2, .. } => {
            out.push(*rs);
            push_op(src2, out);
        }
        Fp { rs, rt, .. } | FCmp { rs, rt, .. } => {
            out.push(*rs);
            out.push(*rt);
        }
        CvtIntToF32 { rs, .. } | CvtF32ToInt { rs, .. } => out.push(*rs),
        Branch { rs, src2, .. } => {
            out.push(*rs);
            push_op(src2, out);
        }
        BranchMaskZero { .. } | BranchMaskNotZero { .. } => {}
        Load { base, .. } | LoadLinked { base, .. } => out.push(*base),
        Store { rs, base, .. } => {
            out.push(*rs);
            out.push(*base);
        }
        StoreCond { rs, base, .. } => {
            out.push(*rs);
            out.push(*base);
        }
        VAlu { src2, .. } => {
            if let VSrc::Bcast(r) = src2 {
                out.push(*r);
            }
        }
        VCmp { src2, .. } => {
            if let VSrc::Bcast(r) = src2 {
                out.push(*r);
            }
        }
        VFp { .. } | VFCmp { .. } | VIota { .. } => {}
        VSplat { rs, .. } => out.push(*rs),
        VExtract { vs: _, lane, .. } => {
            if let LaneSel::Reg(r) = lane {
                out.push(*r);
            }
        }
        VInsert { rs, lane, .. } => {
            out.push(*rs);
            if let LaneSel::Reg(r) = lane {
                out.push(*r);
            }
        }
        MSetAll { .. }
        | MClear { .. }
        | MNot { .. }
        | MAnd { .. }
        | MOr { .. }
        | MXor { .. }
        | MMov { .. }
        | MPopcount { .. }
        | MToReg { .. } => {}
        MFromReg { rs, .. } => out.push(*rs),
        VLoad { base, .. } | VStore { base, .. } => out.push(*base),
        VGather { base, .. } | VScatter { base, .. } => out.push(*base),
        VGatherLink { base, .. } | VScatterCond { base, .. } => out.push(*base),
    }
}

/// The scalar destination register an instruction writes at issue time
/// (for WAW stalls); memory destinations are handled by the pipeline.
pub fn dst_reg(instr: &Instr) -> Option<Reg> {
    use Instr::*;
    match instr {
        Li { rd, .. }
        | Alu { rd, .. }
        | Fp { rd, .. }
        | Cmp { rd, .. }
        | FCmp { rd, .. }
        | CvtIntToF32 { rd, .. }
        | CvtF32ToInt { rd, .. }
        | MPopcount { rd, .. }
        | MToReg { rd, .. }
        | VExtract { rd, .. }
        | Load { rd, .. }
        | LoadLinked { rd, .. }
        | StoreCond { rd, .. } => Some(*rd),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsc_isa::{MReg, ProgramBuilder, VReg};

    fn empty_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn scalar_alu_edge_cases() {
        assert_eq!(scalar_alu(AluOp::Add, u64::MAX, 1), 0);
        assert_eq!(scalar_alu(AluOp::Div, 7, 0), u64::MAX);
        assert_eq!(scalar_alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(scalar_alu(AluOp::Shl, 1, 4), 16);
        assert_eq!(scalar_alu(AluOp::Min, 3, 9), 3);
    }

    #[test]
    fn lane_alu_wraps_at_32_bits() {
        assert_eq!(lane_alu(AluOp::Add, u32::MAX, 1), 0);
        assert_eq!(lane_alu(AluOp::Rem, 10, 3), 1);
        assert_eq!(lane_alu(AluOp::Div, 1, 0), u32::MAX);
    }

    #[test]
    fn masked_vadd_preserves_inactive_lanes() {
        let mut a = ThreadArch::new(4);
        let p = empty_program();
        let lat = LatencyTable::default();
        a.set_vreg(VReg::new(1), &[10, 20, 30, 40]);
        a.set_mreg(MReg::new(0), 0b0101);
        let i = Instr::VAlu {
            op: AluOp::Add,
            vd: VReg::new(1),
            vs: VReg::new(1),
            src2: VSrc::Imm(1),
            mask: Some(MReg::new(0)),
        };
        let out = step_compute(&mut a, &i, &p, &lat);
        assert!(matches!(
            out,
            StepOutcome::Compute {
                serialize: true,
                ..
            }
        ));
        assert_eq!(a.vreg(VReg::new(1)), &[11, 20, 31, 40]);
    }

    #[test]
    fn vcmp_restricted_to_input_mask() {
        let mut a = ThreadArch::new(4);
        let p = empty_program();
        let lat = LatencyTable::default();
        a.set_vreg(VReg::new(2), &[0, 0, 5, 0]);
        a.set_mreg(MReg::new(1), 0b0110);
        let i = Instr::VCmp {
            op: CmpOp::Eq,
            fd: MReg::new(2),
            vs: VReg::new(2),
            src2: VSrc::Imm(0),
            mask: Some(MReg::new(1)),
        };
        step_compute(&mut a, &i, &p, &lat);
        // Lane 0 equals 0 but is masked off; lane 1 equals 0 and is active;
        // lane 2 is 5 (no match); lane 3 masked off.
        assert_eq!(a.mreg(MReg::new(2)), 0b0010);
    }

    #[test]
    fn branches_redirect_pc() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(1);
        let l = b.label();
        b.beq(r, 0, l); // pc 0
        b.nop(); // pc 1
        b.bind(l).unwrap();
        b.halt(); // pc 2
        let p = b.build().unwrap();
        let lat = LatencyTable::default();
        let mut a = ThreadArch::new(1);
        let out = step_compute(&mut a, p.fetch(0).unwrap(), &p, &lat);
        assert_eq!(out, StepOutcome::Taken);
        assert_eq!(a.pc, 2);

        let mut a2 = ThreadArch::new(1);
        a2.set_reg(r, 1);
        let out2 = step_compute(&mut a2, p.fetch(0).unwrap(), &p, &lat);
        assert_eq!(out2, StepOutcome::NotTaken);
        assert_eq!(a2.pc, 1);
    }

    #[test]
    fn mask_algebra() {
        let mut a = ThreadArch::new(4);
        let p = empty_program();
        let lat = LatencyTable::default();
        step_compute(&mut a, &Instr::MSetAll { f: MReg::new(0) }, &p, &lat);
        assert_eq!(a.mreg(MReg::new(0)), 0b1111);
        step_compute(
            &mut a,
            &Instr::MNot {
                fd: MReg::new(1),
                fs: MReg::new(0),
            },
            &p,
            &lat,
        );
        assert_eq!(a.mreg(MReg::new(1)), 0, "complement truncated to width");
        step_compute(
            &mut a,
            &Instr::MPopcount {
                rd: Reg::new(3),
                f: MReg::new(0),
            },
            &p,
            &lat,
        );
        assert_eq!(a.reg(Reg::new(3)), 4);
    }

    #[test]
    fn extract_insert_round_trip() {
        let mut a = ThreadArch::new(4);
        let p = empty_program();
        let lat = LatencyTable::default();
        a.set_vreg(VReg::new(0), &[7, 8, 9, 10]);
        step_compute(
            &mut a,
            &Instr::VExtract {
                rd: Reg::new(1),
                vs: VReg::new(0),
                lane: LaneSel::Imm(2),
            },
            &p,
            &lat,
        );
        assert_eq!(a.reg(Reg::new(1)), 9);
        a.set_reg(Reg::new(2), 3); // dynamic lane select
        step_compute(
            &mut a,
            &Instr::VInsert {
                vd: VReg::new(0),
                rs: Reg::new(1),
                lane: LaneSel::Reg(Reg::new(2)),
            },
            &p,
            &lat,
        );
        assert_eq!(a.vreg(VReg::new(0)), &[7, 8, 9, 9]);
    }

    #[test]
    fn memory_instructions_flagged() {
        let mut a = ThreadArch::new(4);
        let p = empty_program();
        let lat = LatencyTable::default();
        let i = Instr::Load {
            rd: Reg::new(1),
            base: Reg::new(2),
            offset: 0,
        };
        assert_eq!(step_compute(&mut a, &i, &p, &lat), StepOutcome::Memory);
        assert_eq!(a.pc, 0, "memory ops leave the pc for the pipeline");
    }

    #[test]
    fn src_and_dst_extraction() {
        let mut v = Vec::new();
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs: Reg::new(2),
            src2: Operand::Reg(Reg::new(3)),
        };
        src_regs(&i, &mut v);
        assert_eq!(v, vec![Reg::new(2), Reg::new(3)]);
        assert_eq!(dst_reg(&i), Some(Reg::new(1)));

        let st = Instr::Store {
            rs: Reg::new(4),
            base: Reg::new(5),
            offset: 8,
        };
        src_regs(&st, &mut v);
        assert_eq!(v, vec![Reg::new(4), Reg::new(5)]);
        assert_eq!(dst_reg(&st), None);

        let gl = Instr::VGatherLink {
            fd: MReg::new(0),
            vd: VReg::new(0),
            base: Reg::new(6),
            vidx: VReg::new(1),
            fsrc: MReg::new(1),
        };
        src_regs(&gl, &mut v);
        assert_eq!(v, vec![Reg::new(6)]);
        assert_eq!(dst_reg(&gl), None);
    }

    #[test]
    fn fp_semantics_on_bits() {
        let mut a = ThreadArch::new(1);
        let p = empty_program();
        let lat = LatencyTable::default();
        a.set_reg(Reg::new(1), 2.5f32.to_bits() as u64);
        a.set_reg(Reg::new(2), 0.5f32.to_bits() as u64);
        step_compute(
            &mut a,
            &Instr::Fp {
                op: FpOp::Add,
                rd: Reg::new(3),
                rs: Reg::new(1),
                rt: Reg::new(2),
            },
            &p,
            &lat,
        );
        assert_eq!(f32::from_bits(a.reg(Reg::new(3)) as u32), 3.0);
        step_compute(
            &mut a,
            &Instr::CvtF32ToInt {
                rd: Reg::new(4),
                rs: Reg::new(3),
            },
            &p,
            &lat,
        );
        assert_eq!(a.reg(Reg::new(4)), 3);
        a.set_reg(Reg::new(5), (-7i64) as u64);
        step_compute(
            &mut a,
            &Instr::CvtIntToF32 {
                rd: Reg::new(6),
                rs: Reg::new(5),
            },
            &p,
            &lat,
        );
        assert_eq!(f32::from_bits(a.reg(Reg::new(6)) as u32), -7.0);
    }
}
