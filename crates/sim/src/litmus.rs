//! Schedule-exploring litmus harness for the memory-consistency axis
//! (DESIGN.md §17).
//!
//! Classic litmus tests (SB, MP, LB, IRIW, CoRR) are expressed as tiny
//! SPMD programs and driven under *explicit thread schedules*: the
//! controller masks the machine down to one chosen hardware thread at a
//! time ([`Machine::step_masked`]) until that thread retires an
//! instruction, so an interleaving is a plain byte string of global
//! thread ids. Two explorers sit on top:
//!
//! * **bounded exhaustive enumeration** — depth-first search over every
//!   choice string up to a depth/node cap, completing each prefix with a
//!   free (unmasked) run. For the two-thread tests this covers every
//!   interleaving of the post-setup memory operations.
//! * **seeded random walks** — cheap coverage for the wider tests
//!   (IRIW's four threads), reproducible from a `u64` seed.
//!
//! Every outcome is recorded together with the [`ScheduleWitness`] that
//! produced it; a witness replays deterministically
//! ([`replay_witness`]), which is what makes a surprising outcome
//! debuggable instead of anecdotal.
//!
//! The per-model expected-outcome table lives in the tests themselves:
//! each [`LitmusTest`] names the *relaxed outcome* that distinguishes
//! memory models and the set of models allowed to exhibit it. A
//! [`LitmusReport`] passes when observation matches expectation in both
//! directions — a forbidden outcome never appears, an allowed one is
//! actually found.

use crate::machine::Machine;
use crate::MachineConfig;
use glsc_isa::{Program, ProgramBuilder, Reg};
use glsc_mem::{MemConfig, MemoryOrder};
use glsc_rng::rngs::StdRng;
use glsc_rng::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Word holding `X` in the two-location tests (L2 bank 0 on the tiny
/// geometry, so its relaxed-model drain skew is zero).
const ADDR_X: i64 = 0x1000;
/// Word holding `Y` (L2 bank 1: under
/// [`MemoryOrder::RelaxedFence`] stores to it drain *later* than bank-0
/// stores pushed at the same cycle, which is what lets MP reorder).
const ADDR_Y: i64 = 0x1040;

/// Cycles a schedule choice may spend waiting for its chosen thread to
/// retire an instruction before the choice is abandoned. Generous
/// enough to cover a fence waiting out the worst relaxed drain delay
/// (8 + 24·3 cycles) plus queue service.
const CHOICE_CYCLE_CAP: u64 = 128;

/// Cycle cap for the free (unmasked) completion run of a schedule.
const COMPLETION_CYCLE_CAP: u64 = 50_000;

/// The exploration budget of [`LitmusTest::explore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreBudget {
    /// Maximum schedule-choice depth of the exhaustive search.
    pub dfs_depth: usize,
    /// Node cap of the exhaustive search (each node costs one completion
    /// run).
    pub dfs_max_nodes: usize,
    /// Number of seeded random walks.
    pub walks: u64,
    /// Schedule choices per random walk.
    pub walk_choices: usize,
}

impl Default for ExploreBudget {
    fn default() -> Self {
        Self {
            dfs_depth: 8,
            dfs_max_nodes: 1500,
            walks: 48,
            walk_choices: 12,
        }
    }
}

impl ExploreBudget {
    /// A minimal budget for smoke tests: shallow search, few walks.
    pub fn smoke() -> Self {
        Self {
            dfs_depth: 5,
            dfs_max_nodes: 200,
            walks: 12,
            walk_choices: 8,
        }
    }
}

/// A replayable schedule: the exact sequence of global-thread-id choices
/// the controller applied from the test's canonical start state, plus
/// the seed of the walk that found it (0 for exhaustively-found
/// schedules). Serialize with [`glsc_wire::to_bytes`]; feeding the
/// decoded witness to [`replay_witness`] reproduces the outcome
/// deterministically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleWitness {
    /// Name of the [`LitmusTest`] (key into [`suite`]).
    pub test: String,
    /// Memory model the schedule ran under.
    pub order: MemoryOrder,
    /// Seed of the random walk that found the schedule (0 when found by
    /// exhaustive enumeration).
    pub seed: u64,
    /// Global thread id per schedule choice, in order.
    pub choices: Vec<u8>,
}

glsc_wire::wire_struct!(ScheduleWitness {
    test,
    order,
    seed,
    choices,
});

/// One litmus test: an SPMD program, the machine shape it needs, the
/// registers to observe, and the per-model expectation.
#[derive(Clone, Debug)]
pub struct LitmusTest {
    /// Short conventional name ("SB", "MP", …).
    pub name: &'static str,
    /// Cores in the litmus machine (one hardware thread each).
    pub cores: usize,
    /// The SPMD program (dispatches on `r0`).
    pub program: Program,
    /// Leading thread-local setup instructions per thread (immediates
    /// and the dispatch branch); retired in a fixed round-robin before
    /// exploration starts, so the search spends its depth on the memory
    /// operations that actually distinguish interleavings.
    pub setup_instrs: u64,
    /// `(global thread id, register)` pairs read after completion; their
    /// values, in this order, form an outcome.
    pub observed: Vec<(usize, Reg)>,
    /// The outcome whose observability distinguishes memory models.
    pub relaxed: Vec<u64>,
    /// Models allowed (and therefore required) to exhibit
    /// [`relaxed`](Self::relaxed).
    pub allowed: &'static [MemoryOrder],
    /// Whether the two-thread exhaustive search is worth running (false
    /// for the four-thread IRIW, where random walks carry the load).
    pub exhaustive: bool,
}

/// Result of exploring one test under one memory model.
#[derive(Clone, Debug)]
pub struct LitmusReport {
    /// Test name.
    pub test: String,
    /// Memory model explored.
    pub order: MemoryOrder,
    /// Every outcome observed, with the first witness that produced it.
    pub outcomes: BTreeMap<Vec<u64>, ScheduleWitness>,
    /// Whether the test's relaxed outcome was observed.
    pub relaxed_observed: bool,
    /// Whether the model is expected (and allowed) to exhibit it.
    pub expected_relaxed: bool,
}

impl LitmusReport {
    /// `true` when observation matched expectation: the relaxed outcome
    /// appeared iff the model allows it.
    pub fn pass(&self) -> bool {
        self.relaxed_observed == self.expected_relaxed
    }

    /// The witness of the relaxed outcome, when it was observed.
    pub fn relaxed_witness(&self) -> Option<&ScheduleWitness> {
        self.outcomes
            .iter()
            .find(|(o, _)| self.relaxed_matches(o))
            .map(|(_, w)| w)
    }

    fn relaxed_matches(&self, outcome: &[u64]) -> bool {
        suite()
            .into_iter()
            .find(|t| t.name == self.test)
            .is_some_and(|t| t.relaxed == outcome)
    }
}

impl LitmusTest {
    /// Whether `order` is allowed to exhibit the relaxed outcome.
    pub fn allows(&self, order: MemoryOrder) -> bool {
        self.allowed.contains(&order)
    }

    /// The litmus machine configuration for this test under `order`:
    /// one hardware thread per core on the tiny memory geometry (two L2
    /// banks, so [`ADDR_X`]/[`ADDR_Y`] land on distinct banks).
    pub fn config(&self, order: MemoryOrder) -> MachineConfig {
        let mut cfg = MachineConfig::paper(self.cores, 1, 4)
            .with_memory_order(order)
            .with_max_cycles(2_000_000);
        cfg.mem = MemConfig {
            memory_order: order,
            ..MemConfig::tiny()
        };
        cfg
    }

    /// Builds the canonical start state: machine constructed, program
    /// loaded, and every thread advanced through its thread-local setup
    /// instructions in a fixed round-robin. All schedules (exhaustive,
    /// random, replayed) start here, which is what makes a
    /// [`ScheduleWitness`] portable.
    pub fn start_state(&self, order: MemoryOrder) -> Machine {
        let mut m = Machine::new(self.config(order));
        m.load_program(self.program.clone());
        for gid in 0..self.cores {
            while m.thread_instructions(gid) < self.setup_instrs && !m.thread_halted(gid) {
                if !advance_one(&mut m, gid, self.cores) {
                    break;
                }
            }
        }
        m
    }

    /// Applies a choice string to `m`, one retired instruction per
    /// choice. Choices naming halted (or out-of-range) threads are
    /// skipped — a replay therefore tolerates a witness recorded from a
    /// slightly different exploration but stays byte-deterministic for
    /// witnesses it recorded itself.
    pub fn apply_choices(&self, m: &mut Machine, choices: &[u8]) {
        for &c in choices {
            let gid = c as usize;
            if gid >= self.cores || m.thread_halted(gid) {
                continue;
            }
            advance_one(m, gid, self.cores);
        }
    }

    /// Runs `m` unmasked to completion and reads the observed outcome.
    /// `None` if the machine fails to finish within the completion cap
    /// (which no well-formed litmus program does).
    pub fn complete(&self, m: &mut Machine) -> Option<Vec<u64>> {
        for _ in 0..COMPLETION_CYCLE_CAP {
            if m.step() {
                return Some(self.outcome(m));
            }
        }
        None
    }

    /// Reads the observed registers of a completed machine.
    pub fn outcome(&self, m: &Machine) -> Vec<u64> {
        self.observed
            .iter()
            .map(|&(gid, r)| m.thread_arch(gid).reg(r))
            .collect()
    }

    /// Runs one explicit schedule from the canonical start state.
    pub fn run_schedule(&self, order: MemoryOrder, choices: &[u8]) -> Option<Vec<u64>> {
        let mut m = self.start_state(order);
        self.apply_choices(&mut m, choices);
        self.complete(&mut m)
    }

    /// One seeded random walk: choices drawn uniformly over the live
    /// threads. Returns the witness (recording the choices actually
    /// applied) and the outcome.
    pub fn random_walk(
        &self,
        order: MemoryOrder,
        seed: u64,
        max_choices: usize,
    ) -> (ScheduleWitness, Option<Vec<u64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = self.start_state(order);
        let mut choices = Vec::with_capacity(max_choices);
        while choices.len() < max_choices {
            let live: Vec<usize> = (0..self.cores).filter(|&g| !m.thread_halted(g)).collect();
            if live.is_empty() {
                break;
            }
            let gid = live[rng.random_range(0..live.len())];
            advance_one(&mut m, gid, self.cores);
            choices.push(gid as u8);
        }
        let outcome = self.complete(&mut m);
        let witness = ScheduleWitness {
            test: self.name.to_string(),
            order,
            seed,
            choices,
        };
        (witness, outcome)
    }

    /// Explores the test under `order` within `budget` and evaluates the
    /// result against the expected-outcome table.
    pub fn explore(&self, order: MemoryOrder, budget: &ExploreBudget) -> LitmusReport {
        let mut outcomes: BTreeMap<Vec<u64>, ScheduleWitness> = BTreeMap::new();
        if self.exhaustive {
            let start = self.start_state(order);
            let mut nodes = 0usize;
            let mut prefix = Vec::new();
            self.dfs(
                &start,
                order,
                budget.dfs_depth,
                budget.dfs_max_nodes,
                &mut nodes,
                &mut prefix,
                &mut outcomes,
            );
        }
        for seed in 1..=budget.walks {
            let (witness, outcome) = self.random_walk(order, seed, budget.walk_choices);
            if let Some(o) = outcome {
                outcomes.entry(o).or_insert(witness);
            }
        }
        let relaxed_observed = outcomes.contains_key(&self.relaxed);
        LitmusReport {
            test: self.name.to_string(),
            order,
            outcomes,
            relaxed_observed,
            expected_relaxed: self.allows(order),
        }
    }

    /// Depth-first enumeration: records the free-run completion of every
    /// prefix (including the empty one), then branches on each live
    /// thread.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        m: &Machine,
        order: MemoryOrder,
        depth: usize,
        max_nodes: usize,
        nodes: &mut usize,
        prefix: &mut Vec<u8>,
        outcomes: &mut BTreeMap<Vec<u64>, ScheduleWitness>,
    ) {
        if *nodes >= max_nodes {
            return;
        }
        *nodes += 1;
        let mut probe = m.clone();
        if let Some(o) = self.complete(&mut probe) {
            outcomes.entry(o).or_insert_with(|| ScheduleWitness {
                test: self.name.to_string(),
                order,
                seed: 0,
                choices: prefix.clone(),
            });
        }
        if depth == 0 {
            return;
        }
        for gid in 0..self.cores {
            if m.thread_halted(gid) {
                continue;
            }
            let mut child = m.clone();
            advance_one(&mut child, gid, self.cores);
            prefix.push(gid as u8);
            self.dfs(&child, order, depth - 1, max_nodes, nodes, prefix, outcomes);
            prefix.pop();
        }
    }
}

/// Steps `m` with only global thread `gid` allowed to issue until that
/// thread retires one instruction (or halts, or the whole machine
/// finishes). Memory-unit drains proceed regardless of the mask, so a
/// fence-stalled thread unblocks within the choice cycle cap. Returns
/// `false` when the thread made no progress within the cap.
fn advance_one(m: &mut Machine, gid: usize, cores: usize) -> bool {
    if m.thread_halted(gid) {
        return false;
    }
    let before = m.thread_instructions(gid);
    let mut masks = vec![0u32; cores];
    masks[gid] = 1; // one hardware thread per core in litmus machines
    for _ in 0..CHOICE_CYCLE_CAP {
        let done = m.step_masked(&masks);
        if done || m.thread_halted(gid) || m.thread_instructions(gid) > before {
            return true;
        }
    }
    false
}

/// Replays a serialized witness against the named test in [`suite`],
/// returning the (deterministic) outcome. `None` when the witness names
/// an unknown test or the replay fails to complete.
pub fn replay_witness(w: &ScheduleWitness) -> Option<Vec<u64>> {
    let test = suite().into_iter().find(|t| t.name == w.test)?;
    test.run_schedule(w.order, &w.choices)
}

fn r(n: u8) -> Reg {
    Reg::new(n)
}

/// SB (store buffering): each thread stores to its own location then
/// loads the other's. Both loads reading the initial 0 requires a store
/// to be delayed past a younger load — the signature TSO/relaxed
/// behaviour, forbidden under SC.
fn sb(fenced: bool) -> LitmusTest {
    let mut b = ProgramBuilder::new();
    let t1 = b.label();
    b.li(r(2), ADDR_X);
    b.li(r(3), ADDR_Y);
    b.li(r(5), 1);
    b.beq(r(0), 1, t1);
    // gid 0: X = 1; r4 = Y
    b.st(r(5), r(2), 0);
    if fenced {
        b.fence();
    }
    b.ld(r(4), r(3), 0);
    b.halt();
    b.bind(t1).expect("label bound once");
    // gid 1: Y = 1; r4 = X
    b.st(r(5), r(3), 0);
    if fenced {
        b.fence();
    }
    b.ld(r(4), r(2), 0);
    b.halt();
    LitmusTest {
        name: if fenced { "SB+fence" } else { "SB" },
        cores: 2,
        program: b.build().expect("valid litmus program"),
        setup_instrs: 4,
        observed: vec![(0, r(4)), (1, r(4))],
        relaxed: vec![0, 0],
        allowed: if fenced {
            &[]
        } else {
            &[MemoryOrder::Tso, MemoryOrder::RelaxedFence]
        },
        exhaustive: true,
    }
}

/// MP (message passing): the producer writes data (bank 1, late drain)
/// then a flag (bank 0, early drain); the consumer reads flag then data
/// back-to-back (independent registers, so the two loads grant on
/// consecutive cycles). Observing `flag = 1, data = 0` requires the
/// producer's stores to commit out of program order — which only the
/// bank-skewed [`MemoryOrder::RelaxedFence`] drain does, and a release
/// fence between the stores forbids again. The consumer's nop pad walks
/// its loads across the drain window; schedules shift them further.
fn mp(fenced: bool) -> LitmusTest {
    let mut b = ProgramBuilder::new();
    let t1 = b.label();
    b.li(r(2), ADDR_X); // flag (bank 0)
    b.li(r(3), ADDR_Y); // data (bank 1)
    b.li(r(5), 1);
    b.beq(r(0), 1, t1);
    // gid 0 (producer): DATA = 1; FLAG = 1
    b.st(r(5), r(3), 0);
    if fenced {
        b.fence_rel();
    }
    b.st(r(5), r(2), 0);
    b.halt();
    b.bind(t1).expect("label bound once");
    // gid 1 (consumer): r4 = FLAG; r6 = DATA (after a pad that lands
    // the loads inside the producer's buffered-store drain window)
    for _ in 0..16 {
        b.nop();
    }
    b.ld(r(4), r(2), 0);
    b.ld(r(6), r(3), 0);
    b.halt();
    LitmusTest {
        name: if fenced { "MP+fence.rel" } else { "MP" },
        cores: 2,
        program: b.build().expect("valid litmus program"),
        setup_instrs: 4,
        observed: vec![(1, r(4)), (1, r(6))],
        relaxed: vec![1, 0],
        allowed: if fenced {
            &[]
        } else {
            &[MemoryOrder::RelaxedFence]
        },
        exhaustive: true,
    }
}

/// LB (load buffering): each thread loads one location then stores to
/// the other. Both loads observing 1 would need a load to take effect
/// *after* a program-order-later store — impossible here under every
/// model (loads sample memory at issue-queue grant, before the same
/// thread's younger store can commit).
fn lb() -> LitmusTest {
    let mut b = ProgramBuilder::new();
    let t1 = b.label();
    b.li(r(2), ADDR_X);
    b.li(r(3), ADDR_Y);
    b.li(r(5), 1);
    b.beq(r(0), 1, t1);
    // gid 0: r4 = X; Y = 1
    b.ld(r(4), r(2), 0);
    b.st(r(5), r(3), 0);
    b.halt();
    b.bind(t1).expect("label bound once");
    // gid 1: r4 = Y; X = 1
    b.ld(r(4), r(3), 0);
    b.st(r(5), r(2), 0);
    b.halt();
    LitmusTest {
        name: "LB",
        cores: 2,
        program: b.build().expect("valid litmus program"),
        setup_instrs: 4,
        observed: vec![(0, r(4)), (1, r(4))],
        relaxed: vec![1, 1],
        allowed: &[],
        exhaustive: true,
    }
}

/// CoRR (coherent read-read): two program-order loads of the same word
/// must not observe a newer then an older value. The single backing
/// store with commit-at-drain gives a total order of writes, so this is
/// forbidden under every model.
fn corr() -> LitmusTest {
    let mut b = ProgramBuilder::new();
    let t1 = b.label();
    b.li(r(2), ADDR_X);
    b.li(r(5), 1);
    b.nop();
    b.beq(r(0), 1, t1);
    // gid 0: X = 1
    b.st(r(5), r(2), 0);
    b.halt();
    b.bind(t1).expect("label bound once");
    // gid 1: r4 = X; r6 = X
    b.ld(r(4), r(2), 0);
    b.ld(r(6), r(2), 0);
    b.halt();
    LitmusTest {
        name: "CoRR",
        cores: 2,
        program: b.build().expect("valid litmus program"),
        setup_instrs: 4,
        observed: vec![(1, r(4)), (1, r(6))],
        relaxed: vec![1, 0],
        allowed: &[],
        exhaustive: true,
    }
}

/// IRIW (independent reads of independent writes): two writers, two
/// readers observing the writes in opposite orders. The shared backing
/// store makes every write multi-copy-atomic, so this is forbidden
/// under every model — including the relaxed ones.
fn iriw() -> LitmusTest {
    let mut b = ProgramBuilder::new();
    let (t1, t2, t3) = (b.label(), b.label(), b.label());
    b.li(r(2), ADDR_X);
    b.li(r(3), ADDR_Y);
    b.li(r(5), 1);
    b.beq(r(0), 1, t1);
    b.beq(r(0), 2, t2);
    b.beq(r(0), 3, t3);
    // gid 0: X = 1
    b.st(r(5), r(2), 0);
    b.halt();
    b.bind(t1).expect("label bound once");
    // gid 1: Y = 1
    b.st(r(5), r(3), 0);
    b.halt();
    b.bind(t2).expect("label bound once");
    // gid 2: r4 = X; r6 = Y
    b.ld(r(4), r(2), 0);
    b.ld(r(6), r(3), 0);
    b.halt();
    b.bind(t3).expect("label bound once");
    // gid 3: r4 = Y; r6 = X
    b.ld(r(4), r(3), 0);
    b.ld(r(6), r(2), 0);
    b.halt();
    LitmusTest {
        name: "IRIW",
        cores: 4,
        program: b.build().expect("valid litmus program"),
        setup_instrs: 4,
        observed: vec![(2, r(4)), (2, r(6)), (3, r(4)), (3, r(6))],
        relaxed: vec![1, 0, 1, 0],
        allowed: &[],
        exhaustive: false,
    }
}

/// The full litmus suite with its per-model expected-outcome table
/// (mirrored in EXPERIMENTS.md).
pub fn suite() -> Vec<LitmusTest> {
    vec![
        sb(false),
        sb(true),
        mp(false),
        mp(true),
        lb(),
        corr(),
        iriw(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sb_relaxed_outcome_tracks_the_model() {
        let t = sb(false);
        let budget = ExploreBudget::default();
        let sc = t.explore(MemoryOrder::Sc, &budget);
        assert!(
            !sc.relaxed_observed,
            "SC must forbid SB (0,0): {:?}",
            sc.outcomes.keys()
        );
        assert!(sc.pass());
        let tso = t.explore(MemoryOrder::Tso, &budget);
        assert!(
            tso.relaxed_observed,
            "TSO must exhibit SB (0,0): {:?}",
            tso.outcomes.keys()
        );
        assert!(tso.pass());
    }

    #[test]
    fn full_fence_restores_sc_for_sb() {
        let t = sb(true);
        for order in [MemoryOrder::Tso, MemoryOrder::RelaxedFence] {
            let rep = t.explore(order, &ExploreBudget::smoke());
            assert!(rep.pass(), "SB+fence must forbid (0,0) under {order:?}");
        }
    }

    #[test]
    fn mp_reorders_only_under_relaxed_fence() {
        let t = mp(false);
        let budget = ExploreBudget::smoke();
        assert!(!t.explore(MemoryOrder::Tso, &budget).relaxed_observed);
        let relaxed = t.explore(MemoryOrder::RelaxedFence, &budget);
        assert!(
            relaxed.relaxed_observed,
            "RelaxedFence must exhibit MP: {:?}",
            relaxed.outcomes.keys()
        );
        assert!(t.explore(MemoryOrder::Sc, &budget).pass());
    }

    #[test]
    fn witness_replays_deterministically() {
        let t = sb(false);
        let rep = t.explore(MemoryOrder::Tso, &ExploreBudget::smoke());
        let w = rep.relaxed_witness().expect("TSO exhibits SB").clone();
        let first = replay_witness(&w).expect("replay completes");
        assert_eq!(first, t.relaxed);
        for _ in 0..3 {
            assert_eq!(replay_witness(&w).expect("replay completes"), first);
        }
    }

    #[test]
    fn witness_wire_round_trips() {
        let w = ScheduleWitness {
            test: "SB".to_string(),
            order: MemoryOrder::RelaxedFence,
            seed: 7,
            choices: vec![0, 1, 1, 0],
        };
        let bytes = glsc_wire::to_bytes(&w);
        let back: ScheduleWitness = glsc_wire::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, w);
    }

    #[test]
    fn suite_names_are_unique() {
        let names: Vec<&str> = suite().iter().map(|t| t.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
