//! The in-order SMT core model: issue stage, memory-op dispatch, stall
//! classification.
//!
//! Each core issues up to `issue_width` instructions per cycle, at most one
//! per SMT thread, in round-robin thread order (rotating priority). Scalar
//! loads are non-blocking with stall-on-use via a register scoreboard;
//! vector memory operations block the issuing thread (§4.1: gather/scatter
//! "stall the subsequent instructions from the same thread until memory
//! operations for all elements are complete").

use crate::config::MachineConfig;
use crate::exec::{self, StepOutcome};
use crate::thread::{Thread, ThreadStatus};
use glsc_core::{CoreMemUnit, GsuKind, LsuAction, LsuCompletion, MemCompletion};
use glsc_isa::{Instr, Program, Reg, ELEM_BYTES};
use glsc_mem::line_of;

/// Why a running thread failed to issue this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallKind {
    /// An operand (or WAW destination) is waiting on a memory access.
    OperandMem,
    /// An operand is waiting on a functional-unit result, or the thread is
    /// serialized behind a taken branch / vector op.
    Pipeline,
    /// The write buffer has no free slot for a store.
    StoreBufferFull,
    /// Ready to issue, but the core's issue slots were taken.
    NoSlot,
    /// A fence (or, under a relaxed model, a barrier) is waiting for the
    /// thread's earlier memory traffic to drain (DESIGN.md §17).
    Fence,
}

/// Per-cycle issue outcome for one thread (for stall accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IssueRecord {
    /// Issued an instruction; flag = sync region.
    Issued(bool),
    /// Stalled for the given reason; flag = sync region of the stalled
    /// instruction.
    Stalled(StallKind, bool),
    /// Not in the Running state (blocked/barrier/halted).
    NotRunning,
}

/// One simulated core: SMT threads plus its memory unit.
#[derive(Clone, Debug)]
pub struct Core {
    // Core id (kept for debugging dumps).
    #[allow(dead_code)]
    pub(crate) id: usize,
    /// Hardware threads.
    pub threads: Vec<Thread>,
    /// LSU + GSU behind the L1 port.
    pub memunit: CoreMemUnit,
    records: Vec<IssueRecord>,
    rr: usize,
    scratch_regs: Vec<Reg>,
    /// Halted threads on this core, maintained incrementally at every
    /// status transition so the machine's end-of-run and barrier checks
    /// are O(1) per core instead of a thread rescan per cycle.
    pub(crate) halted: usize,
    /// Threads waiting at the global barrier, maintained incrementally.
    pub(crate) at_barrier: usize,
    /// Whether any thread issued during the most recent
    /// [`issue_stage`](Core::issue_stage). The machine's fast-forward
    /// uses this as a free "is the core making progress?" signal: while
    /// instructions are issuing every cycle there is no dead window to
    /// skip, so the (thread-scanning) fast-forward probe is not worth
    /// running.
    pub(crate) issued_any: bool,
    /// Transient per-cycle issue gate for schedule controllers (bit per
    /// thread; see [`crate::Machine::step_masked`]). All-ones in normal
    /// operation. Deliberately excluded from snapshots: it is set and
    /// cleared around a single step by the litmus harness, never held
    /// across cycles.
    pub(crate) issue_mask: u32,
}

/// A point-in-time copy of one [`Core`], captured by [`Core::snapshot`]
/// as part of a [`crate::MachineSnapshot`].
#[derive(Clone, Debug)]
pub(crate) struct CoreSnapshot {
    threads: Vec<Thread>,
    memunit: glsc_core::CoreMemUnitSnapshot,
    records: Vec<IssueRecord>,
    rr: usize,
    halted: usize,
    at_barrier: usize,
    issued_any: bool,
}

impl CoreSnapshot {
    /// Whether the captured memory unit was fully drained.
    pub(crate) fn memunit_is_idle(&self) -> bool {
        self.memunit.is_idle()
    }
}

impl Core {
    /// Creates core `id` per the machine configuration.
    pub fn new(id: usize, cfg: &MachineConfig) -> Self {
        let n = cfg.threads_per_core;
        Self {
            id,
            threads: (0..n).map(|_| Thread::new(cfg.simd_width)).collect(),
            memunit: CoreMemUnit::with_order(
                id,
                n,
                cfg.glsc,
                cfg.mem.memory_order,
                cfg.mem.line_bytes,
                cfg.mem.l2_banks,
            ),
            records: vec![IssueRecord::NotRunning; n],
            rr: 0,
            scratch_regs: Vec::with_capacity(4),
            halted: 0,
            at_barrier: 0,
            issued_any: false,
            issue_mask: u32::MAX,
        }
    }

    /// Resets the incremental status counters after the machine rebuilds
    /// every thread (program load).
    pub(crate) fn reset_status_counts(&mut self) {
        self.halted = 0;
        self.at_barrier = 0;
    }

    /// Applies memory completions to thread state, draining `comps` so the
    /// caller can reuse the buffer next cycle.
    pub fn apply_completions(&mut self, comps: &mut Vec<MemCompletion>) {
        for comp in comps.drain(..) {
            match comp {
                MemCompletion::Lsu(LsuCompletion::ScalarLoad {
                    tid,
                    rd,
                    value,
                    done,
                }) => {
                    self.threads[tid as usize].deliver_mem(rd, value as u64, done);
                }
                MemCompletion::Lsu(LsuCompletion::ScalarSc { tid, rd, ok, done }) => {
                    let th = &mut self.threads[tid as usize];
                    th.stats.elems_completed += ok as u64;
                    th.deliver_mem(rd, ok as u64, done);
                }
                MemCompletion::Lsu(LsuCompletion::StoreDrained { .. }) => {}
                MemCompletion::Lsu(LsuCompletion::VectorPart {
                    tid,
                    lane_values,
                    done,
                }) => {
                    let th = &mut self.threads[tid as usize];
                    let ThreadStatus::BlockedVector {
                        pending_parts,
                        done: acc_done,
                        vd,
                        lanes,
                        sync: _,
                    } = &mut th.status
                    else {
                        panic!("vector part for thread not blocked on a vector op");
                    };
                    *pending_parts -= 1;
                    *acc_done = (*acc_done).max(done);
                    lanes.extend(lane_values);
                    if *pending_parts == 0 {
                        let vd = *vd;
                        let ready = *acc_done;
                        let lanes = std::mem::take(lanes);
                        if let Some(vd) = vd {
                            for (lane, value) in lanes {
                                th.arch
                                    .set_vlane(glsc_isa::VReg::new(vd), lane as usize, value);
                            }
                        }
                        th.status = ThreadStatus::Running;
                        th.next_issue_at = th.next_issue_at.max(ready);
                    }
                }
                MemCompletion::Gsu(c) => {
                    let th = &mut self.threads[c.tid as usize];
                    debug_assert!(matches!(th.status, ThreadStatus::BlockedGsu { .. }));
                    if let Some(vd) = c.vd {
                        for (lane, value) in &c.lane_values {
                            th.arch
                                .set_vlane(glsc_isa::VReg::new(vd), *lane as usize, *value);
                        }
                    }
                    if let Some(fd) = c.fd {
                        th.arch.set_mreg(glsc_isa::MReg::new(fd), c.mask);
                        // A success-mask without a data destination is a
                        // vscattercond: its set bits are committed elements
                        // (gatherlink carries both fd and vd and commits
                        // nothing).
                        if c.vd.is_none() {
                            th.stats.elems_completed += u64::from(c.mask.count_ones());
                        }
                    }
                    th.status = ThreadStatus::Running;
                    th.next_issue_at = th.next_issue_at.max(c.done);
                }
            }
        }
    }

    /// Returns `None` when the thread can issue now, or the stall reason.
    fn check_stall(&mut self, t: usize, program: &Program, now: u64) -> Option<StallKind> {
        let th = &self.threads[t];
        if now < th.next_issue_at {
            return Some(StallKind::Pipeline);
        }
        let Some(instr) = program.fetch(th.arch.pc) else {
            return None; // falls off the end: issue path halts it
        };
        exec::src_regs(instr, &mut self.scratch_regs);
        let th = &self.threads[t];
        for r in &self.scratch_regs {
            if !th.reg_is_ready(*r, now) {
                return Some(if th.reg_from_mem[r.index()] {
                    StallKind::OperandMem
                } else {
                    StallKind::Pipeline
                });
            }
        }
        if let Some(rd) = exec::dst_reg(instr) {
            if !th.reg_is_ready(rd, now) {
                return Some(if th.reg_from_mem[rd.index()] {
                    StallKind::OperandMem
                } else {
                    StallKind::Pipeline
                });
            }
        }
        if matches!(instr, Instr::Store { .. }) && !self.memunit.can_accept_store(t as u8) {
            return Some(StallKind::StoreBufferFull);
        }
        // Ordering gates (DESIGN.md §17). Under sequential consistency the
        // write buffer is never used, so both conditions below are
        // vacuously false and the SC timing is untouched.
        if matches!(instr, Instr::Barrier) && self.memunit.lsu_buffered_stores(t as u8) > 0 {
            // A barrier is a synchronization point: the thread's buffered
            // stores must be globally visible before it reports arrival.
            return Some(StallKind::Fence);
        }
        if let Instr::Fence { kind } = instr {
            let tid = t as u8;
            let drained = match kind {
                glsc_isa::FenceKind::Full => self.memunit.lsu_thread_pending(tid) == 0,
                glsc_isa::FenceKind::Acquire => self.memunit.lsu_thread_entries(tid) == 0,
                glsc_isa::FenceKind::Release => self.memunit.lsu_buffered_stores(tid) == 0,
            };
            if !drained {
                return Some(StallKind::Fence);
            }
        }
        None
    }

    /// The issue stage for cycle `now`: selects up to `issue_width` ready
    /// threads (round-robin) and executes one instruction each, recording
    /// per-thread issue/stall outcomes for later classification.
    pub fn issue_stage(&mut self, program: &Program, cfg: &MachineConfig, now: u64) {
        let n = self.threads.len();
        let mut slots = cfg.issue_width;
        self.issued_any = false;
        for r in &mut self.records {
            *r = IssueRecord::NotRunning;
        }
        let start = self.rr;
        self.rr = (self.rr + 1) % n;
        for off in 0..n {
            let t = (start + off) % n;
            if self.threads[t].status != ThreadStatus::Running {
                continue;
            }
            if self.issue_mask & (1 << t) == 0 {
                // Externally descheduled this cycle (litmus schedule
                // controller): accounted like losing the issue slot.
                self.records[t] = IssueRecord::Stalled(StallKind::NoSlot, false);
                continue;
            }
            let sync_at_pc = program
                .fetch(self.threads[t].arch.pc)
                .map(|_| program.is_sync(self.threads[t].arch.pc))
                .unwrap_or(false);
            match self.check_stall(t, program, now) {
                Some(kind) => {
                    self.records[t] = IssueRecord::Stalled(kind, sync_at_pc);
                }
                None if slots == 0 => {
                    self.records[t] = IssueRecord::Stalled(StallKind::NoSlot, sync_at_pc);
                }
                None => {
                    slots -= 1;
                    self.issued_any = true;
                    self.issue_one(t, program, cfg, now, sync_at_pc);
                    self.records[t] = IssueRecord::Issued(sync_at_pc);
                }
            }
        }
    }

    /// Executes one instruction for thread `t` (all checks already passed).
    fn issue_one(
        &mut self,
        t: usize,
        program: &Program,
        cfg: &MachineConfig,
        now: u64,
        sync: bool,
    ) {
        let tid = t as u8;
        let width = cfg.simd_width;
        let pc = self.threads[t].arch.pc;
        let Some(instr) = program.fetch(pc) else {
            self.threads[t].status = ThreadStatus::Halted;
            self.halted += 1;
            return;
        };
        let instr = *instr;
        {
            let th = &mut self.threads[t];
            th.stats.instructions += 1;
            if sync {
                th.stats.sync_instructions += 1;
            }
        }
        match instr {
            Instr::Load { rd, base, offset } | Instr::LoadLinked { rd, base, offset } => {
                let addr = self.threads[t].arch.reg(base).wrapping_add(offset as u64);
                let action = if matches!(instr, Instr::Load { .. }) {
                    LsuAction::LoadTo {
                        rd: rd.index() as u8,
                    }
                } else {
                    LsuAction::LlTo {
                        rd: rd.index() as u8,
                    }
                };
                self.memunit
                    .lsu_push(glsc_core::LsuEntry { tid, addr, action }, now);
                let th = &mut self.threads[t];
                th.mark_pending_mem(rd);
                th.arch.pc += 1;
                th.next_issue_at = now + 1;
            }
            Instr::Store { rs, base, offset } => {
                let th = &self.threads[t];
                let addr = th.arch.reg(base).wrapping_add(offset as u64);
                let value = th.arch.reg(rs) as u32;
                self.memunit.lsu_push(
                    glsc_core::LsuEntry {
                        tid,
                        addr,
                        action: LsuAction::StoreVal { value },
                    },
                    now,
                );
                let th = &mut self.threads[t];
                th.arch.pc += 1;
                th.next_issue_at = now + 1;
            }
            Instr::StoreCond {
                rd,
                rs,
                base,
                offset,
            } => {
                let th = &self.threads[t];
                let addr = th.arch.reg(base).wrapping_add(offset as u64);
                let value = th.arch.reg(rs) as u32;
                self.memunit.lsu_push(
                    glsc_core::LsuEntry {
                        tid,
                        addr,
                        action: LsuAction::ScVal {
                            rd: rd.index() as u8,
                            value,
                        },
                    },
                    now,
                );
                let th = &mut self.threads[t];
                th.mark_pending_mem(rd);
                th.arch.pc += 1;
                th.next_issue_at = now + 1;
            }
            Instr::VLoad {
                vd,
                base,
                offset,
                mask,
            }
            | Instr::VStore {
                vs: vd,
                base,
                offset,
                mask,
            } => {
                let is_load = matches!(instr, Instr::VLoad { .. });
                let th = &self.threads[t];
                let m = mask.map_or(th.arch.full_mask(), |f| th.arch.mreg(f));
                let base_addr = th.arch.reg(base).wrapping_add(offset as u64);
                let line_bytes = cfg.mem.line_bytes;
                // Group active lanes by line.
                let mut groups: Vec<(u64, Vec<(u8, u64)>)> = Vec::new();
                for lane in 0..width {
                    if m & (1 << lane) == 0 {
                        continue;
                    }
                    let addr = base_addr + ELEM_BYTES * lane as u64;
                    let line = line_of(addr, line_bytes);
                    match groups.iter_mut().find(|(l, _)| *l == line) {
                        Some((_, v)) => v.push((lane as u8, addr)),
                        None => groups.push((line, vec![(lane as u8, addr)])),
                    }
                }
                let th = &mut self.threads[t];
                th.arch.pc += 1;
                if groups.is_empty() {
                    th.next_issue_at = now + 1;
                    return;
                }
                let parts = groups.len();
                let vd_idx = vd.index() as u8;
                let values: Vec<Vec<(u64, u32)>> = if is_load {
                    Vec::new()
                } else {
                    let data = th.arch.vreg(vd).to_vec();
                    groups
                        .iter()
                        .map(|(_, lanes)| {
                            lanes.iter().map(|&(l, a)| (a, data[l as usize])).collect()
                        })
                        .collect()
                };
                th.status = ThreadStatus::BlockedVector {
                    pending_parts: parts,
                    done: 0,
                    vd: is_load.then_some(vd_idx),
                    lanes: Vec::new(),
                    sync,
                };
                for (i, (line, lanes)) in groups.into_iter().enumerate() {
                    let action = if is_load {
                        LsuAction::VLoadLanes { lanes }
                    } else {
                        LsuAction::VStoreLanes {
                            lanes: values[i].clone(),
                        }
                    };
                    self.memunit.lsu_push(
                        glsc_core::LsuEntry {
                            tid,
                            addr: line,
                            action,
                        },
                        now,
                    );
                }
            }
            Instr::VGather {
                vd,
                base,
                vidx,
                mask,
            } => {
                let elems = self.gsu_elems(
                    t,
                    base,
                    vidx,
                    mask.map(|f| self.threads[t].arch.mreg(f)),
                    None,
                    width,
                );
                self.start_gsu(
                    t,
                    GsuKind::Gather {
                        vd: vd.index() as u8,
                    },
                    elems,
                    width,
                    sync,
                );
            }
            Instr::VScatter {
                vs,
                base,
                vidx,
                mask,
            } => {
                let elems = self.gsu_elems(
                    t,
                    base,
                    vidx,
                    mask.map(|f| self.threads[t].arch.mreg(f)),
                    Some(vs),
                    width,
                );
                self.start_gsu(t, GsuKind::Scatter, elems, width, sync);
            }
            Instr::VGatherLink {
                fd,
                vd,
                base,
                vidx,
                fsrc,
            } => {
                let m = self.threads[t].arch.mreg(fsrc);
                let elems = self.gsu_elems(t, base, vidx, Some(m), None, width);
                self.start_gsu(
                    t,
                    GsuKind::GatherLink {
                        fd: fd.index() as u8,
                        vd: vd.index() as u8,
                    },
                    elems,
                    width,
                    sync,
                );
            }
            Instr::VScatterCond {
                fd,
                vs,
                base,
                vidx,
                fsrc,
            } => {
                let m = self.threads[t].arch.mreg(fsrc);
                let elems = self.gsu_elems(t, base, vidx, Some(m), Some(vs), width);
                self.start_gsu(
                    t,
                    GsuKind::ScatterCond {
                        fd: fd.index() as u8,
                    },
                    elems,
                    width,
                    sync,
                );
            }
            Instr::Fence { .. } => {
                // check_stall held the fence until its drain condition
                // cleared; retiring it is a one-cycle no-op.
                self.memunit.note_fence();
                let th = &mut self.threads[t];
                th.arch.pc += 1;
                th.next_issue_at = now + 1;
            }
            _ => {
                let th = &mut self.threads[t];
                let outcome = exec::step_compute(&mut th.arch, &instr, program, &cfg.lat);
                match outcome {
                    StepOutcome::Compute {
                        dst,
                        latency,
                        serialize,
                    } => {
                        if let Some(rd) = dst {
                            th.mark_alu(rd, now + latency);
                        }
                        th.next_issue_at = if serialize { now + latency } else { now + 1 };
                    }
                    StepOutcome::Taken => {
                        th.next_issue_at = now + 1 + cfg.branch_penalty;
                    }
                    StepOutcome::NotTaken => {
                        th.next_issue_at = now + 1;
                    }
                    StepOutcome::Halt => {
                        th.status = ThreadStatus::Halted;
                        self.halted += 1;
                    }
                    StepOutcome::Barrier => {
                        th.status = ThreadStatus::AtBarrier;
                        self.at_barrier += 1;
                    }
                    StepOutcome::Memory => unreachable!("memory ops handled above"),
                }
            }
        }
    }

    /// Builds the GSU element list `(lane, address, value)` for the active
    /// lanes of an indexed memory instruction.
    fn gsu_elems(
        &self,
        t: usize,
        base: Reg,
        vidx: glsc_isa::VReg,
        mask: Option<u32>,
        values_from: Option<glsc_isa::VReg>,
        width: usize,
    ) -> Vec<(u8, u64, u32)> {
        let th = &self.threads[t];
        let m = mask.unwrap_or_else(|| th.arch.full_mask());
        let base_addr = th.arch.reg(base);
        let idx = th.arch.vreg(vidx);
        let vals = values_from.map(|v| th.arch.vreg(v));
        (0..width)
            .filter(|lane| m & (1 << lane) != 0)
            .map(|lane| {
                let addr = base_addr.wrapping_add(ELEM_BYTES * idx[lane] as u64);
                let value = vals.map_or(0, |v| v[lane]);
                (lane as u8, addr, value)
            })
            .collect()
    }

    fn start_gsu(
        &mut self,
        t: usize,
        kind: GsuKind,
        elems: Vec<(u8, u64, u32)>,
        width: usize,
        sync: bool,
    ) {
        debug_assert!(
            !self.memunit.gsu_busy(t as u8),
            "thread issued while GSU busy"
        );
        self.memunit.gsu_start(t as u8, kind, elems, width);
        let th = &mut self.threads[t];
        th.arch.pc += 1;
        th.status = ThreadStatus::BlockedGsu { sync };
    }

    /// End-of-cycle statistics classification (Fig. 5(a) sync attribution
    /// and Table 4 memory-stall accounting).
    pub fn classify_cycle(&mut self) {
        for (t, th) in self.threads.iter_mut().enumerate() {
            match &th.status {
                ThreadStatus::Halted => {}
                ThreadStatus::AtBarrier => {
                    th.stats.active_cycles += 1;
                    th.stats.barrier_cycles += 1;
                    th.stats.sync_cycles += 1;
                }
                ThreadStatus::BlockedGsu { sync } | ThreadStatus::BlockedVector { sync, .. } => {
                    th.stats.active_cycles += 1;
                    th.stats.mem_stall_cycles += 1;
                    if *sync {
                        th.stats.sync_cycles += 1;
                    }
                }
                ThreadStatus::Running => {
                    th.stats.active_cycles += 1;
                    match self.records[t] {
                        IssueRecord::Issued(sync) => {
                            if sync {
                                th.stats.sync_cycles += 1;
                            }
                        }
                        IssueRecord::Stalled(kind, sync) => {
                            match kind {
                                StallKind::OperandMem
                                | StallKind::StoreBufferFull
                                | StallKind::Fence => {
                                    th.stats.mem_stall_cycles += 1;
                                }
                                StallKind::Pipeline => th.stats.compute_stall_cycles += 1,
                                StallKind::NoSlot => th.stats.issue_stall_cycles += 1,
                            }
                            if sync {
                                th.stats.sync_cycles += 1;
                            }
                        }
                        IssueRecord::NotRunning => {
                            // Became Running after the issue stage (e.g.
                            // unblocked by a completion): neutral cycle.
                        }
                    }
                }
            }
        }
    }

    /// Whether every thread on this core has halted.
    pub fn all_halted(&self) -> bool {
        debug_assert_eq!(
            self.halted,
            self.threads.iter().filter(|t| t.is_halted()).count()
        );
        self.halted == self.threads.len()
    }

    /// Releases every thread waiting at the barrier (the machine decided
    /// the barrier is complete); they may issue again from `now + 1`.
    pub(crate) fn release_barrier_threads(&mut self, now: u64) {
        for th in &mut self.threads {
            if th.status == ThreadStatus::AtBarrier {
                th.status = ThreadStatus::Running;
                th.next_issue_at = now + 1;
            }
        }
        self.at_barrier = 0;
    }

    /// The earliest cycle at which Running thread `t` could pass
    /// [`check_stall`](Self::check_stall), assuming no new memory
    /// completions arrive (valid only while this core's memory unit is
    /// idle, so every scoreboard entry is finite).
    pub(crate) fn earliest_issue(&mut self, t: usize, program: &Program) -> u64 {
        let th = &self.threads[t];
        let mut earliest = th.next_issue_at;
        let Some(instr) = program.fetch(th.arch.pc) else {
            return earliest; // falls off the end: halts at next_issue_at
        };
        exec::src_regs(instr, &mut self.scratch_regs);
        if let Some(rd) = exec::dst_reg(instr) {
            self.scratch_regs.push(rd);
        }
        let th = &self.threads[t];
        for r in &self.scratch_regs {
            let ready = th.reg_ready[r.index()];
            debug_assert_ne!(
                ready,
                crate::thread::PENDING,
                "pending memory operand with an idle memory unit"
            );
            earliest = earliest.max(ready);
        }
        earliest
    }

    /// Captures a point-in-time copy of this core: every thread (arch
    /// registers, vector/mask registers, status, scoreboard, statistics),
    /// the round-robin pointer and per-thread issue records, the
    /// incremental halted/barrier counters, and the memory unit's
    /// in-flight state. `scratch_regs` is intentionally excluded — it is
    /// a transient operand-decode buffer, fully rewritten before every
    /// read.
    pub(crate) fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            threads: self.threads.clone(),
            memunit: self.memunit.snapshot(),
            records: self.records.clone(),
            rr: self.rr,
            halted: self.halted,
            at_barrier: self.at_barrier,
            issued_any: self.issued_any,
        }
    }

    /// Replaces this core's state with the snapshot's (same-shape core;
    /// validated by `Machine::restore`).
    pub(crate) fn restore(&mut self, snap: &CoreSnapshot) {
        self.threads = snap.threads.clone();
        self.memunit.restore(&snap.memunit);
        self.records = snap.records.clone();
        self.rr = snap.rr;
        self.halted = snap.halted;
        self.at_barrier = snap.at_barrier;
        self.issued_any = snap.issued_any;
        self.scratch_regs.clear();
        self.issue_mask = u32::MAX;
    }

    /// Bulk stall attribution for the fast-forwarded window `[from, to)`,
    /// cycle-for-cycle identical to running `issue_stage` +
    /// `classify_cycle` for each skipped cycle. Callable only when no
    /// thread can issue anywhere in the window (`to` is at most the
    /// machine-wide minimum [`earliest_issue`](Self::earliest_issue)) and
    /// the memory unit is idle, so thread state is frozen and each
    /// thread's per-cycle classification is piecewise constant with
    /// breakpoints at `next_issue_at` and the scoreboard ready times.
    pub(crate) fn attribute_window(&mut self, program: &Program, from: u64, to: u64) {
        let w = to - from;
        let n = self.threads.len();
        // issue_stage rotates the round-robin start every cycle regardless
        // of issue outcomes.
        self.rr = (self.rr + (w % n as u64) as usize) % n;
        for t in 0..n {
            match self.threads[t].status {
                ThreadStatus::Halted => {}
                ThreadStatus::AtBarrier => {
                    let th = &mut self.threads[t];
                    th.stats.active_cycles += w;
                    th.stats.barrier_cycles += w;
                    th.stats.sync_cycles += w;
                }
                ThreadStatus::BlockedGsu { .. } | ThreadStatus::BlockedVector { .. } => {
                    unreachable!("blocked thread with an idle memory unit")
                }
                ThreadStatus::Running => {
                    let pc = self.threads[t].arch.pc;
                    let (sync, has_instr) = match program.fetch(pc) {
                        Some(instr) => {
                            exec::src_regs(instr, &mut self.scratch_regs);
                            if let Some(rd) = exec::dst_reg(instr) {
                                self.scratch_regs.push(rd);
                            }
                            (program.is_sync(pc), true)
                        }
                        None => (false, false),
                    };
                    let th = &mut self.threads[t];
                    th.stats.active_cycles += w;
                    let mut c = from;
                    while c < to {
                        // Same priority order as check_stall: the issue
                        // redirect first, then the first unready register
                        // (source operands before the destination).
                        let (is_mem, seg_end) = if c < th.next_issue_at {
                            (false, th.next_issue_at.min(to))
                        } else {
                            debug_assert!(
                                has_instr,
                                "pc off the end issues (halts) at next_issue_at"
                            );
                            let first_unready = self
                                .scratch_regs
                                .iter()
                                .find(|r| th.reg_ready[r.index()] > c)
                                .expect("thread ready before the window's end");
                            let i = first_unready.index();
                            (th.reg_from_mem[i], th.reg_ready[i].min(to))
                        };
                        let seg = seg_end - c;
                        if is_mem {
                            th.stats.mem_stall_cycles += seg;
                        } else {
                            th.stats.compute_stall_cycles += seg;
                        }
                        if sync {
                            th.stats.sync_cycles += seg;
                        }
                        c = seg_end;
                    }
                }
            }
        }
    }
}

// ---- durable-snapshot serialization --------------------------------------

impl glsc_wire::Wire for StallKind {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        w.put_u8(match self {
            StallKind::OperandMem => 0,
            StallKind::Pipeline => 1,
            StallKind::StoreBufferFull => 2,
            StallKind::NoSlot => 3,
            StallKind::Fence => 4,
        });
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        let at = r.pos();
        Ok(match r.get_u8()? {
            0 => StallKind::OperandMem,
            1 => StallKind::Pipeline,
            2 => StallKind::StoreBufferFull,
            3 => StallKind::NoSlot,
            4 => StallKind::Fence,
            _ => {
                return Err(glsc_wire::WireError::Invalid {
                    at,
                    what: "StallKind tag",
                })
            }
        })
    }
}

impl glsc_wire::Wire for IssueRecord {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        match self {
            IssueRecord::Issued(sync) => {
                w.put_u8(0);
                sync.encode(w);
            }
            IssueRecord::Stalled(kind, sync) => {
                w.put_u8(1);
                kind.encode(w);
                sync.encode(w);
            }
            IssueRecord::NotRunning => w.put_u8(2),
        }
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        use glsc_wire::Wire;
        let at = r.pos();
        Ok(match r.get_u8()? {
            0 => IssueRecord::Issued(Wire::decode(r)?),
            1 => IssueRecord::Stalled(Wire::decode(r)?, Wire::decode(r)?),
            2 => IssueRecord::NotRunning,
            _ => {
                return Err(glsc_wire::WireError::Invalid {
                    at,
                    what: "IssueRecord tag",
                })
            }
        })
    }
}

glsc_wire::wire_struct!(CoreSnapshot {
    threads,
    memunit,
    records,
    rr,
    halted,
    at_barrier,
    issued_any,
});
