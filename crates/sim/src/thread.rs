//! Per-hardware-thread pipeline state: status, scoreboard, statistics.

use crate::arch::ThreadArch;
use crate::report::ThreadStats;
use glsc_isa::Reg;

/// Why a thread is not currently fetching/issuing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Fetching and issuing normally.
    Running,
    /// Blocked on a GSU instruction (gather/scatter/GLSC are blocking,
    /// §4.1). `sync` records whether the instruction was in a
    /// synchronization region.
    BlockedGsu {
        /// Sync-region flag of the blocking instruction.
        sync: bool,
    },
    /// Blocked on a unit-stride vector load/store split into line parts.
    BlockedVector {
        /// Outstanding line requests.
        pending_parts: usize,
        /// Latest completion cycle seen so far.
        done: u64,
        /// Destination vector register for loads.
        vd: Option<u8>,
        /// Accumulated `(lane, value)` results.
        lanes: Vec<(u8, u32)>,
        /// Sync-region flag of the blocking instruction.
        sync: bool,
    },
    /// Waiting at a global barrier.
    AtBarrier,
    /// Finished (`halt` executed).
    Halted,
}

/// One hardware thread: architectural state plus pipeline bookkeeping.
#[derive(Clone, Debug)]
pub struct Thread {
    /// ISA-visible state.
    pub arch: ThreadArch,
    /// Pipeline status.
    pub status: ThreadStatus,
    /// Cycle at which each scalar register's value becomes readable.
    pub reg_ready: [u64; glsc_isa::NUM_SCALAR_REGS],
    /// Whether the pending producer of each register was a memory access
    /// (for memory-stall attribution).
    pub reg_from_mem: [bool; glsc_isa::NUM_SCALAR_REGS],
    /// The thread may not issue before this cycle (taken-branch redirect,
    /// serializing vector ops).
    pub next_issue_at: u64,
    /// Per-thread statistics.
    pub stats: ThreadStats,
}

/// Sentinel for "pending with unknown completion time" (queued in the LSU).
pub const PENDING: u64 = u64::MAX;

impl Thread {
    /// Creates a runnable thread of the given SIMD width.
    pub fn new(width: usize) -> Self {
        Self {
            arch: ThreadArch::new(width),
            status: ThreadStatus::Running,
            reg_ready: [0; glsc_isa::NUM_SCALAR_REGS],
            reg_from_mem: [false; glsc_isa::NUM_SCALAR_REGS],
            next_issue_at: 0,
            stats: ThreadStats::default(),
        }
    }

    /// Whether `r` holds its final value at cycle `now`.
    pub fn reg_is_ready(&self, r: Reg, now: u64) -> bool {
        self.reg_ready[r.index()] <= now
    }

    /// Marks `r` as produced by a memory access with unknown completion.
    pub fn mark_pending_mem(&mut self, r: Reg) {
        self.reg_ready[r.index()] = PENDING;
        self.reg_from_mem[r.index()] = true;
    }

    /// Marks `r` as produced by an ALU op completing at `ready`.
    pub fn mark_alu(&mut self, r: Reg, ready: u64) {
        self.reg_ready[r.index()] = ready;
        self.reg_from_mem[r.index()] = false;
    }

    /// Delivers a memory value into `r`, readable at `ready`.
    pub fn deliver_mem(&mut self, r_index: u8, value: u64, ready: u64) {
        let i = r_index as usize;
        self.arch.set_reg(Reg::new(r_index), value);
        self.reg_ready[i] = ready;
        self.reg_from_mem[i] = true;
    }

    /// Whether the thread has halted.
    pub fn is_halted(&self) -> bool {
        self.status == ThreadStatus::Halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoreboard_lifecycle() {
        let mut t = Thread::new(4);
        let r = Reg::new(3);
        assert!(t.reg_is_ready(r, 0));
        t.mark_pending_mem(r);
        assert!(!t.reg_is_ready(r, 1_000_000));
        t.deliver_mem(3, 42, 10);
        assert!(!t.reg_is_ready(r, 9));
        assert!(t.reg_is_ready(r, 10));
        assert_eq!(t.arch.reg(r), 42);
        assert!(t.reg_from_mem[3]);
        t.mark_alu(r, 12);
        assert!(!t.reg_from_mem[3]);
    }

    #[test]
    fn fresh_thread_is_running() {
        let t = Thread::new(1);
        assert_eq!(t.status, ThreadStatus::Running);
        assert!(!t.is_halted());
    }
}

// ---- durable-snapshot serialization --------------------------------------

impl glsc_wire::Wire for ThreadStatus {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        match self {
            ThreadStatus::Running => w.put_u8(0),
            ThreadStatus::BlockedGsu { sync } => {
                w.put_u8(1);
                sync.encode(w);
            }
            ThreadStatus::BlockedVector {
                pending_parts,
                done,
                vd,
                lanes,
                sync,
            } => {
                w.put_u8(2);
                pending_parts.encode(w);
                done.encode(w);
                vd.encode(w);
                lanes.encode(w);
                sync.encode(w);
            }
            ThreadStatus::AtBarrier => w.put_u8(3),
            ThreadStatus::Halted => w.put_u8(4),
        }
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        use glsc_wire::Wire;
        let at = r.pos();
        Ok(match r.get_u8()? {
            0 => ThreadStatus::Running,
            1 => ThreadStatus::BlockedGsu {
                sync: Wire::decode(r)?,
            },
            2 => ThreadStatus::BlockedVector {
                pending_parts: Wire::decode(r)?,
                done: Wire::decode(r)?,
                vd: Wire::decode(r)?,
                lanes: Wire::decode(r)?,
                sync: Wire::decode(r)?,
            },
            3 => ThreadStatus::AtBarrier,
            4 => ThreadStatus::Halted,
            _ => {
                return Err(glsc_wire::WireError::Invalid {
                    at,
                    what: "ThreadStatus tag",
                })
            }
        })
    }
}

glsc_wire::wire_struct!(Thread {
    arch,
    status,
    reg_ready,
    reg_from_mem,
    next_issue_at,
    stats,
});
