//! The whole-machine cycle loop: cores, shared memory system, barriers.

use crate::config::MachineConfig;
use crate::cpu::Core;
use crate::report::RunReport;
use crate::thread::ThreadStatus;
use glsc_isa::{Program, Reg};
use glsc_mem::MemorySystem;
use std::error::Error;
use std::fmt;

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No program was loaded before [`Machine::run`].
    NoProgram,
    /// The cycle budget was exhausted (likely livelock/deadlock in the
    /// simulated program); carries the per-thread program counters for
    /// diagnosis.
    MaxCyclesExceeded {
        /// Cycle at which the run aborted.
        cycle: u64,
        /// `(global thread id, pc)` of every non-halted thread.
        stuck: Vec<(usize, usize)>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoProgram => write!(f, "no program loaded"),
            SimError::MaxCyclesExceeded { cycle, stuck } => {
                write!(f, "exceeded max cycles at {cycle}; non-halted threads at pcs {stuck:?}")
            }
        }
    }
}

impl Error for SimError {}

/// The simulated chip multiprocessor.
///
/// Construct with a [`MachineConfig`], initialize memory through
/// [`mem_mut`](Machine::mem_mut), load an SPMD [`Program`] (each hardware
/// thread gets its global id in `r0` and the thread count in `r1`), then
/// [`run`](Machine::run).
#[derive(Clone, Debug)]
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    cores: Vec<Core>,
    program: Option<Program>,
    cycle: u64,
}

impl Machine {
    /// Builds a machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate();
        let mem = MemorySystem::new(cfg.mem.clone(), cfg.cores, cfg.threads_per_core);
        let cores = (0..cfg.cores).map(|id| Core::new(id, &cfg)).collect();
        Self { cfg, mem, cores, program: None, cycle: 0 }
    }

    /// The machine configuration.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Read access to the memory system (backing store, caches, stats).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Write access to the memory system (for initializing workload data).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Loads an SPMD program, resetting every thread. `r0` is set to the
    /// global thread id and `r1` to the total thread count.
    pub fn load_program(&mut self, program: Program) {
        let total = self.cfg.total_threads() as u64;
        for (c, core) in self.cores.iter_mut().enumerate() {
            for (t, th) in core.threads.iter_mut().enumerate() {
                *th = crate::thread::Thread::new(self.cfg.simd_width);
                let gid = (c * self.cfg.threads_per_core + t) as u64;
                th.arch.set_reg(Reg::new(0), gid);
                th.arch.set_reg(Reg::new(1), total);
            }
        }
        self.program = Some(program);
        self.cycle = 0;
    }

    /// Sets register `r` in every thread (for passing arguments; call after
    /// [`load_program`](Machine::load_program)).
    pub fn set_reg_all(&mut self, r: Reg, value: u64) {
        for core in &mut self.cores {
            for th in &mut core.threads {
                th.arch.set_reg(r, value);
            }
        }
    }

    /// The architectural state of global thread `gid` (for tests).
    ///
    /// # Panics
    ///
    /// Panics if `gid` is out of range.
    pub fn thread_arch(&self, gid: usize) -> &crate::arch::ThreadArch {
        let c = gid / self.cfg.threads_per_core;
        let t = gid % self.cfg.threads_per_core;
        &self.cores[c].threads[t].arch
    }

    /// Advances one cycle; returns `true` when every thread has halted.
    pub fn step(&mut self) -> bool {
        let program = self.program.as_ref().expect("program loaded").clone();
        let now = self.cycle;
        for core in &mut self.cores {
            let comps = core.memunit.tick(&mut self.mem, now);
            core.apply_completions(comps);
        }
        for core in &mut self.cores {
            core.issue_stage(&program, &self.cfg, now);
        }
        self.release_barrier(now);
        for core in &mut self.cores {
            core.classify_cycle();
        }
        self.cycle += 1;
        self.cores
            .iter()
            .all(|c| c.all_halted() && c.memunit.is_idle())
    }

    fn release_barrier(&mut self, now: u64) {
        let mut waiting = 0usize;
        let mut live = 0usize;
        for core in &self.cores {
            for th in &core.threads {
                match th.status {
                    ThreadStatus::Halted => {}
                    ThreadStatus::AtBarrier => {
                        waiting += 1;
                        live += 1;
                    }
                    _ => live += 1,
                }
            }
        }
        if live > 0 && waiting == live {
            for core in &mut self.cores {
                for th in &mut core.threads {
                    if th.status == ThreadStatus::AtBarrier {
                        th.status = ThreadStatus::Running;
                        th.next_issue_at = now + 1;
                    }
                }
            }
        }
    }

    /// Runs until every thread halts, returning the aggregated report.
    ///
    /// # Errors
    ///
    /// [`SimError::NoProgram`] when no program was loaded;
    /// [`SimError::MaxCyclesExceeded`] when the configured cycle budget is
    /// exhausted.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        if self.program.is_none() {
            return Err(SimError::NoProgram);
        }
        loop {
            if self.step() {
                return Ok(self.report());
            }
            if self.cycle >= self.cfg.max_cycles {
                let mut stuck = Vec::new();
                for (c, core) in self.cores.iter().enumerate() {
                    for (t, th) in core.threads.iter().enumerate() {
                        if !th.is_halted() {
                            stuck.push((c * self.cfg.threads_per_core + t, th.arch.pc));
                        }
                    }
                }
                return Err(SimError::MaxCyclesExceeded { cycle: self.cycle, stuck });
            }
        }
    }

    /// Builds the statistics report for the run so far.
    pub fn report(&self) -> RunReport {
        let mut report = RunReport {
            cycles: self.cycle,
            threads: Vec::with_capacity(self.cfg.total_threads()),
            mem: self.mem.stats().clone(),
            ..RunReport::default()
        };
        for core in &self.cores {
            for th in &core.threads {
                report.threads.push(th.stats.clone());
            }
            report.lsu.accumulate(core.memunit.lsu_stats());
            report.gsu.accumulate(core.memunit.gsu_stats());
        }
        report
    }
}
