//! The whole-machine cycle loop: cores, shared memory system, barriers.

use crate::config::{ConfigError, MachineConfig};
use crate::cpu::Core;
use crate::report::{RunReport, StallTotals};
use crate::thread::ThreadStatus;
use glsc_core::MemCompletion;
use glsc_isa::{Program, Reg};
use glsc_mem::MemorySystem;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No program was loaded before [`Machine::run`].
    NoProgram,
    /// The configuration was rejected (from [`Machine::try_new`]).
    InvalidConfig(ConfigError),
    /// The cycle budget was exhausted (a non-terminating simulated
    /// program — note a GLSC retry storm lands here, not in
    /// [`SimError::Livelock`], because retries keep issuing); carries the
    /// per-thread program counters and stall totals for diagnosis.
    MaxCyclesExceeded {
        /// Cycle at which the run aborted.
        cycle: u64,
        /// `(global thread id, pc)` of every non-halted thread.
        stuck: Vec<(usize, usize)>,
        /// Machine-wide stall-bucket totals at abort.
        stalls: StallTotals,
    },
    /// The forward-progress watchdog fired: no thread in the machine
    /// issued an instruction for a whole watchdog window (see
    /// [`MachineConfig::watchdog_window`]). Carries a diagnostic dump.
    Livelock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// The configured window that elapsed without progress.
        window: u64,
        /// `(global thread id, pc)` of every non-halted thread.
        stuck: Vec<(usize, usize)>,
        /// Machine-wide stall-bucket totals at abort.
        stalls: StallTotals,
        /// Every live reservation as `(core, line, thread mask)`.
        reservations: Vec<(usize, u64, u8)>,
    },
    /// The starvation detector fired: a thread's run of *consecutive*
    /// store-conditional failures reached the configured threshold (see
    /// [`MachineConfig::starvation_threshold`]). This is the condition the
    /// livelock watchdog is structurally blind to — a retry storm keeps
    /// issuing instructions — and the reason the arbitration policies of
    /// DESIGN.md §12 exist. Carries the full per-thread failure census;
    /// the rendered message includes Jain's fairness index over it.
    Starvation {
        /// Cycle at which the detector fired.
        cycle: u64,
        /// Global id of the starved thread (the longest current streak;
        /// ties break toward the lowest id).
        gid: usize,
        /// The starved thread's consecutive-failure streak.
        streak: u64,
        /// Total SC failures per global thread id (Jain's index over
        /// these is rendered in the Display message).
        failures: Vec<u64>,
        /// Every live reservation as `(core, line, thread mask)` — the
        /// competitors the starved thread keeps losing to.
        reservations: Vec<(usize, u64, u8)>,
    },
    /// A periodic coherence check (see
    /// [`MachineConfig::invariant_check_period`]) found the memory system
    /// in an inconsistent state.
    InvariantViolation {
        /// Cycle of the failing check.
        cycle: u64,
        /// The violated invariant.
        violation: glsc_mem::InvariantViolation,
    },
    /// The vector-clock atomicity oracle (DESIGN.md §17) observed a
    /// foreign write landing inside a GLSC atomic region that nonetheless
    /// committed. Only produced when an oracle is installed on the memory
    /// system ([`glsc_mem::MemorySystem::install_oracle`]); the default
    /// machine never raises it.
    AtomicityViolation {
        /// Cycle at which the violating commit was observed.
        cycle: u64,
        /// The oracle's account of the broken region.
        violation: glsc_mem::AtomicityViolation,
    },
    /// [`Machine::restore`] was called with a snapshot captured under a
    /// different machine configuration; restoring it would silently
    /// change the machine's shape or timing model mid-run. Carries both
    /// configurations for diagnosis.
    SnapshotMismatch {
        /// The restoring machine's configuration.
        machine: Box<MachineConfig>,
        /// The configuration the snapshot was captured under.
        snapshot: Box<MachineConfig>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoProgram => write!(f, "no program loaded"),
            SimError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            SimError::MaxCyclesExceeded {
                cycle,
                stuck,
                stalls,
            } => {
                write!(
                    f,
                    "exceeded max cycles at {cycle}; non-halted threads at pcs {stuck:?}; \
                     stall totals: {stalls}"
                )
            }
            SimError::Livelock {
                cycle,
                window,
                stuck,
                stalls,
                reservations,
            } => {
                write!(
                    f,
                    "livelock: no instruction issued for {window} cycles (aborted at cycle \
                     {cycle}); non-halted threads at pcs {stuck:?}; stall totals: {stalls}; \
                     live reservations (core, line, mask): {reservations:x?}"
                )
            }
            SimError::Starvation {
                cycle,
                gid,
                streak,
                failures,
                reservations,
            } => {
                write!(
                    f,
                    "starvation: thread {gid} failed {streak} consecutive store-conditionals \
                     (aborted at cycle {cycle}); per-thread SC failures {failures:?} \
                     (Jain fairness {:.3}); live reservations (core, line, mask): \
                     {reservations:x?}",
                    crate::report::jain_fairness(failures)
                )
            }
            SimError::InvariantViolation { cycle, violation } => {
                write!(
                    f,
                    "coherence invariant violated at cycle {cycle}: {violation}"
                )
            }
            SimError::AtomicityViolation { cycle, violation } => {
                write!(f, "atomicity violated at cycle {cycle}: {violation}")
            }
            SimError::SnapshotMismatch { machine, snapshot } => {
                write!(
                    f,
                    "snapshot configuration mismatch: machine is {}x{} width {} but the \
                     snapshot was captured on {}x{} width {} (full configs differ)",
                    machine.cores,
                    machine.threads_per_core,
                    machine.simd_width,
                    snapshot.cores,
                    snapshot.threads_per_core,
                    snapshot.simd_width
                )
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidConfig(e) => Some(e),
            SimError::InvariantViolation { violation, .. } => Some(violation),
            SimError::AtomicityViolation { violation, .. } => Some(violation),
            _ => None,
        }
    }
}

/// The simulated chip multiprocessor.
///
/// Construct with a [`MachineConfig`], initialize memory through
/// [`mem_mut`](Machine::mem_mut), load an SPMD [`Program`] (each hardware
/// thread gets its global id in `r0` and the thread count in `r1`), then
/// [`run`](Machine::run).
#[derive(Clone, Debug)]
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    cores: Vec<Core>,
    /// Shared so the per-cycle loop clones a refcount, not the program.
    program: Option<Arc<Program>>,
    cycle: u64,
    /// Reused completion buffer: the steady-state cycle loop performs no
    /// per-cycle heap allocation for completion delivery.
    comp_buf: Vec<MemCompletion>,
}

impl Machine {
    /// Builds a machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid. Use
    /// [`Machine::try_new`] for a non-panicking alternative.
    pub fn new(cfg: MachineConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(m) => m,
            Err(SimError::InvalidConfig(e)) => panic!("{e}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a machine, rejecting an invalid configuration as
    /// [`SimError::InvalidConfig`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] wrapping the first violated constraint
    /// (see [`MachineConfig::check`]).
    pub fn try_new(cfg: MachineConfig) -> Result<Self, SimError> {
        cfg.check().map_err(SimError::InvalidConfig)?;
        let mem = MemorySystem::try_new(cfg.mem.clone(), cfg.cores, cfg.threads_per_core)
            .map_err(|e| SimError::InvalidConfig(ConfigError::Mem(e)))?;
        let cores = (0..cfg.cores).map(|id| Core::new(id, &cfg)).collect();
        Ok(Self {
            cfg,
            mem,
            cores,
            program: None,
            cycle: 0,
            comp_buf: Vec::new(),
        })
    }

    /// The machine configuration.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Returns the machine to its just-constructed state — cold memory
    /// system, fresh cores, no program, cycle 0 — while keeping the large
    /// cache-tag and page-table allocations for reuse. The fleet engine
    /// pools machines per configuration and calls this between jobs;
    /// the cores are rebuilt outright (they are small), so only the
    /// memory system needs a hand-written reset
    /// ([`MemorySystem::reset`]).
    pub fn reset(&mut self) {
        self.mem.reset();
        self.cores = (0..self.cfg.cores)
            .map(|id| Core::new(id, &self.cfg))
            .collect();
        self.program = None;
        self.cycle = 0;
        self.comp_buf.clear();
    }

    /// Read access to the memory system (backing store, caches, stats).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Write access to the memory system (for initializing workload data).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Loads an SPMD program, resetting every thread. `r0` is set to the
    /// global thread id and `r1` to the total thread count.
    pub fn load_program(&mut self, program: Program) {
        let total = self.cfg.total_threads() as u64;
        for (c, core) in self.cores.iter_mut().enumerate() {
            for (t, th) in core.threads.iter_mut().enumerate() {
                *th = crate::thread::Thread::new(self.cfg.simd_width);
                let gid = (c * self.cfg.threads_per_core + t) as u64;
                th.arch.set_reg(Reg::new(0), gid);
                th.arch.set_reg(Reg::new(1), total);
            }
            core.reset_status_counts();
        }
        self.program = Some(Arc::new(program));
        self.cycle = 0;
    }

    /// Sets register `r` in every thread (for passing arguments; call after
    /// [`load_program`](Machine::load_program)).
    pub fn set_reg_all(&mut self, r: Reg, value: u64) {
        for core in &mut self.cores {
            for th in &mut core.threads {
                th.arch.set_reg(r, value);
            }
        }
    }

    /// The architectural state of global thread `gid` (for tests).
    ///
    /// # Panics
    ///
    /// Panics if `gid` is out of range.
    pub fn thread_arch(&self, gid: usize) -> &crate::arch::ThreadArch {
        let c = gid / self.cfg.threads_per_core;
        let t = gid % self.cfg.threads_per_core;
        &self.cores[c].threads[t].arch
    }

    /// Advances one cycle; returns `true` when every thread has halted.
    pub fn step(&mut self) -> bool {
        let program = Arc::clone(self.program.as_ref().expect("program loaded"));
        let now = self.cycle;
        let mut comp_buf = std::mem::take(&mut self.comp_buf);
        for core in &mut self.cores {
            core.memunit.tick_into(&mut self.mem, now, &mut comp_buf);
            core.apply_completions(&mut comp_buf);
        }
        self.comp_buf = comp_buf;
        for core in &mut self.cores {
            core.issue_stage(&program, &self.cfg, now);
        }
        self.release_barrier(now);
        for core in &mut self.cores {
            core.classify_cycle();
        }
        self.cycle += 1;
        self.cores
            .iter()
            .all(|c| c.all_halted() && c.memunit.is_idle())
    }

    /// Advances one cycle with an externally-imposed per-core issue mask
    /// (bit `t` of `masks[c]` allows thread `t` of core `c` to issue this
    /// cycle). Threads masked out are accounted as losing the issue slot.
    /// The mask applies to this step only — the litmus schedule controller
    /// uses this to pin the machine to an explicit thread interleaving.
    /// With all-ones masks this is exactly [`step`](Machine::step).
    ///
    /// # Panics
    ///
    /// Panics if `masks` is shorter than the core count, or no program is
    /// loaded.
    pub fn step_masked(&mut self, masks: &[u32]) -> bool {
        assert!(masks.len() >= self.cores.len(), "mask per core required");
        for (core, &m) in self.cores.iter_mut().zip(masks) {
            core.issue_mask = m;
        }
        let done = self.step();
        for core in &mut self.cores {
            core.issue_mask = u32::MAX;
        }
        done
    }

    /// The first atomicity violation the installed oracle has recorded,
    /// if any (`None` when no oracle is installed — the default).
    pub fn oracle_violation(&self) -> Option<&glsc_mem::AtomicityViolation> {
        self.mem.oracle_violation()
    }

    /// Instructions retired so far by global thread `gid` (lets schedule
    /// controllers observe whether a thread made progress).
    ///
    /// # Panics
    ///
    /// Panics if `gid` is out of range.
    pub fn thread_instructions(&self, gid: usize) -> u64 {
        let c = gid / self.cfg.threads_per_core;
        let t = gid % self.cfg.threads_per_core;
        self.cores[c].threads[t].stats.instructions
    }

    /// Whether global thread `gid` has halted.
    ///
    /// # Panics
    ///
    /// Panics if `gid` is out of range.
    pub fn thread_halted(&self, gid: usize) -> bool {
        let c = gid / self.cfg.threads_per_core;
        let t = gid % self.cfg.threads_per_core;
        self.cores[c].threads[t].is_halted()
    }

    /// Stores currently sitting in global thread `gid`'s write buffer
    /// (always 0 under sequential consistency).
    ///
    /// # Panics
    ///
    /// Panics if `gid` is out of range.
    pub fn buffered_stores(&self, gid: usize) -> usize {
        let c = gid / self.cfg.threads_per_core;
        let t = gid % self.cfg.threads_per_core;
        self.cores[c].memunit.lsu_buffered_stores(t as u8)
    }

    fn release_barrier(&mut self, now: u64) {
        let mut waiting = 0usize;
        let mut halted = 0usize;
        for core in &self.cores {
            waiting += core.at_barrier;
            halted += core.halted;
        }
        let live = self.cfg.total_threads() - halted;
        if live > 0 && waiting == live {
            for core in &mut self.cores {
                core.release_barrier_threads(now);
            }
        }
    }

    /// Jumps the clock forward over cycles in which nothing can happen:
    /// when every memory unit is drained, no completion can arrive and no
    /// thread status can change, so the next interesting cycle is the
    /// minimum over Running threads of their earliest possible issue
    /// cycle. The skipped cycles are bulk-attributed to the exact stall
    /// categories the single-stepped loop would have recorded (see
    /// [`Core::attribute_window`]), keeping [`RunReport`]s
    /// cycle-for-cycle identical to [`run_naive`](Machine::run_naive).
    /// `cap` bounds the jump target (exclusive of the watchdog deadline)
    /// so [`SimError::Livelock`] fires at the same cycle — with the same
    /// bulk-attributed stall stats — as under naive stepping.
    fn fast_forward(&mut self, cap: u64) {
        let now = self.cycle;
        // If any thread issued in the step that just completed, the
        // machine is making forward progress and the earliest-issue probe
        // below would almost always find `target <= now` — skip it so
        // compute-bound phases pay nothing for fast-forward support.
        // A busy memory unit generates/issues/drains every cycle; any
        // pending event likewise pins the machine to single-stepping.
        if self
            .cores
            .iter()
            .any(|c| c.issued_any || c.memunit.next_event_cycle(now).is_some())
        {
            return;
        }
        let program = Arc::clone(self.program.as_ref().expect("program loaded"));
        let mut target = u64::MAX;
        let mut any_running = false;
        for core in &mut self.cores {
            for t in 0..core.threads.len() {
                if core.threads[t].status == ThreadStatus::Running {
                    any_running = true;
                    target = target.min(core.earliest_issue(t, &program));
                }
            }
        }
        // Cap at the cycle budget (and the caller's watchdog deadline) so
        // MaxCyclesExceeded and Livelock fire at the same cycle (with the
        // same partial stats) as the naive loop.
        let target = target.min(self.cfg.max_cycles).min(cap);
        if !any_running || target <= now {
            return;
        }
        for core in &mut self.cores {
            core.attribute_window(&program, now, target);
        }
        self.cycle = target;
    }

    /// Runs until every thread halts, returning the aggregated report.
    /// Uses event-driven fast-forwarding over dead cycles; the resulting
    /// report is cycle-for-cycle identical to
    /// [`run_naive`](Machine::run_naive).
    ///
    /// # Errors
    ///
    /// [`SimError::NoProgram`] when no program was loaded;
    /// [`SimError::MaxCyclesExceeded`] when the configured cycle budget is
    /// exhausted.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        self.run_loop(true)
    }

    /// Runs the machine by single-stepping every cycle, with no
    /// fast-forwarding. Kept as the reference implementation for
    /// differential testing and performance comparison against
    /// [`run`](Machine::run).
    ///
    /// # Errors
    ///
    /// Same as [`run`](Machine::run).
    pub fn run_naive(&mut self) -> Result<RunReport, SimError> {
        self.run_loop(false)
    }

    fn run_loop(&mut self, fast_forward: bool) -> Result<RunReport, SimError> {
        if self.program.is_none() {
            return Err(SimError::NoProgram);
        }
        // Watchdog state: the last cycle at which any thread issued. A
        // fast-forward jump always lands on a cycle where a thread can
        // issue, so a live machine keeps refreshing this even across
        // jumps wider than the window.
        let mut last_progress = self.cycle;
        let mut next_invariant_check = self
            .cfg
            .invariant_check_period
            .map(|p| self.cycle.saturating_add(p));
        loop {
            let done = self.step();
            // The oracle only accumulates during stepped cycles (memory
            // traffic pins the machine to single-stepping), so polling
            // here catches every violation on the cycle it commits —
            // including one on the final step.
            if let Some(v) = self.mem.oracle_violation() {
                return Err(SimError::AtomicityViolation {
                    cycle: self.cycle,
                    violation: v.clone(),
                });
            }
            if done {
                return Ok(self.report());
            }
            // Starvation check directly after the step: SC outcomes are
            // only recorded during stepped cycles (a busy memory unit pins
            // the machine to single-stepping, see `fast_forward`), so the
            // threshold crossing — and this abort — lands on the same
            // cycle in `run` and `run_naive`.
            if let Some(threshold) = self.cfg.starvation_threshold {
                if let Some(err) = self.check_starvation(threshold) {
                    return Err(err);
                }
            }
            if self.cores.iter().any(|c| c.issued_any) {
                last_progress = self.cycle;
            } else if let Some(window) = self.cfg.watchdog_window {
                if self.cycle.saturating_sub(last_progress) >= window {
                    return Err(SimError::Livelock {
                        cycle: self.cycle,
                        window,
                        stuck: self.stuck_threads(),
                        stalls: self.stall_totals(),
                        reservations: self.mem.reservation_state(),
                    });
                }
            }
            if let Some(at) = next_invariant_check {
                if self.cycle >= at {
                    if let Err(violation) = self.mem.try_check_invariants() {
                        return Err(SimError::InvariantViolation {
                            cycle: self.cycle,
                            violation,
                        });
                    }
                    let period = self.cfg.invariant_check_period.unwrap_or(u64::MAX);
                    next_invariant_check = Some(self.cycle.saturating_add(period));
                }
            }
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::MaxCyclesExceeded {
                    cycle: self.cycle,
                    stuck: self.stuck_threads(),
                    stalls: self.stall_totals(),
                });
            }
            if fast_forward {
                // Never jump past the cycle at which the watchdog would
                // fire: the jump target is one short of the deadline, so
                // the next (non-issuing) step lands exactly on it.
                let wd_cap = match self.cfg.watchdog_window {
                    Some(w) => last_progress.saturating_add(w).saturating_sub(1),
                    None => u64::MAX,
                };
                self.fast_forward(wd_cap);
            }
        }
    }

    /// One cycle of the fleet stepping loop. Semantically identical to
    /// [`step`](Machine::step) — same call order into the shared memory
    /// system, same barrier release, same statistics — but with the
    /// per-cycle overhead the solo loop pays hoisted or skipped:
    ///
    /// * the program `Arc` and the completion buffer are passed in by the
    ///   caller instead of cloned/taken every cycle;
    /// * an idle memory unit is not ticked (its tick is a state no-op; it
    ///   can produce no completions, so `apply_completions` on the empty
    ///   buffer is skipped with it);
    /// * a core whose threads have all halted skips the issue stage and
    ///   the statistics classification — both are no-ops for halted
    ///   threads, except the issue round-robin rotation, which is
    ///   unobservable once nothing can issue again.
    fn step_fast(&mut self, program: &Program, comp_buf: &mut Vec<MemCompletion>) -> bool {
        let now = self.cycle;
        for core in &mut self.cores {
            if !core.memunit.is_idle() {
                core.memunit.tick_into(&mut self.mem, now, comp_buf);
                core.apply_completions(comp_buf);
                debug_assert!(comp_buf.is_empty(), "completions fully drained");
            }
        }
        for core in &mut self.cores {
            if core.all_halted() {
                // issue_stage would have cleared this; the watchdog and
                // fast-forward probes must not see a stale value.
                core.issued_any = false;
            } else {
                core.issue_stage(program, &self.cfg, now);
            }
        }
        self.release_barrier(now);
        for core in &mut self.cores {
            if !core.all_halted() {
                core.classify_cycle();
            }
        }
        self.cycle += 1;
        self.cores
            .iter()
            .all(|c| c.all_halted() && c.memunit.is_idle())
    }

    /// Advances the machine by (at most) `budget` cycles of the fleet
    /// stepping loop, with the same abort semantics as
    /// [`run`](Machine::run): the watchdog, starvation detector, periodic
    /// invariant checks and cycle budget all fire on exactly the cycle
    /// they would under the solo loop, and the [`RunReport`] of a
    /// completed run is bit-identical (proven by the fleet differential
    /// oracle). `ctl` carries the detector state across slices;
    /// `comp_buf` is the caller's scratch completion buffer (shared
    /// across fleet members).
    ///
    /// The starvation scan is gated on the memory system's total
    /// store-conditional failure count: a streak can only reach the
    /// threshold on a cycle that records a failure, so skipping the
    /// per-thread scan on all other cycles cannot move the abort.
    pub(crate) fn run_slice(
        &mut self,
        ctl: &mut RunCtl,
        budget: u64,
        comp_buf: &mut Vec<MemCompletion>,
    ) -> Result<SliceOutcome, SimError> {
        let program = match &self.program {
            Some(p) => Arc::clone(p),
            None => return Err(SimError::NoProgram),
        };
        let slice_end = self.cycle.saturating_add(budget);
        loop {
            let done = self.step_fast(&program, comp_buf);
            if let Some(v) = self.mem.oracle_violation() {
                return Err(SimError::AtomicityViolation {
                    cycle: self.cycle,
                    violation: v.clone(),
                });
            }
            if done {
                return Ok(SliceOutcome::Done);
            }
            if let Some(threshold) = self.cfg.starvation_threshold {
                let failures = self.mem.stats().sc_failures;
                if failures != ctl.sc_failures_seen {
                    ctl.sc_failures_seen = failures;
                    if let Some(err) = self.check_starvation(threshold) {
                        return Err(err);
                    }
                }
            }
            if self.cores.iter().any(|c| c.issued_any) {
                ctl.last_progress = self.cycle;
            } else if let Some(window) = self.cfg.watchdog_window {
                if self.cycle.saturating_sub(ctl.last_progress) >= window {
                    return Err(SimError::Livelock {
                        cycle: self.cycle,
                        window,
                        stuck: self.stuck_threads(),
                        stalls: self.stall_totals(),
                        reservations: self.mem.reservation_state(),
                    });
                }
            }
            if let Some(at) = ctl.next_invariant_check {
                if self.cycle >= at {
                    if let Err(violation) = self.mem.try_check_invariants() {
                        return Err(SimError::InvariantViolation {
                            cycle: self.cycle,
                            violation,
                        });
                    }
                    let period = self.cfg.invariant_check_period.unwrap_or(u64::MAX);
                    ctl.next_invariant_check = Some(self.cycle.saturating_add(period));
                }
            }
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::MaxCyclesExceeded {
                    cycle: self.cycle,
                    stuck: self.stuck_threads(),
                    stalls: self.stall_totals(),
                });
            }
            let wd_cap = match self.cfg.watchdog_window {
                Some(w) => ctl.last_progress.saturating_add(w).saturating_sub(1),
                None => u64::MAX,
            };
            self.fast_forward(wd_cap);
            if self.cycle >= slice_end {
                return Ok(SliceOutcome::Paused);
            }
        }
    }

    /// Builds the [`SimError::Starvation`] diagnostic if any thread's
    /// current consecutive-SC-failure streak has reached `threshold`.
    /// When several threads cross together, the longest streak wins and
    /// ties break toward the lowest global thread id — a deterministic
    /// choice, so `run` and `run_naive` report the same starved thread.
    fn check_starvation(&self, threshold: u64) -> Option<SimError> {
        let mut worst: Option<(usize, u64)> = None;
        for (gid, t) in self.mem.stats().sc_threads.iter().enumerate() {
            if t.cur_streak >= threshold && worst.is_none_or(|(_, s)| t.cur_streak > s) {
                worst = Some((gid, t.cur_streak));
            }
        }
        let (gid, streak) = worst?;
        Some(SimError::Starvation {
            cycle: self.cycle,
            gid,
            streak,
            failures: self
                .mem
                .stats()
                .sc_threads
                .iter()
                .map(|t| t.failures)
                .collect(),
            reservations: self.mem.reservation_state(),
        })
    }

    /// `(global thread id, pc)` of every non-halted thread.
    fn stuck_threads(&self) -> Vec<(usize, usize)> {
        let mut stuck = Vec::new();
        for (c, core) in self.cores.iter().enumerate() {
            for (t, th) in core.threads.iter().enumerate() {
                if !th.is_halted() {
                    stuck.push((c * self.cfg.threads_per_core + t, th.arch.pc));
                }
            }
        }
        stuck
    }

    /// Machine-wide stall-bucket totals so far.
    fn stall_totals(&self) -> StallTotals {
        let mut all = Vec::with_capacity(self.cfg.total_threads());
        for core in &self.cores {
            for th in &core.threads {
                all.push(th.stats.clone());
            }
        }
        StallTotals::from_threads(&all)
    }

    /// Captures the complete simulation state at the current cycle as a
    /// self-contained [`MachineSnapshot`].
    ///
    /// "Complete" means every piece of state that influences timing or
    /// results from here on: per-thread architectural state (scalar,
    /// vector and mask registers, pc), thread statuses and scoreboards,
    /// issue round-robin pointers, stall counters accumulated so far, the
    /// LSU/GSU in-flight queues, the entire memory hierarchy (L1 tags and
    /// GLSC reservations in both tracking modes, L2/directory state,
    /// prefetcher streams, event counters, backing store), the installed
    /// chaos [`FaultPlan`](glsc_mem::FaultPlan) with its RNG state, and
    /// the cycle counter. Continuing from a restored snapshot therefore
    /// produces a [`RunReport`] bit-identical to the uninterrupted run —
    /// under [`run`](Machine::run) and [`run_naive`](Machine::run_naive)
    /// alike. A snapshot may be taken at any cycle boundary, including
    /// while vector memory operations are mid-flight.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            cfg: self.cfg.clone(),
            cycle: self.cycle,
            program: self.program.clone(),
            cores: self.cores.iter().map(Core::snapshot).collect(),
            mem: self.mem.snapshot(),
        }
    }

    /// Rewinds (or fast-forwards) this machine to the snapshot's state.
    ///
    /// The machine must have been built with the exact configuration the
    /// snapshot was captured under — shape, latencies, memory geometry and
    /// GLSC policy all affect timing, so a mismatch is rejected rather
    /// than reinterpreted.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotMismatch`] when the configurations differ; the
    /// machine is left untouched.
    pub fn restore(&mut self, snap: &MachineSnapshot) -> Result<(), SimError> {
        if self.cfg != snap.cfg {
            return Err(SimError::SnapshotMismatch {
                machine: Box::new(self.cfg.clone()),
                snapshot: Box::new(snap.cfg.clone()),
            });
        }
        self.cycle = snap.cycle;
        self.program = snap.program.clone();
        for (core, cs) in self.cores.iter_mut().zip(&snap.cores) {
            core.restore(cs);
        }
        self.mem.restore(&snap.mem);
        // The completion buffer is drained within every step; between
        // steps it holds no state, only reusable capacity.
        self.comp_buf.clear();
        Ok(())
    }

    /// Builds a brand-new machine from a snapshot — the crash-recovery
    /// path, where the original [`Machine`] no longer exists.
    pub fn from_snapshot(snap: &MachineSnapshot) -> Self {
        let mut m = Self::try_new(snap.cfg.clone())
            .expect("snapshot was captured from a machine with a validated config");
        m.restore(snap)
            .expect("fresh machine was built from the snapshot's own config");
        m
    }

    /// Builds the statistics report for the run so far.
    pub fn report(&self) -> RunReport {
        let mut report = RunReport {
            cycles: self.cycle,
            threads: Vec::with_capacity(self.cfg.total_threads()),
            mem: self.mem.stats().clone(),
            memory_order: self.cfg.mem.memory_order,
            ..RunReport::default()
        };
        for core in &self.cores {
            for th in &core.threads {
                report.threads.push(th.stats.clone());
            }
            report.lsu.accumulate(core.memunit.lsu_stats());
            report.gsu.accumulate(core.memunit.gsu_stats());
        }
        report
    }
}

/// Abort-detector state threaded across [`Machine::run_slice`] calls so a
/// run split into slices fires the watchdog, starvation and invariant
/// checks on exactly the cycles an unsliced run would.
#[derive(Clone, Debug)]
pub(crate) struct RunCtl {
    /// Last cycle at which any thread issued (watchdog anchor).
    last_progress: u64,
    /// Next cycle at which to run the periodic coherence check.
    next_invariant_check: Option<u64>,
    /// Total SC failures at the last starvation scan (scan gate).
    sc_failures_seen: u64,
}

impl RunCtl {
    /// Detector state for a machine about to start (or resume) running.
    pub(crate) fn new(machine: &Machine) -> Self {
        Self {
            last_progress: machine.cycle,
            next_invariant_check: machine
                .cfg
                .invariant_check_period
                .map(|p| machine.cycle.saturating_add(p)),
            sc_failures_seen: machine.mem.stats().sc_failures,
        }
    }
}

/// Result of one [`Machine::run_slice`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SliceOutcome {
    /// Every thread halted and the memory units drained; the report is
    /// ready.
    Done,
    /// The cycle budget for this slice ran out; call again to continue.
    Paused,
}

/// A self-contained point-in-time copy of a [`Machine`], produced by
/// [`Machine::snapshot`].
///
/// The snapshot owns deep copies of every mutable layer (cores, memory
/// system) and shares only the immutable [`Program`] (via `Arc`), so it
/// remains valid however the original machine evolves — or after it is
/// dropped entirely ([`Machine::from_snapshot`]).
#[derive(Clone, Debug)]
pub struct MachineSnapshot {
    cfg: MachineConfig,
    cycle: u64,
    program: Option<Arc<Program>>,
    cores: Vec<crate::cpu::CoreSnapshot>,
    mem: glsc_mem::MemSnapshot,
}

impl MachineSnapshot {
    /// The cycle at which the snapshot was captured.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The configuration the snapshotted machine was built with.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Whether a program was loaded at capture time.
    pub fn has_program(&self) -> bool {
        self.program.is_some()
    }

    /// Whether every memory unit was drained at capture time (no vector
    /// or scalar memory operations in flight).
    pub fn is_quiescent(&self) -> bool {
        self.cores.iter().all(|c| c.memunit_is_idle())
    }
}

/// Externally-driveable sliced execution: the state
/// [`Machine::run_for`] threads across calls so a run split into slices
/// fires the watchdog, starvation and invariant checks on exactly the
/// cycles an unsliced [`Machine::run`] would. Built for checkpointing
/// drivers (`glsc-serve`): step a bounded number of cycles, snapshot,
/// repeat.
#[derive(Debug)]
pub struct SlicedRun {
    ctl: RunCtl,
    comp_buf: Vec<MemCompletion>,
}

impl SlicedRun {
    /// Detector state for `machine`, about to start or resume running.
    /// Create this *after* restoring a snapshot, not before.
    pub fn new(machine: &Machine) -> Self {
        Self {
            ctl: RunCtl::new(machine),
            comp_buf: Vec::new(),
        }
    }
}

impl Machine {
    /// Advances the machine by at most `budget` cycles, returning
    /// `Some(report)` once every thread has halted and the memory units
    /// have drained, `None` while work remains. The concatenation of
    /// slices is bit-identical to one uninterrupted [`Machine::run`] —
    /// the property the snapshot-codec and kill-drill oracles pin down.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Machine::run`], surfaced on the same cycle.
    pub fn run_for(
        &mut self,
        run: &mut SlicedRun,
        budget: u64,
    ) -> Result<Option<RunReport>, SimError> {
        let mut comp_buf = std::mem::take(&mut run.comp_buf);
        let outcome = self.run_slice(&mut run.ctl, budget, &mut comp_buf);
        run.comp_buf = comp_buf;
        match outcome? {
            SliceOutcome::Done => Ok(Some(self.report())),
            SliceOutcome::Paused => Ok(None),
        }
    }
}

impl glsc_wire::Wire for MachineSnapshot {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        let Self {
            cfg,
            cycle,
            program,
            cores,
            mem,
        } = self;
        cfg.encode(w);
        cycle.encode(w);
        match program {
            None => w.put_u8(0),
            Some(p) => {
                w.put_u8(1);
                p.as_ref().encode(w);
            }
        }
        cores.encode(w);
        mem.encode(w);
    }

    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        use glsc_wire::Wire;
        let cfg = MachineConfig::decode(r)?;
        let cycle = u64::decode(r)?;
        let at = r.pos();
        let program = match r.get_u8()? {
            0 => None,
            1 => Some(Arc::new(Program::decode(r)?)),
            _ => {
                return Err(glsc_wire::WireError::Invalid {
                    at,
                    what: "program tag",
                })
            }
        };
        Ok(Self {
            cfg,
            cycle,
            program,
            cores: Wire::decode(r)?,
            mem: Wire::decode(r)?,
        })
    }
}
