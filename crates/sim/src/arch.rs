//! Architectural (ISA-visible) state of one hardware thread.

use glsc_isa::{MReg, Reg, VReg, NUM_MASK_REGS, NUM_SCALAR_REGS, NUM_VECTOR_REGS};

/// Scalar, vector and mask register files plus the program counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadArch {
    /// Program counter (instruction index).
    pub pc: usize,
    regs: [u64; NUM_SCALAR_REGS],
    vregs: Vec<Vec<u32>>,
    mregs: [u32; NUM_MASK_REGS],
    width: usize,
}

impl ThreadArch {
    /// Creates zeroed state for a machine with `width` SIMD lanes.
    pub fn new(width: usize) -> Self {
        Self {
            pc: 0,
            regs: [0; NUM_SCALAR_REGS],
            vregs: vec![vec![0; width]; NUM_VECTOR_REGS],
            mregs: [0; NUM_MASK_REGS],
            width,
        }
    }

    /// SIMD width of this thread's vector registers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The mask with every lane set.
    pub fn full_mask(&self) -> u32 {
        if self.width >= 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        }
    }

    /// Reads a scalar register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a scalar register.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Reads a vector register.
    pub fn vreg(&self, v: VReg) -> &[u32] {
        &self.vregs[v.index()]
    }

    /// Writes one lane of a vector register.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= width`.
    pub fn set_vlane(&mut self, v: VReg, lane: usize, value: u32) {
        self.vregs[v.index()][lane] = value;
    }

    /// Replaces a whole vector register.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != width`.
    pub fn set_vreg(&mut self, v: VReg, values: &[u32]) {
        assert_eq!(values.len(), self.width, "vector width mismatch");
        self.vregs[v.index()].copy_from_slice(values);
    }

    /// Reads a mask register (bits above the SIMD width are always zero).
    pub fn mreg(&self, m: MReg) -> u32 {
        self.mregs[m.index()]
    }

    /// Writes a mask register, truncating to the SIMD width.
    pub fn set_mreg(&mut self, m: MReg, v: u32) {
        self.mregs[m.index()] = v & self.full_mask();
    }

    /// Iterates over the lanes selected by `mask`.
    pub fn active_lanes(&self, mask: u32) -> impl Iterator<Item = usize> + '_ {
        (0..self.width).filter(move |l| mask & (1 << l) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_on_creation() {
        let a = ThreadArch::new(4);
        assert_eq!(a.pc, 0);
        assert_eq!(a.reg(Reg::new(5)), 0);
        assert_eq!(a.vreg(VReg::new(3)), &[0, 0, 0, 0]);
        assert_eq!(a.mreg(MReg::new(2)), 0);
        assert_eq!(a.full_mask(), 0b1111);
    }

    #[test]
    fn full_mask_at_32_lanes() {
        let a = ThreadArch::new(32);
        assert_eq!(a.full_mask(), u32::MAX);
    }

    #[test]
    fn mask_writes_truncate_to_width() {
        let mut a = ThreadArch::new(4);
        a.set_mreg(MReg::new(0), 0xffff_ffff);
        assert_eq!(a.mreg(MReg::new(0)), 0b1111);
    }

    #[test]
    fn vector_lane_updates() {
        let mut a = ThreadArch::new(4);
        a.set_vlane(VReg::new(1), 2, 99);
        assert_eq!(a.vreg(VReg::new(1)), &[0, 0, 99, 0]);
        a.set_vreg(VReg::new(1), &[1, 2, 3, 4]);
        assert_eq!(a.vreg(VReg::new(1)), &[1, 2, 3, 4]);
    }

    #[test]
    fn active_lanes_follow_mask() {
        let a = ThreadArch::new(8);
        let lanes: Vec<usize> = a.active_lanes(0b1010_0001).collect();
        assert_eq!(lanes, vec![0, 5, 7]);
    }
}

glsc_wire::wire_struct!(ThreadArch {
    pc,
    regs,
    vregs,
    mregs,
    width,
});
