//! A functional (untimed) reference interpreter for single-threaded
//! programs.
//!
//! Used for differential testing: the cycle-level [`Machine`] and this
//! interpreter must produce identical architectural and memory state for
//! any single-threaded program (the timing model may reorder nothing —
//! one thread's operations are program-ordered). Reservations are modeled
//! functionally: `ll`/`vgatherlink` link lines, any store to a line clears
//! its links, `sc`/`vscattercond` succeed iff the link survived (plus
//! lowest-lane-wins alias resolution, as in the GSU).
//!
//! [`Machine`]: crate::Machine

use crate::arch::ThreadArch;
use crate::config::LatencyTable;
use crate::exec::{self, StepOutcome};
use glsc_isa::{Instr, Program, Reg, ELEM_BYTES};
use glsc_mem::{line_of, Backing};
use std::collections::HashSet;

/// Error from the functional interpreter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefError {
    /// Instruction budget exhausted (non-terminating program).
    StepLimit,
    /// A barrier was executed (unsupported single-threaded).
    Barrier,
}

impl std::fmt::Display for RefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefError::StepLimit => write!(f, "step limit exceeded"),
            RefError::Barrier => write!(f, "barrier in single-threaded program"),
        }
    }
}

impl std::error::Error for RefError {}

const LINE_BYTES: u64 = 64;

/// Runs `program` functionally on one thread until `Halt`, mutating
/// `backing`. `r0`/`r1` are set to 0/1 (single thread). Returns the final
/// architectural state.
///
/// # Errors
///
/// [`RefError::StepLimit`] after `max_steps` instructions;
/// [`RefError::Barrier`] if the program uses barriers.
pub fn run_functional(
    program: &Program,
    backing: &mut Backing,
    width: usize,
    max_steps: u64,
) -> Result<ThreadArch, RefError> {
    let lat = LatencyTable::default();
    let mut arch = ThreadArch::new(width);
    arch.set_reg(Reg::new(0), 0);
    arch.set_reg(Reg::new(1), 1);
    let mut links: HashSet<u64> = HashSet::new();
    let mut steps = 0u64;
    loop {
        steps += 1;
        if steps > max_steps {
            return Err(RefError::StepLimit);
        }
        let Some(instr) = program.fetch(arch.pc) else {
            return Ok(arch);
        };
        let instr = *instr;
        match exec::step_compute(&mut arch, &instr, program, &lat) {
            StepOutcome::Halt => return Ok(arch),
            StepOutcome::Barrier => return Err(RefError::Barrier),
            StepOutcome::Memory => {
                step_memory(&mut arch, &instr, backing, &mut links, width);
            }
            _ => {}
        }
    }
}

fn clear_links(links: &mut HashSet<u64>, addr: u64) {
    links.remove(&line_of(addr, LINE_BYTES));
}

fn step_memory(
    arch: &mut ThreadArch,
    instr: &Instr,
    backing: &mut Backing,
    links: &mut HashSet<u64>,
    width: usize,
) {
    use Instr::*;
    match *instr {
        Load { rd, base, offset } => {
            let addr = arch.reg(base).wrapping_add(offset as u64);
            let v = backing.read_u32(addr);
            arch.set_reg(rd, v as u64);
        }
        Store { rs, base, offset } => {
            let addr = arch.reg(base).wrapping_add(offset as u64);
            backing.write_u32(addr, arch.reg(rs) as u32);
            clear_links(links, addr);
        }
        LoadLinked { rd, base, offset } => {
            let addr = arch.reg(base).wrapping_add(offset as u64);
            let v = backing.read_u32(addr);
            arch.set_reg(rd, v as u64);
            links.insert(line_of(addr, LINE_BYTES));
        }
        StoreCond {
            rd,
            rs,
            base,
            offset,
        } => {
            let addr = arch.reg(base).wrapping_add(offset as u64);
            let line = line_of(addr, LINE_BYTES);
            if links.remove(&line) {
                backing.write_u32(addr, arch.reg(rs) as u32);
                arch.set_reg(rd, 1);
            } else {
                arch.set_reg(rd, 0);
            }
        }
        VLoad {
            vd,
            base,
            offset,
            mask,
        } => {
            let m = mask.map_or(arch.full_mask(), |f| arch.mreg(f));
            let base_addr = arch.reg(base).wrapping_add(offset as u64);
            for lane in 0..width {
                if m & (1 << lane) != 0 {
                    let v = backing.read_u32(base_addr + ELEM_BYTES * lane as u64);
                    arch.set_vlane(vd, lane, v);
                }
            }
        }
        VStore {
            vs,
            base,
            offset,
            mask,
        } => {
            let m = mask.map_or(arch.full_mask(), |f| arch.mreg(f));
            let base_addr = arch.reg(base).wrapping_add(offset as u64);
            for lane in 0..width {
                if m & (1 << lane) != 0 {
                    let addr = base_addr + ELEM_BYTES * lane as u64;
                    backing.write_u32(addr, arch.vreg(vs)[lane]);
                    clear_links(links, addr);
                }
            }
        }
        VGather {
            vd,
            base,
            vidx,
            mask,
        } => {
            let m = mask.map_or(arch.full_mask(), |f| arch.mreg(f));
            let base_addr = arch.reg(base);
            for lane in 0..width {
                if m & (1 << lane) != 0 {
                    let addr = base_addr.wrapping_add(ELEM_BYTES * arch.vreg(vidx)[lane] as u64);
                    let v = backing.read_u32(addr);
                    arch.set_vlane(vd, lane, v);
                }
            }
        }
        VScatter {
            vs,
            base,
            vidx,
            mask,
        } => {
            let m = mask.map_or(arch.full_mask(), |f| arch.mreg(f));
            let base_addr = arch.reg(base);
            // Lanes apply in increasing order (the simulator's documented
            // behavior for aliased plain scatters).
            for lane in 0..width {
                if m & (1 << lane) != 0 {
                    let addr = base_addr.wrapping_add(ELEM_BYTES * arch.vreg(vidx)[lane] as u64);
                    backing.write_u32(addr, arch.vreg(vs)[lane]);
                    clear_links(links, addr);
                }
            }
        }
        VGatherLink {
            fd,
            vd,
            base,
            vidx,
            fsrc,
        } => {
            let m = arch.mreg(fsrc);
            let base_addr = arch.reg(base);
            let mut out = 0u32;
            for lane in 0..width {
                if m & (1 << lane) != 0 {
                    let addr = base_addr.wrapping_add(ELEM_BYTES * arch.vreg(vidx)[lane] as u64);
                    let v = backing.read_u32(addr);
                    arch.set_vlane(vd, lane, v);
                    links.insert(line_of(addr, LINE_BYTES));
                    out |= 1 << lane;
                }
            }
            arch.set_mreg(fd, out);
        }
        VScatterCond {
            fd,
            vs,
            base,
            vidx,
            fsrc,
        } => {
            let m = arch.mreg(fsrc);
            let base_addr = arch.reg(base);
            let mut out = 0u32;
            let mut seen: Vec<u64> = Vec::new();
            // First pass: alias resolution (lowest lane per address wins).
            let mut winners = 0u32;
            for lane in 0..width {
                if m & (1 << lane) != 0 {
                    let addr = base_addr.wrapping_add(ELEM_BYTES * arch.vreg(vidx)[lane] as u64);
                    if !seen.contains(&addr) {
                        seen.push(addr);
                        winners |= 1 << lane;
                    }
                }
            }
            // Second pass: winners whose line link survived commit; the
            // committed store clears the line's links.
            for lane in 0..width {
                if winners & (1 << lane) != 0 {
                    let addr = base_addr.wrapping_add(ELEM_BYTES * arch.vreg(vidx)[lane] as u64);
                    let line = line_of(addr, LINE_BYTES);
                    if links.contains(&line) {
                        backing.write_u32(addr, arch.vreg(vs)[lane]);
                        out |= 1 << lane;
                    }
                }
            }
            for lane in 0..width {
                if out & (1 << lane) != 0 {
                    let addr = base_addr.wrapping_add(ELEM_BYTES * arch.vreg(vidx)[lane] as u64);
                    links.remove(&line_of(addr, LINE_BYTES));
                }
            }
            arch.set_mreg(fd, out);
        }
        _ => unreachable!("non-memory instruction routed to step_memory"),
    }
    arch.pc += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsc_isa::{MReg, ProgramBuilder, VReg};

    #[test]
    fn functional_histogram_matches_expectation() {
        let mut b = ProgramBuilder::new();
        let (r_hist, _r_i) = (Reg::new(2), Reg::new(3));
        let (v_idx, v_tmp) = (VReg::new(0), VReg::new(1));
        let (f_todo, f_ok) = (MReg::new(0), MReg::new(1));
        b.li(r_hist, 0x1000);
        b.viota(v_idx);
        b.vand(v_idx, v_idx, 1, None); // lanes -> bins 0,1,0,1
        b.mall(f_todo);
        let retry = b.here();
        b.vgatherlink(f_ok, v_tmp, r_hist, v_idx, f_todo);
        b.vadd(v_tmp, v_tmp, 1, Some(f_ok));
        b.vscattercond(f_ok, v_tmp, r_hist, v_idx, f_ok);
        b.mxor(f_todo, f_todo, f_ok);
        b.bmnz(f_todo, retry);
        b.halt();
        let p = b.build().unwrap();
        let mut backing = Backing::new();
        run_functional(&p, &mut backing, 4, 10_000).unwrap();
        assert_eq!(backing.read_u32(0x1000), 2);
        assert_eq!(backing.read_u32(0x1004), 2);
    }

    #[test]
    fn sc_without_link_fails() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::new(2), 0x100);
        b.li(Reg::new(3), 9);
        b.sc(Reg::new(4), Reg::new(3), Reg::new(2), 0);
        b.li(Reg::new(5), 0x200);
        b.st(Reg::new(4), Reg::new(5), 0);
        b.halt();
        let p = b.build().unwrap();
        let mut backing = Backing::new();
        run_functional(&p, &mut backing, 1, 100).unwrap();
        assert_eq!(backing.read_u32(0x200), 0, "sc must fail without a link");
        assert_eq!(backing.read_u32(0x100), 0, "no store performed");
    }

    #[test]
    fn intervening_store_kills_link() {
        let mut b = ProgramBuilder::new();
        let (base, tmp, ok) = (Reg::new(2), Reg::new(3), Reg::new(4));
        b.li(base, 0x100);
        b.ll(tmp, base, 0);
        b.st(tmp, base, 4); // same line: clears the link
        b.sc(ok, tmp, base, 0);
        b.li(Reg::new(5), 0x200);
        b.st(ok, Reg::new(5), 0);
        b.halt();
        let p = b.build().unwrap();
        let mut backing = Backing::new();
        run_functional(&p, &mut backing, 1, 100).unwrap();
        assert_eq!(backing.read_u32(0x200), 0);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut b = ProgramBuilder::new();
        let top = b.here();
        b.jmp(top);
        let p = b.build().unwrap();
        let mut backing = Backing::new();
        assert_eq!(
            run_functional(&p, &mut backing, 1, 50),
            Err(RefError::StepLimit)
        );
    }

    #[test]
    fn barrier_rejected() {
        let mut b = ProgramBuilder::new();
        b.barrier();
        b.halt();
        let p = b.build().unwrap();
        let mut backing = Backing::new();
        assert_eq!(
            run_functional(&p, &mut backing, 1, 50),
            Err(RefError::Barrier)
        );
    }
}
