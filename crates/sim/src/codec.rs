//! Durable on-disk encoding of [`MachineSnapshot`]s.
//!
//! The envelope that makes a snapshot safe to trust after a crash:
//!
//! ```text
//! +---------------------+----------------------------------------------+
//! | magic    (8 bytes)  | b"GLSCSNAP"                                  |
//! | version  (u32 LE)   | SNAPSHOT_FORMAT_VERSION                      |
//! | length   (u64 LE)   | payload byte count                           |
//! | payload  (length)   | MachineSnapshot in glsc-wire encoding        |
//! | checksum (u64 LE)   | fnv64 over everything above                  |
//! +---------------------+----------------------------------------------+
//! ```
//!
//! Decoding is strict and typed: wrong magic, a version this build does
//! not speak, a truncated or overlong file, a checksum mismatch and a
//! malformed payload are each their own [`SnapshotCodecError`] — a stale
//! or torn checkpoint is *rejected*, never reinterpreted as machine
//! state. Writers get atomicity from tmp+rename (see `glsc-serve`); this
//! layer guarantees that whatever does land under the final name is
//! either the exact captured state or a detectable failure.

use crate::machine::MachineSnapshot;
use std::error::Error;
use std::fmt;

/// Magic string opening every encoded snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GLSCSNAP";

/// Version tag written into (and required from) every encoded snapshot.
/// Bump whenever any serialized state struct changes shape — old
/// checkpoints then decode to [`SnapshotCodecError::VersionMismatch`]
/// and recovery falls back to a fresh run instead of resuming garbage.
/// v2: memory-order axis — `MemConfig.memory_order`, LSU write buffers
/// and drain counters, oracle state (DESIGN.md §17).
pub const SNAPSHOT_FORMAT_VERSION: u32 = 2;

/// Why a byte string failed to decode as a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotCodecError {
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The envelope names a format version this build does not speak.
    VersionMismatch {
        /// Version found in the envelope.
        found: u32,
    },
    /// The input ends before the declared payload + checksum — a torn
    /// write.
    Truncated,
    /// The checksum does not match the bytes — bit rot or a torn write
    /// that happened to keep the length plausible.
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// The checksum held but the payload does not decode — only possible
    /// across an incompatible build that forgot to bump the version, so
    /// it is reported loudly rather than mapped to a miss.
    Malformed(glsc_wire::WireError),
    /// Decoding succeeded but input bytes remain after the envelope.
    TrailingBytes {
        /// Number of bytes left over.
        extra: usize,
    },
}

impl fmt::Display for SnapshotCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotCodecError::BadMagic => write!(f, "not a GLSC snapshot (bad magic)"),
            SnapshotCodecError::VersionMismatch { found } => write!(
                f,
                "snapshot format v{found}, this build speaks v{SNAPSHOT_FORMAT_VERSION}"
            ),
            SnapshotCodecError::Truncated => write!(f, "truncated snapshot (torn write)"),
            SnapshotCodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch (recorded {expected:#018x}, computed {actual:#018x})"
            ),
            SnapshotCodecError::Malformed(e) => write!(f, "snapshot payload malformed: {e}"),
            SnapshotCodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the snapshot")
            }
        }
    }
}

impl Error for SnapshotCodecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotCodecError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl MachineSnapshot {
    /// Encodes this snapshot in the versioned, checksummed envelope.
    /// [`MachineSnapshot::from_bytes`] inverts this exactly; the
    /// round-trip is bit-identical (pinned by `tests/snapshot_codec.rs`
    /// for every kernel × Fig. 6 shape, fault plans included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = glsc_wire::to_bytes(self);
        let mut out = Vec::with_capacity(payload.len() + 28);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let checksum = glsc_wire::fnv64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a snapshot previously written by
    /// [`MachineSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SnapshotCodecError`] naming the first problem; see the variants
    /// for the recovery semantics each implies.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotCodecError> {
        const HEADER: usize = 8 + 4 + 8;
        if bytes.len() >= 8 && bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotCodecError::BadMagic);
        }
        if bytes.len() < HEADER {
            // Too short to even hold the envelope: a torn write, unless
            // what little is there already disagrees with the magic. Past
            // 8 bytes the magic was verified above, so it is always a
            // torn write from here.
            return if bytes.len() >= 8 || SNAPSHOT_MAGIC.starts_with(bytes) {
                Err(SnapshotCodecError::Truncated)
            } else {
                Err(SnapshotCodecError::BadMagic)
            };
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotCodecError::VersionMismatch { found: version });
        }
        let len = u64::from_le_bytes(bytes[12..HEADER].try_into().expect("8 bytes"));
        let Some(total) = len
            .checked_add(HEADER as u64 + 8)
            .and_then(|t| usize::try_from(t).ok())
        else {
            return Err(SnapshotCodecError::Truncated);
        };
        if bytes.len() < total {
            return Err(SnapshotCodecError::Truncated);
        }
        if bytes.len() > total {
            return Err(SnapshotCodecError::TrailingBytes {
                extra: bytes.len() - total,
            });
        }
        let body = &bytes[..total - 8];
        let expected = u64::from_le_bytes(bytes[total - 8..].try_into().expect("8 bytes"));
        let actual = glsc_wire::fnv64(body);
        if expected != actual {
            return Err(SnapshotCodecError::ChecksumMismatch { expected, actual });
        }
        glsc_wire::from_bytes(&body[HEADER..]).map_err(SnapshotCodecError::Malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, MachineConfig};

    fn small_snapshot() -> MachineSnapshot {
        let mut b = glsc_isa::ProgramBuilder::new();
        b.li(glsc_isa::Reg::new(2), 5);
        b.halt();
        let mut m = Machine::new(MachineConfig::paper(1, 2, 4));
        m.load_program(b.build().unwrap());
        m.snapshot()
    }

    #[test]
    fn envelope_round_trips() {
        let snap = small_snapshot();
        let bytes = snap.to_bytes();
        let back = MachineSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.cycle(), snap.cycle());
        assert_eq!(back.cfg(), snap.cfg());
    }

    #[test]
    fn rejects_bad_envelopes() {
        let bytes = small_snapshot().to_bytes();
        assert_eq!(
            MachineSnapshot::from_bytes(b"not a snapshot at all").unwrap_err(),
            SnapshotCodecError::BadMagic
        );
        assert_eq!(
            MachineSnapshot::from_bytes(&bytes[..5]).unwrap_err(),
            SnapshotCodecError::Truncated
        );
        // Every truncation point is detected (torn write at any byte).
        for cut in [13, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    MachineSnapshot::from_bytes(&bytes[..cut]),
                    Err(SnapshotCodecError::Truncated | SnapshotCodecError::ChecksumMismatch { .. })
                ),
                "cut at {cut}"
            );
        }
        // Version skew is typed, not garbage state.
        let mut skew = bytes.clone();
        skew[8] = 0xEE;
        assert!(matches!(
            MachineSnapshot::from_bytes(&skew),
            Err(SnapshotCodecError::VersionMismatch { found }) if found != SNAPSHOT_FORMAT_VERSION
        ));
        // A single flipped payload bit is a checksum mismatch.
        let mut flip = bytes.clone();
        let mid = 24 + (flip.len() - 32) / 2;
        flip[mid] ^= 0x40;
        assert!(matches!(
            MachineSnapshot::from_bytes(&flip),
            Err(SnapshotCodecError::ChecksumMismatch { .. })
        ));
        // Trailing garbage after a valid envelope is rejected.
        let mut extra = bytes.clone();
        extra.extend_from_slice(b"xx");
        assert_eq!(
            MachineSnapshot::from_bytes(&extra).unwrap_err(),
            SnapshotCodecError::TrailingBytes { extra: 2 }
        );
    }
}
