//! Run statistics: per-thread counters and the aggregated report used by
//! the benchmark harness to regenerate the paper's tables and figures.

use glsc_core::{GsuStats, LsuStats};
use glsc_mem::MemStats;

/// Counters for one hardware thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Dynamic instructions issued.
    pub instructions: u64,
    /// Dynamic instructions issued inside synchronization regions.
    pub sync_instructions: u64,
    /// Cycles from start until the thread halted.
    pub active_cycles: u64,
    /// Cycles attributed to synchronization (issued a sync-region
    /// instruction, or stalled on one) — Figure 5(a).
    pub sync_cycles: u64,
    /// Cycles stalled waiting on memory (blocked vector/GSU ops, pending
    /// load operands, full write buffer) — Table 4 "Memory Stalls".
    pub mem_stall_cycles: u64,
    /// Cycles stalled on functional-unit latency.
    pub compute_stall_cycles: u64,
    /// Cycles stalled because the core's issue slots were taken by other
    /// SMT threads.
    pub issue_stall_cycles: u64,
    /// Cycles spent waiting at barriers.
    pub barrier_cycles: u64,
    /// Atomic elements this thread completed: successful scalar `sc`s
    /// plus elements committed by its `vscattercond`s. The per-thread
    /// forward-progress measure of the contention study (DESIGN.md §12) —
    /// under a fair arbiter these stay balanced across threads even when
    /// SC failure counts are not.
    pub elems_completed: u64,
}

/// Machine-wide stall-bucket totals, summed over threads. Embedded in
/// [`SimError`](crate::SimError) diagnostics so an aborted run still
/// reports where its cycles went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallTotals {
    /// Total memory-stall cycles.
    pub mem: u64,
    /// Total functional-unit stall cycles.
    pub compute: u64,
    /// Total issue-contention stall cycles.
    pub issue: u64,
    /// Total barrier-wait cycles.
    pub barrier: u64,
    /// Total synchronization cycles.
    pub sync: u64,
}

impl StallTotals {
    /// Sums the stall buckets of `threads`.
    pub fn from_threads(threads: &[ThreadStats]) -> Self {
        let mut t = Self::default();
        for s in threads {
            t.mem += s.mem_stall_cycles;
            t.compute += s.compute_stall_cycles;
            t.issue += s.issue_stall_cycles;
            t.barrier += s.barrier_cycles;
            t.sync += s.sync_cycles;
        }
        t
    }
}

impl std::fmt::Display for StallTotals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mem {} / compute {} / issue {} / barrier {} / sync {}",
            self.mem, self.compute, self.issue, self.barrier, self.sync
        )
    }
}

/// Aggregated result of one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Total machine cycles until every thread halted.
    pub cycles: u64,
    /// Per-thread counters, indexed by global thread id.
    pub threads: Vec<ThreadStats>,
    /// Memory-system counters.
    pub mem: MemStats,
    /// LSU counters summed over cores.
    pub lsu: LsuStats,
    /// GSU counters summed over cores.
    pub gsu: GsuStats,
    /// Memory consistency model the run executed under (DESIGN.md §17).
    pub memory_order: glsc_mem::MemoryOrder,
}

impl RunReport {
    /// Total dynamic instructions over all threads.
    pub fn total_instructions(&self) -> u64 {
        self.threads.iter().map(|t| t.instructions).sum()
    }

    /// Total memory-stall cycles over all threads.
    pub fn total_mem_stalls(&self) -> u64 {
        self.threads.iter().map(|t| t.mem_stall_cycles).sum()
    }

    /// Fraction of thread-cycles attributed to synchronization, as in
    /// Figure 5(a).
    pub fn sync_fraction(&self) -> f64 {
        let active: u64 = self.threads.iter().map(|t| t.active_cycles).sum();
        if active == 0 {
            return 0.0;
        }
        let sync: u64 = self.threads.iter().map(|t| t.sync_cycles).sum();
        sync as f64 / active as f64
    }

    /// Demand L1 accesses (LSU + GSU line requests).
    pub fn l1_accesses(&self) -> u64 {
        self.mem.l1_accesses()
    }

    /// L1 accesses made by atomic operations: scalar ll/sc plus GLSC line
    /// requests (for Table 4's "L1 Accesses" analysis).
    pub fn atomic_l1_accesses(&self) -> u64 {
        self.lsu.lls + self.lsu.scs + self.gsu.atomic_line_requests
    }

    /// L1 accesses an uncombined implementation would have needed for the
    /// same atomic work (elements rather than lines for GLSC).
    pub fn atomic_l1_accesses_uncombined(&self) -> u64 {
        self.lsu.lls + self.lsu.scs + self.gsu.atomic_elems
    }

    /// GLSC element failure rate (Table 4, last columns).
    pub fn glsc_failure_rate(&self) -> f64 {
        self.gsu.element_failure_rate()
    }

    /// Jain's fairness index over per-thread store-conditional failures
    /// (retries): 1.0 when every thread retried equally often (or nobody
    /// retried), approaching `1/n` when one of `n` threads absorbs every
    /// failure. The headline number of the `contention_policies` figure.
    pub fn sc_retry_fairness(&self) -> f64 {
        let failures: Vec<u64> = self.mem.sc_threads.iter().map(|t| t.failures).collect();
        jain_fairness(&failures)
    }

    /// Highest consecutive-SC-failure run any thread suffered.
    pub fn max_sc_failure_streak(&self) -> u64 {
        self.mem
            .sc_threads
            .iter()
            .map(|t| t.max_streak)
            .max()
            .unwrap_or(0)
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over a per-thread sample:
/// 1.0 for a perfectly even split, `1/n` when a single thread holds
/// everything. An empty or all-zero sample is perfectly fair (1.0).
pub fn jain_fairness(xs: &[u64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().map(|&x| x as f64).sum();
    let sq: f64 = xs.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregations() {
        let mut r = RunReport::default();
        r.threads.push(ThreadStats {
            instructions: 100,
            sync_cycles: 30,
            active_cycles: 100,
            mem_stall_cycles: 20,
            ..ThreadStats::default()
        });
        r.threads.push(ThreadStats {
            instructions: 50,
            sync_cycles: 10,
            active_cycles: 100,
            mem_stall_cycles: 5,
            ..ThreadStats::default()
        });
        assert_eq!(r.total_instructions(), 150);
        assert_eq!(r.total_mem_stalls(), 25);
        assert!((r.sync_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport::default();
        assert_eq!(r.sync_fraction(), 0.0);
        assert_eq!(r.total_instructions(), 0);
        assert_eq!(r.glsc_failure_rate(), 0.0);
    }

    #[test]
    fn stall_totals_sum_and_display() {
        let threads = [
            ThreadStats {
                mem_stall_cycles: 3,
                compute_stall_cycles: 1,
                issue_stall_cycles: 2,
                barrier_cycles: 4,
                sync_cycles: 5,
                ..ThreadStats::default()
            },
            ThreadStats {
                mem_stall_cycles: 7,
                ..ThreadStats::default()
            },
        ];
        let t = StallTotals::from_threads(&threads);
        assert_eq!(t.mem, 10);
        assert_eq!(t.compute, 1);
        assert_eq!(
            t.to_string(),
            "mem 10 / compute 1 / issue 2 / barrier 4 / sync 5"
        );
    }

    #[test]
    fn jain_fairness_edges() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0, 0, 0]), 1.0);
        assert_eq!(jain_fairness(&[5, 5, 5, 5]), 1.0);
        // One thread holds everything: 1/n.
        assert!((jain_fairness(&[12, 0, 0, 0]) - 0.25).abs() < 1e-12);
        // Monotone: a more even split is fairer.
        assert!(jain_fairness(&[6, 6, 0, 0]) > jain_fairness(&[12, 0, 0, 0]));
    }

    #[test]
    fn sc_fairness_from_report() {
        let mut r = RunReport::default();
        r.mem.sc_threads = vec![glsc_mem::ThreadScStats::default(); 2];
        r.mem.sc_threads[0].failures = 8;
        r.mem.sc_threads[0].max_streak = 3;
        r.mem.sc_threads[1].failures = 8;
        r.mem.sc_threads[1].max_streak = 7;
        assert_eq!(r.sc_retry_fairness(), 1.0);
        assert_eq!(r.max_sc_failure_streak(), 7);
        assert_eq!(RunReport::default().max_sc_failure_streak(), 0);
    }

    #[test]
    fn atomic_access_accounting() {
        let mut r = RunReport::default();
        r.lsu.lls = 10;
        r.lsu.scs = 10;
        r.gsu.atomic_line_requests = 5;
        r.gsu.atomic_elems = 20;
        assert_eq!(r.atomic_l1_accesses(), 25);
        assert_eq!(r.atomic_l1_accesses_uncombined(), 40);
    }
}

glsc_wire::wire_struct!(ThreadStats {
    instructions,
    sync_instructions,
    active_cycles,
    sync_cycles,
    mem_stall_cycles,
    compute_stall_cycles,
    issue_stall_cycles,
    barrier_cycles,
    elems_completed,
});
