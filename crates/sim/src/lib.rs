//! # glsc-sim — cycle-level CMP simulator
//!
//! Execution-driven, cycle-driven simulator of the chip multiprocessor
//! evaluated in *Atomic Vector Operations on Chip Multiprocessors*
//! (ISCA 2008, §4.1 and Table 1):
//!
//! * 1–4 in-order cores, 2-wide issue, 1–4 SMT threads per core,
//! * SIMD width 1/4/16 with mask registers,
//! * the `glsc-mem` cache hierarchy (private L1s + banked directory L2),
//! * the `glsc-core` LSU/GSU memory units, including the paper's
//!   `vgatherlink`/`vscattercond` instructions.
//!
//! The central type is [`Machine`]: load a [`Program`] (every hardware
//! thread runs the same SPMD program with its id in `r0` and the thread
//! count in `r1`), call [`Machine::run`], and inspect the returned
//! [`RunReport`].
//!
//! ```
//! use glsc_isa::{ProgramBuilder, Reg};
//! use glsc_sim::{Machine, MachineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Each thread stores its id to memory and halts.
//! let mut b = ProgramBuilder::new();
//! let (r_id, r_base) = (Reg::new(0), Reg::new(2));
//! b.li(r_base, 0x1000);
//! b.shl(Reg::new(3), r_id, 2);
//! b.add(r_base, r_base, Reg::new(3));
//! b.st(r_id, r_base, 0);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut machine = Machine::new(MachineConfig::paper(2, 2, 4));
//! machine.load_program(program);
//! let report = machine.run()?;
//! assert!(report.cycles > 0);
//! let val = machine.mem().backing().read_u32(0x1000 + 4 * 3);
//! assert_eq!(val, 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod codec;
mod config;
mod cpu;
mod exec;
mod fleet;
pub mod litmus;
mod machine;
pub mod reference;
mod report;
mod thread;

pub use arch::ThreadArch;
pub use codec::{SnapshotCodecError, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC};
pub use config::{ConfigError, LatencyTable, MachineConfig};
pub use fleet::{Fleet, FleetFailure, FleetJob, PauseCtl};
pub use machine::{Machine, MachineSnapshot, SimError, SlicedRun};
pub use report::{jain_fairness, RunReport, StallTotals, ThreadStats};
pub use thread::ThreadStatus;

// Re-export for convenience: a Machine exposes its memory system, and
// chaos plans are installed through it (DESIGN.md §9).
pub use glsc_core::GlscConfig;
pub use glsc_isa::Program;
pub use glsc_mem::{
    ArbitrationPolicy, AtomicityOracle, AtomicityViolation, BackingBase, ChaosConfig, ChaosStats,
    FaultPlan, MemConfig, MemSnapshot, MemoryOrder, MemorySystem, MsgClass, NocConfig, NocStats,
    OracleStats, ThreadScStats, Topology,
};
