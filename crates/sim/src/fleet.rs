//! The fleet engine: many machine runs in one process with amortized
//! per-job cost (DESIGN.md §13).
//!
//! A sweep over kernels × configurations is the unit of work this
//! reproduction actually executes (fig5–fig8, table4, the contention
//! studies), and the solo path pays a fixed tax per job: building a
//! [`Machine`] allocates megabytes of cache-tag sets, filling the dataset
//! writes every page of the image, and dropping the machine walks it all
//! again. A [`Fleet`] amortizes all three:
//!
//! * **machine pooling** — finished machines are [`Machine::reset`] (an
//!   allocation-preserving return to the pristine state) and reused for
//!   the next job with the same configuration;
//! * **shared datasets** — jobs mount their initial memory image as a
//!   copy-on-write [`BackingBase`] instead of writing it word by word
//!   ([`glsc_mem::Backing::set_base`]);
//! * **batched stepping** — up to [`width`](Fleet::with_width) live
//!   machines advance round-robin, one
//!   [quantum](Fleet::with_quantum) of cycles per pass, through one
//!   shared completion scratch buffer and a stepping loop with the solo
//!   loop's per-cycle overhead hoisted out (see `Machine::run_slice`).
//!
//! Every completed job yields a [`RunReport`] **bit-identical** to the
//! same job run solo through [`Machine::run`] — enforced by the fleet
//! differential oracle in `glsc-bench` across every kernel, Fig. 6
//! shape, the Ideal and Ring topologies, and a chaos plan.

use crate::config::MachineConfig;
use crate::machine::{Machine, RunCtl, SimError, SliceOutcome};
use crate::report::RunReport;
use glsc_core::MemCompletion;
use glsc_isa::Program;
use glsc_mem::{BackingBase, FaultPlan};
use std::sync::Arc;

/// One job for a [`Fleet`]: a configuration, a program, and optionally a
/// shared dataset base and a fault plan.
#[derive(Clone, Debug)]
pub struct FleetJob {
    /// Machine configuration to run under.
    pub cfg: MachineConfig,
    /// The SPMD program.
    pub program: Program,
    /// Initial memory image, mounted copy-on-write. `None` runs with
    /// all-zero memory.
    pub base: Option<Arc<BackingBase>>,
    /// Fault-injection plan to install before the run (DESIGN.md §9).
    pub fault_plan: Option<FaultPlan>,
}

impl FleetJob {
    /// A plain job: configuration + program, zero-filled memory, no chaos.
    pub fn new(cfg: MachineConfig, program: Program) -> Self {
        Self {
            cfg,
            program,
            base: None,
            fault_plan: None,
        }
    }

    /// Mounts `base` as the job's initial memory image.
    pub fn with_base(mut self, base: Arc<BackingBase>) -> Self {
        self.base = Some(base);
        self
    }

    /// Installs `plan` before the run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// A live fleet member: which job it is running, its detector state, and
/// the rest of its configuration group's job queue.
struct Member {
    idx: usize,
    machine: Machine,
    ctl: RunCtl,
    queue: std::collections::VecDeque<usize>,
}

/// Batched multi-machine runner. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Fleet {
    quantum: u64,
    width: usize,
}

impl Default for Fleet {
    fn default() -> Self {
        Self::new()
    }
}

impl Fleet {
    /// A fleet with the default batch width (4 machines per pass) and
    /// quantum (8192 cycles per machine per pass). Neither knob affects
    /// results, only host-side locality.
    pub fn new() -> Self {
        Self {
            quantum: 8192,
            width: 4,
        }
    }

    /// Sets the per-pass cycle quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Sets how many machines are live at once.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn with_width(mut self, width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        self.width = width;
        self
    }

    /// Runs every job, invoking `on_done(index, machine, result)` as each
    /// finishes (not in index order). The machine handed to the callback
    /// holds the job's final state — backing store for validation, chaos
    /// stats, and so on — and is reset and pooled for reuse after the
    /// callback returns.
    ///
    /// Scheduling is **configuration-affine**: jobs are grouped by
    /// machine configuration and each of the `width` slots drains one
    /// group at a time, so a slot's machine is reset and reused across
    /// every job of its shape instead of bouncing through the pool while
    /// other shapes occupy the window. Building a machine costs
    /// milliseconds (megabytes of cache-tag capacity); resetting one
    /// costs microseconds — without affinity a mixed sweep rebuilds
    /// machines at every slot refill and the fleet loses exactly the
    /// amortization it exists to provide. Within a group, jobs run in
    /// submission order.
    ///
    /// # Panics
    ///
    /// Panics if a job's configuration is invalid (as [`Machine::new`]
    /// would).
    pub fn run_each<F>(&self, jobs: Vec<FleetJob>, mut on_done: F)
    where
        F: FnMut(usize, &mut Machine, Result<RunReport, SimError>),
    {
        // Group job indices by configuration (order-preserving).
        let mut groups: Vec<(MachineConfig, std::collections::VecDeque<usize>)> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            match groups.iter_mut().find(|(cfg, _)| *cfg == job.cfg) {
                Some((_, q)) => q.push_back(i),
                None => groups.push((job.cfg.clone(), std::iter::once(i).collect())),
            }
        }
        let mut groups: std::collections::VecDeque<_> = groups.into();
        let mut jobs: Vec<Option<FleetJob>> = jobs.into_iter().map(Some).collect();
        let mut pool: Vec<Machine> = Vec::new();
        let mut active: Vec<Member> = Vec::new();
        let mut comp_buf: Vec<MemCompletion> = Vec::new();

        // Mounts the next job of `queue` onto `machine` (which is fresh
        // or reset). Returns the mounted member.
        let mut mount = |mut machine: Machine,
                         mut queue: std::collections::VecDeque<usize>,
                         jobs: &mut Vec<Option<FleetJob>>|
         -> Member {
            let idx = queue.pop_front().expect("group queues are non-empty");
            let FleetJob {
                program,
                base,
                fault_plan,
                ..
            } = jobs[idx].take().expect("each job admitted once");
            if let Some(base) = base {
                machine.mem_mut().backing_mut().set_base(base);
            }
            machine.load_program(program);
            if let Some(plan) = fault_plan {
                machine.mem_mut().install_fault_plan(plan);
            }
            let ctl = RunCtl::new(&machine);
            Member {
                idx,
                machine,
                ctl,
                queue,
            }
        };

        loop {
            // Refill the batch window: one group per free slot.
            while active.len() < self.width {
                let Some((cfg, queue)) = groups.pop_front() else {
                    break;
                };
                let machine = match pool.iter().position(|m| *m.cfg() == cfg) {
                    Some(i) => pool.swap_remove(i),
                    None => Machine::new(cfg),
                };
                active.push(mount(machine, queue, &mut jobs));
            }
            if active.is_empty() {
                return;
            }
            // One pass: a quantum for each live member. A finished member
            // reports, resets its machine, and mounts its group's next
            // job in place; an exhausted group parks the machine in the
            // pool and frees the slot for the next group.
            let mut i = 0;
            while i < active.len() {
                let m = &mut active[i];
                let outcome = m.machine.run_slice(&mut m.ctl, self.quantum, &mut comp_buf);
                match outcome {
                    Ok(SliceOutcome::Paused) => i += 1,
                    Err(e) => {
                        let member = &mut active[i];
                        on_done(member.idx, &mut member.machine, Err(e));
                        Self::retire(&mut active, i, &mut pool, &mut jobs, &mut mount);
                    }
                    Ok(SliceOutcome::Done) => {
                        let member = &mut active[i];
                        let report = member.machine.report();
                        on_done(member.idx, &mut member.machine, Ok(report));
                        Self::retire(&mut active, i, &mut pool, &mut jobs, &mut mount);
                    }
                }
            }
        }
    }

    /// Retires `active[i]`'s finished job: resets the machine, mounts the
    /// group's next job in place, or parks the machine and frees the
    /// slot.
    fn retire(
        active: &mut Vec<Member>,
        i: usize,
        pool: &mut Vec<Machine>,
        jobs: &mut Vec<Option<FleetJob>>,
        mount: &mut impl FnMut(
            Machine,
            std::collections::VecDeque<usize>,
            &mut Vec<Option<FleetJob>>,
        ) -> Member,
    ) {
        let member = active.swap_remove(i);
        let mut machine = member.machine;
        machine.reset();
        if member.queue.is_empty() {
            pool.push(machine);
        } else {
            active.push(mount(machine, member.queue, jobs));
        }
    }

    /// Runs every job and returns the results in job order.
    pub fn run_all(&self, jobs: Vec<FleetJob>) -> Vec<Result<RunReport, SimError>> {
        let n = jobs.len();
        let mut results: Vec<Option<Result<RunReport, SimError>>> = (0..n).map(|_| None).collect();
        self.run_each(jobs, |idx, _machine, result| {
            results[idx] = Some(result);
        });
        results
            .into_iter()
            .map(|r| r.expect("every job reported"))
            .collect()
    }
}
