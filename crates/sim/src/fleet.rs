//! The fleet engine: many machine runs in one process with amortized
//! per-job cost (DESIGN.md §13).
//!
//! A sweep over kernels × configurations is the unit of work this
//! reproduction actually executes (fig5–fig8, table4, the contention
//! studies), and the solo path pays a fixed tax per job: building a
//! [`Machine`] allocates megabytes of cache-tag sets, filling the dataset
//! writes every page of the image, and dropping the machine walks it all
//! again. A [`Fleet`] amortizes all three:
//!
//! * **machine pooling** — finished machines are [`Machine::reset`] (an
//!   allocation-preserving return to the pristine state) and reused for
//!   the next job with the same configuration;
//! * **shared datasets** — jobs mount their initial memory image as a
//!   copy-on-write [`BackingBase`] instead of writing it word by word
//!   ([`glsc_mem::Backing::set_base`]);
//! * **batched stepping** — up to [`width`](Fleet::with_width) live
//!   machines advance round-robin, one
//!   [quantum](Fleet::with_quantum) of cycles per pass, through one
//!   shared completion scratch buffer and a stepping loop with the solo
//!   loop's per-cycle overhead hoisted out (see `Machine::run_slice`).
//!
//! Every completed job yields a [`RunReport`] **bit-identical** to the
//! same job run solo through [`Machine::run`] — enforced by the fleet
//! differential oracle in `glsc-bench` across every kernel, Fig. 6
//! shape, the Ideal and Ring topologies, and a chaos plan.

use crate::config::MachineConfig;
use crate::machine::{Machine, MachineSnapshot, RunCtl, SimError, SliceOutcome};
use crate::report::RunReport;
use glsc_core::MemCompletion;
use glsc_isa::Program;
use glsc_mem::{BackingBase, FaultPlan};
use std::sync::Arc;

/// One job for a [`Fleet`]: a configuration, a program, and optionally a
/// shared dataset base and a fault plan.
#[derive(Clone, Debug)]
pub struct FleetJob {
    /// Machine configuration to run under.
    pub cfg: MachineConfig,
    /// The SPMD program.
    pub program: Program,
    /// Initial memory image, mounted copy-on-write. `None` runs with
    /// all-zero memory.
    pub base: Option<Arc<BackingBase>>,
    /// Fault-injection plan to install before the run (DESIGN.md §9).
    pub fault_plan: Option<FaultPlan>,
    /// Resume point: mount this snapshot instead of a fresh program +
    /// image. A snapshot is self-contained (the CoW base is serialized by
    /// value), so `program`, `base` and `fault_plan` are ignored when it
    /// is set; `cfg` must match the snapshot's configuration (it decides
    /// the job's scheduling group).
    pub snapshot: Option<Arc<MachineSnapshot>>,
}

impl FleetJob {
    /// A plain job: configuration + program, zero-filled memory, no chaos.
    pub fn new(cfg: MachineConfig, program: Program) -> Self {
        Self {
            cfg,
            program,
            base: None,
            fault_plan: None,
            snapshot: None,
        }
    }

    /// Mounts `base` as the job's initial memory image.
    pub fn with_base(mut self, base: Arc<BackingBase>) -> Self {
        self.base = Some(base);
        self
    }

    /// Installs `plan` before the run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Resumes the job from `snap` instead of starting it fresh (the
    /// crash-recovery path: a checkpointed job re-enters the fleet
    /// mid-flight and must finish bit-identically to an uninterrupted
    /// run, which [`Machine::restore`] guarantees).
    pub fn with_snapshot(mut self, snap: Arc<MachineSnapshot>) -> Self {
        self.snapshot = Some(snap);
        self
    }
}

/// What a [`Fleet::run_each_supervised`] pause hook tells the fleet to do
/// with the member that just finished a quantum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PauseCtl {
    /// Keep running the job.
    Continue,
    /// Abandon this job (deadline, policy): the member is retired without
    /// a completion callback — the supervisor already knows why.
    FailJob,
    /// Stop the whole fleet (drain). Before returning, the hook is called
    /// once more for every *other* still-active member so the supervisor
    /// can checkpoint each of them; unstarted jobs are never mounted.
    Halt,
}

/// Why a supervised fleet job ended without a report.
#[derive(Debug)]
pub enum FleetFailure {
    /// The simulation aborted with a typed error (livelock, starvation,
    /// cycle budget, invariant violation).
    Sim(SimError),
    /// The stepping loop panicked. The member's machine is discarded, not
    /// pooled — its state cannot be trusted — and the payload message is
    /// preserved for the supervisor's failure ledger.
    Panicked(String),
}

impl std::fmt::Display for FleetFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetFailure::Sim(e) => write!(f, "simulation failed: {e}"),
            FleetFailure::Panicked(msg) => write!(f, "{msg}"),
        }
    }
}

/// A live fleet member: which job it is running, its detector state, and
/// the rest of its configuration group's job queue.
struct Member {
    idx: usize,
    machine: Machine,
    ctl: RunCtl,
    queue: std::collections::VecDeque<usize>,
}

/// Mounts the next job of `queue` onto `machine` (which is fresh or
/// reset): either a fresh program + CoW base + fault plan, or — for a
/// checkpointed job — the snapshot it is resuming from. The detector
/// state is created *after* mounting, as [`Machine::restore`] requires.
fn mount_member(
    mut machine: Machine,
    mut queue: std::collections::VecDeque<usize>,
    jobs: &mut [Option<FleetJob>],
) -> Member {
    let idx = queue.pop_front().expect("group queues are non-empty");
    let FleetJob {
        program,
        base,
        fault_plan,
        snapshot,
        ..
    } = jobs[idx].take().expect("each job admitted once");
    match snapshot {
        Some(snap) => {
            // A pooled machine of the right shape restores in place; a
            // shape drift (callers group by `cfg`, so this only happens
            // if a caller lied about the job's config) falls back to a
            // fresh build from the snapshot's own config.
            if machine.restore(&snap).is_err() {
                machine = Machine::from_snapshot(&snap);
            }
        }
        None => {
            if let Some(base) = base {
                machine.mem_mut().backing_mut().set_base(base);
            }
            machine.load_program(program);
            if let Some(plan) = fault_plan {
                machine.mem_mut().install_fault_plan(plan);
            }
        }
    }
    let ctl = RunCtl::new(&machine);
    Member {
        idx,
        machine,
        ctl,
        queue,
    }
}

/// Renders a panic payload the way the supervisor ledgers expect.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Groups job indices by machine configuration (order-preserving).
fn group_by_config(
    jobs: &[FleetJob],
) -> std::collections::VecDeque<(MachineConfig, std::collections::VecDeque<usize>)> {
    let mut groups: Vec<(MachineConfig, std::collections::VecDeque<usize>)> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        match groups.iter_mut().find(|(cfg, _)| *cfg == job.cfg) {
            Some((_, q)) => q.push_back(i),
            None => groups.push((job.cfg.clone(), std::iter::once(i).collect())),
        }
    }
    groups.into()
}

/// Batched multi-machine runner. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Fleet {
    quantum: u64,
    width: usize,
}

impl Default for Fleet {
    fn default() -> Self {
        Self::new()
    }
}

impl Fleet {
    /// A fleet with the default batch width (4 machines per pass) and
    /// quantum (8192 cycles per machine per pass). Neither knob affects
    /// results, only host-side locality.
    pub fn new() -> Self {
        Self {
            quantum: 8192,
            width: 4,
        }
    }

    /// Sets the per-pass cycle quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Sets how many machines are live at once.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn with_width(mut self, width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        self.width = width;
        self
    }

    /// Runs every job, invoking `on_done(index, machine, result)` as each
    /// finishes (not in index order). The machine handed to the callback
    /// holds the job's final state — backing store for validation, chaos
    /// stats, and so on — and is reset and pooled for reuse after the
    /// callback returns.
    ///
    /// Scheduling is **configuration-affine**: jobs are grouped by
    /// machine configuration and each of the `width` slots drains one
    /// group at a time, so a slot's machine is reset and reused across
    /// every job of its shape instead of bouncing through the pool while
    /// other shapes occupy the window. Building a machine costs
    /// milliseconds (megabytes of cache-tag capacity); resetting one
    /// costs microseconds — without affinity a mixed sweep rebuilds
    /// machines at every slot refill and the fleet loses exactly the
    /// amortization it exists to provide. Within a group, jobs run in
    /// submission order.
    ///
    /// # Panics
    ///
    /// Panics if a job's configuration is invalid (as [`Machine::new`]
    /// would).
    pub fn run_each<F>(&self, jobs: Vec<FleetJob>, mut on_done: F)
    where
        F: FnMut(usize, &mut Machine, Result<RunReport, SimError>),
    {
        let mut groups = group_by_config(&jobs);
        let mut jobs: Vec<Option<FleetJob>> = jobs.into_iter().map(Some).collect();
        let mut pool: Vec<Machine> = Vec::new();
        let mut active: Vec<Member> = Vec::new();
        let mut comp_buf: Vec<MemCompletion> = Vec::new();
        let mut mount = mount_member;

        loop {
            // Refill the batch window: one group per free slot.
            while active.len() < self.width {
                let Some((cfg, queue)) = groups.pop_front() else {
                    break;
                };
                let machine = match pool.iter().position(|m| *m.cfg() == cfg) {
                    Some(i) => pool.swap_remove(i),
                    None => Machine::new(cfg),
                };
                active.push(mount(machine, queue, &mut jobs));
            }
            if active.is_empty() {
                return;
            }
            // One pass: a quantum for each live member. A finished member
            // reports, resets its machine, and mounts its group's next
            // job in place; an exhausted group parks the machine in the
            // pool and frees the slot for the next group.
            let mut i = 0;
            while i < active.len() {
                let m = &mut active[i];
                let outcome = m.machine.run_slice(&mut m.ctl, self.quantum, &mut comp_buf);
                match outcome {
                    Ok(SliceOutcome::Paused) => i += 1,
                    Err(e) => {
                        let member = &mut active[i];
                        on_done(member.idx, &mut member.machine, Err(e));
                        Self::retire(&mut active, i, &mut pool, &mut jobs, &mut mount);
                    }
                    Ok(SliceOutcome::Done) => {
                        let member = &mut active[i];
                        let report = member.machine.report();
                        on_done(member.idx, &mut member.machine, Ok(report));
                        Self::retire(&mut active, i, &mut pool, &mut jobs, &mut mount);
                    }
                }
            }
        }
    }

    /// The supervised variant of [`run_each`](Fleet::run_each): same
    /// config-affine batched stepping, plus the hooks a crash-durable
    /// job service needs (DESIGN.md §15).
    ///
    /// * `on_pause(index, machine)` runs at every quantum boundary of
    ///   every live member — the supervisor's chance to write a
    ///   cycle-cadenced checkpoint, poll for a drain signal, or enforce a
    ///   deadline. Returning [`PauseCtl::FailJob`] retires the member
    ///   with no completion callback; [`PauseCtl::Halt`] stops the fleet
    ///   after offering every *other* live member one final `on_pause`
    ///   (so a drain checkpoints all in-flight slots, not just the one
    ///   that observed the signal).
    /// * `on_done(index, machine, result)` fires as each job finishes.
    ///   Unlike `run_each`, a panic inside the stepping loop is caught
    ///   and reported as [`FleetFailure::Panicked`]; the panicking
    ///   machine is discarded instead of pooled, and the fleet keeps
    ///   going — one hostile job cannot take down the batch.
    /// * Jobs carrying a [snapshot](FleetJob::with_snapshot) resume from
    ///   it bit-identically instead of starting fresh.
    ///
    /// Returns `true` when every job ran to an outcome, `false` when a
    /// hook halted the fleet (jobs not yet mounted never start).
    pub fn run_each_supervised<P, F>(
        &self,
        jobs: Vec<FleetJob>,
        mut on_pause: P,
        mut on_done: F,
    ) -> bool
    where
        P: FnMut(usize, &mut Machine) -> PauseCtl,
        F: FnMut(usize, &mut Machine, Result<RunReport, FleetFailure>),
    {
        let mut groups = group_by_config(&jobs);
        let mut jobs: Vec<Option<FleetJob>> = jobs.into_iter().map(Some).collect();
        let mut pool: Vec<Machine> = Vec::new();
        let mut active: Vec<Member> = Vec::new();
        let mut comp_buf: Vec<MemCompletion> = Vec::new();
        let mut mount = mount_member;

        loop {
            while active.len() < self.width {
                let Some((cfg, queue)) = groups.pop_front() else {
                    break;
                };
                let machine = match pool.iter().position(|m| *m.cfg() == cfg) {
                    Some(i) => pool.swap_remove(i),
                    None => Machine::new(cfg),
                };
                active.push(mount(machine, queue, &mut jobs));
            }
            if active.is_empty() {
                return true;
            }
            let mut i = 0;
            while i < active.len() {
                let m = &mut active[i];
                let sliced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    m.machine.run_slice(&mut m.ctl, self.quantum, &mut comp_buf)
                }));
                match sliced {
                    Err(payload) => {
                        let member = &mut active[i];
                        on_done(
                            member.idx,
                            &mut member.machine,
                            Err(FleetFailure::Panicked(panic_message(payload))),
                        );
                        // Mid-panic machine state cannot be trusted:
                        // drop it and mount the group's next job (if
                        // any) on a fresh build.
                        let member = active.swap_remove(i);
                        if let Some(&next) = member.queue.front() {
                            let cfg = jobs[next]
                                .as_ref()
                                .expect("queued jobs are unmounted")
                                .cfg
                                .clone();
                            active.push(mount(Machine::new(cfg), member.queue, &mut jobs));
                        }
                    }
                    Ok(Ok(SliceOutcome::Paused)) => {
                        let member = &mut active[i];
                        match on_pause(member.idx, &mut member.machine) {
                            PauseCtl::Continue => i += 1,
                            PauseCtl::FailJob => {
                                Self::retire(&mut active, i, &mut pool, &mut jobs, &mut mount);
                            }
                            PauseCtl::Halt => {
                                let halted = member.idx;
                                for other in active.iter_mut() {
                                    if other.idx != halted {
                                        let _ = on_pause(other.idx, &mut other.machine);
                                    }
                                }
                                return false;
                            }
                        }
                    }
                    Ok(Err(e)) => {
                        let member = &mut active[i];
                        on_done(member.idx, &mut member.machine, Err(FleetFailure::Sim(e)));
                        Self::retire(&mut active, i, &mut pool, &mut jobs, &mut mount);
                    }
                    Ok(Ok(SliceOutcome::Done)) => {
                        let member = &mut active[i];
                        let report = member.machine.report();
                        on_done(member.idx, &mut member.machine, Ok(report));
                        Self::retire(&mut active, i, &mut pool, &mut jobs, &mut mount);
                    }
                }
            }
        }
    }

    /// Retires `active[i]`'s finished job: resets the machine, mounts the
    /// group's next job in place, or parks the machine and frees the
    /// slot.
    fn retire(
        active: &mut Vec<Member>,
        i: usize,
        pool: &mut Vec<Machine>,
        jobs: &mut [Option<FleetJob>],
        mount: &mut impl FnMut(
            Machine,
            std::collections::VecDeque<usize>,
            &mut [Option<FleetJob>],
        ) -> Member,
    ) {
        let member = active.swap_remove(i);
        let mut machine = member.machine;
        machine.reset();
        if member.queue.is_empty() {
            pool.push(machine);
        } else {
            active.push(mount(machine, member.queue, jobs));
        }
    }

    /// Runs every job and returns the results in job order.
    pub fn run_all(&self, jobs: Vec<FleetJob>) -> Vec<Result<RunReport, SimError>> {
        let n = jobs.len();
        let mut results: Vec<Option<Result<RunReport, SimError>>> = (0..n).map(|_| None).collect();
        self.run_each(jobs, |idx, _machine, result| {
            results[idx] = Some(result);
        });
        results
            .into_iter()
            .map(|r| r.expect("every job reported"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsc_isa::{ProgramBuilder, Reg};

    /// A countdown loop long enough to pause several times under a small
    /// quantum, ending with a store that proves it ran to completion.
    fn countdown(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let (r_cnt, r_addr) = (Reg::new(2), Reg::new(3));
        b.li(r_cnt, iters);
        b.li(r_addr, 0x2000);
        let top = b.label();
        b.bind(top).expect("fresh label");
        b.addi(r_cnt, r_cnt, -1);
        b.bne(r_cnt, 0, top);
        b.st(r_cnt, r_addr, 0);
        b.halt();
        b.build().expect("countdown assembles")
    }

    fn solo_report(cfg: &MachineConfig, program: &Program) -> RunReport {
        let mut m = Machine::new(cfg.clone());
        m.load_program(program.clone());
        m.run().expect("solo run completes")
    }

    #[test]
    fn supervised_matches_solo_and_counts_pauses() {
        let cfg = MachineConfig::paper(1, 2, 4);
        let program = countdown(200);
        let solo = solo_report(&cfg, &program);

        let mut pauses = 0usize;
        let mut got = None;
        let done = Fleet::new().with_quantum(64).run_each_supervised(
            vec![FleetJob::new(cfg, program)],
            |_, _| {
                pauses += 1;
                PauseCtl::Continue
            },
            |idx, _, result| {
                assert_eq!(idx, 0);
                got = Some(result.expect("job completes"));
            },
        );
        assert!(done);
        assert!(
            pauses > 1,
            "quantum 64 must pause a {}-cycle run",
            solo.cycles
        );
        assert_eq!(got.expect("job reported"), solo);
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        let cfg = MachineConfig::paper(2, 2, 4);
        let program = countdown(300);
        let solo = solo_report(&cfg, &program);

        // Run supervised, capturing a snapshot at the second pause and
        // halting right after — the drain path.
        let mut snap: Option<Arc<MachineSnapshot>> = None;
        let mut pauses = 0usize;
        let done = Fleet::new().with_quantum(64).run_each_supervised(
            vec![FleetJob::new(cfg.clone(), program.clone())],
            |_, machine| {
                pauses += 1;
                if pauses == 2 {
                    snap = Some(Arc::new(machine.snapshot()));
                    PauseCtl::Halt
                } else {
                    PauseCtl::Continue
                }
            },
            |_, _, _| panic!("job must not finish before the halt"),
        );
        assert!(!done, "halted fleet must report an incomplete run");
        let snap = snap.expect("snapshot captured at second pause");
        assert!(snap.cycle() > 0);

        // Resume from the snapshot in a fresh fleet: the final report
        // must be bit-identical to the uninterrupted solo run.
        let mut got = None;
        let done = Fleet::new().with_quantum(64).run_each_supervised(
            vec![FleetJob::new(cfg, program).with_snapshot(snap)],
            |_, _| PauseCtl::Continue,
            |_, _, result| got = Some(result.expect("resumed job completes")),
        );
        assert!(done);
        assert_eq!(got.expect("resumed job reported"), solo);
    }

    #[test]
    fn fail_job_retires_without_completion_and_batch_continues() {
        let cfg = MachineConfig::paper(1, 1, 4);
        let jobs = vec![
            FleetJob::new(cfg.clone(), countdown(5_000)),
            FleetJob::new(cfg.clone(), countdown(100)),
        ];
        let solo = solo_report(&cfg, &countdown(100));
        let mut finished = Vec::new();
        let done = Fleet::new().with_quantum(32).run_each_supervised(
            jobs,
            |idx, _| {
                // Abandon the long job at its first pause (a deadline, in
                // the service's terms); the short one runs out.
                if idx == 0 {
                    PauseCtl::FailJob
                } else {
                    PauseCtl::Continue
                }
            },
            |idx, _, result| finished.push((idx, result.expect("short job completes"))),
        );
        assert!(done);
        assert_eq!(finished.len(), 1, "failed job must not reach on_done");
        assert_eq!(finished[0].0, 1);
        assert_eq!(finished[0].1, solo);
    }
}
