//! Whole-machine configuration (Table 1 of the paper).

use glsc_core::GlscConfig;
use glsc_mem::MemConfig;

/// Functional-unit result latencies in cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyTable {
    /// Simple integer ALU (add/sub/logic/shift/compare/move).
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide / remainder.
    pub int_div: u64,
    /// Floating add/sub/min/max.
    pub fp_add: u64,
    /// Floating multiply.
    pub fp_mul: u64,
    /// Floating divide.
    pub fp_div: u64,
    /// Int<->float conversions.
    pub cvt: u64,
    /// Mask-register operations.
    pub mask_op: u64,
}

impl Default for LatencyTable {
    fn default() -> Self {
        Self {
            int_alu: 1,
            int_mul: 3,
            int_div: 10,
            fp_add: 4,
            fp_mul: 4,
            fp_div: 12,
            cvt: 2,
            mask_op: 1,
        }
    }
}

impl LatencyTable {
    /// Latency of an integer ALU op.
    pub fn for_alu(&self, op: glsc_isa::AluOp) -> u64 {
        use glsc_isa::AluOp::*;
        match op {
            Mul => self.int_mul,
            Div | Rem => self.int_div,
            _ => self.int_alu,
        }
    }

    /// Latency of a floating-point op.
    pub fn for_fp(&self, op: glsc_isa::FpOp) -> u64 {
        use glsc_isa::FpOp::*;
        match op {
            Div => self.fp_div,
            Mul => self.fp_mul,
            _ => self.fp_add,
        }
    }
}

/// Full machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of cores (paper: 1–4).
    pub cores: usize,
    /// SMT threads per core (paper: 1–4).
    pub threads_per_core: usize,
    /// SIMD width in 32-bit elements (paper: 1, 4, 16).
    pub simd_width: usize,
    /// Core issue width across its SMT threads (paper: 2). Each thread
    /// issues at most one instruction per cycle.
    pub issue_width: usize,
    /// Extra cycles charged after a taken branch (fetch redirect).
    pub branch_penalty: u64,
    /// Functional-unit latencies.
    pub lat: LatencyTable,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// GLSC policy knobs.
    pub glsc: GlscConfig,
    /// Safety bound: [`crate::Machine::run`] fails after this many cycles.
    pub max_cycles: u64,
}

impl MachineConfig {
    /// The paper's configuration `cores`×`threads` with the given SIMD
    /// width (Table 1 memory parameters, 2-wide issue).
    pub fn paper(cores: usize, threads_per_core: usize, simd_width: usize) -> Self {
        Self {
            cores,
            threads_per_core,
            simd_width,
            issue_width: 2,
            branch_penalty: 1,
            lat: LatencyTable::default(),
            mem: MemConfig::default(),
            glsc: GlscConfig::default(),
            max_cycles: 2_000_000_000,
        }
    }

    /// Total software threads (`m × n` in the paper's notation).
    pub fn total_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when a parameter is out of the supported range.
    pub fn validate(&self) {
        assert!(self.cores >= 1 && self.cores <= 32, "1..=32 cores");
        assert!(
            self.threads_per_core >= 1 && self.threads_per_core <= 8,
            "1..=8 threads per core"
        );
        assert!(
            self.simd_width >= 1 && self.simd_width <= glsc_isa::MAX_SIMD_WIDTH,
            "SIMD width 1..=32"
        );
        assert!(self.issue_width >= 1, "issue width >= 1");
        self.mem.validate();
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper(4, 4, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let c = MachineConfig::paper(4, 4, 4);
        c.validate();
        assert_eq!(c.total_threads(), 16);
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.mem.l1_hit_latency, 3);
    }

    #[test]
    fn latency_table_selectors() {
        let lat = LatencyTable::default();
        assert_eq!(lat.for_alu(glsc_isa::AluOp::Add), 1);
        assert_eq!(lat.for_alu(glsc_isa::AluOp::Mul), 3);
        assert_eq!(lat.for_alu(glsc_isa::AluOp::Rem), 10);
        assert_eq!(lat.for_fp(glsc_isa::FpOp::Add), 4);
        assert_eq!(lat.for_fp(glsc_isa::FpOp::Div), 12);
    }

    #[test]
    #[should_panic(expected = "SIMD width")]
    fn invalid_width_rejected() {
        MachineConfig::paper(1, 1, 64).validate();
    }
}
