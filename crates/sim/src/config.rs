//! Whole-machine configuration (Table 1 of the paper).

use glsc_core::GlscConfig;
use glsc_mem::MemConfig;
use std::fmt;

/// A rejected machine-configuration parameter.
///
/// Produced by [`MachineConfig::check`] and
/// [`Machine::try_new`](crate::Machine::try_new).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Core count outside 1..=32.
    CoresOutOfRange {
        /// The offending core count.
        cores: usize,
    },
    /// SMT threads per core outside 1..=8.
    ThreadsPerCoreOutOfRange {
        /// The offending thread count.
        threads_per_core: usize,
    },
    /// SIMD width outside 1..=[`glsc_isa::MAX_SIMD_WIDTH`].
    SimdWidthOutOfRange {
        /// The offending width.
        simd_width: usize,
    },
    /// Issue width is zero.
    IssueWidthZero,
    /// Cycle budget (`max_cycles`) is zero — the machine could never step.
    ZeroCycleBudget,
    /// Watchdog window is zero — the watchdog would fire on cycle 0.
    ZeroWatchdogWindow,
    /// Invariant-check period is zero.
    ZeroInvariantCheckPeriod,
    /// Starvation threshold is zero — every store-conditional would be
    /// "starved" before its first attempt.
    ZeroStarvationThreshold,
    /// The memory-hierarchy parameters were rejected.
    Mem(glsc_mem::ConfigError),
}

impl From<glsc_mem::ConfigError> for ConfigError {
    fn from(e: glsc_mem::ConfigError) -> Self {
        ConfigError::Mem(e)
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::CoresOutOfRange { cores } => {
                write!(f, "1..=32 cores (got {cores})")
            }
            ConfigError::ThreadsPerCoreOutOfRange { threads_per_core } => {
                write!(f, "1..=8 threads per core (got {threads_per_core})")
            }
            ConfigError::SimdWidthOutOfRange { simd_width } => {
                write!(
                    f,
                    "SIMD width 1..={} (got {simd_width})",
                    glsc_isa::MAX_SIMD_WIDTH
                )
            }
            ConfigError::IssueWidthZero => write!(f, "issue width >= 1"),
            ConfigError::ZeroCycleBudget => write!(f, "cycle budget must be non-zero"),
            ConfigError::ZeroWatchdogWindow => write!(f, "watchdog window must be non-zero"),
            ConfigError::ZeroInvariantCheckPeriod => {
                write!(f, "invariant check period must be non-zero")
            }
            ConfigError::ZeroStarvationThreshold => {
                write!(f, "starvation threshold must be non-zero")
            }
            ConfigError::Mem(e) => write!(f, "memory config: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

/// Functional-unit result latencies in cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyTable {
    /// Simple integer ALU (add/sub/logic/shift/compare/move).
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide / remainder.
    pub int_div: u64,
    /// Floating add/sub/min/max.
    pub fp_add: u64,
    /// Floating multiply.
    pub fp_mul: u64,
    /// Floating divide.
    pub fp_div: u64,
    /// Int<->float conversions.
    pub cvt: u64,
    /// Mask-register operations.
    pub mask_op: u64,
}

impl Default for LatencyTable {
    fn default() -> Self {
        Self {
            int_alu: 1,
            int_mul: 3,
            int_div: 10,
            fp_add: 4,
            fp_mul: 4,
            fp_div: 12,
            cvt: 2,
            mask_op: 1,
        }
    }
}

impl LatencyTable {
    /// Latency of an integer ALU op.
    pub fn for_alu(&self, op: glsc_isa::AluOp) -> u64 {
        use glsc_isa::AluOp::*;
        match op {
            Mul => self.int_mul,
            Div | Rem => self.int_div,
            _ => self.int_alu,
        }
    }

    /// Latency of a floating-point op.
    pub fn for_fp(&self, op: glsc_isa::FpOp) -> u64 {
        use glsc_isa::FpOp::*;
        match op {
            Div => self.fp_div,
            Mul => self.fp_mul,
            _ => self.fp_add,
        }
    }
}

/// Full machine configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of cores (paper: 1–4).
    pub cores: usize,
    /// SMT threads per core (paper: 1–4).
    pub threads_per_core: usize,
    /// SIMD width in 32-bit elements (paper: 1, 4, 16).
    pub simd_width: usize,
    /// Core issue width across its SMT threads (paper: 2). Each thread
    /// issues at most one instruction per cycle.
    pub issue_width: usize,
    /// Extra cycles charged after a taken branch (fetch redirect).
    pub branch_penalty: u64,
    /// Functional-unit latencies.
    pub lat: LatencyTable,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// GLSC policy knobs.
    pub glsc: GlscConfig,
    /// Safety bound: [`crate::Machine::run`] fails with
    /// [`SimError::MaxCyclesExceeded`](crate::SimError) after this many
    /// cycles.
    pub max_cycles: u64,
    /// Forward-progress watchdog: if no thread in the whole machine issues
    /// an instruction for this many consecutive cycles, the run aborts
    /// with [`SimError::Livelock`](crate::SimError) carrying a diagnostic
    /// dump. `None` disables the watchdog. Note that a GLSC retry storm is
    /// *not* a livelock by this definition (the retry loop keeps issuing);
    /// the watchdog catches true scheduling deadlocks — e.g. barrier
    /// mismatches — long before the cycle budget does.
    pub watchdog_window: Option<u64>,
    /// Debug flag: check the memory system's coherence invariants every
    /// this many cycles, aborting with
    /// [`SimError::InvariantViolation`](crate::SimError) on failure.
    /// `None` (the default) skips the checks entirely.
    pub invariant_check_period: Option<u64>,
    /// Starvation detector: if any hardware thread accumulates this many
    /// *consecutive* store-conditional failures, the run aborts with
    /// [`SimError::Starvation`](crate::SimError) naming the starved
    /// thread, its failure streak, the per-thread failure census (with
    /// Jain's fairness index in the rendered message) and the competing
    /// reservation holders. Catches the retry storms the livelock
    /// watchdog cannot (a storm keeps issuing). `None` (the default)
    /// disables the detector.
    pub starvation_threshold: Option<u64>,
}

impl MachineConfig {
    /// The paper's configuration `cores`×`threads` with the given SIMD
    /// width (Table 1 memory parameters, 2-wide issue).
    pub fn paper(cores: usize, threads_per_core: usize, simd_width: usize) -> Self {
        Self {
            cores,
            threads_per_core,
            simd_width,
            issue_width: 2,
            branch_penalty: 1,
            lat: LatencyTable::default(),
            mem: MemConfig::default(),
            glsc: GlscConfig::default(),
            max_cycles: 2_000_000_000,
            watchdog_window: Some(1_000_000),
            invariant_check_period: None,
            starvation_threshold: None,
        }
    }

    /// Sets the cycle budget (builder style).
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Sets (or disables, with `None`) the forward-progress watchdog
    /// window (builder style).
    #[must_use]
    pub fn with_watchdog_window(mut self, window: Option<u64>) -> Self {
        self.watchdog_window = window;
        self
    }

    /// Enables periodic coherence invariant checking every `period` cycles
    /// (or disables it with `None`; builder style).
    #[must_use]
    pub fn with_invariant_checks(mut self, period: Option<u64>) -> Self {
        self.invariant_check_period = period;
        self
    }

    /// Selects the on-die interconnect between the L1s and the L2 banks
    /// (builder style). The default [`glsc_mem::Topology::Ideal`] fabric
    /// reproduces the fixed-latency timing exactly; ring and crossbar
    /// fabrics add hop latency and link contention (the `noc_contention`
    /// figure sweeps these).
    #[must_use]
    pub fn with_noc(mut self, noc: glsc_mem::NocConfig) -> Self {
        self.mem.noc = noc;
        self
    }

    /// Selects the memory consistency model (builder style). The default
    /// [`glsc_mem::MemoryOrder::Sc`] routes every request through the
    /// shared LSU queue and reproduces the historical timing exactly; the
    /// relaxed models enable the per-thread write buffers (DESIGN.md §17;
    /// the litmus harness exercises all three).
    #[must_use]
    pub fn with_memory_order(mut self, order: glsc_mem::MemoryOrder) -> Self {
        self.mem.memory_order = order;
        self
    }

    /// Enables the starvation detector at `threshold` consecutive SC
    /// failures per thread (or disables it with `None`; builder style).
    #[must_use]
    pub fn with_starvation_threshold(mut self, threshold: Option<u64>) -> Self {
        self.starvation_threshold = threshold;
        self
    }

    /// Selects the reservation arbitration policy of the memory system
    /// (builder style). The default
    /// [`ArbitrationPolicy::Free`](glsc_mem::ArbitrationPolicy)
    /// reproduces the historical first-committer-wins timing exactly;
    /// the `contention_policies` figure sweeps the alternatives.
    #[must_use]
    pub fn with_arbitration(mut self, policy: glsc_mem::ArbitrationPolicy) -> Self {
        self.mem.arbitration = policy;
        self
    }

    /// Total software threads (`m × n` in the paper's notation).
    pub fn total_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Checks the configuration, returning the first out-of-range
    /// parameter as a typed value.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found (machine shape first, then the
    /// embedded [`MemConfig`]).
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.cores == 0 || self.cores > 32 {
            return Err(ConfigError::CoresOutOfRange { cores: self.cores });
        }
        if self.threads_per_core == 0 || self.threads_per_core > 8 {
            return Err(ConfigError::ThreadsPerCoreOutOfRange {
                threads_per_core: self.threads_per_core,
            });
        }
        if self.simd_width == 0 || self.simd_width > glsc_isa::MAX_SIMD_WIDTH {
            return Err(ConfigError::SimdWidthOutOfRange {
                simd_width: self.simd_width,
            });
        }
        if self.issue_width == 0 {
            return Err(ConfigError::IssueWidthZero);
        }
        if self.max_cycles == 0 {
            return Err(ConfigError::ZeroCycleBudget);
        }
        if self.watchdog_window == Some(0) {
            return Err(ConfigError::ZeroWatchdogWindow);
        }
        if self.invariant_check_period == Some(0) {
            return Err(ConfigError::ZeroInvariantCheckPeriod);
        }
        if self.starvation_threshold == Some(0) {
            return Err(ConfigError::ZeroStarvationThreshold);
        }
        self.mem.check()?;
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when a parameter is out of the supported range. Use
    /// [`MachineConfig::check`] for a non-panicking, typed alternative.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper(4, 4, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let c = MachineConfig::paper(4, 4, 4);
        c.validate();
        assert_eq!(c.total_threads(), 16);
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.mem.l1_hit_latency, 3);
    }

    #[test]
    fn latency_table_selectors() {
        let lat = LatencyTable::default();
        assert_eq!(lat.for_alu(glsc_isa::AluOp::Add), 1);
        assert_eq!(lat.for_alu(glsc_isa::AluOp::Mul), 3);
        assert_eq!(lat.for_alu(glsc_isa::AluOp::Rem), 10);
        assert_eq!(lat.for_fp(glsc_isa::FpOp::Add), 4);
        assert_eq!(lat.for_fp(glsc_isa::FpOp::Div), 12);
    }

    #[test]
    #[should_panic(expected = "SIMD width")]
    fn invalid_width_rejected() {
        MachineConfig::paper(1, 1, 64).validate();
    }

    #[test]
    fn typed_rejections() {
        assert_eq!(
            MachineConfig::paper(0, 1, 4).check(),
            Err(ConfigError::CoresOutOfRange { cores: 0 })
        );
        assert_eq!(
            MachineConfig::paper(33, 1, 4).check(),
            Err(ConfigError::CoresOutOfRange { cores: 33 })
        );
        assert_eq!(
            MachineConfig::paper(1, 9, 4).check(),
            Err(ConfigError::ThreadsPerCoreOutOfRange {
                threads_per_core: 9
            })
        );
        assert_eq!(
            MachineConfig::paper(1, 1, 64).check(),
            Err(ConfigError::SimdWidthOutOfRange { simd_width: 64 })
        );
        let c = MachineConfig {
            issue_width: 0,
            ..MachineConfig::paper(1, 1, 4)
        };
        assert_eq!(c.check(), Err(ConfigError::IssueWidthZero));
        let c = MachineConfig::paper(1, 1, 4).with_max_cycles(0);
        assert_eq!(c.check(), Err(ConfigError::ZeroCycleBudget));
        let c = MachineConfig::paper(1, 1, 4).with_watchdog_window(Some(0));
        assert_eq!(c.check(), Err(ConfigError::ZeroWatchdogWindow));
        let c = MachineConfig::paper(1, 1, 4).with_invariant_checks(Some(0));
        assert_eq!(c.check(), Err(ConfigError::ZeroInvariantCheckPeriod));
        let c = MachineConfig::paper(1, 1, 4).with_starvation_threshold(Some(0));
        assert_eq!(c.check(), Err(ConfigError::ZeroStarvationThreshold));
        let c = MachineConfig::paper(1, 1, 4)
            .with_arbitration(glsc_mem::ArbitrationPolicy::NackHoldoff { window: 0 });
        assert_eq!(
            c.check(),
            Err(ConfigError::Mem(glsc_mem::ConfigError::ZeroHoldoffWindow))
        );
    }

    #[test]
    fn mem_rejection_wrapped() {
        let mut c = MachineConfig::paper(1, 1, 4);
        c.mem.line_bytes = 48;
        assert_eq!(
            c.check(),
            Err(ConfigError::Mem(
                glsc_mem::ConfigError::LineBytesNotPowerOfTwo { line_bytes: 48 }
            ))
        );
    }

    #[test]
    fn builders_set_fields() {
        let c = MachineConfig::paper(1, 1, 4)
            .with_max_cycles(123)
            .with_watchdog_window(None)
            .with_invariant_checks(Some(64))
            .with_noc(glsc_mem::NocConfig::ring())
            .with_starvation_threshold(Some(1000))
            .with_arbitration(glsc_mem::ArbitrationPolicy::AgedPriority)
            .with_memory_order(glsc_mem::MemoryOrder::Tso);
        assert_eq!(c.mem.memory_order, glsc_mem::MemoryOrder::Tso);
        assert_eq!(c.max_cycles, 123);
        assert_eq!(c.watchdog_window, None);
        assert_eq!(c.invariant_check_period, Some(64));
        assert_eq!(c.mem.noc, glsc_mem::NocConfig::ring());
        assert_eq!(c.starvation_threshold, Some(1000));
        assert_eq!(c.mem.arbitration, glsc_mem::ArbitrationPolicy::AgedPriority);
        c.validate();
    }

    #[test]
    fn noc_rejection_wrapped() {
        let c = MachineConfig::paper(1, 1, 4).with_noc(glsc_mem::NocConfig {
            link_latency: 0,
            ..glsc_mem::NocConfig::ring()
        });
        assert_eq!(
            c.check(),
            Err(ConfigError::Mem(glsc_mem::ConfigError::NocZeroLinkLatency))
        );
    }
}

glsc_wire::wire_struct!(LatencyTable {
    int_alu,
    int_mul,
    int_div,
    fp_add,
    fp_mul,
    fp_div,
    cvt,
    mask_op,
});
glsc_wire::wire_struct!(MachineConfig {
    cores,
    threads_per_core,
    simd_width,
    issue_width,
    branch_penalty,
    lat,
    mem,
    glsc,
    max_cycles,
    watchdog_window,
    invariant_check_period,
    starvation_threshold,
});
