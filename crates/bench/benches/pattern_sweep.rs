//! Pattern sweep: the glsc-patterns taxonomy crossed with topology and
//! arbitration, Base vs GLSC, on the paper's 4x4 machine.
//!
//! Each row is one declarative access-pattern spec (DESIGN.md §16)
//! compiled through the shared update-loop emitter and simulated under
//! one of four memory-system corners: {Ideal, Ring} NoC × {Free,
//! AgedPriority} SC arbitration. The sweep walks the taxonomy from the
//! GLSC best case (dense unit stride) to the worst (conflict:p=0.9,
//! near-total lane aliasing), so the table shows where vector atomics
//! stop paying for themselves as conflict density rises — and how much
//! of that cliff is the interconnect vs the arbiter.
//!
//! Runs through the fleet engine under `GLSC_BENCH_FLEET=1`, solo
//! otherwise; both paths share one cache namespace. Output lands in
//! `results/pattern_sweep.txt` (`-tiny` under `GLSC_DATASETS=tiny`).

use glsc_bench::{
    bench_threads, collect_errors, config, datasets, finish_figure, fleet_requested, run_jobs,
    run_jobs_fleet, run_workload_cached, FigureOutput, FleetJobSpec, JobStore,
};
use glsc_kernels::pattern::Pattern;
use glsc_kernels::Variant;
use glsc_mem::{ArbitrationPolicy, NocConfig};

/// The taxonomy walked by the sweep: best case to worst case for GLSC.
const SPECS: [&str; 7] = [
    "stride:1x1024",
    "stride:16x1024",
    "mostly:1x1024/p=0.05",
    "block:16/64",
    "conflict:p=0.1x256",
    "conflict:p=0.5x256",
    "conflict:p=0.9x256",
];

/// The memory-system corners: (label, NoC, arbitration).
fn corners() -> Vec<(&'static str, NocConfig, ArbitrationPolicy)> {
    vec![
        ("ideal/free", NocConfig::ideal(), ArbitrationPolicy::Free),
        (
            "ideal/aged",
            NocConfig::ideal(),
            ArbitrationPolicy::AgedPriority,
        ),
        ("ring/free", NocConfig::ring(), ArbitrationPolicy::Free),
        (
            "ring/aged",
            NocConfig::ring(),
            ArbitrationPolicy::AgedPriority,
        ),
    ]
}

fn jobs() -> Vec<FleetJobSpec> {
    let ds = datasets()[0];
    let mut jobs = Vec::new();
    for spec in SPECS {
        let pattern = Pattern::parse(spec)
            .unwrap_or_else(|e| panic!("sweep spec {spec:?}: {e}"))
            .for_dataset(ds);
        // Canonical form so cache keys are stable even if the sweep's
        // shorthand (default iters/seed elision) changes.
        let canonical = pattern.spec().to_string();
        for (corner, noc, arb) in corners() {
            for variant in [Variant::Base, Variant::Glsc] {
                let cfg = config(4, 4, 4).with_noc(noc.clone()).with_arbitration(arb);
                jobs.push(FleetJobSpec {
                    key_parts: vec![
                        "pattern".to_string(),
                        canonical.clone(),
                        corner.to_string(),
                        variant.label().to_string(),
                        "4x4".to_string(),
                        "w4".to_string(),
                    ],
                    workload: pattern.build(variant, &cfg),
                    cfg,
                });
            }
        }
    }
    jobs
}

fn main() {
    let store = JobStore::for_bench("pattern_sweep");
    let mut out = FigureOutput::new("pattern_sweep");
    out.header(
        "pattern sweep: access-pattern taxonomy x {Ideal,Ring} NoC x {Free,Aged} arbitration, 4x4 w4",
        "cycles per pattern spec, Base (ll/sc) vs GLSC (vgatherlink/vscattercond)",
    );

    let specs = jobs();
    let labels: Vec<String> = specs.iter().map(|s| s.key_parts.join(" ")).collect();
    let results = if fleet_requested() {
        run_jobs_fleet(&store, specs, bench_threads())
    } else {
        let solo: Vec<_> = specs
            .iter()
            .map(|s| {
                let store = &store;
                move || {
                    let parts: Vec<&str> = s.key_parts.iter().map(String::as_str).collect();
                    run_workload_cached(store, &s.workload, &s.cfg, &parts)
                }
            })
            .collect();
        run_jobs(solo, bench_threads())
    };
    let errors = collect_errors(&results);

    out.line(format!("{:<52} {:>12}", "job", "sim cycles"));
    for (label, r) in labels.iter().zip(&results) {
        match r {
            Ok(outcome) => out.line(format!("{:<52} {:>12}", label, outcome.report.cycles)),
            Err(e) => out.line(format!("{:<52} {:>12}", label, e.cell())),
        }
    }
    std::process::exit(finish_figure(out, &errors));
}
