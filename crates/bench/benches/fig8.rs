//! Figure 8: benefit of GLSC for 1-, 4- and 16-wide SIMD on the 4×4
//! configuration — the ratio of Base to GLSC execution time.
//!
//! Expected shape (paper §5.3): ≈1.0 at width 1 (GLSC introduces no
//! overhead when there is no vector parallelism to exploit), growing with
//! width (paper averages: +54% at 4-wide, +103% at 16-wide), largest for
//! the benchmarks with high SIMD efficiency.
//!
//! The (kernel, dataset, width, variant) runs are independent and are
//! fanned across host threads (`GLSC_BENCH_THREADS`); output order is
//! unchanged. Completed runs persist to the job store
//! (`GLSC_BENCH_RESUME=1` resumes); failed jobs print as typed degradation cells (`PANIC`/`DEAD`/`QUAR`).
//! The table is written to `results/fig8.txt`.

use glsc_bench::{
    bench_threads, collect_errors, datasets, ds_label, finish_figure, geomean, ratio, run_cached,
    run_jobs, FigureOutput, JobStore,
};
use glsc_kernels::{Variant, KERNEL_NAMES};

fn main() {
    let store = JobStore::for_bench("fig8");
    let mut out = FigureOutput::new("fig8");
    out.header(
        "Figure 8: Base/GLSC execution-time ratio at 4x4",
        "paper: ~1.0x at 1-wide, grows with SIMD width",
    );
    let mut params = Vec::new();
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            for width in [1usize, 4, 16] {
                for variant in [Variant::Base, Variant::Glsc] {
                    params.push((kernel, ds, variant, width));
                }
            }
        }
    }
    let jobs: Vec<_> = params
        .iter()
        .map(|&(kernel, ds, variant, width)| {
            let store = &store;
            move || run_cached(store, kernel, ds, variant, (4, 4), width)
        })
        .collect();
    let results = run_jobs(jobs, bench_threads());
    let errors = collect_errors(&results);

    out.line(format!(
        "{:<6} {:>3} {:>9} {:>9} {:>9}",
        "bench", "ds", "w1", "w4", "w16"
    ));
    let mut per_width: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    // Per (kernel, ds): [base w1, glsc w1, base w4, glsc w4, base w16,
    // glsc w16], matching the job-construction order above.
    let mut chunks = results.chunks(6);
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            let chunk = chunks.next().expect("six runs per (kernel, ds)");
            let mut row = format!("{:<6} {:>3}", kernel, ds_label(ds));
            for i in 0..3 {
                match (&chunk[2 * i], &chunk[2 * i + 1]) {
                    (Ok(base), Ok(glsc)) => {
                        let x = ratio(base.report.cycles, glsc.report.cycles);
                        per_width[i].push(x);
                        row.push_str(&format!(" {x:>8.2}x"));
                    }
                    (Err(e), _) | (_, Err(e)) => row.push_str(&format!(" {:>9}", e.cell())),
                }
            }
            out.line(row);
        }
    }
    out.line(format!(
        "{:<6} {:>3} {:>8.2}x {:>8.2}x {:>8.2}x   (paper: ~1.0 / ~1.54 / ~2.03)",
        "geo",
        "",
        geomean(&per_width[0]),
        geomean(&per_width[1]),
        geomean(&per_width[2])
    ));
    std::process::exit(finish_figure(out, &errors));
}
