//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **GLSC entry implementation** (§3.3): per-line tag bits vs a
//!    fully-associative buffer of 1 / 4 / 16 / 64 entries.
//! 2. **Gather-link failure policy** (§3.2): wait-for-miss (default) vs
//!    fail-on-miss.
//! 3. **Stride prefetcher** on/off (§4.1).
//!
//! Each ablation runs the GLSC histogram (HIP) and the TMS reduction on
//! the 4×4 machine and reports cycles plus the GLSC element failure rate.
//! All configuration points are independent and run across host threads
//! (`GLSC_BENCH_THREADS`); output order is unchanged.

use glsc_bench::{bench_threads, header, pct, run_jobs};
use glsc_kernels::{build_named, run_workload, Dataset, Variant};
use glsc_sim::{GlscConfig, MachineConfig};

fn dataset() -> Dataset {
    if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        Dataset::Tiny
    } else {
        Dataset::A
    }
}

fn run_with(kernel: &str, cfg: &MachineConfig) -> (u64, f64, u64) {
    let w = build_named(kernel, dataset(), Variant::Glsc, cfg);
    let out = run_workload(&w, cfg).unwrap_or_else(|e| panic!("{e}"));
    (
        out.report.cycles,
        out.report.glsc_failure_rate(),
        out.report.total_instructions(),
    )
}

fn main() {
    let base_cfg = MachineConfig::paper(4, 4, 4);

    // Every ablation point, in print order. Each configuration runs HIP
    // and TMS, so each point contributes two consecutive jobs.
    //
    // Below SIMD-width entries the 4 SMT threads sharing one buffer evict
    // each other's links continuously and retry loops stop converging
    // (starvation) — the paper's "one to SIMD-width x #SMT threads" sizing
    // implicitly assumes at least per-instruction capacity.
    const BUFFERS: [Option<usize>; 4] = [None, Some(64), Some(16), Some(4)];
    const POLICIES: [(&str, bool); 2] = [("wait-for-miss", false), ("fail-on-miss", true)];
    let mut cfgs = Vec::new();
    for buffer in BUFFERS {
        let mut cfg = base_cfg.clone();
        cfg.mem.glsc_buffer_entries = buffer;
        cfgs.push(cfg);
    }
    for (_, fail_on_miss) in POLICIES {
        let mut cfg = base_cfg.clone();
        cfg.glsc = GlscConfig {
            fail_on_l1_miss: fail_on_miss,
            ..GlscConfig::default()
        };
        cfgs.push(cfg);
    }
    for on in [true, false] {
        let mut cfg = base_cfg.clone();
        cfg.mem.prefetch = on;
        cfgs.push(cfg);
    }
    let jobs: Vec<_> = cfgs
        .iter()
        .flat_map(|cfg| {
            ["HIP", "TMS"]
                .into_iter()
                .map(move |kernel| move || run_with(kernel, cfg))
        })
        .collect();
    let results = run_jobs(jobs, bench_threads());
    let mut rows = results.chunks(2);

    header(
        "Ablation 1: GLSC entry storage (per-line tags vs fully-assoc buffer)",
        "paper 3.3: the buffer \"could be made quite small\"",
    );
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>10}",
        "entries", "HIP cyc", "HIP fail", "TMS cyc", "TMS fail"
    );
    for buffer in BUFFERS {
        let row = rows.next().expect("HIP+TMS per buffer size");
        let (hip, tms) = (row[0], row[1]);
        let label = buffer.map_or("per-line".to_string(), |k| format!("buf[{k}]"));
        println!(
            "{:<10} {:>12} {:>10} {:>12} {:>10}",
            label,
            hip.0,
            pct(hip.1),
            tms.0,
            pct(tms.1)
        );
    }

    header(
        "Ablation 2: gather-link miss policy (paper 3.2 design freedom (c))",
        "fail-on-miss trades reservation hold time for extra retries",
    );
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>10}",
        "policy", "HIP cyc", "HIP fail", "TMS cyc", "TMS fail"
    );
    for (label, _) in POLICIES {
        let row = rows.next().expect("HIP+TMS per policy");
        let (hip, tms) = (row[0], row[1]);
        println!(
            "{:<14} {:>12} {:>10} {:>12} {:>10}",
            label,
            hip.0,
            pct(hip.1),
            tms.0,
            pct(tms.1)
        );
    }

    header("Ablation 3: L1 stride prefetcher on/off (paper 4.1)", "");
    println!("{:<10} {:>12} {:>12}", "prefetch", "HIP cyc", "TMS cyc");
    for on in [true, false] {
        let row = rows.next().expect("HIP+TMS per prefetch setting");
        let (hip, tms) = (row[0], row[1]);
        println!(
            "{:<10} {:>12} {:>12}",
            if on { "on" } else { "off" },
            hip.0,
            tms.0
        );
    }
}
