//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **GLSC entry implementation** (§3.3): per-line tag bits vs a
//!    fully-associative buffer of 1 / 4 / 16 / 64 entries.
//! 2. **Gather-link failure policy** (§3.2): wait-for-miss (default) vs
//!    fail-on-miss.
//! 3. **Stride prefetcher** on/off (§4.1).
//!
//! Each ablation runs the GLSC histogram (HIP) and the TMS reduction on
//! the 4×4 machine and reports cycles plus the GLSC element failure rate.
//! All configuration points are independent and run across host threads
//! (`GLSC_BENCH_THREADS`); output order is unchanged. Completed points
//! persist to the job store keyed by a config fingerprint, so every
//! ablation point caches separately (`GLSC_BENCH_RESUME=1` resumes);
//! failed jobs print as typed degradation cells (`PANIC`/`DEAD`/`QUAR`). Output goes to
//! `results/ablation.txt`.

use glsc_bench::{
    bench_threads, collect_errors, ds_label, finish_figure, pct, run_jobs, run_workload_cached,
    FigureOutput, JobError, JobStore,
};
use glsc_kernels::{build_named, Dataset, Variant};
use glsc_sim::{GlscConfig, MachineConfig};

fn dataset() -> Dataset {
    if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        Dataset::Tiny
    } else {
        Dataset::A
    }
}

/// (cycles, GLSC element failure rate, dynamic instructions) of one run.
type Point = (u64, f64, u64);

fn run_with(store: &JobStore, label: &str, kernel: &str, cfg: &MachineConfig) -> Point {
    let w = build_named(kernel, dataset(), Variant::Glsc, cfg).expect("known kernel");
    let out = run_workload_cached(
        store,
        &w,
        cfg,
        &["ablation", label, kernel, ds_label(dataset()), "w4"],
    );
    (
        out.report.cycles,
        out.report.glsc_failure_rate(),
        out.report.total_instructions(),
    )
}

fn cycles_cell(r: &Result<Point, JobError>) -> String {
    match r {
        Ok(p) => format!("{:>12}", p.0),
        Err(e) => format!("{:>12}", e.cell()),
    }
}

fn fail_cell(r: &Result<Point, JobError>) -> String {
    match r {
        Ok(p) => format!("{:>10}", pct(p.1)),
        Err(e) => format!("{:>10}", e.cell()),
    }
}

fn main() {
    let store = JobStore::for_bench("ablation");
    let mut out = FigureOutput::new("ablation");
    let base_cfg = MachineConfig::paper(4, 4, 4);

    // Every ablation point, in print order. Each configuration runs HIP
    // and TMS, so each point contributes two consecutive jobs.
    //
    // Below SIMD-width entries the 4 SMT threads sharing one buffer evict
    // each other's links continuously and retry loops stop converging
    // (starvation) — the paper's "one to SIMD-width x #SMT threads" sizing
    // implicitly assumes at least per-instruction capacity.
    const BUFFERS: [Option<usize>; 4] = [None, Some(64), Some(16), Some(4)];
    const POLICIES: [(&str, bool); 2] = [("wait-for-miss", false), ("fail-on-miss", true)];
    let mut points: Vec<(String, MachineConfig)> = Vec::new();
    for buffer in BUFFERS {
        let mut cfg = base_cfg.clone();
        cfg.mem.glsc_buffer_entries = buffer;
        let label = buffer.map_or("per-line".to_string(), |k| format!("buf{k}"));
        points.push((label, cfg));
    }
    for (label, fail_on_miss) in POLICIES {
        let mut cfg = base_cfg.clone();
        cfg.glsc = GlscConfig {
            fail_on_l1_miss: fail_on_miss,
            ..GlscConfig::default()
        };
        points.push((label.to_string(), cfg));
    }
    for on in [true, false] {
        let mut cfg = base_cfg.clone();
        cfg.mem.prefetch = on;
        points.push((format!("prefetch-{}", if on { "on" } else { "off" }), cfg));
    }
    let jobs: Vec<_> = points
        .iter()
        .flat_map(|(label, cfg)| {
            let store = &store;
            ["HIP", "TMS"]
                .into_iter()
                .map(move |kernel| move || run_with(store, label, kernel, cfg))
        })
        .collect();
    let results = run_jobs(jobs, bench_threads());
    let errors = collect_errors(&results);
    let mut rows = results.chunks(2);

    out.header(
        "Ablation 1: GLSC entry storage (per-line tags vs fully-assoc buffer)",
        "paper 3.3: the buffer \"could be made quite small\"",
    );
    out.line(format!(
        "{:<10} {:>12} {:>10} {:>12} {:>10}",
        "entries", "HIP cyc", "HIP fail", "TMS cyc", "TMS fail"
    ));
    for buffer in BUFFERS {
        let row = rows.next().expect("HIP+TMS per buffer size");
        let (hip, tms) = (&row[0], &row[1]);
        let label = buffer.map_or("per-line".to_string(), |k| format!("buf[{k}]"));
        out.line(format!(
            "{:<10} {} {} {} {}",
            label,
            cycles_cell(hip),
            fail_cell(hip),
            cycles_cell(tms),
            fail_cell(tms)
        ));
    }

    out.header(
        "Ablation 2: gather-link miss policy (paper 3.2 design freedom (c))",
        "fail-on-miss trades reservation hold time for extra retries",
    );
    out.line(format!(
        "{:<14} {:>12} {:>10} {:>12} {:>10}",
        "policy", "HIP cyc", "HIP fail", "TMS cyc", "TMS fail"
    ));
    for (label, _) in POLICIES {
        let row = rows.next().expect("HIP+TMS per policy");
        let (hip, tms) = (&row[0], &row[1]);
        out.line(format!(
            "{:<14} {} {} {} {}",
            label,
            cycles_cell(hip),
            fail_cell(hip),
            cycles_cell(tms),
            fail_cell(tms)
        ));
    }

    out.header("Ablation 3: L1 stride prefetcher on/off (paper 4.1)", "");
    out.line(format!(
        "{:<10} {:>12} {:>12}",
        "prefetch", "HIP cyc", "TMS cyc"
    ));
    for on in [true, false] {
        let row = rows.next().expect("HIP+TMS per prefetch setting");
        let (hip, tms) = (&row[0], &row[1]);
        out.line(format!(
            "{:<10} {} {}",
            if on { "on" } else { "off" },
            cycles_cell(hip),
            cycles_cell(tms)
        ));
    }
    std::process::exit(finish_figure(out, &errors));
}
