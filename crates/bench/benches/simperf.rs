//! Simulator throughput ("simperf"): how fast the simulator itself runs
//! on the host, not what the simulated machine does.
//!
//! Part 1 measures simulated cycles per host second for the event-driven
//! fast-forwarding loop ([`Machine::run`]) against the cycle-by-cycle
//! reference ([`Machine::run_naive`]) — the two produce cycle-for-cycle
//! identical reports (see `tests/differential.rs`), so the ratio is pure
//! simulator speedup. Timings are taken serially (one run at a time) so
//! wall clocks are not polluted by sibling jobs.
//!
//! Part 2 measures the wall clock of a full Figure-6-style sweep executed
//! serially versus fanned across host threads with
//! [`glsc_bench::run_jobs`], which is how the figure benches run it.
//!
//! Host timings are not cacheable, so this target skips the job store;
//! output is still written to `results/simperf.txt`.
//!
//! Honors `GLSC_DATASETS=tiny` and `GLSC_BENCH_THREADS` like the figure
//! benches.

use glsc_bench::{
    bench_threads, collect_errors, config, datasets, ds_label, finish_figure, fleet_kernel_job,
    fleet_micro_job, geomean, run, run_jobs, run_jobs_fleet, FigureOutput, FleetJobSpec, JobStore,
    CONFIGS,
};
use glsc_kernels::micro::{MicroParams, Scenario};
use glsc_kernels::{build_named, run_workload, Dataset, Variant, KERNEL_NAMES};
use glsc_sim::Machine;
use std::time::Instant;

/// Runs one workload with either loop, returning (simulated cycles,
/// best-of-`reps` host seconds).
fn time_run(
    kernel: &str,
    ds: Dataset,
    shape: (usize, usize),
    width: usize,
    naive: bool,
    reps: u32,
) -> (u64, f64) {
    let cfg = config(shape.0, shape.1, width);
    let w = build_named(kernel, ds, Variant::Glsc, &cfg).expect("known kernel");
    let mut cycles = 0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut machine = Machine::new(cfg.clone());
        w.image.apply(machine.mem_mut().backing_mut());
        machine.load_program(w.program.clone());
        let t0 = Instant::now();
        let report = if naive {
            machine.run_naive()
        } else {
            machine.run()
        }
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        best = best.min(t0.elapsed().as_secs_f64());
        cycles = report.cycles;
    }
    (cycles, best)
}

fn main() {
    let mut out = FigureOutput::new("simperf");
    out.header(
        "simperf part 1: fast-forward vs naive cycle loop (GLSC, 4-wide)",
        "Mcyc/s = simulated cycles per host second, best of 3; identical reports",
    );
    out.line(format!(
        "{:<6} {:>3} {:>6} {:>12} {:>12} {:>14} {:>9}",
        "bench", "ds", "shape", "sim cycles", "naive Mc/s", "fastfwd Mc/s", "speedup"
    ));
    let mut speedups = Vec::new();
    for shape in [(1usize, 1usize), (4, 4)] {
        for kernel in KERNEL_NAMES {
            for ds in datasets() {
                let (cycles, t_naive) = time_run(kernel, ds, shape, 4, true, 3);
                let (cycles_ff, t_ff) = time_run(kernel, ds, shape, 4, false, 3);
                assert_eq!(cycles, cycles_ff, "fast-forward must not change timing");
                let speedup = t_naive / t_ff;
                speedups.push(speedup);
                out.line(format!(
                    "{:<6} {:>3} {:>6} {:>12} {:>12.2} {:>14.2} {:>8.2}x",
                    kernel,
                    ds_label(ds),
                    format!("{}x{}", shape.0, shape.1),
                    cycles,
                    cycles as f64 / t_naive / 1e6,
                    cycles as f64 / t_ff / 1e6,
                    speedup
                ));
            }
        }
    }
    out.blank();
    out.line(format!(
        "fast-forward speedup, geomean: {:.2}x",
        geomean(&speedups)
    ));

    let threads = bench_threads();
    out.header(
        "simperf part 2: figure-sweep wall clock, serial vs parallel",
        "the Figure 6 job set: kernels x datasets x {Base,GLSC} x 4 shapes, 4-wide",
    );
    let mut params = Vec::new();
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            for variant in [Variant::Base, Variant::Glsc] {
                for cfg in CONFIGS {
                    params.push((kernel, ds, variant, cfg));
                }
            }
        }
    }
    let wall = |threads: usize| {
        let jobs: Vec<_> = params
            .iter()
            .map(|&(kernel, ds, variant, cfg)| {
                move || run(kernel, ds, variant, cfg, 4).report.cycles
            })
            .collect();
        let t0 = Instant::now();
        let results = run_jobs(jobs, threads);
        (t0.elapsed().as_secs_f64(), results)
    };
    let (t_serial, r_serial) = wall(1);
    let (t_par, r_par) = wall(threads);
    assert_eq!(r_serial, r_par, "parallel harness must be deterministic");
    let errors = collect_errors(&r_par);
    out.line(format!("jobs: {}", params.len()));
    out.line(format!("serial   (1 thread):  {:>8.3} s", t_serial));
    out.line(format!("parallel ({threads:>2} threads): {:>8.3} s", t_par));
    out.line(format!("harness speedup: {:.2}x", t_serial / t_par));

    out.header(
        "simperf part 3: fleet engine vs one-machine-per-job (DESIGN.md 13)",
        "aggregate simulated cycles per host second over a whole sweep; identical reports",
    );
    // Sweep (a): a 512-job screening grid — short microbenchmark runs at
    // the paper's machine shapes, the regime where per-job setup
    // dominates and the fleet's pooling/CoW/batched stepping pays most.
    // Its parameters are fixed (independent of GLSC_DATASETS) so the
    // recorded ratio is comparable across runs.
    let screening = measure_sweep(&mut out, "screening-512", screening_jobs, 1, 1);
    // Sweep (b): the part-2 figure job set end to end, both paths fanned
    // across the same host threads — the realistic speedup a figure run
    // sees, where long simulations dilute per-job overhead.
    let suite = measure_sweep(&mut out, "figure-suite", suite_jobs, threads, threads);
    out.blank();
    out.line(format!(
        "fleet-vs-solo throughput: {:.2}x on screening-512 (serial), {:.2}x on figure-suite ({threads} threads)",
        screening.ratio(),
        suite.ratio()
    ));
    write_fleet_json(&screening, &suite, threads);

    out.header(
        "simperf part 4: checkpoint overhead and crash recovery (DESIGN.md 14)",
        "durable snapshots through the versioned codec; reports identical at every cadence",
    );
    let recovery = measure_recovery(&mut out);
    let fleet_recovery = measure_fleet_recovery(&mut out);
    write_recovery_json(&recovery, &fleet_recovery);

    std::process::exit(finish_figure(out, &errors));
}

/// One measured sweep half: the solo or fleet side's aggregate numbers.
struct SweepSide {
    host_sec: f64,
    sim_cycles: u64,
    jobs: usize,
}

impl SweepSide {
    fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.host_sec
    }
    fn mcyc_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.host_sec / 1e6
    }
}

/// A measured solo-vs-fleet sweep comparison.
struct SweepResult {
    label: &'static str,
    solo: SweepSide,
    fleet: SweepSide,
    solo_threads: usize,
    fleet_threads: usize,
}

impl SweepResult {
    fn ratio(&self) -> f64 {
        self.fleet.mcyc_per_sec() / self.solo.mcyc_per_sec()
    }
}

/// The 512-job screening grid: every §5.2 scenario × Fig. 6 shape ×
/// width {1,4} × {Base, GLSC} × eight dataset seeds, one iteration per
/// thread. Eight distinct machine configurations over 512 short jobs —
/// the parameter-screening regime, where per-job machine construction
/// dominates the solo path and the fleet's pooling amortizes it 64:1.
fn screening_jobs() -> Vec<FleetJobSpec> {
    let mut jobs = Vec::new();
    for seed in [72, 73, 74, 75, 76, 77, 78, 79] {
        for scenario in Scenario::ALL {
            for shape in CONFIGS {
                for width in [1, 4] {
                    for variant in [Variant::Base, Variant::Glsc] {
                        let params = MicroParams {
                            iters: 1,
                            private_lines: 8,
                            shared_lines: 32,
                            seed,
                        };
                        jobs.push(fleet_micro_job(scenario, params, variant, shape, width));
                    }
                }
            }
        }
    }
    jobs
}

/// The part-2 figure job set as fleet specs.
fn suite_jobs() -> Vec<FleetJobSpec> {
    let mut jobs = Vec::new();
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            for variant in [Variant::Base, Variant::Glsc] {
                for shape in CONFIGS {
                    jobs.push(fleet_kernel_job(kernel, ds, variant, shape, 4));
                }
            }
        }
    }
    jobs
}

/// Times one sweep through both paths — the classic build-run-drop loop
/// under [`run_jobs`] and the batched [`run_jobs_fleet`] — asserting the
/// per-job cycle counts agree, and prints the comparison rows. Workload
/// construction is timed on both sides; neither path consults the job
/// store (host timings are not cacheable). Each side is run
/// `SWEEP_REPS` times and the best wall time kept (as in part 1): the
/// first fleet in a process pays one-time allocator warm-up that would
/// otherwise swamp the steady-state throughput a sweep actually sees.
fn measure_sweep(
    out: &mut FigureOutput,
    label: &'static str,
    make: fn() -> Vec<FleetJobSpec>,
    solo_threads: usize,
    fleet_threads: usize,
) -> SweepResult {
    const SWEEP_REPS: usize = 3;
    let store = JobStore::disabled();

    let mut t_solo = f64::INFINITY;
    let mut solo_cycles: Vec<u64> = Vec::new();
    for _ in 0..SWEEP_REPS {
        let t0 = Instant::now();
        let specs = make();
        let solo_closures: Vec<_> = specs
            .iter()
            .map(|s| || run_workload(&s.workload, &s.cfg).unwrap().report.cycles)
            .collect();
        solo_cycles = run_jobs(solo_closures, solo_threads)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect();
        drop(specs);
        t_solo = t_solo.min(t0.elapsed().as_secs_f64());
    }

    let mut t_fleet = f64::INFINITY;
    for _ in 0..SWEEP_REPS {
        let t1 = Instant::now();
        let specs = make();
        let fleet_cycles: Vec<u64> = run_jobs_fleet(&store, specs, fleet_threads)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")).report.cycles)
            .collect();
        t_fleet = t_fleet.min(t1.elapsed().as_secs_f64());
        assert_eq!(solo_cycles, fleet_cycles, "fleet must not change timing");
    }
    let jobs = solo_cycles.len();
    let sim_cycles: u64 = solo_cycles.iter().sum();
    let result = SweepResult {
        label,
        solo: SweepSide {
            host_sec: t_solo,
            sim_cycles,
            jobs,
        },
        fleet: SweepSide {
            host_sec: t_fleet,
            sim_cycles,
            jobs,
        },
        solo_threads,
        fleet_threads,
    };
    out.line(format!(
        "{label}: {jobs} jobs, {:.1} Msim-cycles",
        sim_cycles as f64 / 1e6
    ));
    for (name, side, threads) in [
        ("solo ", &result.solo, solo_threads),
        ("fleet", &result.fleet, fleet_threads),
    ] {
        out.line(format!(
            "  {name} ({threads:>2} thr): {:>8.3} s  {:>8.1} jobs/s  {:>10.2} Mcyc/s",
            side.host_sec,
            side.jobs_per_sec(),
            side.mcyc_per_sec()
        ));
    }
    out.line(format!("  fleet-vs-solo: {:.2}x", result.ratio()));
    result
}

/// One kernel's checkpoint-overhead and crash-recovery measurements.
struct RecoveryRow {
    kernel: &'static str,
    total_cycles: u64,
    base_sec: f64,
    /// Per cadence: (cadence, checkpoints written, bytes per checkpoint,
    /// wall seconds, overhead fraction vs `base_sec`).
    cadences: Vec<(u64, u64, usize, f64, f64)>,
    /// Crash drill at [`RECOVERY_CADENCE`].
    crash_cycle: u64,
    checkpoint_cycle: u64,
    recover_sec: f64,
    naive_restart_sec: f64,
}

const RECOVERY_CADENCE: u64 = 5_000;
const BEST_OF: usize = 3;

/// Runs the uninterrupted baseline, the cadence sweep (sliced stepping +
/// a durable snapshot written tmp+rename at every pause, the service's
/// exact write path), and the crash drill (restore the last checkpoint
/// before a simulated crash at ~60% progress and finish, vs starting
/// over). Every variant's final report must equal the baseline's.
fn measure_recovery(out: &mut FigureOutput) -> Vec<RecoveryRow> {
    use glsc_sim::SlicedRun;
    let dir = std::env::temp_dir().join(format!("glsc-simperf-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("checkpoint scratch dir");
    let cfg = config(1, 1, 4);
    let ds = datasets()[0];

    let fresh = |kernel: &str| {
        let w = build_named(kernel, ds, Variant::Glsc, &cfg).expect("known kernel");
        let mut machine = Machine::new(cfg.clone());
        w.image.apply(machine.mem_mut().backing_mut());
        machine.load_program(w.program.clone());
        machine
    };
    let write_ckpt = |machine: &Machine| -> usize {
        let bytes = machine.snapshot().to_bytes();
        let path = dir.join("ckpt.snap");
        let tmp = dir.join("ckpt.snap.tmp");
        std::fs::write(&tmp, &bytes)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .expect("write checkpoint");
        bytes.len()
    };

    out.line(format!(
        "{:<6} {:>10} {:>9} | {:>8} {:>6} {:>9} {:>9}",
        "bench", "cycles", "base s", "cadence", "ckpts", "ckpt KiB", "overhead"
    ));
    let mut rows = Vec::new();
    for kernel in ["GBC", "TMS"] {
        let mut base_sec = f64::INFINITY;
        let mut total_cycles = 0;
        for _ in 0..BEST_OF {
            let mut machine = fresh(kernel);
            let t0 = Instant::now();
            let report = machine.run().unwrap_or_else(|e| panic!("{kernel}: {e}"));
            base_sec = base_sec.min(t0.elapsed().as_secs_f64());
            total_cycles = report.cycles;
        }

        let mut cadences = Vec::new();
        for cadence in [1_000u64, 5_000, 20_000] {
            let mut wall = f64::INFINITY;
            let mut ckpts = 0;
            let mut ckpt_bytes = 0;
            for _ in 0..BEST_OF {
                let mut machine = fresh(kernel);
                let mut run = SlicedRun::new(&machine);
                let t0 = Instant::now();
                let (mut n, mut report) = (0, None);
                while report.is_none() {
                    report = machine.run_for(&mut run, cadence).unwrap();
                    if report.is_none() {
                        ckpt_bytes = write_ckpt(&machine);
                        n += 1;
                    }
                }
                wall = wall.min(t0.elapsed().as_secs_f64());
                ckpts = n;
                assert_eq!(
                    report.unwrap().cycles,
                    total_cycles,
                    "cadence changed timing"
                );
            }
            let overhead = wall / base_sec - 1.0;
            cadences.push((cadence, ckpts, ckpt_bytes, wall, overhead));
            out.line(format!(
                "{:<6} {:>10} {:>9.4} | {:>8} {:>6} {:>9.1} {:>8.0}%",
                kernel,
                total_cycles,
                base_sec,
                cadence,
                ckpts,
                ckpt_bytes as f64 / 1024.0,
                overhead * 100.0
            ));
        }

        // Crash drill: checkpoint at RECOVERY_CADENCE until ~60% of the
        // run, "crash", then race recovery against a from-scratch rerun.
        let crash_at = total_cycles * 3 / 5;
        let mut machine = fresh(kernel);
        let mut run = SlicedRun::new(&machine);
        let mut last = (machine.snapshot().to_bytes(), 0u64);
        while machine.cycle() < crash_at {
            if machine
                .run_for(&mut run, RECOVERY_CADENCE)
                .unwrap()
                .is_some()
            {
                break;
            }
            if machine.cycle() < crash_at {
                last = (machine.snapshot().to_bytes(), machine.cycle());
            }
        }
        let crash_cycle = machine.cycle();
        drop(machine);

        let mut recover_sec = f64::INFINITY;
        for _ in 0..BEST_OF {
            let t0 = Instant::now();
            let snap = glsc_sim::MachineSnapshot::from_bytes(&last.0).expect("checkpoint decodes");
            let mut machine = Machine::from_snapshot(&snap);
            let mut run = SlicedRun::new(&machine);
            let report = loop {
                if let Some(r) = machine.run_for(&mut run, u64::MAX / 4).unwrap() {
                    break r;
                }
            };
            recover_sec = recover_sec.min(t0.elapsed().as_secs_f64());
            assert_eq!(report.cycles, total_cycles, "recovery changed timing");
        }
        let mut naive_restart_sec = f64::INFINITY;
        for _ in 0..BEST_OF {
            let mut machine = fresh(kernel);
            let t0 = Instant::now();
            machine.run().unwrap();
            naive_restart_sec = naive_restart_sec.min(t0.elapsed().as_secs_f64());
        }
        out.line(format!(
            "{:<6} crash @{} (ckpt @{}, {} cycles lost): recover {:.4} s vs restart {:.4} s ({:.2}x)",
            kernel,
            crash_cycle,
            last.1,
            crash_cycle - last.1,
            recover_sec,
            naive_restart_sec,
            naive_restart_sec / recover_sec
        ));

        rows.push(RecoveryRow {
            kernel,
            total_cycles,
            base_sec,
            cadences,
            crash_cycle,
            checkpoint_cycle: last.1,
            recover_sec,
            naive_restart_sec,
        });
    }
    out.blank();
    out.line(
        "note: recover beats restart only when the work saved (cycles up to the checkpoint) \
         outruns one snapshot decode; sub-millisecond tiny jobs sit below that break-even, \
         which is why the service defaults to a 20k-cycle cadence.",
    );
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

/// One cadence point of the fleet-path checkpoint-overhead sweep.
struct FleetCkptRow {
    cadence: u64,
    jobs: usize,
    checkpoints: u64,
    /// Total bytes written across all checkpoints of one sweep.
    ckpt_bytes: u64,
    /// Supervised fleet with no-op pause hooks.
    base_sec: f64,
    /// Supervised fleet writing a durable snapshot at every pause.
    ckpt_sec: f64,
    overhead: f64,
}

/// Measures checkpoint overhead on the *fleet* path: the same durable
/// tmp+rename snapshot writes as the solo cadence sweep above, but taken
/// from [`Fleet::run_each_supervised`] pause hooks at slice boundaries —
/// the production path of the protocol-facing job service (DESIGN.md
/// §15). The no-checkpoint baseline runs the identical supervised loop
/// with hooks that do nothing, so the delta is pure checkpoint cost, and
/// every job's cycle count must match a one-machine-per-job solo run.
fn measure_fleet_recovery(out: &mut FigureOutput) -> Vec<FleetCkptRow> {
    use glsc_sim::{Fleet, FleetJob, PauseCtl};
    let dir = std::env::temp_dir().join(format!("glsc-simperf-fleet-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("fleet checkpoint scratch dir");
    let ds = datasets()[0];
    // Two machine shapes → two config-affine fleet groups, so the sweep
    // exercises pooling and the multi-member pause fan-out, not just one
    // machine stepped in a loop.
    let shapes = [(1usize, 2usize), (4, 4)];
    let params: Vec<(&str, (usize, usize))> = KERNEL_NAMES
        .iter()
        .flat_map(|&k| shapes.iter().map(move |&s| (k, s)))
        .collect();
    let make_jobs = || -> Vec<FleetJob> {
        params
            .iter()
            .map(|&(kernel, (cores, tpc))| {
                let cfg = config(cores, tpc, 4);
                let w = build_named(kernel, ds, Variant::Glsc, &cfg).expect("known kernel");
                FleetJob::new(cfg, w.program.clone()).with_base(w.image.publish())
            })
            .collect()
    };
    let solo: Vec<u64> = params
        .iter()
        .map(|&(kernel, (cores, tpc))| {
            let cfg = config(cores, tpc, 4);
            let w = build_named(kernel, ds, Variant::Glsc, &cfg).expect("known kernel");
            run_workload(&w, &cfg)
                .unwrap_or_else(|e| panic!("{kernel}: {e}"))
                .report
                .cycles
        })
        .collect();

    out.blank();
    out.line(format!(
        "fleet path ({} jobs, shapes 1x2+4x4, width 4): durable checkpoint at every pause",
        params.len()
    ));
    out.line(format!(
        "{:>8} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "cadence", "ckpts", "ckpt KiB", "base s", "ckpt s", "overhead"
    ));
    let mut rows = Vec::new();
    for cadence in [5_000u64, 20_000] {
        let fleet = || Fleet::new().with_quantum(cadence).with_width(4);
        let mut base_sec = f64::INFINITY;
        let mut cycles = vec![0u64; params.len()];
        for _ in 0..BEST_OF {
            let jobs = make_jobs();
            let t0 = Instant::now();
            fleet().run_each_supervised(
                jobs,
                |_, _| PauseCtl::Continue,
                |i, _, r| {
                    cycles[i] = r.unwrap_or_else(|e| panic!("fleet job {i}: {e}")).cycles;
                },
            );
            base_sec = base_sec.min(t0.elapsed().as_secs_f64());
        }
        assert_eq!(cycles, solo, "supervised fleet path changed timing");

        let mut ckpt_sec = f64::INFINITY;
        let mut checkpoints = 0u64;
        let mut ckpt_bytes = 0u64;
        for _ in 0..BEST_OF {
            let jobs = make_jobs();
            let (mut n_ck, mut n_bytes) = (0u64, 0u64);
            let mut cycles = vec![0u64; params.len()];
            let t0 = Instant::now();
            fleet().run_each_supervised(
                jobs,
                |i, machine| {
                    let bytes = machine.snapshot().to_bytes();
                    let path = dir.join(format!("job{i}.ckpt"));
                    let tmp = dir.join(format!("job{i}.ckpt.tmp"));
                    std::fs::write(&tmp, &bytes)
                        .and_then(|()| std::fs::rename(&tmp, &path))
                        .expect("write fleet checkpoint");
                    n_ck += 1;
                    n_bytes += bytes.len() as u64;
                    PauseCtl::Continue
                },
                |i, _, r| {
                    cycles[i] = r.unwrap_or_else(|e| panic!("fleet job {i}: {e}")).cycles;
                },
            );
            ckpt_sec = ckpt_sec.min(t0.elapsed().as_secs_f64());
            checkpoints = n_ck;
            ckpt_bytes = n_bytes;
            assert_eq!(cycles, solo, "checkpointing fleet path changed timing");
        }
        let overhead = ckpt_sec / base_sec - 1.0;
        out.line(format!(
            "{:>8} {:>6} {:>9.1} {:>9.4} {:>9.4} {:>8.0}%",
            cadence,
            checkpoints,
            ckpt_bytes as f64 / 1024.0,
            base_sec,
            ckpt_sec,
            overhead * 100.0
        ));
        rows.push(FleetCkptRow {
            cadence,
            jobs: params.len(),
            checkpoints,
            ckpt_bytes,
            base_sec,
            ckpt_sec,
            overhead,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

/// Emits `results/BENCH_recovery.json` — the machine-readable record of
/// checkpoint overhead vs cadence and time-to-recover vs a naive restart
/// on both the solo and the fleet (service) paths (same directory and
/// tiny-suffix rules as [`write_fleet_json`]).
fn write_recovery_json(rows: &[RecoveryRow], fleet: &[FleetCkptRow]) {
    let kernels: Vec<String> = rows
        .iter()
        .map(|r| {
            let cadences: Vec<String> = r
                .cadences
                .iter()
                .map(|&(cadence, ckpts, bytes, wall, overhead)| {
                    format!(
                        "      {{ \"cadence_cycles\": {cadence}, \"checkpoints\": {ckpts}, \"checkpoint_bytes\": {bytes}, \"host_sec\": {wall:.6}, \"overhead_frac\": {overhead:.4} }}"
                    )
                })
                .collect();
            format!(
                "  \"{}\": {{\n    \"sim_cycles\": {},\n    \"baseline_sec\": {:.6},\n    \"cadences\": [\n{}\n    ],\n    \"recovery\": {{ \"cadence_cycles\": {}, \"crash_cycle\": {}, \"checkpoint_cycle\": {}, \"lost_cycles\": {}, \"recover_sec\": {:.6}, \"naive_restart_sec\": {:.6}, \"recover_speedup\": {:.3} }}\n  }}",
                r.kernel,
                r.total_cycles,
                r.base_sec,
                cadences.join(",\n"),
                RECOVERY_CADENCE,
                r.crash_cycle,
                r.checkpoint_cycle,
                r.crash_cycle - r.checkpoint_cycle,
                r.recover_sec,
                r.naive_restart_sec,
                r.naive_restart_sec / r.recover_sec
            )
        })
        .collect();
    let fleet_cadences: Vec<String> = fleet
        .iter()
        .map(|r| {
            format!(
                "      {{ \"cadence_cycles\": {}, \"checkpoints\": {}, \"checkpoint_bytes_total\": {}, \"base_sec\": {:.6}, \"checkpoint_sec\": {:.6}, \"overhead_frac\": {:.4} }}",
                r.cadence, r.checkpoints, r.ckpt_bytes, r.base_sec, r.ckpt_sec, r.overhead
            )
        })
        .collect();
    let fleet_json = format!(
        "  \"fleet_path\": {{\n    \"jobs\": {},\n    \"width\": 4,\n    \"cadences\": [\n{}\n    ]\n  }}",
        fleet.first().map_or(0, |r| r.jobs),
        fleet_cadences.join(",\n")
    );
    let tiny = std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny");
    let json = format!(
        "{{\n  \"bench\": \"simperf part 4\",\n  \"datasets\": \"{}\",\n{},\n{}\n}}\n",
        if tiny { "tiny" } else { "full" },
        kernels.join(",\n"),
        fleet_json
    );
    let dir = std::env::var("GLSC_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    let suffix = if tiny { "-tiny" } else { "" };
    let path = dir.join(format!("BENCH_recovery{suffix}.json"));
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &json)?;
        std::fs::rename(&tmp, &path)
    };
    match write() {
        Ok(()) => println!("recovery record: {}", path.display()),
        Err(e) => eprintln!("simperf: failed to write {}: {e}", path.display()),
    }
}

/// Emits the machine-readable fleet throughput record next to the figure
/// text (same directory and tiny-suffix rules as [`FigureOutput`]).
fn write_fleet_json(screening: &SweepResult, suite: &SweepResult, threads: usize) {
    let side = |s: &SweepSide| {
        format!(
            "{{ \"jobs\": {}, \"host_sec\": {:.6}, \"jobs_per_sec\": {:.3}, \"sim_cycles\": {}, \"sim_mcycles_per_host_sec\": {:.3} }}",
            s.jobs,
            s.host_sec,
            s.jobs_per_sec(),
            s.sim_cycles,
            s.mcyc_per_sec()
        )
    };
    let sweep = |r: &SweepResult| {
        format!(
            "  \"{}\": {{\n    \"solo_threads\": {},\n    \"fleet_threads\": {},\n    \"solo\": {},\n    \"fleet\": {},\n    \"fleet_vs_solo\": {:.3}\n  }}",
            r.label,
            r.solo_threads,
            r.fleet_threads,
            side(&r.solo),
            side(&r.fleet),
            r.ratio()
        )
    };
    let tiny = std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny");
    let json = format!(
        "{{\n  \"bench\": \"simperf part 3\",\n  \"datasets\": \"{}\",\n  \"host_threads\": {threads},\n{},\n{}\n}}\n",
        if tiny { "tiny" } else { "full" },
        sweep(screening),
        sweep(suite)
    );
    let dir = std::env::var("GLSC_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    let suffix = if tiny { "-tiny" } else { "" };
    let path = dir.join(format!("BENCH_fleet{suffix}.json"));
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &json)?;
        std::fs::rename(&tmp, &path)
    };
    match write() {
        Ok(()) => println!("fleet throughput record: {}", path.display()),
        Err(e) => eprintln!("simperf: failed to write {}: {e}", path.display()),
    }
}
