//! Simulator throughput ("simperf"): how fast the simulator itself runs
//! on the host, not what the simulated machine does.
//!
//! Part 1 measures simulated cycles per host second for the event-driven
//! fast-forwarding loop ([`Machine::run`]) against the cycle-by-cycle
//! reference ([`Machine::run_naive`]) — the two produce cycle-for-cycle
//! identical reports (see `tests/differential.rs`), so the ratio is pure
//! simulator speedup. Timings are taken serially (one run at a time) so
//! wall clocks are not polluted by sibling jobs.
//!
//! Part 2 measures the wall clock of a full Figure-6-style sweep executed
//! serially versus fanned across host threads with
//! [`glsc_bench::run_jobs`], which is how the figure benches run it.
//!
//! Host timings are not cacheable, so this target skips the job store;
//! output is still written to `results/simperf.txt`.
//!
//! Honors `GLSC_DATASETS=tiny` and `GLSC_BENCH_THREADS` like the figure
//! benches.

use glsc_bench::{
    bench_threads, collect_errors, config, datasets, ds_label, finish_figure, geomean, run,
    run_jobs, FigureOutput, CONFIGS,
};
use glsc_kernels::{build_named, Dataset, Variant, KERNEL_NAMES};
use glsc_sim::Machine;
use std::time::Instant;

/// Runs one workload with either loop, returning (simulated cycles,
/// best-of-`reps` host seconds).
fn time_run(
    kernel: &str,
    ds: Dataset,
    shape: (usize, usize),
    width: usize,
    naive: bool,
    reps: u32,
) -> (u64, f64) {
    let cfg = config(shape.0, shape.1, width);
    let w = build_named(kernel, ds, Variant::Glsc, &cfg);
    let mut cycles = 0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut machine = Machine::new(cfg.clone());
        w.image.apply(machine.mem_mut().backing_mut());
        machine.load_program(w.program.clone());
        let t0 = Instant::now();
        let report = if naive {
            machine.run_naive()
        } else {
            machine.run()
        }
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        best = best.min(t0.elapsed().as_secs_f64());
        cycles = report.cycles;
    }
    (cycles, best)
}

fn main() {
    let mut out = FigureOutput::new("simperf");
    out.header(
        "simperf part 1: fast-forward vs naive cycle loop (GLSC, 4-wide)",
        "Mcyc/s = simulated cycles per host second, best of 3; identical reports",
    );
    out.line(format!(
        "{:<6} {:>3} {:>6} {:>12} {:>12} {:>14} {:>9}",
        "bench", "ds", "shape", "sim cycles", "naive Mc/s", "fastfwd Mc/s", "speedup"
    ));
    let mut speedups = Vec::new();
    for shape in [(1usize, 1usize), (4, 4)] {
        for kernel in KERNEL_NAMES {
            for ds in datasets() {
                let (cycles, t_naive) = time_run(kernel, ds, shape, 4, true, 3);
                let (cycles_ff, t_ff) = time_run(kernel, ds, shape, 4, false, 3);
                assert_eq!(cycles, cycles_ff, "fast-forward must not change timing");
                let speedup = t_naive / t_ff;
                speedups.push(speedup);
                out.line(format!(
                    "{:<6} {:>3} {:>6} {:>12} {:>12.2} {:>14.2} {:>8.2}x",
                    kernel,
                    ds_label(ds),
                    format!("{}x{}", shape.0, shape.1),
                    cycles,
                    cycles as f64 / t_naive / 1e6,
                    cycles as f64 / t_ff / 1e6,
                    speedup
                ));
            }
        }
    }
    out.blank();
    out.line(format!(
        "fast-forward speedup, geomean: {:.2}x",
        geomean(&speedups)
    ));

    let threads = bench_threads();
    out.header(
        "simperf part 2: figure-sweep wall clock, serial vs parallel",
        "the Figure 6 job set: kernels x datasets x {Base,GLSC} x 4 shapes, 4-wide",
    );
    let mut params = Vec::new();
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            for variant in [Variant::Base, Variant::Glsc] {
                for cfg in CONFIGS {
                    params.push((kernel, ds, variant, cfg));
                }
            }
        }
    }
    let wall = |threads: usize| {
        let jobs: Vec<_> = params
            .iter()
            .map(|&(kernel, ds, variant, cfg)| {
                move || run(kernel, ds, variant, cfg, 4).report.cycles
            })
            .collect();
        let t0 = Instant::now();
        let results = run_jobs(jobs, threads);
        (t0.elapsed().as_secs_f64(), results)
    };
    let (t_serial, r_serial) = wall(1);
    let (t_par, r_par) = wall(threads);
    assert_eq!(r_serial, r_par, "parallel harness must be deterministic");
    let errors = collect_errors(&r_par);
    out.line(format!("jobs: {}", params.len()));
    out.line(format!("serial   (1 thread):  {:>8.3} s", t_serial));
    out.line(format!("parallel ({threads:>2} threads): {:>8.3} s", t_par));
    out.line(format!("harness speedup: {:.2}x", t_serial / t_par));
    std::process::exit(finish_figure(out, &errors));
}
