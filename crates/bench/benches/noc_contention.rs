//! NoC contention study: how interconnect topology bends the speedup
//! curves as thread count grows.
//!
//! The paper's evaluation folds the on-die fabric into a fixed 12-cycle
//! L2 latency (our `Topology::Ideal`). This figure sweeps the explicit
//! fabrics — ideal, full crossbar, bidirectional ring — over thread
//! counts 4..32 for three coherence-intensive kernels, printing each
//! topology's slowdown relative to the ideal fabric at the same machine
//! shape, the ring's mean link-queueing delay per message, and whether
//! GLSC's advantage over Base survives a contended fabric.
//!
//! Jobs persist to the job store and resume with `GLSC_BENCH_RESUME=1`;
//! the table is written to `results/noc_contention.txt`.

use glsc_bench::{
    bench_threads, collect_errors, datasets, ds_label, finish_figure, geomean, run_jobs,
    run_workload_cached, FigureOutput, JobStore,
};
use glsc_kernels::{build_named, Variant};
use glsc_sim::{MachineConfig, NocConfig, Topology};

const KERNELS: [&str; 3] = ["HIP", "TMS", "GBC"];
const SHAPES: [(usize, usize); 4] = [(1, 4), (2, 4), (4, 4), (8, 4)];
const TOPOLOGIES: [Topology; 3] = [Topology::Ideal, Topology::Crossbar, Topology::Ring];

fn noc_for(topo: Topology) -> NocConfig {
    match topo {
        Topology::Ideal => NocConfig::ideal(),
        Topology::Crossbar => NocConfig::crossbar(),
        Topology::Ring => NocConfig::ring(),
    }
}

fn main() {
    let store = JobStore::for_bench("noc_contention");
    let mut out = FigureOutput::new("noc_contention");
    out.header(
        "NoC contention: slowdown vs the ideal fabric, 4-wide SIMD",
        "columns: config = cores x threads/core; 1.00x = ideal-fabric time",
    );
    let width = 4;
    let mut params = Vec::new();
    for kernel in KERNELS {
        for ds in datasets() {
            for variant in [Variant::Base, Variant::Glsc] {
                for topo in TOPOLOGIES {
                    for shape in SHAPES {
                        params.push((kernel, ds, variant, topo, shape));
                    }
                }
            }
        }
    }
    let jobs: Vec<_> = params
        .iter()
        .map(|&(kernel, ds, variant, topo, (cores, tpc))| {
            let store = &store;
            move || {
                let cfg = MachineConfig::paper(cores, tpc, width).with_noc(noc_for(topo));
                let w = build_named(kernel, ds, variant, &cfg).expect("known kernel");
                run_workload_cached(
                    store,
                    &w,
                    &cfg,
                    &[
                        "noc",
                        kernel,
                        ds_label(ds),
                        variant.label(),
                        topo.label(),
                        &format!("{cores}x{tpc}"),
                        &format!("w{width}"),
                    ],
                )
            }
        })
        .collect();
    let results = run_jobs(jobs, bench_threads());
    let errors = collect_errors(&results);
    let reports: std::collections::HashMap<_, _> = params
        .iter()
        .zip(&results)
        .map(|(&key, r)| {
            (
                key,
                r.as_ref()
                    .map(|out| out.report.clone())
                    .map_err(|e| e.cell()),
            )
        })
        .collect();

    out.line(format!(
        "{:<6} {:>3} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "bench", "ds", "impl", "topo", "1x4", "2x4", "4x4", "8x4"
    ));
    let mut ring_ratio_base = Vec::new();
    let mut ring_ratio_glsc = Vec::new();
    for kernel in KERNELS {
        for ds in datasets() {
            for variant in [Variant::Base, Variant::Glsc] {
                for topo in TOPOLOGIES {
                    let mut row = format!(
                        "{:<6} {:>3} {:>6} {:>6}",
                        kernel,
                        ds_label(ds),
                        variant.label(),
                        topo.label()
                    );
                    for shape in SHAPES {
                        let ideal = &reports[&(kernel, ds, variant, Topology::Ideal, shape)];
                        let this = &reports[&(kernel, ds, variant, topo, shape)];
                        match (ideal, this) {
                            (Ok(i), Ok(t)) => {
                                row.push_str(&format!(
                                    "  {:>6.2}x",
                                    t.cycles as f64 / i.cycles as f64
                                ));
                            }
                            // This job failed: show its degradation mode.
                            (_, Err(cell)) => row.push_str(&format!("  {:>7}", cell)),
                            // The ideal-fabric normalizer died; the value
                            // exists but cannot be expressed as a ratio.
                            (Err(_), Ok(_)) => row.push_str(&format!("  {:>7}", "ERR")),
                        }
                    }
                    out.line(row);
                    if topo == Topology::Ring {
                        let big = SHAPES[SHAPES.len() - 1];
                        if let (Ok(i), Ok(t)) = (
                            &reports[&(kernel, ds, variant, Topology::Ideal, big)],
                            &reports[&(kernel, ds, variant, Topology::Ring, big)],
                        ) {
                            let ratio = t.cycles as f64 / i.cycles as f64;
                            if variant == Variant::Base {
                                ring_ratio_base.push(ratio);
                            } else {
                                ring_ratio_glsc.push(ratio);
                            }
                        }
                    }
                }
            }
        }
    }

    out.blank();
    out.line(format!(
        "{:<6} {:>3}  ring queueing at 8x4 (GLSC): cycles/msg, total msgs, hops",
        "bench", "ds"
    ));
    for kernel in KERNELS {
        for ds in datasets() {
            if let Ok(r) = &reports[&(kernel, ds, Variant::Glsc, Topology::Ring, (8, 4))] {
                let n = &r.mem.noc;
                out.line(format!(
                    "{:<6} {:>3}  {:>8.2} {:>12} {:>10}",
                    kernel,
                    ds_label(ds),
                    n.queue_cycles_per_msg(),
                    n.total_msgs(),
                    n.hops
                ));
            }
        }
    }
    out.blank();
    out.line(format!(
        "ring slowdown at 8x4, geomean: Base = {:.2}x, GLSC = {:.2}x",
        geomean(&ring_ratio_base),
        geomean(&ring_ratio_glsc)
    ));
    std::process::exit(finish_figure(out, &errors));
}
