//! Criterion microbenchmarks of the simulator substrate — ablations for
//! the design choices called out in DESIGN.md (tag-array cost, coherence
//! walk, GSU combining, end-to-end simulation rate).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use glsc_core::{CoreMemUnit, GlscConfig, GsuKind};
use glsc_isa::{ProgramBuilder, Reg};
use glsc_mem::{MemConfig, MemOp, MemorySystem, TagArray};
use glsc_sim::{Machine, MachineConfig};
use std::hint::black_box;

fn bench_tag_array(c: &mut Criterion) {
    c.bench_function("tags/lookup_hit", |b| {
        let mut tags: TagArray<u32> = TagArray::new(128, 4, 64);
        for i in 0..512u64 {
            tags.insert(i * 64, i as u32);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(tags.lookup_mut(i * 64));
        });
    });
    c.bench_function("tags/insert_evict", |b| {
        b.iter_batched(
            || TagArray::<u32>::new(8, 2, 64),
            |mut tags| {
                for i in 0..64u64 {
                    black_box(tags.insert(i * 64, i as u32));
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_memory_system(c: &mut Criterion) {
    c.bench_function("mem/l1_hit_path", |b| {
        let mut cfg = MemConfig::default();
        cfg.prefetch = false;
        let mut m = MemorySystem::new(cfg, 1, 4);
        m.access(0, 0, MemOp::Load, 0x100, 0);
        let mut now = 400u64;
        b.iter(|| {
            now += 1;
            black_box(m.access(0, 0, MemOp::Load, 0x100, now));
        });
    });
    c.bench_function("mem/cross_core_pingpong", |b| {
        let mut cfg = MemConfig::default();
        cfg.prefetch = false;
        let mut m = MemorySystem::new(cfg, 2, 4);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(m.access((now % 2) as usize, 0, MemOp::Store, 0x100, now));
        });
    });
}

fn bench_gsu(c: &mut Criterion) {
    c.bench_function("gsu/gather_4_combined", |b| {
        let mut cfg = MemConfig::default();
        cfg.prefetch = false;
        let mut mem = MemorySystem::new(cfg, 1, 4);
        mem.access(0, 0, MemOp::Load, 0x100, 0);
        let mut unit = CoreMemUnit::new(0, 4, GlscConfig::default());
        let mut now = 400u64;
        b.iter(|| {
            unit.gsu_start(
                0,
                GsuKind::Gather { vd: 0 },
                vec![(0, 0x100, 0), (1, 0x104, 0), (2, 0x108, 0), (3, 0x10c, 0)],
                4,
            );
            loop {
                now += 1;
                if !unit.tick(&mut mem, now).is_empty() {
                    break;
                }
            }
        });
    });
    c.bench_function("gsu/glsc_roundtrip", |b| {
        let mut cfg = MemConfig::default();
        cfg.prefetch = false;
        let mut mem = MemorySystem::new(cfg, 1, 4);
        let mut unit = CoreMemUnit::new(0, 4, GlscConfig::default());
        let mut now = 0u64;
        b.iter(|| {
            unit.gsu_start(0, GsuKind::GatherLink { fd: 0, vd: 0 }, vec![(0, 0x100, 0)], 4);
            loop {
                now += 1;
                if !unit.tick(&mut mem, now).is_empty() {
                    break;
                }
            }
            unit.gsu_start(0, GsuKind::ScatterCond { fd: 0 }, vec![(0, 0x100, 7)], 4);
            loop {
                now += 1;
                if !unit.tick(&mut mem, now).is_empty() {
                    break;
                }
            }
        });
    });
}

fn bench_machine(c: &mut Criterion) {
    // End-to-end simulation rate: simulated instructions per host second.
    c.bench_function("machine/scalar_loop_1x1", |b| {
        b.iter_batched(
            || {
                let mut bld = ProgramBuilder::new();
                let (acc, i) = (Reg::new(2), Reg::new(3));
                bld.li(acc, 0);
                bld.li(i, 0);
                let top = bld.here();
                bld.add(acc, acc, i);
                bld.addi(i, i, 1);
                bld.blt(i, 2000, top);
                bld.halt();
                let mut m = Machine::new(MachineConfig::paper(1, 1, 4));
                m.load_program(bld.build().unwrap());
                m
            },
            |mut m| {
                black_box(m.run().unwrap());
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("machine/glsc_histogram_4x4", |b| {
        b.iter_batched(
            || {
                let cfg = MachineConfig::paper(4, 4, 4);
                let w = glsc_kernels::hip::Hip::new(glsc_kernels::Dataset::Tiny)
                    .build(glsc_kernels::Variant::Glsc, &cfg);
                (w, cfg)
            },
            |(w, cfg)| {
                black_box(glsc_kernels::run_workload(&w, &cfg).unwrap());
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tag_array, bench_memory_system, bench_gsu, bench_machine
}
criterion_main!(benches);
