//! Microbenchmarks of the simulator substrate — ablations for the design
//! choices called out in DESIGN.md (tag-array cost, coherence walk, GSU
//! combining, end-to-end simulation rate).
//!
//! Criterion is unavailable in the offline build environment, so this is a
//! plain `harness = false` timing harness: each case runs a warmup pass,
//! then reports the best-of-3 mean ns/iter. Good enough for the relative
//! comparisons these ablations are used for.
//!
//! Host timings are not cacheable, so this target skips the job store;
//! output is still written to `results/components.txt`.

use glsc_bench::{finish_figure, FigureOutput};
use glsc_core::{CoreMemUnit, GlscConfig, GsuKind};
use glsc_isa::{ProgramBuilder, Reg};
use glsc_mem::{MemConfig, MemOp, MemorySystem, TagArray};
use glsc_sim::{Machine, MachineConfig};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `iters` iterations, best of 3 passes after one warmup.
fn bench(out: &mut FigureOutput, name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters.min(100) {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per);
    }
    out.line(format!("{name:<32} {best:>12.1} ns/iter"));
}

fn bench_tag_array(out: &mut FigureOutput) {
    let mut tags: TagArray<u32> = TagArray::new(128, 4, 64);
    for i in 0..512u64 {
        tags.insert(i * 64, i as u32);
    }
    let mut i = 0u64;
    bench(out, "tags/lookup_hit", 1_000_000, || {
        i = (i + 1) % 512;
        black_box(tags.lookup_mut(i * 64));
    });
    bench(out, "tags/insert_evict", 10_000, || {
        let mut tags = TagArray::<u32>::new(8, 2, 64);
        for i in 0..64u64 {
            black_box(tags.insert(i * 64, i as u32));
        }
    });
}

fn bench_memory_system(out: &mut FigureOutput) {
    {
        let cfg = MemConfig {
            prefetch: false,
            ..MemConfig::default()
        };
        let mut m = MemorySystem::new(cfg, 1, 4);
        m.access(0, 0, MemOp::Load, 0x100, 0);
        let mut now = 400u64;
        bench(out, "mem/l1_hit_path", 1_000_000, || {
            now += 1;
            black_box(m.access(0, 0, MemOp::Load, 0x100, now));
        });
    }
    {
        let cfg = MemConfig {
            prefetch: false,
            ..MemConfig::default()
        };
        let mut m = MemorySystem::new(cfg, 2, 4);
        let mut now = 0u64;
        bench(out, "mem/cross_core_pingpong", 1_000_000, || {
            now += 1;
            black_box(m.access((now % 2) as usize, 0, MemOp::Store, 0x100, now));
        });
    }
}

fn bench_gsu(out: &mut FigureOutput) {
    {
        let cfg = MemConfig {
            prefetch: false,
            ..MemConfig::default()
        };
        let mut mem = MemorySystem::new(cfg, 1, 4);
        mem.access(0, 0, MemOp::Load, 0x100, 0);
        let mut unit = CoreMemUnit::new(0, 4, GlscConfig::default());
        let mut now = 400u64;
        bench(out, "gsu/gather_4_combined", 100_000, || {
            unit.gsu_start(
                0,
                GsuKind::Gather { vd: 0 },
                vec![(0, 0x100, 0), (1, 0x104, 0), (2, 0x108, 0), (3, 0x10c, 0)],
                4,
            );
            loop {
                now += 1;
                if !unit.tick(&mut mem, now).is_empty() {
                    break;
                }
            }
        });
    }
    {
        let cfg = MemConfig {
            prefetch: false,
            ..MemConfig::default()
        };
        let mut mem = MemorySystem::new(cfg, 1, 4);
        let mut unit = CoreMemUnit::new(0, 4, GlscConfig::default());
        let mut now = 0u64;
        bench(out, "gsu/glsc_roundtrip", 100_000, || {
            unit.gsu_start(
                0,
                GsuKind::GatherLink { fd: 0, vd: 0 },
                vec![(0, 0x100, 0)],
                4,
            );
            loop {
                now += 1;
                if !unit.tick(&mut mem, now).is_empty() {
                    break;
                }
            }
            unit.gsu_start(0, GsuKind::ScatterCond { fd: 0 }, vec![(0, 0x100, 7)], 4);
            loop {
                now += 1;
                if !unit.tick(&mut mem, now).is_empty() {
                    break;
                }
            }
        });
    }
}

fn bench_machine(out: &mut FigureOutput) {
    // End-to-end simulation rate: simulated instructions per host second.
    bench(out, "machine/scalar_loop_1x1", 200, || {
        let mut bld = ProgramBuilder::new();
        let (acc, i) = (Reg::new(2), Reg::new(3));
        bld.li(acc, 0);
        bld.li(i, 0);
        let top = bld.here();
        bld.add(acc, acc, i);
        bld.addi(i, i, 1);
        bld.blt(i, 2000, top);
        bld.halt();
        let mut m = Machine::new(MachineConfig::paper(1, 1, 4));
        m.load_program(bld.build().unwrap());
        black_box(m.run().unwrap());
    });
    bench(out, "machine/glsc_histogram_4x4", 20, || {
        let cfg = MachineConfig::paper(4, 4, 4);
        let w = glsc_kernels::hip::Hip::new(glsc_kernels::Dataset::Tiny)
            .build(glsc_kernels::Variant::Glsc, &cfg);
        black_box(glsc_kernels::run_workload(&w, &cfg).unwrap());
    });
}

fn main() {
    let mut out = FigureOutput::new("components");
    bench_tag_array(&mut out);
    bench_memory_system(&mut out);
    bench_gsu(&mut out);
    bench_machine(&mut out);
    std::process::exit(finish_figure(out, &[]));
}
