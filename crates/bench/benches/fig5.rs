//! Figure 5: benchmark behavior with GLSC in the 1×1 configuration.
//!
//! (a) Percent of execution time in synchronization operations (1-wide
//!     SIMD, GLSC — "very similar to ... Base" per §5.1).
//! (b) SIMD efficiency: speedup of 4-wide and 16-wide SIMD over 1-wide.
//!
//! The (kernel, dataset, width) simulations are independent and run
//! across host threads (`GLSC_BENCH_THREADS`); results are collected in
//! job order so the printed tables match the serial harness exactly.
//! Completed simulations persist to the job store (`GLSC_BENCH_RESUME=1`
//! resumes an interrupted sweep); failed jobs print as typed degradation rows (`PANIC`/`DEAD`/`QUAR`). Both
//! tables are written to `results/fig5.txt`.

use glsc_bench::{
    bench_threads, collect_errors, datasets, ds_label, finish_figure, run_cached, run_jobs,
    FigureOutput, JobStore,
};
use glsc_kernels::{Variant, KERNEL_NAMES};

fn main() {
    let store = JobStore::for_bench("fig5");
    let mut out = FigureOutput::new("fig5");
    let mut params = Vec::new();
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            for width in [1usize, 4, 16] {
                params.push((kernel, ds, width));
            }
        }
    }
    let jobs: Vec<_> = params
        .iter()
        .map(|&(kernel, ds, width)| {
            let store = &store;
            move || run_cached(store, kernel, ds, Variant::Glsc, (1, 1), width)
        })
        .collect();
    let results = run_jobs(jobs, bench_threads());
    let errors = collect_errors(&results);

    out.header(
        "Figure 5(a): % execution time in synchronization (1x1, 1-wide, GLSC)",
        "paper: all benchmarks spend a significant fraction in sync ops",
    );
    out.line(format!("{:<6} {:>4} {:>14}", "bench", "ds", "sync time"));
    // Row label → (4-wide, 16-wide) speedups, or the degradation cell.
    type Fig5bRow = (String, Result<(f64, f64), &'static str>);
    let mut fig5b: Vec<Fig5bRow> = Vec::new();
    for (&(kernel, ds, _), chunk) in params.iter().step_by(3).zip(results.chunks(3)) {
        let [w1, w4, w16] = chunk else {
            unreachable!("three widths per pair")
        };
        match w1 {
            Ok(w1) => out.line(format!(
                "{:<6} {:>4} {:>13.1}%",
                kernel,
                ds_label(ds),
                100.0 * w1.report.sync_fraction()
            )),
            Err(e) => out.line(format!(
                "{:<6} {:>4} {:>14}",
                kernel,
                ds_label(ds),
                e.cell()
            )),
        }
        let speedups = match (w1, w4, w16) {
            (Ok(w1), Ok(w4), Ok(w16)) => Ok((
                w1.report.cycles as f64 / w4.report.cycles as f64,
                w1.report.cycles as f64 / w16.report.cycles as f64,
            )),
            // Label the pair with the first failed width's degradation
            // mode so 5(b) says how the row died.
            _ => Err(chunk
                .iter()
                .find_map(|r| r.as_ref().err())
                .map(|e| e.cell())
                .unwrap_or("ERR")),
        };
        fig5b.push((format!("{kernel}/{}", ds_label(ds)), speedups));
    }

    out.header(
        "Figure 5(b): SIMD efficiency — speedup over 1-wide SIMD (1x1, GLSC)",
        "paper: ~2.6x average at 4-wide, ~5x at 16-wide",
    );
    out.line(format!(
        "{:<10} {:>10} {:>10}",
        "bench/ds", "4-wide", "16-wide"
    ));
    let (mut s4, mut s16) = (Vec::new(), Vec::new());
    for (name, speedups) in &fig5b {
        match speedups {
            Ok((a, b)) => {
                out.line(format!("{name:<10} {a:>9.2}x {b:>9.2}x"));
                s4.push(*a);
                s16.push(*b);
            }
            Err(cell) => out.line(format!("{name:<10} {cell:>10} {cell:>10}")),
        }
    }
    out.line(format!(
        "{:<10} {:>9.2}x {:>9.2}x",
        "geomean",
        glsc_bench::geomean(&s4),
        glsc_bench::geomean(&s16)
    ));
    std::process::exit(finish_figure(out, &errors));
}
