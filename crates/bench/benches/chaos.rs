//! Chaos smoke: every kernel under seeded fault injection (DESIGN.md §9).
//!
//! For each kernel and variant, runs the clean baseline and then a sweep
//! of seeded fault plans (the `GLSC_CHAOS_SEEDS` env var sets the sweep
//! size, default 3; seed values print with every row so any run can be
//! replayed). Each chaotic run revalidates against the kernel's golden
//! reference — this harness is the CI-facing atomicity oracle — and the
//! table reports how much the destroyed reservations and jitter slowed
//! the run, plus the raw injection counters.
//!
//! Chaotic runs are never cached (the oracle must actually run); a job
//! that panics prints as a typed degradation row and a nonzero exit. The table is
//! written to `results/chaos.txt`.
//!
//! Set `GLSC_DATASETS=tiny` for the CI smoke configuration.

use glsc_bench::{
    bench_threads, collect_errors, datasets, ds_label, finish_figure, run, run_chaos, run_jobs,
    FigureOutput,
};
use glsc_kernels::{Variant, KERNEL_NAMES};
use glsc_sim::ChaosConfig;

fn main() {
    let sweep: u64 = std::env::var("GLSC_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let mut out = FigureOutput::new("chaos");
    out.header(
        "Chaos smoke: fault injection with revalidation",
        "slowdown = chaotic cycles / clean cycles (geomean over seeds); every run validates",
    );
    let width = 4;
    let shape = (2, 2);
    let mut params = Vec::new();
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            for variant in [Variant::Base, Variant::Glsc] {
                params.push((kernel, ds, variant));
            }
        }
    }
    let jobs: Vec<_> = params
        .iter()
        .map(|&(kernel, ds, variant)| {
            move || {
                let clean = run(kernel, ds, variant, shape, width);
                let chaotic: Vec<_> = (0..sweep)
                    .map(|i| {
                        let seed = 0x5EED + 31 * i;
                        (
                            seed,
                            run_chaos(
                                kernel,
                                ds,
                                variant,
                                shape,
                                width,
                                ChaosConfig::from_seed(seed),
                            ),
                        )
                    })
                    .collect();
                (clean, chaotic)
            }
        })
        .collect();
    let results = run_jobs(jobs, bench_threads());
    let errors = collect_errors(&results);

    out.line(format!(
        "{:<6} {:>3} {:>6} {:>9} {:>9} {:>7} {:>8} {:>8}",
        "bench", "ds", "impl", "clean", "chaotic", "slow", "faults", "seeds"
    ));
    for ((kernel, ds, variant), result) in params.iter().zip(&results) {
        let Ok((clean, chaotic)) = result else {
            let cell = result.as_ref().err().map(|e| e.cell()).unwrap_or("ERR");
            out.line(format!(
                "{:<6} {:>3} {:>6} {:>9} {:>9} {:>7} {:>8} {:>8}",
                kernel,
                ds_label(*ds),
                variant.label(),
                cell,
                cell,
                cell,
                cell,
                cell
            ));
            continue;
        };
        let slow = glsc_bench::geomean(
            &chaotic
                .iter()
                .map(|(_, (out, _))| out.report.cycles as f64 / clean.report.cycles as f64)
                .collect::<Vec<_>>(),
        );
        let faults: u64 = chaotic.iter().map(|(_, (_, s))| s.total_faults()).sum();
        let seeds: Vec<u64> = chaotic.iter().map(|&(seed, _)| seed).collect();
        out.line(format!(
            "{:<6} {:>3} {:>6} {:>9} {:>9} {:>6.2}x {:>8} {:>8}",
            kernel,
            ds_label(*ds),
            variant.label(),
            clean.report.cycles,
            chaotic.last().map_or(0, |(_, (out, _))| out.report.cycles),
            slow,
            faults,
            format!("{:x?}", seeds),
        ));
    }
    out.blank();
    out.line(format!(
        "all {} chaotic runs validated against the golden references",
        results.iter().filter(|r| r.is_ok()).count() * sweep as usize
    ));
    std::process::exit(finish_figure(out, &errors));
}
