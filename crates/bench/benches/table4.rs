//! Table 4: analysis of GLSC on the 4×4, 4-wide configuration.
//!
//! Per benchmark and dataset:
//! * reduction in dynamic instructions (GLSC vs Base),
//! * reduction in memory-stall cycles,
//! * L1-access analysis: the share of L1 accesses made by atomic
//!   operations, and the share of *atomic* accesses eliminated by
//!   same-line combining in the GSU,
//! * GLSC element failure rates at 1×1 (aliasing only) and 4×4 (aliasing
//!   plus cross-thread conflicts).
//!
//! The three runs per (kernel, dataset) cell are independent and are
//! fanned across host threads (`GLSC_BENCH_THREADS`); output order is
//! unchanged. Completed runs persist to the job store
//! (`GLSC_BENCH_RESUME=1` resumes); a failed job prints its whole row as
//! its typed degradation cell (`PANIC`/`DEAD`/`QUAR`). The table is
//! written to `results/table4.txt`.

use glsc_bench::{
    bench_threads, collect_errors, datasets, ds_label, finish_figure, pct, run_cached, run_jobs,
    FigureOutput, JobStore,
};
use glsc_kernels::{Variant, KERNEL_NAMES};

fn main() {
    let store = JobStore::for_bench("table4");
    let mut out = FigureOutput::new("table4");
    out.header(
        "Table 4: analysis of GLSC (4-wide SIMD)",
        "reductions are GLSC vs Base at 4x4; failure rates from GLSC runs",
    );
    let mut params = Vec::new();
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            params.push((kernel, ds, Variant::Base, (4, 4)));
            params.push((kernel, ds, Variant::Glsc, (4, 4)));
            params.push((kernel, ds, Variant::Glsc, (1, 1)));
        }
    }
    let jobs: Vec<_> = params
        .iter()
        .map(|&(kernel, ds, variant, cfg)| {
            let store = &store;
            move || run_cached(store, kernel, ds, variant, cfg, 4)
        })
        .collect();
    let results = run_jobs(jobs, bench_threads());
    let errors = collect_errors(&results);

    out.line(format!(
        "{:<6} {:>3} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "bench", "ds", "instr red", "stall red", "comb red", "atomic%", "fail 1x1", "fail 4x4"
    ));
    let mut chunks = results.chunks(3);
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            let chunk = chunks.next().expect("three runs per cell");
            let (Ok(base), Ok(glsc), Ok(glsc_1x1)) = (&chunk[0], &chunk[1], &chunk[2]) else {
                let cell = chunk
                    .iter()
                    .find_map(|r| r.as_ref().err())
                    .map(|e| e.cell())
                    .unwrap_or("ERR");
                out.line(format!(
                    "{:<6} {:>3} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
                    kernel,
                    ds_label(ds),
                    cell,
                    cell,
                    cell,
                    cell,
                    cell,
                    cell
                ));
                continue;
            };

            let bi = base.report.total_instructions() as f64;
            let gi = glsc.report.total_instructions() as f64;
            let instr_red = (bi - gi) / bi;

            let bs = base.report.total_mem_stalls() as f64;
            let gs = glsc.report.total_mem_stalls() as f64;
            let stall_red = if bs > 0.0 { (bs - gs) / bs } else { 0.0 };

            // L1 accesses due to atomic ops, and combining savings
            // relative to an uncombined implementation.
            let atomic = glsc.report.atomic_l1_accesses() as f64;
            let atomic_unc = glsc.report.atomic_l1_accesses_uncombined() as f64;
            let total_l1 = glsc.report.l1_accesses() as f64;
            let comb_red = if atomic_unc > 0.0 {
                (atomic_unc - atomic) / atomic_unc
            } else {
                0.0
            };
            let atomic_share = if total_l1 > 0.0 {
                atomic / total_l1
            } else {
                0.0
            };

            out.line(format!(
                "{:<6} {:>3} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
                kernel,
                ds_label(ds),
                pct(instr_red),
                pct(stall_red),
                pct(comb_red),
                pct(atomic_share),
                pct(glsc_1x1.report.glsc_failure_rate()),
                pct(glsc.report.glsc_failure_rate()),
            ));
        }
    }
    out.blank();
    out.line("paper reference: avg instr reduction 33.8%, avg memory-stall reduction 23.4%,");
    out.line("1x1 failures only from aliasing (GBC ~31-34%, HIP ~20-35%, others ~0%),");
    out.line("4x4 failure rates within ~0.1% of 1x1 (cross-thread conflicts are rare).");
    std::process::exit(finish_figure(out, &errors));
}
