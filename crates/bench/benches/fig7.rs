//! Figure 7: microbenchmark scenarios A–D on the 4×4 configuration.
//!
//! Each bar of the paper's figure is the ratio of Base to GLSC execution
//! time for SIMD widths 4 and 16. Expected shape: large wins in A (miss
//! overlap), solid wins in B/C (instruction + L1-access reduction), and a
//! tie or loss in D (full aliasing), with D degrading further at 16-wide.
//!
//! The (scenario, variant, width) runs are independent and are fanned
//! across host threads (`GLSC_BENCH_THREADS`); output order is unchanged.
//! Completed runs persist to the job store (`GLSC_BENCH_RESUME=1`
//! resumes); failed jobs print as typed degradation cells (`PANIC`/`DEAD`/`QUAR`). The table is written to
//! `results/fig7.txt`.

use glsc_bench::{
    bench_threads, collect_errors, finish_figure, ratio, run_jobs, run_micro_cached, FigureOutput,
    JobStore,
};
use glsc_kernels::micro::Scenario;
use glsc_kernels::Variant;

fn main() {
    let store = JobStore::for_bench("fig7");
    let mut out = FigureOutput::new("fig7");
    out.header(
        "Figure 7: microbenchmark, Base/GLSC execution-time ratio (4x4)",
        "scenario A: shared distinct lines | B: same line | C: private lines | D: all aliased",
    );
    let mut params = Vec::new();
    for scenario in Scenario::ALL {
        for width in [4usize, 16] {
            for variant in [Variant::Base, Variant::Glsc] {
                params.push((scenario, variant, width));
            }
        }
    }
    let jobs: Vec<_> = params
        .iter()
        .map(|&(scenario, variant, width)| {
            let store = &store;
            move || run_micro_cached(store, scenario, variant, (4, 4), width)
        })
        .collect();
    let results = run_jobs(jobs, bench_threads());
    let errors = collect_errors(&results);

    out.line(format!(
        "{:<9} {:>12} {:>12}",
        "scenario", "width 4", "width 16"
    ));
    // Results arrive in job order: per scenario, [base w4, glsc w4,
    // base w16, glsc w16].
    for (scenario, chunk) in Scenario::ALL.into_iter().zip(results.chunks(4)) {
        let cell =
            |base: &Result<glsc_kernels::KernelOutcome, glsc_bench::JobError>,
             glsc: &Result<glsc_kernels::KernelOutcome, glsc_bench::JobError>| {
                match (base, glsc) {
                    (Ok(b), Ok(g)) => {
                        format!("{:>11.2}x", ratio(b.report.cycles, g.report.cycles))
                    }
                    (Err(e), _) | (_, Err(e)) => format!("{:>12}", e.cell()),
                }
            };
        out.line(format!(
            "{:<9} {} {}",
            scenario.label(),
            cell(&chunk[0], &chunk[1]),
            cell(&chunk[2], &chunk[3])
        ));
    }
    std::process::exit(finish_figure(out, &errors));
}
