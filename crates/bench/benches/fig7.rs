//! Figure 7: microbenchmark scenarios A–D on the 4×4 configuration.
//!
//! Each bar of the paper's figure is the ratio of Base to GLSC execution
//! time for SIMD widths 4 and 16. Expected shape: large wins in A (miss
//! overlap), solid wins in B/C (instruction + L1-access reduction), and a
//! tie or loss in D (full aliasing), with D degrading further at 16-wide.
//!
//! The (scenario, variant, width) runs are independent and are fanned
//! across host threads (`GLSC_BENCH_THREADS`); output order is unchanged.

use glsc_bench::{bench_threads, header, ratio, run_jobs, run_micro};
use glsc_kernels::micro::Scenario;
use glsc_kernels::Variant;

fn main() {
    header(
        "Figure 7: microbenchmark, Base/GLSC execution-time ratio (4x4)",
        "scenario A: shared distinct lines | B: same line | C: private lines | D: all aliased",
    );
    let mut params = Vec::new();
    for scenario in Scenario::ALL {
        for width in [4usize, 16] {
            for variant in [Variant::Base, Variant::Glsc] {
                params.push((scenario, variant, width));
            }
        }
    }
    let jobs: Vec<_> = params
        .iter()
        .map(|&(scenario, variant, width)| move || run_micro(scenario, variant, (4, 4), width))
        .collect();
    let results = run_jobs(jobs, bench_threads());

    println!("{:<9} {:>12} {:>12}", "scenario", "width 4", "width 16");
    // Results arrive in job order: per scenario, [base w4, glsc w4,
    // base w16, glsc w16].
    for (scenario, chunk) in Scenario::ALL.into_iter().zip(results.chunks(4)) {
        let w4 = ratio(chunk[0].report.cycles, chunk[1].report.cycles);
        let w16 = ratio(chunk[2].report.cycles, chunk[3].report.cycles);
        println!("{:<9} {:>11.2}x {:>11.2}x", scenario.label(), w4, w16);
    }
}
