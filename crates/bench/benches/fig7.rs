//! Figure 7: microbenchmark scenarios A–D on the 4×4 configuration.
//!
//! Each bar of the paper's figure is the ratio of Base to GLSC execution
//! time for SIMD widths 4 and 16. Expected shape: large wins in A (miss
//! overlap), solid wins in B/C (instruction + L1-access reduction), and a
//! tie or loss in D (full aliasing), with D degrading further at 16-wide.

use glsc_bench::{header, ratio, run_micro};
use glsc_kernels::micro::Scenario;
use glsc_kernels::Variant;

fn main() {
    header(
        "Figure 7: microbenchmark, Base/GLSC execution-time ratio (4x4)",
        "scenario A: shared distinct lines | B: same line | C: private lines | D: all aliased",
    );
    println!("{:<9} {:>12} {:>12}", "scenario", "width 4", "width 16");
    for scenario in Scenario::ALL {
        let mut cells = Vec::new();
        for width in [4, 16] {
            let base = run_micro(scenario, Variant::Base, (4, 4), width);
            let glsc = run_micro(scenario, Variant::Glsc, (4, 4), width);
            cells.push(ratio(base.report.cycles, glsc.report.cycles));
        }
        println!("{:<9} {:>11.2}x {:>11.2}x", scenario.label(), cells[0], cells[1]);
    }
}
