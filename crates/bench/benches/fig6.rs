//! Figure 6: normalized performance for 4-wide SIMD.
//!
//! For each benchmark and dataset, runs Base and GLSC over the four
//! machine shapes 1×1, 1×4, 4×1 and 4×4 and prints the speedup normalized
//! to the execution time of the **1×1 GLSC** configuration for that
//! dataset (the paper's normalization). The closing summary reports the
//! average GLSC-over-Base improvement at 1×1 and 4×4 (paper: 76% / 54%).
//!
//! All (kernel, dataset, variant, config) simulations are independent and
//! are fanned across host threads (`GLSC_BENCH_THREADS`); output order is
//! unchanged. Completed simulations persist to the job store, so an
//! interrupted sweep resumes with `GLSC_BENCH_RESUME=1`; a failed job
//! prints as its degradation-mode cell (`PANIC`, `DEAD`, `QUAR`, `SHED`)
//! and a nonzero exit instead of aborting the figure. The table is also
//! written to `results/fig6.txt`.

use glsc_bench::{
    bench_threads, collect_errors, datasets, ds_label, finish_figure, geomean, run_cached,
    run_jobs, FigureOutput, JobStore, CONFIGS,
};
use glsc_kernels::{Variant, KERNEL_NAMES};

fn main() {
    let store = JobStore::for_bench("fig6");
    let mut out = FigureOutput::new("fig6");
    out.header(
        "Figure 6: speedup over 1x1 GLSC, 4-wide SIMD",
        "columns: config = cores x threads/core; values normalized per dataset",
    );
    let width = 4;
    let mut params = Vec::new();
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            for variant in [Variant::Base, Variant::Glsc] {
                for cfg in CONFIGS {
                    params.push((kernel, ds, variant, cfg));
                }
            }
        }
    }
    let jobs: Vec<_> = params
        .iter()
        .map(|&(kernel, ds, variant, cfg)| {
            let store = &store;
            move || run_cached(store, kernel, ds, variant, cfg, width)
        })
        .collect();
    let results = run_jobs(jobs, bench_threads());
    let errors = collect_errors(&results);
    // Per-job cycles, or the failed job's degradation cell (PANIC, DEAD,
    // QUAR, SHED) so the figure says *how* a row died, not just that it
    // did.
    let cycles: std::collections::HashMap<_, _> = params
        .iter()
        .zip(&results)
        .map(|(&(kernel, ds, variant, cfg), r)| {
            (
                (kernel, ds, variant, cfg),
                r.as_ref()
                    .map(|out| out.report.cycles)
                    .map_err(|e| e.cell()),
            )
        })
        .collect();

    let mut improv_1x1 = Vec::new();
    let mut improv_4x4 = Vec::new();
    out.line(format!(
        "{:<6} {:>3} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "bench", "ds", "impl", "1x1", "1x4", "4x1", "4x4"
    ));
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            let norm = cycles[&(kernel, ds, Variant::Glsc, (1, 1))];
            for variant in [Variant::Base, Variant::Glsc] {
                let mut row = format!("{:<6} {:>3} {:>6}", kernel, ds_label(ds), variant.label());
                for cfg in CONFIGS {
                    match (norm, cycles[&(kernel, ds, variant, cfg)]) {
                        (Ok(n), Ok(c)) => {
                            row.push_str(&format!("  {:>6.2}x", n as f64 / c as f64));
                        }
                        // This job failed: show its own degradation mode.
                        (_, Err(cell)) => row.push_str(&format!("  {:>7}", cell)),
                        // This job ran but the 1x1 GLSC normalizer died:
                        // the value exists but cannot be normalized.
                        (Err(_), Ok(_)) => row.push_str(&format!("  {:>7}", "ERR")),
                    }
                }
                out.line(row);
            }
            if let (Ok(b), Ok(g)) = (
                cycles[&(kernel, ds, Variant::Base, (1, 1))],
                cycles[&(kernel, ds, Variant::Glsc, (1, 1))],
            ) {
                improv_1x1.push(b as f64 / g as f64);
            }
            if let (Ok(b), Ok(g)) = (
                cycles[&(kernel, ds, Variant::Base, (4, 4))],
                cycles[&(kernel, ds, Variant::Glsc, (4, 4))],
            ) {
                improv_4x4.push(b as f64 / g as f64);
            }
        }
    }
    out.blank();
    out.line(format!(
        "GLSC over Base, geomean: 1x1 = +{:.0}%  (paper: +76%),  4x4 = +{:.0}%  (paper: +54%)",
        100.0 * (geomean(&improv_1x1) - 1.0),
        100.0 * (geomean(&improv_4x4) - 1.0)
    ));
    std::process::exit(finish_figure(out, &errors));
}
