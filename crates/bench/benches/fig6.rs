//! Figure 6: normalized performance for 4-wide SIMD.
//!
//! For each benchmark and dataset, runs Base and GLSC over the four
//! machine shapes 1×1, 1×4, 4×1 and 4×4 and prints the speedup normalized
//! to the execution time of the **1×1 GLSC** configuration for that
//! dataset (the paper's normalization). The closing summary reports the
//! average GLSC-over-Base improvement at 1×1 and 4×4 (paper: 76% / 54%).
//!
//! All (kernel, dataset, variant, config) simulations are independent and
//! are fanned across host threads (`GLSC_BENCH_THREADS`); output order is
//! unchanged.

use glsc_bench::{bench_threads, datasets, ds_label, geomean, header, run, run_jobs, CONFIGS};
use glsc_kernels::{Variant, KERNEL_NAMES};

fn main() {
    header(
        "Figure 6: speedup over 1x1 GLSC, 4-wide SIMD",
        "columns: config = cores x threads/core; values normalized per dataset",
    );
    let width = 4;
    let mut params = Vec::new();
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            for variant in [Variant::Base, Variant::Glsc] {
                for cfg in CONFIGS {
                    params.push((kernel, ds, variant, cfg));
                }
            }
        }
    }
    let jobs: Vec<_> = params
        .iter()
        .map(|&(kernel, ds, variant, cfg)| move || run(kernel, ds, variant, cfg, width))
        .collect();
    let results = run_jobs(jobs, bench_threads());
    let cycles: std::collections::HashMap<_, _> = params
        .iter()
        .zip(&results)
        .map(|(&(kernel, ds, variant, cfg), out)| ((kernel, ds, variant, cfg), out.report.cycles))
        .collect();

    let mut improv_1x1 = Vec::new();
    let mut improv_4x4 = Vec::new();
    println!(
        "{:<6} {:>3} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "bench", "ds", "impl", "1x1", "1x4", "4x1", "4x4"
    );
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            let norm = cycles[&(kernel, ds, Variant::Glsc, (1, 1))] as f64;
            for variant in [Variant::Base, Variant::Glsc] {
                print!("{:<6} {:>3} {:>6}", kernel, ds_label(ds), variant.label());
                for cfg in CONFIGS {
                    print!(
                        "  {:>6.2}x",
                        norm / cycles[&(kernel, ds, variant, cfg)] as f64
                    );
                }
                println!();
            }
            improv_1x1.push(
                cycles[&(kernel, ds, Variant::Base, (1, 1))] as f64
                    / cycles[&(kernel, ds, Variant::Glsc, (1, 1))] as f64,
            );
            improv_4x4.push(
                cycles[&(kernel, ds, Variant::Base, (4, 4))] as f64
                    / cycles[&(kernel, ds, Variant::Glsc, (4, 4))] as f64,
            );
        }
    }
    println!();
    println!(
        "GLSC over Base, geomean: 1x1 = +{:.0}%  (paper: +76%),  4x4 = +{:.0}%  (paper: +54%)",
        100.0 * (geomean(&improv_1x1) - 1.0),
        100.0 * (geomean(&improv_4x4) - 1.0)
    );
}
