//! Figure 6: normalized performance for 4-wide SIMD.
//!
//! For each benchmark and dataset, runs Base and GLSC over the four
//! machine shapes 1×1, 1×4, 4×1 and 4×4 and prints the speedup normalized
//! to the execution time of the **1×1 GLSC** configuration for that
//! dataset (the paper's normalization). The closing summary reports the
//! average GLSC-over-Base improvement at 1×1 and 4×4 (paper: 76% / 54%).

use glsc_bench::{datasets, ds_label, geomean, header, run, CONFIGS};
use glsc_kernels::{Variant, KERNEL_NAMES};

fn main() {
    header(
        "Figure 6: speedup over 1x1 GLSC, 4-wide SIMD",
        "columns: config = cores x threads/core; values normalized per dataset",
    );
    let width = 4;
    let mut improv_1x1 = Vec::new();
    let mut improv_4x4 = Vec::new();
    println!(
        "{:<6} {:>3} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "bench", "ds", "impl", "1x1", "1x4", "4x1", "4x4"
    );
    for kernel in KERNEL_NAMES {
        for ds in datasets() {
            let mut cycles = std::collections::HashMap::new();
            for variant in [Variant::Base, Variant::Glsc] {
                for cfg in CONFIGS {
                    let out = run(kernel, ds, variant, cfg, width);
                    cycles.insert((variant, cfg), out.report.cycles);
                }
            }
            let norm = cycles[&(Variant::Glsc, (1, 1))] as f64;
            for variant in [Variant::Base, Variant::Glsc] {
                print!("{:<6} {:>3} {:>6}", kernel, ds_label(ds), variant.label());
                for cfg in CONFIGS {
                    print!("  {:>6.2}x", norm / cycles[&(variant, cfg)] as f64);
                }
                println!();
            }
            improv_1x1.push(
                cycles[&(Variant::Base, (1, 1))] as f64 / cycles[&(Variant::Glsc, (1, 1))] as f64,
            );
            improv_4x4.push(
                cycles[&(Variant::Base, (4, 4))] as f64 / cycles[&(Variant::Glsc, (4, 4))] as f64,
            );
        }
    }
    println!();
    println!(
        "GLSC over Base, geomean: 1x1 = +{:.0}%  (paper: +76%),  4x4 = +{:.0}%  (paper: +54%)",
        100.0 * (geomean(&improv_1x1) - 1.0),
        100.0 * (geomean(&improv_4x4) - 1.0)
    );
}
