//! Contention-policy study: how reservation arbitration bends tail
//! behavior on a deliberately evil microbenchmark.
//!
//! The paper's GLSC design (§3.2) inherits ll/sc's free-for-all under
//! contention: whichever thread's store-conditional lands first wins,
//! forever. This figure pits the three arbitration policies against the
//! scenario-A microbenchmark with its shared array squeezed to a 4-line
//! hot set, sweeping machine shape and the hardware-backoff program
//! variant, and reports throughput (cycles), retry pressure (total SC
//! attempts, failure rate), the worst per-thread consecutive-failure run,
//! and Jain's fairness index over per-thread SC retries. A second table
//! widens the hot set to 8 lines and squeezes the §3.3 reservation
//! buffer to 4 entries — one vector op's links still fit, but the
//! threads sharing an L1 evict each other — to surface capacity
//! evictions under each policy. (A buffer smaller than a single op's
//! line span livelocks outright: the op's own gather evicts its own
//! links, deterministically, forever.)
//!
//! The workload is fully parameterized (no dataset dependence), so the
//! tiny smoke run and the committed full figure have identical content.
//! Jobs persist to the job store and resume with `GLSC_BENCH_RESUME=1`;
//! the table is written to `results/contention_policies.txt`.

use glsc_bench::{
    bench_threads, collect_errors, finish_figure, run_jobs_labeled, run_workload_cached,
    FigureOutput, JobStore,
};
use glsc_kernels::micro::{Micro, MicroParams, Scenario};
use glsc_kernels::Variant;
use glsc_sim::{ArbitrationPolicy, MachineConfig, RunReport};

const POLICIES: [ArbitrationPolicy; 3] = [
    ArbitrationPolicy::Free,
    ArbitrationPolicy::NackHoldoff { window: 64 },
    ArbitrationPolicy::AgedPriority,
];
const SHAPES: [(usize, usize); 3] = [(1, 4), (2, 4), (4, 4)];

/// Scenario A with the shared array squeezed to a hot set of
/// `shared_lines` lines: every hardware thread fights over every line,
/// every iteration.
fn hot_micro(shared_lines: usize) -> Micro {
    Micro::with_params(
        Scenario::A,
        MicroParams {
            iters: 40,
            private_lines: 8,
            shared_lines,
            seed: 72,
        },
    )
}

fn config(policy: ArbitrationPolicy, cores: usize, tpc: usize, squeeze: bool) -> MachineConfig {
    let mut cfg = MachineConfig::paper(cores, tpc, 4).with_arbitration(policy);
    if squeeze {
        cfg.mem.glsc_buffer_entries = Some(4);
    }
    cfg
}

fn attempts(r: &RunReport) -> u64 {
    r.mem.sc_threads.iter().map(|t| t.attempts).sum()
}

fn main() {
    let store = JobStore::for_bench("contention_policies");
    let mut out = FigureOutput::new("contention_policies");
    out.header(
        "Contention management: arbitration policies on the hot-set micro",
        "scenario A, 4-line shared hot set, 40 iters/thread, GLSC, 4-wide SIMD;\n\
         bo = hardware-backoff program variant; fail% = SC failures / attempts",
    );

    // (policy, backoff, shape, squeeze-buffer)
    let mut params = Vec::new();
    for &policy in &POLICIES {
        for bo in [false, true] {
            for shape in SHAPES {
                params.push((policy, bo, shape, false));
            }
        }
    }
    for &policy in &POLICIES {
        params.push((policy, false, (4, 4), true));
    }

    let jobs: Vec<(String, _)> = params
        .iter()
        .map(|&(policy, bo, (cores, tpc), squeeze)| {
            let store = &store;
            let key = format!(
                "{}{}/{cores}x{tpc}{}",
                policy.label(),
                if bo { "+bo" } else { "" },
                if squeeze { "/8l-buf4" } else { "" }
            );
            let job_key = key.clone();
            let job = move || {
                let cfg = config(policy, cores, tpc, squeeze);
                let lines = if squeeze { 8 } else { 4 };
                let m = if bo {
                    hot_micro(lines).with_backoff()
                } else {
                    hot_micro(lines)
                };
                let w = m.build(Variant::Glsc, &cfg);
                run_workload_cached(store, &w, &cfg, &["contention", &job_key])
            };
            (key, job)
        })
        .collect();
    let results = run_jobs_labeled(jobs, bench_threads());
    let errors = collect_errors(&results);
    let reports: std::collections::HashMap<_, _> = params
        .iter()
        .zip(&results)
        .map(|(&(policy, bo, shape, squeeze), r)| {
            let key = (policy.label(), bo, shape, squeeze);
            (
                key,
                r.as_ref()
                    .map(|out| out.report.clone())
                    .map_err(|e| e.cell()),
            )
        })
        .collect();

    out.line(format!(
        "{:<6} {:>3} {:>5} {:>8} {:>9} {:>6} {:>10} {:>7}",
        "policy", "bo", "shape", "cycles", "attempts", "fail%", "maxstreak", "jain"
    ));
    for &policy in &POLICIES {
        for bo in [false, true] {
            for (cores, tpc) in SHAPES {
                let key = (policy.label(), bo, (cores, tpc), false);
                match &reports[&key] {
                    Ok(r) => {
                        let att = attempts(r);
                        let fails: u64 = r.mem.sc_threads.iter().map(|t| t.failures).sum();
                        let failpct = if att == 0 {
                            0.0
                        } else {
                            100.0 * fails as f64 / att as f64
                        };
                        out.line(format!(
                            "{:<6} {:>3} {:>5} {:>8} {:>9} {:>6.1} {:>10} {:>7.4}",
                            policy.label(),
                            if bo { "on" } else { "off" },
                            format!("{cores}x{tpc}"),
                            r.cycles,
                            att,
                            failpct,
                            r.max_sc_failure_streak(),
                            r.sc_retry_fairness()
                        ));
                    }
                    Err(cell) => out.line(format!(
                        "{:<6} {:>3} {:>5} {:>8}",
                        policy.label(),
                        if bo { "on" } else { "off" },
                        format!("{cores}x{tpc}"),
                        cell
                    )),
                }
            }
        }
    }

    out.blank();
    out.line("reservation-buffer pressure at 4x4: 4-entry buffer vs an 8-line hot set");
    out.line(format!(
        "{:<6} {:>8} {:>10} {:>10}",
        "policy", "cycles", "evictions", "maxstreak"
    ));
    for &policy in &POLICIES {
        let key = (policy.label(), false, (4, 4), true);
        match &reports[&key] {
            Ok(r) => out.line(format!(
                "{:<6} {:>8} {:>10} {:>10}",
                policy.label(),
                r.cycles,
                r.mem.reservation_buffer_evictions,
                r.max_sc_failure_streak()
            )),
            Err(cell) => out.line(format!("{:<6} {:>8}", policy.label(), cell)),
        }
    }

    out.blank();
    let jain = |policy: ArbitrationPolicy| {
        reports[&(policy.label(), false, (4, 4), false)]
            .as_ref()
            .ok()
            .map(|r| r.sc_retry_fairness())
    };
    if let (Some(free), Some(nack), Some(aged)) =
        (jain(POLICIES[0]), jain(POLICIES[1]), jain(POLICIES[2]))
    {
        out.line(format!(
            "fairness (Jain) at 4x4, tight loop: free {free:.4}, nack {nack:.4}, aged {aged:.4} \
             -- aged >= free: {}",
            if aged >= free { "yes" } else { "NO" }
        ));
        assert!(
            aged >= free,
            "AgedPriority must never be less fair than Free ({aged:.4} < {free:.4})"
        );
    }
    std::process::exit(finish_figure(out, &errors));
}
