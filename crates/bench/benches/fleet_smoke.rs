//! Fleet smoke: a small mixed sweep runnable down either harness path.
//!
//! With `GLSC_BENCH_FLEET=1` the sweep goes through the batched
//! [`run_jobs_fleet`] engine (pooled machines, copy-on-write dataset
//! bases, sliced stepping); otherwise every job runs solo through
//! [`run_workload_cached`] under [`run_jobs`], one fresh machine per
//! job. Both paths print the identical table — CI runs the smoke twice
//! and byte-diffs the stdout, and because the two paths share one cache
//! namespace (same job keys), a resumed run serves the other path's
//! entries without re-simulating (`GLSC_BENCH_RESUME=1`).
//!
//! The sweep mixes kernel and §5.2 microbenchmark jobs across machine
//! shapes so the fleet exercises grouping, machine reuse, and shared
//! dataset bases even at smoke scale. Output also lands in
//! `results/fleet_smoke.txt`.

use glsc_bench::{
    bench_threads, collect_errors, finish_figure, fleet_kernel_job, fleet_micro_job,
    fleet_requested, run_jobs, run_jobs_fleet, run_workload_cached, FigureOutput, FleetJobSpec,
    JobStore,
};
use glsc_kernels::micro::{MicroParams, Scenario};
use glsc_kernels::{Dataset, Variant};

/// The smoke sweep: 16 kernel jobs + 8 microbenchmark jobs, all Tiny.
fn jobs() -> Vec<FleetJobSpec> {
    let mut jobs = Vec::new();
    for kernel in ["HIP", "FS", "GPS", "SMC"] {
        for variant in [Variant::Base, Variant::Glsc] {
            for shape in [(1, 4), (4, 1)] {
                jobs.push(fleet_kernel_job(kernel, Dataset::Tiny, variant, shape, 4));
            }
        }
    }
    for scenario in Scenario::ALL {
        for variant in [Variant::Base, Variant::Glsc] {
            let params = MicroParams {
                iters: 2,
                private_lines: 8,
                shared_lines: 32,
                seed: 72,
            };
            jobs.push(fleet_micro_job(scenario, params, variant, (1, 4), 4));
        }
    }
    jobs
}

fn main() {
    let store = JobStore::for_bench("fleet_smoke");
    let mut out = FigureOutput::new("fleet_smoke");
    out.header(
        "fleet smoke: mixed kernel + micro sweep, Tiny datasets",
        "identical output whether run solo or through the fleet engine (GLSC_BENCH_FLEET=1)",
    );

    let specs = jobs();
    let labels: Vec<String> = specs.iter().map(|s| s.key_parts.join(" ")).collect();
    let results = if fleet_requested() {
        run_jobs_fleet(&store, specs, bench_threads())
    } else {
        let solo: Vec<_> = specs
            .iter()
            .map(|s| {
                let store = &store;
                move || {
                    let parts: Vec<&str> = s.key_parts.iter().map(String::as_str).collect();
                    run_workload_cached(store, &s.workload, &s.cfg, &parts)
                }
            })
            .collect();
        run_jobs(solo, bench_threads())
    };
    let errors = collect_errors(&results);

    out.line(format!("{:<28} {:>12}", "job", "sim cycles"));
    for (label, r) in labels.iter().zip(&results) {
        match r {
            Ok(outcome) => out.line(format!("{:<28} {:>12}", label, outcome.report.cycles)),
            Err(e) => out.line(format!("{:<28} {:>12}", label, e.cell())),
        }
    }
    std::process::exit(finish_figure(out, &errors));
}
