//! Fault drill for the harness retry path: a job poisoned via
//! `GLSC_BENCH_INJECT_PANIC` must be attempted exactly
//! `GLSC_BENCH_RETRIES + 1` times (with the deterministic backoff between
//! attempts) before degrading to a [`JobError`], while healthy jobs in
//! the same batch complete normally.
//!
//! This lives in its own test binary with a single `#[test]` because it
//! mutates process-wide environment variables; sharing a binary with
//! other tests would race on them.

use glsc_bench::{collect_errors, run_jobs_labeled, run_workload_cached, JobError, JobStore};
use glsc_kernels::{build_named, Dataset, Variant};
use glsc_sim::MachineConfig;
use std::sync::atomic::{AtomicU32, Ordering};

#[test]
fn injected_panic_burns_the_configured_retries_then_errors() {
    std::env::set_var("GLSC_BENCH_RETRIES", "2");
    std::env::set_var("GLSC_BENCH_INJECT_PANIC", "drill-poisoned");
    let cfg = MachineConfig::paper(1, 1, 4);
    let store = JobStore::disabled();

    let poisoned_calls = AtomicU32::new(0);
    let healthy_calls = AtomicU32::new(0);
    let jobs: Vec<(String, Box<dyn Fn() -> u64 + Send + Sync>)> = vec![
        (
            "drill-poisoned-HIP".to_string(),
            Box::new(|| {
                poisoned_calls.fetch_add(1, Ordering::SeqCst);
                let w =
                    build_named("HIP", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
                run_workload_cached(&store, &w, &cfg, &["drill-poisoned", "HIP"])
                    .report
                    .cycles
            }),
        ),
        (
            "drill-healthy-HIP".to_string(),
            Box::new(|| {
                healthy_calls.fetch_add(1, Ordering::SeqCst);
                let w =
                    build_named("HIP", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
                run_workload_cached(&store, &w, &cfg, &["drill-healthy", "HIP"])
                    .report
                    .cycles
            }),
        ),
    ];

    let results = run_jobs_labeled(jobs, 1);
    assert_eq!(results.len(), 2);

    // The poisoned job was genuinely re-run retries+1 times, then failed.
    let errors: Vec<JobError> = collect_errors(&results);
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].index(), 0);
    assert_eq!(errors[0].attempts(), 3, "2 retries means 3 attempts");
    assert_eq!(poisoned_calls.load(Ordering::SeqCst), 3);
    assert!(
        errors[0].message().contains("GLSC_BENCH_INJECT_PANIC"),
        "message: {}",
        errors[0].message()
    );

    // The healthy job ran once and produced a real report.
    assert_eq!(healthy_calls.load(Ordering::SeqCst), 1);
    assert!(results[1].as_ref().unwrap() > &0);
}
