//! The parallel figure harness must be a pure scheduling change: fanning
//! the independent simulations of a figure sweep across host threads has
//! to produce byte-identical tables to the serial path. Each simulation
//! builds its own `Machine` from scratch, so the only way this could
//! break is shared mutable state sneaking into the workload builders or
//! result collection losing job order — exactly what this test pins down.

use glsc_bench::{run, run_jobs, CONFIGS};
use glsc_kernels::{Dataset, Variant, KERNEL_NAMES};

/// A small but representative slice of the Figure 6 sweep: every kernel,
/// both variants, two machine shapes, tiny dataset.
fn sweep_params() -> Vec<(&'static str, Variant, (usize, usize))> {
    let mut params = Vec::new();
    for kernel in KERNEL_NAMES {
        for variant in [Variant::Base, Variant::Glsc] {
            for cfg in [CONFIGS[0], CONFIGS[3]] {
                params.push((kernel, variant, cfg));
            }
        }
    }
    params
}

fn sweep(threads: usize) -> Vec<glsc_sim::RunReport> {
    let params = sweep_params();
    let jobs: Vec<_> = params
        .iter()
        .map(|&(kernel, variant, cfg)| move || run(kernel, Dataset::Tiny, variant, cfg, 4).report)
        .collect();
    run_jobs(jobs, threads)
        .into_iter()
        .map(|r| r.expect("sweep job failed"))
        .collect()
}

#[test]
fn parallel_harness_matches_serial_reports() {
    let serial = sweep(1);
    let parallel = sweep(8);
    assert_eq!(serial.len(), sweep_params().len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let (kernel, variant, cfg) = sweep_params()[i];
        assert_eq!(
            s, p,
            "report diverged for {kernel}/{variant:?}/{cfg:?} between serial and parallel runs"
        );
    }
}

#[test]
fn run_jobs_is_order_preserving_under_oversubscription() {
    // More workers than jobs and jobs than workers both keep job order.
    for threads in [2, 3, 64] {
        let jobs: Vec<_> = (0..17u32)
            .map(|i| move || i.wrapping_mul(2654435761))
            .collect();
        let got = run_jobs(jobs, threads);
        let want: Vec<Result<u32, glsc_bench::JobError>> =
            (0..17u32).map(|i| Ok(i.wrapping_mul(2654435761))).collect();
        assert_eq!(got, want, "threads={threads}");
    }
}
