//! The fleet differential oracle (DESIGN.md §13): every job run through
//! the batched [`Fleet`] engine — pooled machines, copy-on-write dataset
//! bases, sliced round-robin stepping — must produce a [`RunReport`]
//! **bit-identical** to the same job run solo through [`Machine::run`],
//! for every kernel, every Fig. 6 machine shape, the Ideal and Ring
//! interconnects, and under an active fault-injection plan.
//!
//! The fleet is deliberately configured with a small odd quantum and a
//! width below the job count, so every job crosses many slice boundaries
//! and every pooled machine is reset and reused several times — the
//! exact machinery that could diverge from the solo path.

use glsc_kernels::{build_named, Dataset, Variant, Workload, KERNEL_NAMES};
use glsc_sim::{
    ChaosStats, FaultPlan, Fleet, FleetJob, Machine, MachineConfig, NocConfig, RunReport,
};

const CONFIGS: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];

/// Runs `w` solo on a fresh machine — the frozen baseline path.
fn solo(
    cfg: &MachineConfig,
    w: &Workload,
    plan: Option<FaultPlan>,
) -> (RunReport, Option<ChaosStats>) {
    let mut machine = Machine::new(cfg.clone());
    w.image.apply(machine.mem_mut().backing_mut());
    machine.load_program(w.program.clone());
    if let Some(p) = plan {
        machine.mem_mut().install_fault_plan(p);
    }
    let report = machine.run().expect("solo run must complete");
    let chaos = machine.mem().chaos_stats().cloned();
    (report, chaos)
}

/// Builds the full kernel × shape matrix under `noc`, runs it solo and
/// as one fleet, and asserts bit-identical reports (and chaos counters,
/// when a plan is installed).
fn differential(noc: NocConfig, plan_seed: Option<u64>, tag: &str) {
    let mut jobs: Vec<FleetJob> = Vec::new();
    let mut want: Vec<(String, RunReport, Option<ChaosStats>)> = Vec::new();
    for kernel in KERNEL_NAMES {
        for (cores, tpc) in CONFIGS {
            let mut cfg = MachineConfig::paper(cores, tpc, 4).with_noc(noc.clone());
            if plan_seed.is_some() {
                // Mirror the chaos harness: a bigger budget and a watchdog
                // so a divergence shows up as a structured failure.
                cfg = cfg
                    .with_max_cycles(2_000_000_000)
                    .with_watchdog_window(Some(5_000_000));
            }
            let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
            let plan = plan_seed.map(FaultPlan::from_seed);
            let (report, chaos) = solo(&cfg, &w, plan.clone());
            let name = format!("{kernel} {cores}x{tpc} {tag}");
            want.push((name, report, chaos));
            let mut job = FleetJob::new(cfg, w.program.clone()).with_base(w.image.publish());
            if let Some(p) = plan {
                job = job.with_fault_plan(p);
            }
            jobs.push(job);
        }
    }

    // Width 3 over 28 jobs: each of the four machine shapes is pooled and
    // reset repeatedly; quantum 1777 forces thousands of slice crossings.
    let fleet = Fleet::new().with_width(3).with_quantum(1777);
    let mut got: Vec<Option<(RunReport, Option<ChaosStats>)>> =
        (0..jobs.len()).map(|_| None).collect();
    fleet.run_each(jobs, |idx, machine, result| {
        let report = result.unwrap_or_else(|e| panic!("{}: fleet run failed: {e}", want[idx].0));
        got[idx] = Some((report, machine.mem().chaos_stats().cloned()));
    });

    for (idx, (name, want_report, want_chaos)) in want.iter().enumerate() {
        let (got_report, got_chaos) = got[idx].as_ref().expect("every job reported");
        assert_eq!(
            got_report, want_report,
            "{name}: fleet report diverged from solo"
        );
        assert_eq!(
            got_chaos, want_chaos,
            "{name}: chaos counters diverged from solo"
        );
    }
    if plan_seed.is_some() {
        let injected: u64 = want
            .iter()
            .map(|(_, _, c)| c.as_ref().map_or(0, ChaosStats::total_faults))
            .sum();
        assert!(injected > 0, "the chaos plan must actually fire");
    }
}

#[test]
fn fleet_matches_solo_every_kernel_every_shape_ideal() {
    differential(NocConfig::ideal(), None, "ideal");
}

#[test]
fn fleet_matches_solo_under_ring_interconnect() {
    differential(NocConfig::ring(), None, "ring");
}

#[test]
fn fleet_matches_solo_under_fault_injection() {
    differential(NocConfig::ideal(), Some(29), "chaos");
}
