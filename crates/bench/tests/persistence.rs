//! Durable job-store correctness: every kernel's `RunReport` must survive
//! the encode → disk → decode round trip exactly, resume reads must only
//! ever return byte-faithful reports (corrupt or stale entries re-run
//! instead), and job keys must separate jobs that differ only in machine
//! configuration.

use glsc_bench::codec::{decode_report, encode_report, CodecError};
use glsc_bench::store::{cfg_fingerprint, job_key};
use glsc_bench::{run_workload_cached, JobStore};
use glsc_kernels::{build_named, run_workload, Dataset, Variant, KERNEL_NAMES};
use glsc_sim::MachineConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// Fresh per-test scratch directory (no tempfile dependency).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "glsc-persistence-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_kernel_report_round_trips_through_the_codec() {
    let cfg = MachineConfig::paper(2, 2, 4);
    for kernel in KERNEL_NAMES {
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        let out = run_workload(&w, &cfg).unwrap();
        let decoded = decode_report(&encode_report(&out.report))
            .unwrap_or_else(|e| panic!("{kernel}: decode failed: {e}"));
        assert_eq!(decoded, out.report, "{kernel}: report changed in transit");
    }
}

#[test]
fn store_round_trips_and_resume_skips_the_simulation() {
    let dir = scratch("roundtrip");
    let cfg = MachineConfig::paper(1, 2, 4);
    let w = build_named("HIP", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");

    // First run: cold store, simulates and persists.
    let writer = JobStore::at(dir.clone(), false);
    let first = run_workload_cached(&writer, &w, &cfg, &["persistence", "HIP"]);
    let key = job_key(
        &["persistence", "HIP"],
        w.fingerprint(),
        cfg_fingerprint(&cfg),
    );
    let path = writer.path_for(&key).unwrap();
    assert!(path.exists(), "no cache entry at {}", path.display());

    // Resume: the cached report satisfies the job byte-identically.
    let resumer = JobStore::at(dir.clone(), true);
    let cached = resumer.load(&key).expect("resume must hit the cache");
    assert_eq!(cached, first.report);
    let resumed = run_workload_cached(&resumer, &w, &cfg, &["persistence", "HIP"]);
    assert_eq!(resumed.report, first.report);

    // Without resume, the entry is ignored (but stays on disk).
    assert!(writer.load(&key).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_and_stale_entries_rerun_instead_of_poisoning() {
    let dir = scratch("corrupt");
    let cfg = MachineConfig::paper(1, 1, 4);
    let w = build_named("TMS", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
    let store = JobStore::at(dir.clone(), true);
    let key = job_key(&["corrupt"], w.fingerprint(), cfg_fingerprint(&cfg));
    let path = store.path_for(&key).unwrap();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();

    // Truncated (torn write): load must refuse it and the job re-runs.
    let good = run_workload(&w, &cfg).unwrap();
    let text = encode_report(&good.report);
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    assert!(store.load(&key).is_none(), "accepted a torn cache entry");
    let rerun = run_workload_cached(&store, &w, &cfg, &["corrupt"]);
    assert_eq!(rerun.report, good.report);

    // Version mismatch is rejected at the codec level...
    let stale = text.replacen("glsc-runreport v4", "glsc-runreport v3", 1);
    assert_eq!(
        decode_report(&stale),
        Err(CodecError::VersionMismatch { found: "v3".into() })
    );
    // ...and can never be *read* by a newer build anyway, because the
    // version is part of the filename.
    assert!(path.to_string_lossy().contains(".v4."));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn job_keys_separate_configs_and_workloads() {
    let cfg_a = MachineConfig::paper(4, 4, 4);
    let mut cfg_b = cfg_a.clone();
    cfg_b.mem.prefetch = !cfg_b.mem.prefetch;
    let w = build_named("HIP", Dataset::Tiny, Variant::Glsc, &cfg_a).expect("known kernel");
    let w2 = build_named("HIP", Dataset::Tiny, Variant::Base, &cfg_a).expect("known kernel");

    let base = job_key(&["x"], w.fingerprint(), cfg_fingerprint(&cfg_a));
    assert_ne!(
        base,
        job_key(&["x"], w.fingerprint(), cfg_fingerprint(&cfg_b)),
        "config change must change the key"
    );
    assert_ne!(
        base,
        job_key(&["x"], w2.fingerprint(), cfg_fingerprint(&cfg_a)),
        "workload change must change the key"
    );
    // Keys are filesystem-safe.
    let weird = job_key(&["a/b c:d", "e*f"], 1, 2);
    assert!(
        weird
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "._-".contains(c)),
        "unsafe key {weird:?}"
    );
}

#[test]
fn disabled_store_neither_reads_nor_writes() {
    let store = JobStore::disabled();
    assert!(store.dir().is_none());
    assert!(store.path_for("k").is_none());
    assert!(store.load("k").is_none());
    let cfg = MachineConfig::paper(1, 1, 4);
    let w = build_named("HIP", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
    // save() must be a no-op rather than an error.
    let out = run_workload_cached(&store, &w, &cfg, &["disabled"]);
    assert!(out.report.cycles > 0);
}
