//! Harness-level semantics of [`run_jobs_fleet`]: job-order results,
//! cross-path cache compatibility, in-sweep deduplication, resume hits
//! that bypass simulation entirely, and panic containment with solo
//! fallback — the same guarantees [`run_jobs`] gives the classic path.

use glsc_bench::{collect_errors, fleet_kernel_job, run_jobs_fleet, FleetJobSpec, JobStore};
use glsc_kernels::{build_named, run_workload, Dataset, Variant, Workload};
use glsc_sim::MachineConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// Fresh per-test scratch directory (no tempfile dependency).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "glsc-fleet-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fleet_results_are_ordered_deduplicated_and_cached_per_key() {
    let dir = scratch("dedupe");
    let store = JobStore::at(dir, false);

    // A mixed sweep with an exact duplicate under a different cache key
    // (as dataset-sharing sweeps produce): the duplicate must simulate
    // once but persist and report under both keys.
    let mut jobs = vec![
        fleet_kernel_job("HIP", Dataset::Tiny, Variant::Glsc, (1, 2), 4),
        fleet_kernel_job("GPS", Dataset::Tiny, Variant::Base, (2, 1), 4),
        fleet_kernel_job("HIP", Dataset::Tiny, Variant::Glsc, (2, 2), 1),
    ];
    let mut dup = fleet_kernel_job("HIP", Dataset::Tiny, Variant::Glsc, (1, 2), 4);
    dup.key_parts = vec!["alias".into(), "HIP".into()];
    jobs.push(dup);

    // Solo ground truth, computed before the fleet touches anything.
    let want: Vec<_> = jobs
        .iter()
        .map(|j| run_workload(&j.workload, &j.cfg).unwrap().report)
        .collect();

    let keys: Vec<_> = jobs
        .iter()
        .map(|j| {
            let parts: Vec<&str> = j.key_parts.iter().map(String::as_str).collect();
            glsc_bench::store::job_key(
                &parts,
                j.workload.fingerprint(),
                glsc_bench::store::cfg_fingerprint(&j.cfg),
            )
        })
        .collect();

    let got = run_jobs_fleet(&store, jobs, 2);
    assert_eq!(got.len(), 4);
    for (i, r) in got.iter().enumerate() {
        let out = r.as_ref().unwrap_or_else(|e| panic!("job {i}: {e}"));
        assert_eq!(out.report, want[i], "job {i}: fleet diverged from solo");
    }
    // Both the duplicate's key and its primary's key are persisted.
    for key in &keys {
        let path = store.path_for(key).unwrap();
        assert!(path.exists(), "missing cache entry for {key}");
    }
    assert!(collect_errors(&got).is_empty());
}

#[test]
fn fleet_resume_hits_bypass_simulation() {
    let dir = scratch("resume");

    // Populate the cache.
    let writer = JobStore::at(dir.clone(), false);
    let first = run_jobs_fleet(
        &writer,
        vec![fleet_kernel_job(
            "FS",
            Dataset::Tiny,
            Variant::Glsc,
            (1, 2),
            4,
        )],
        1,
    );
    let first = first[0].as_ref().unwrap().report.clone();

    // Same job, but with a booby-trapped validator. The fingerprints
    // (program + image) are identical, so a resume hit must serve the
    // cached report without ever simulating or validating; if the fleet
    // re-ran it, the validator would fail the job.
    let cfg = MachineConfig::paper(1, 2, 4);
    let w = build_named("FS", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
    let trapped = Workload {
        name: w.name.clone(),
        program: w.program.clone(),
        image: w.image.clone(),
        validate: Box::new(|_| Err("resume hit must not simulate".into())),
    };
    let spec = FleetJobSpec {
        key_parts: vec![
            "FS".into(),
            "T".into(),
            Variant::Glsc.label().into(),
            "1x2".into(),
            "w4".into(),
        ],
        workload: trapped,
        cfg,
    };
    let resumer = JobStore::at(dir, true);
    let got = run_jobs_fleet(&resumer, vec![spec], 4);
    let out = got[0].as_ref().expect("resume hit must succeed");
    assert_eq!(out.report, first, "cached report must come back unchanged");
}

#[test]
fn fleet_contains_a_poisoned_job_and_finishes_the_rest_solo() {
    let dir = scratch("poison");
    let store = JobStore::at(dir, false);

    // The poison pattern only matches this test's keys, so concurrent
    // tests in this binary are unaffected by the process-global env var.
    std::env::set_var("GLSC_BENCH_INJECT_PANIC", "cursedfleet");
    let mut jobs: Vec<FleetJobSpec> = ["HIP", "GBC", "SMC", "TMS"]
        .iter()
        .map(|k| fleet_kernel_job(k, Dataset::Tiny, Variant::Glsc, (1, 2), 4))
        .collect();
    jobs[2].key_parts.insert(0, "cursedfleet".into());

    let want: Vec<_> = jobs
        .iter()
        .map(|j| run_workload(&j.workload, &j.cfg).unwrap().report)
        .collect();

    // One worker: the poisoned job shares its fleet chunk with healthy
    // jobs, so this exercises the chunk teardown + solo-fallback path.
    let got = run_jobs_fleet(&store, jobs, 1);
    std::env::remove_var("GLSC_BENCH_INJECT_PANIC");

    assert_eq!(got.len(), 4);
    for (i, r) in got.iter().enumerate() {
        if i == 2 {
            let e = r.as_ref().unwrap_err();
            assert_eq!(e.index(), 2);
            assert!(
                e.message().contains("GLSC_BENCH_INJECT_PANIC"),
                "unexpected failure: {}",
                e.message()
            );
        } else {
            let out = r.as_ref().unwrap_or_else(|e| panic!("job {i}: {e}"));
            assert_eq!(out.report, want[i], "job {i}: fallback diverged from solo");
        }
    }
    let errs = collect_errors(&got);
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].index(), 2);
}
