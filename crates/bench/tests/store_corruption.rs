//! Corruption drill for the durable job store: a cache entry that was
//! torn (truncated) or bit-rotted on disk must degrade to a logged cache
//! miss — the job simply re-runs — never a panic or, worse, a garbage
//! report served as a result.

use glsc_bench::store::job_key;
use glsc_bench::JobStore;
use glsc_kernels::{build_named, run_workload, Dataset, Variant};
use glsc_sim::MachineConfig;
use std::fs;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "glsc-store-corruption-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn corrupt_cache_entries_are_logged_misses() {
    let dir = tmp_dir("main");
    let store = JobStore::at(dir.clone(), true);

    let cfg = MachineConfig::paper(1, 2, 4);
    let w = build_named("HIP", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
    let out = run_workload(&w, &cfg).unwrap();
    let key = job_key(&["HIP", "T", "glsc"], 0xABCD, 0x1234);

    // Baseline: a clean save loads back identically.
    store.save(&key, &out.report);
    let path = store.path_for(&key).unwrap();
    let pristine = fs::read(&path).unwrap();
    assert_eq!(store.load(&key).as_ref(), Some(&out.report));

    // Truncation at every framing-relevant cut: header only, mid-body,
    // missing `end` trailer. Each is a miss, not a panic.
    for frac in [1, 3, 9, 19] {
        let cut = pristine.len() * frac / 20;
        fs::write(&path, &pristine[..cut]).unwrap();
        assert_eq!(store.load(&key), None, "cut at {cut} served a report");
    }

    // A flipped bit somewhere in the numbers decodes to a parse error or
    // fails the trailer framing — in every case, a miss. (The text codec
    // has no per-byte checksum; flips that keep a digit a digit can only
    // alter values, so flip a byte into a non-digit.)
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] = b'#';
    fs::write(&path, &flipped).unwrap();
    assert_eq!(store.load(&key), None, "bit-flipped entry served a report");

    // Empty file (crash between create and first write on a non-atomic
    // filesystem).
    fs::write(&path, b"").unwrap();
    assert_eq!(store.load(&key), None, "empty entry served a report");

    // After any corruption, a re-save repairs the entry in place.
    store.save(&key, &out.report);
    assert_eq!(store.load(&key).as_ref(), Some(&out.report));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn hostile_count_prefixes_are_misses_not_allocations() {
    // The text codec's count-prefixed lines (`threads N`,
    // `scthreads N ...`, `noclinks N ...`) must never trust the
    // declared count: a u64::MAX claim has to cross-check against the
    // fields actually present and miss instantly — no allocation
    // proportional to the claim, no hang walking a phantom loop.
    let dir = tmp_dir("hostile");
    let store = JobStore::at(dir.clone(), true);

    let cfg = MachineConfig::paper(2, 2, 4);
    let w = build_named("FS", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
    let out = run_workload(&w, &cfg).unwrap();
    let key = job_key(&["FS", "T", "glsc"], 0xBEEF, 0x7777);
    store.save(&key, &out.report);
    let path = store.path_for(&key).unwrap();
    let pristine = fs::read_to_string(&path).unwrap();
    assert_eq!(store.load(&key).as_ref(), Some(&out.report));

    for tag in ["threads", "scthreads", "noclinks"] {
        let prefix = format!("{tag} ");
        let hostile: String = pristine
            .lines()
            .map(|line| {
                if line.starts_with(&prefix) {
                    format!("{tag} {}\n", u64::MAX)
                } else {
                    format!("{line}\n")
                }
            })
            .collect();
        assert_ne!(hostile, pristine, "tag {tag} not found in the entry");
        fs::write(&path, &hostile).unwrap();
        assert_eq!(
            store.load(&key),
            None,
            "hostile `{tag}` count served a report"
        );
    }

    // A re-save repairs the entry in place, as with any corruption.
    store.save(&key, &out.report);
    assert_eq!(store.load(&key).as_ref(), Some(&out.report));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_off_never_reads_even_valid_entries() {
    let dir = tmp_dir("noresume");
    let store = JobStore::at(dir.clone(), false);
    let cfg = MachineConfig::paper(1, 1, 4);
    let w = build_named("GBC", Dataset::Tiny, Variant::Base, &cfg).expect("known kernel");
    let out = run_workload(&w, &cfg).unwrap();
    let key = job_key(&["GBC", "T", "base"], 1, 2);
    store.save(&key, &out.report);
    assert_eq!(store.load(&key), None, "load with resume off");
    let _ = fs::remove_dir_all(&dir);
}
