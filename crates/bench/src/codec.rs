//! Versioned text encoding for [`RunReport`]s — the on-disk format of the
//! durable job store (see `store`).
//!
//! The format is deliberately hand-rolled plain text (the workspace takes
//! no serialization dependency): a header line carrying the format
//! version, one `name value...` line per counter group, and an explicit
//! `end` trailer so a torn write (crash mid-`rename`-less write, full
//! disk) is detected as [`CodecError::Truncated`] rather than read back
//! as a silently short report. Decoding is strict — unknown versions,
//! missing fields, and trailing garbage are all errors — because a cache
//! that guesses is worse than no cache.
//!
//! ```text
//! glsc-runreport v4
//! cycles 12345
//! order sc
//! threads 4
//! thread 9-counters...          (one line per hardware thread)
//! mem 17-counters...
//! scthreads N per-thread-sc...  (count-prefixed: 5 counters per thread)
//! noc 10-counters...            (8 message classes, hops, queue cycles)
//! noclinks N per-link-counters  (count-prefixed: N then N counters)
//! lsu 9-counters...
//! gsu 14-counters...
//! end
//! ```

use glsc_sim::RunReport;
use std::error::Error;
use std::fmt;

/// Version tag written into (and required from) every encoded report.
/// Bump when the [`RunReport`] field set changes; old cache files then
/// decode to [`CodecError::VersionMismatch`] and are re-simulated.
/// History: v1 had a 14-counter `mem` line and no fabric counters; v2
/// added `inv_acks`/`writebacks` to `mem` plus the `noc`/`noclinks`
/// lines (the interconnect work); v3 added `elems_completed` to
/// `thread`, `reservation_buffer_evictions` to `mem`, and the
/// `scthreads` per-thread SC telemetry line (the contention study);
/// v4 added the `order` memory-model line and the fence/write-buffer
/// counters on `lsu` (the memory-consistency axis, DESIGN.md §17).
pub const FORMAT_VERSION: u32 = 4;

const HEADER_PREFIX: &str = "glsc-runreport v";
const THREAD_FIELDS: usize = 9;
const MEM_FIELDS: usize = 17;
const SC_THREAD_FIELDS: usize = 5;
const NOC_FIELDS: usize = glsc_mem::MsgClass::COUNT + 2; // msgs + hops + queue_cycles
const LSU_FIELDS: usize = 9;
const GSU_FIELDS: usize = 14;

/// Why a cache file failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The text does not start with the `glsc-runreport` header.
    MissingHeader,
    /// The header names a format version this build does not speak.
    VersionMismatch {
        /// The version found in the file.
        found: String,
    },
    /// The text ends before the `end` trailer — a torn or partial write.
    Truncated,
    /// A line inside the body is malformed.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::MissingHeader => write!(f, "missing {HEADER_PREFIX:?} header"),
            CodecError::VersionMismatch { found } => write!(
                f,
                "format version mismatch: file is {found:?}, this build speaks v{FORMAT_VERSION}"
            ),
            CodecError::Truncated => write!(f, "truncated report (no `end` trailer)"),
            CodecError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl Error for CodecError {}

/// Encodes a report in the versioned text format. `decode_report` inverts
/// this exactly.
pub fn encode_report(r: &RunReport) -> String {
    fn join(counters: &[u64]) -> String {
        counters
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
    let mut out = String::new();
    out.push_str(&format!("{HEADER_PREFIX}{FORMAT_VERSION}\n"));
    out.push_str(&format!("cycles {}\n", r.cycles));
    out.push_str(&format!("order {}\n", r.memory_order));
    out.push_str(&format!("threads {}\n", r.threads.len()));
    for t in &r.threads {
        out.push_str(&format!(
            "thread {}\n",
            join(&[
                t.instructions,
                t.sync_instructions,
                t.active_cycles,
                t.sync_cycles,
                t.mem_stall_cycles,
                t.compute_stall_cycles,
                t.issue_stall_cycles,
                t.barrier_cycles,
                t.elems_completed,
            ])
        ));
    }
    let m = &r.mem;
    out.push_str(&format!(
        "mem {}\n",
        join(&[
            m.l1_hits,
            m.l1_misses,
            m.l2_hits,
            m.l2_misses,
            m.upgrades,
            m.invalidations,
            m.back_invalidations,
            m.dirty_forwards,
            m.sc_failures,
            m.sc_successes,
            m.reservations_cleared_by_stores,
            m.prefetches_issued,
            m.prefetches_redundant,
            m.hits_under_miss,
            m.inv_acks,
            m.writebacks,
            m.reservation_buffer_evictions,
        ])
    ));
    let mut sc_counters: Vec<u64> = vec![(m.sc_threads.len() * SC_THREAD_FIELDS) as u64];
    for t in &m.sc_threads {
        sc_counters.extend_from_slice(&[
            t.attempts,
            t.successes,
            t.failures,
            t.cur_streak,
            t.max_streak,
        ]);
    }
    out.push_str(&format!("scthreads {}\n", join(&sc_counters)));
    let n = &m.noc;
    let mut noc_counters: Vec<u64> = n.msgs.to_vec();
    noc_counters.push(n.hops);
    noc_counters.push(n.queue_cycles);
    out.push_str(&format!("noc {}\n", join(&noc_counters)));
    let mut link_counters: Vec<u64> = vec![n.link_msgs.len() as u64];
    link_counters.extend_from_slice(&n.link_msgs);
    out.push_str(&format!("noclinks {}\n", join(&link_counters)));
    let l = &r.lsu;
    out.push_str(&format!(
        "lsu {}\n",
        join(&[
            l.loads,
            l.stores,
            l.lls,
            l.scs,
            l.sc_successes,
            l.vector_line_requests,
            l.fences,
            l.wbuf_drains,
            l.load_forwards,
        ])
    ));
    let g = &r.gsu;
    out.push_str(&format!(
        "gsu {}\n",
        join(&[
            g.gathers,
            g.scatters,
            g.gatherlinks,
            g.scatterconds,
            g.elems_active,
            g.line_requests,
            g.atomic_line_requests,
            g.atomic_elems,
            g.gl_elem_attempts,
            g.gl_elem_failures,
            g.sc_elem_attempts,
            g.sc_elem_successes,
            g.sc_fail_alias,
            g.sc_fail_reservation,
        ])
    ));
    out.push_str("end\n");
    out
}

struct Lines<'a> {
    iter: std::str::Lines<'a>,
    num: usize,
}

impl<'a> Lines<'a> {
    fn next(&mut self) -> Result<&'a str, CodecError> {
        self.num += 1;
        self.iter.next().ok_or(CodecError::Truncated)
    }

    fn malformed(&self, reason: impl Into<String>) -> CodecError {
        CodecError::Malformed {
            line: self.num,
            reason: reason.into(),
        }
    }

    /// Reads a `tag c0 c1 ...` line with exactly `n` counters.
    fn counters(&mut self, tag: &str, n: usize) -> Result<Vec<u64>, CodecError> {
        let line = self.next()?;
        let mut fields = line.split_whitespace();
        if fields.next() != Some(tag) {
            return Err(self.malformed(format!("expected a {tag:?} line, found {line:?}")));
        }
        let values: Vec<u64> = fields
            .map(|f| {
                f.parse()
                    .map_err(|_| self.malformed(format!("bad counter {f:?}")))
            })
            .collect::<Result<_, _>>()?;
        if values.len() != n {
            return Err(self.malformed(format!(
                "{tag:?} carries {} counter(s), expected {n}",
                values.len()
            )));
        }
        Ok(values)
    }

    /// Reads a count-prefixed `tag N c0 .. cN-1` line.
    fn counted(&mut self, tag: &str) -> Result<Vec<u64>, CodecError> {
        let line = self.next()?;
        let mut fields = line.split_whitespace();
        if fields.next() != Some(tag) {
            return Err(self.malformed(format!("expected a {tag:?} line, found {line:?}")));
        }
        let values: Vec<u64> = fields
            .map(|f| {
                f.parse()
                    .map_err(|_| self.malformed(format!("bad counter {f:?}")))
            })
            .collect::<Result<_, _>>()?;
        let Some((&count, rest)) = values.split_first() else {
            return Err(self.malformed(format!("{tag:?} is missing its count prefix")));
        };
        if rest.len() as u64 != count {
            return Err(self.malformed(format!(
                "{tag:?} declares {count} counter(s) but carries {}",
                rest.len()
            )));
        }
        Ok(rest.to_vec())
    }
}

/// Decodes a report previously written by [`encode_report`].
///
/// # Errors
///
/// [`CodecError`] describing the first problem: a missing or
/// wrong-version header, a truncated body, or a malformed line.
pub fn decode_report(text: &str) -> Result<RunReport, CodecError> {
    let mut lines = Lines {
        iter: text.lines(),
        num: 0,
    };
    let header = lines.next().map_err(|_| CodecError::MissingHeader)?;
    let version = header
        .strip_prefix(HEADER_PREFIX)
        .ok_or(CodecError::MissingHeader)?;
    if version.parse::<u32>() != Ok(FORMAT_VERSION) {
        return Err(CodecError::VersionMismatch {
            found: format!("v{version}"),
        });
    }
    let mut report = RunReport {
        cycles: lines.counters("cycles", 1)?[0],
        ..RunReport::default()
    };
    {
        let line = lines.next()?;
        let mut fields = line.split_whitespace();
        if fields.next() != Some("order") {
            return Err(lines.malformed(format!("expected an \"order\" line, found {line:?}")));
        }
        let name = fields
            .next()
            .ok_or_else(|| lines.malformed("\"order\" is missing its model name"))?;
        report.memory_order = name
            .parse()
            .map_err(|e: glsc_mem::ParseMemoryOrderError| lines.malformed(e.to_string()))?;
        if fields.next().is_some() {
            return Err(lines.malformed("\"order\" carries extra fields"));
        }
    }
    let threads = lines.counters("threads", 1)?[0];
    for _ in 0..threads {
        let c = lines.counters("thread", THREAD_FIELDS)?;
        report.threads.push(glsc_sim::ThreadStats {
            instructions: c[0],
            sync_instructions: c[1],
            active_cycles: c[2],
            sync_cycles: c[3],
            mem_stall_cycles: c[4],
            compute_stall_cycles: c[5],
            issue_stall_cycles: c[6],
            barrier_cycles: c[7],
            elems_completed: c[8],
        });
    }
    let c = lines.counters("mem", MEM_FIELDS)?;
    report.mem = glsc_mem::MemStats {
        l1_hits: c[0],
        l1_misses: c[1],
        l2_hits: c[2],
        l2_misses: c[3],
        upgrades: c[4],
        invalidations: c[5],
        back_invalidations: c[6],
        dirty_forwards: c[7],
        sc_failures: c[8],
        sc_successes: c[9],
        reservations_cleared_by_stores: c[10],
        prefetches_issued: c[11],
        prefetches_redundant: c[12],
        hits_under_miss: c[13],
        inv_acks: c[14],
        writebacks: c[15],
        reservation_buffer_evictions: c[16],
        sc_threads: Vec::new(),
        noc: glsc_mem::NocStats::default(),
    };
    let c = lines.counted("scthreads")?;
    if !c.len().is_multiple_of(SC_THREAD_FIELDS) {
        return Err(lines.malformed(format!(
            "\"scthreads\" carries {} counter(s), expected a multiple of {SC_THREAD_FIELDS}",
            c.len()
        )));
    }
    report.mem.sc_threads = c
        .chunks_exact(SC_THREAD_FIELDS)
        .map(|c| glsc_mem::ThreadScStats {
            attempts: c[0],
            successes: c[1],
            failures: c[2],
            cur_streak: c[3],
            max_streak: c[4],
        })
        .collect();
    let c = lines.counters("noc", NOC_FIELDS)?;
    let mut msgs = [0u64; glsc_mem::MsgClass::COUNT];
    msgs.copy_from_slice(&c[..glsc_mem::MsgClass::COUNT]);
    report.mem.noc = glsc_mem::NocStats {
        msgs,
        hops: c[glsc_mem::MsgClass::COUNT],
        queue_cycles: c[glsc_mem::MsgClass::COUNT + 1],
        link_msgs: lines.counted("noclinks")?,
    };
    let c = lines.counters("lsu", LSU_FIELDS)?;
    report.lsu = glsc_core::LsuStats {
        loads: c[0],
        stores: c[1],
        lls: c[2],
        scs: c[3],
        sc_successes: c[4],
        vector_line_requests: c[5],
        fences: c[6],
        wbuf_drains: c[7],
        load_forwards: c[8],
    };
    let c = lines.counters("gsu", GSU_FIELDS)?;
    report.gsu = glsc_core::GsuStats {
        gathers: c[0],
        scatters: c[1],
        gatherlinks: c[2],
        scatterconds: c[3],
        elems_active: c[4],
        line_requests: c[5],
        atomic_line_requests: c[6],
        atomic_elems: c[7],
        gl_elem_attempts: c[8],
        gl_elem_failures: c[9],
        sc_elem_attempts: c[10],
        sc_elem_successes: c[11],
        sc_fail_alias: c[12],
        sc_fail_reservation: c[13],
    };
    if lines.next()? != "end" {
        return Err(lines.malformed("expected the `end` trailer"));
    }
    if lines.iter.any(|l| !l.trim().is_empty()) {
        return Err(CodecError::Malformed {
            line: lines.num + 1,
            reason: "trailing garbage after `end`".into(),
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport {
            cycles: 987,
            ..RunReport::default()
        };
        for i in 0..3u64 {
            r.threads.push(glsc_sim::ThreadStats {
                instructions: 100 + i,
                sync_instructions: i,
                active_cycles: 900,
                sync_cycles: 5 * i,
                mem_stall_cycles: 40,
                compute_stall_cycles: 7,
                issue_stall_cycles: 3,
                barrier_cycles: 11,
                elems_completed: 60 + i,
            });
        }
        r.mem.l1_hits = 1234;
        r.mem.hits_under_miss = 9;
        r.mem.inv_acks = 17;
        r.mem.writebacks = 21;
        r.mem.reservation_buffer_evictions = 4;
        r.mem.sc_threads = vec![
            glsc_mem::ThreadScStats {
                attempts: 30,
                successes: 20,
                failures: 10,
                cur_streak: 0,
                max_streak: 4,
            },
            glsc_mem::ThreadScStats {
                attempts: 12,
                successes: 12,
                failures: 0,
                cur_streak: 0,
                max_streak: 0,
            },
        ];
        r.mem.noc.msgs[glsc_mem::MsgClass::GetS.index()] = 40;
        r.mem.noc.msgs[glsc_mem::MsgClass::DataReply.index()] = 41;
        r.mem.noc.hops = 120;
        r.mem.noc.queue_cycles = 13;
        r.mem.noc.link_msgs = vec![10, 0, 31];
        r.lsu.loads = 55;
        r.lsu.vector_line_requests = 6;
        r.lsu.fences = 3;
        r.lsu.wbuf_drains = 28;
        r.lsu.load_forwards = 2;
        r.memory_order = glsc_mem::MemoryOrder::Tso;
        r.gsu.gathers = 2;
        r.gsu.sc_fail_reservation = 1;
        r
    }

    #[test]
    fn round_trip() {
        let r = sample();
        assert_eq!(decode_report(&encode_report(&r)), Ok(r));
    }

    #[test]
    fn rejects_bad_inputs() {
        let text = encode_report(&sample());
        assert_eq!(decode_report(""), Err(CodecError::MissingHeader));
        assert_eq!(
            decode_report("not a report\n"),
            Err(CodecError::MissingHeader)
        );
        assert_eq!(
            decode_report(&text.replace("v4", "v999")),
            Err(CodecError::VersionMismatch {
                found: "v999".into()
            })
        );
        // Stale v3 cache files (pre-memory-order field set) are
        // re-simulated, not mis-read.
        assert_eq!(
            decode_report(&text.replace("v4", "v3")),
            Err(CodecError::VersionMismatch { found: "v3".into() })
        );
        // The memory-order line is validated, not guessed.
        assert!(matches!(
            decode_report(&text.replace("order tso", "order banana")),
            Err(CodecError::Malformed { .. })
        ));
        assert!(matches!(
            decode_report(&text.replace("order tso", "order tso extra")),
            Err(CodecError::Malformed { .. })
        ));
        assert!(matches!(
            decode_report(&text.replace("order tso", "order")),
            Err(CodecError::Malformed { .. })
        ));
        // Every truncation point (dropping the tail at any line boundary)
        // must be detected.
        let lines: Vec<&str> = text.lines().collect();
        for keep in 1..lines.len() {
            let cut = lines[..keep].join("\n");
            assert_eq!(
                decode_report(&cut),
                Err(CodecError::Truncated),
                "kept {keep} lines"
            );
        }
        assert!(matches!(
            decode_report(&text.replace("cycles 987", "cycles banana")),
            Err(CodecError::Malformed { .. })
        ));
        assert!(matches!(
            decode_report(&text.replace("noclinks 3 10 0 31", "noclinks 4 10 0 31")),
            Err(CodecError::Malformed { .. })
        ));
        assert!(matches!(
            decode_report(&text.replace("noclinks 3 10 0 31", "noclinks")),
            Err(CodecError::Malformed { .. })
        ));
        // A well-counted `scthreads` line whose payload is not a whole
        // number of per-thread records is still malformed.
        let sc_line = "scthreads 10 30 20 10 0 4 12 12 0 0 0";
        assert!(text.contains(sc_line), "sample sc line drifted");
        assert!(matches!(
            decode_report(&text.replace(sc_line, "scthreads 6 1 2 3 4 5 6")),
            Err(CodecError::Malformed { .. })
        ));
        assert!(matches!(
            decode_report(&(text + "extra\n")),
            Err(CodecError::Malformed { .. })
        ));
    }
}
