//! Figure output capture: every bench target prints its table through a
//! [`FigureOutput`], which tees each line to stdout (so the console
//! behavior — and byte-exact output — is unchanged) and, at the end of
//! the run, writes the whole figure to `results/<bench>.txt` with an
//! atomic tmp+rename. The bench owns its results file; shell redirection
//! is no longer needed, and an interrupted run can never leave a
//! half-written file under the final name.
//!
//! Tiny smoke runs (`GLSC_DATASETS=tiny`) write to
//! `results/<bench>-tiny.txt` so they never clobber the committed
//! full-dataset tables. `GLSC_RESULTS_DIR` overrides the directory.

use std::path::{Path, PathBuf};

/// Buffered, teed figure output for one bench target.
pub struct FigureOutput {
    bench: String,
    buf: String,
}

impl FigureOutput {
    /// Starts capturing output for bench target `bench` (e.g. `"fig6"`).
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            buf: String::new(),
        }
    }

    /// Prints one line to stdout and appends it to the captured figure.
    pub fn line(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        println!("{s}");
        self.buf.push_str(s);
        self.buf.push('\n');
    }

    /// Prints an empty line.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Prints the boxed section header every figure opens with.
    pub fn header(&mut self, title: &str, detail: &str) {
        self.blank();
        self.line(format!("=== {title} ==="));
        if !detail.is_empty() {
            self.line(detail);
        }
        self.blank();
    }

    /// The captured text so far (for tests).
    pub fn captured(&self) -> &str {
        &self.buf
    }

    /// Where this figure will be written.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var("GLSC_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"));
        let tiny = std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny");
        let suffix = if tiny { "-tiny" } else { "" };
        dir.join(format!("{}{suffix}.txt", self.bench))
    }

    /// Atomically writes the captured figure to its results file,
    /// returning the path. IO problems go to stderr and are non-fatal
    /// (the figure was already printed to stdout).
    pub fn finish(self) -> PathBuf {
        let path = self.path();
        let atomic_write = || -> std::io::Result<()> {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            std::fs::write(&tmp, &self.buf)?;
            std::fs::rename(&tmp, &path)
        };
        match atomic_write() {
            Ok(()) => eprintln!("[results] wrote {}", path.display()),
            Err(e) => eprintln!("[results] failed to write {}: {e}", path.display()),
        }
        path
    }
}
