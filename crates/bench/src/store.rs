//! Durable job store: completed simulation results persisted to disk so
//! an interrupted figure run resumes instead of restarting.
//!
//! Every figure/table job has a stable key built from its parameters
//! (kernel, dataset, variant, machine shape, SIMD width) plus two content
//! fingerprints: the workload's (program text + initial memory image)
//! and the machine configuration's. The fingerprints make staleness
//! detection automatic — editing a kernel, dataset generator, or config
//! changes the key, so the old cache entry is simply never matched. The
//! codec's format version rides in the filename for the same reason.
//!
//! Writes are crash-safe: the report is written to a `.tmp.<pid>` sibling
//! and `rename`d into place, so a reader never observes a half-written
//! file under the final name (the `end` trailer in the codec catches the
//! remaining torn-write cases on non-atomic filesystems). Reads happen
//! only when `GLSC_BENCH_RESUME=1`; writes happen whenever caching is
//! enabled (default; `GLSC_BENCH_CACHE=0` disables the store entirely).

use crate::codec::{decode_report, encode_report, FORMAT_VERSION};
use glsc_sim::RunReport;
use std::path::{Path, PathBuf};

/// Builds a filesystem-safe job key from its human-readable parts plus
/// the workload and config fingerprints. Parts are joined with `-`; any
/// character outside `[A-Za-z0-9._-]` is mapped to `_`.
pub fn job_key(parts: &[&str], workload_fp: u64, cfg_fp: u64) -> String {
    let mut key = String::new();
    for p in parts {
        if !key.is_empty() {
            key.push('-');
        }
        key.extend(p.chars().map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        }));
    }
    key.push_str(&format!("-p{workload_fp:016x}-c{cfg_fp:016x}"));
    key
}

/// FNV-1a fingerprint of a machine configuration's debug rendering; folded
/// into job keys so two jobs differing only in config knobs (e.g. the
/// ablation sweep's buffer mode or prefetcher setting) never collide.
pub fn cfg_fingerprint(cfg: &glsc_sim::MachineConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{cfg:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The per-bench result cache. See the module docs for the on-disk
/// layout and the environment variables that control it.
#[derive(Debug)]
pub struct JobStore {
    /// Cache directory for this bench target, or `None` when caching is
    /// disabled (`GLSC_BENCH_CACHE=0`).
    dir: Option<PathBuf>,
    /// Whether cached results may satisfy jobs (`GLSC_BENCH_RESUME=1`).
    resume: bool,
}

impl JobStore {
    /// Opens the store for one bench target, honoring the environment:
    /// `GLSC_BENCH_CACHE_DIR` overrides the cache root (default
    /// `target/bench-cache` under the workspace), `GLSC_BENCH_CACHE=0`
    /// disables the store, `GLSC_BENCH_RESUME=1` enables cache reads.
    pub fn for_bench(bench: &str) -> Self {
        if std::env::var("GLSC_BENCH_CACHE").is_ok_and(|v| v == "0") {
            return Self::disabled();
        }
        let root = std::env::var("GLSC_BENCH_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| {
                Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../../target")
                    .join("bench-cache")
            });
        Self {
            dir: Some(root.join(bench)),
            resume: resume_requested(),
        }
    }

    /// A store that neither reads nor writes (used by tests and by
    /// benches whose outputs are host-timing measurements, which are not
    /// meaningfully cacheable).
    pub fn disabled() -> Self {
        Self {
            dir: None,
            resume: false,
        }
    }

    /// Opens a store rooted at an explicit directory (for tests).
    pub fn at(dir: PathBuf, resume: bool) -> Self {
        Self {
            dir: Some(dir),
            resume,
        }
    }

    /// Whether `GLSC_BENCH_RESUME=1` cache reads are in effect.
    pub fn resume_enabled(&self) -> bool {
        self.resume
    }

    /// The cache directory, or `None` when the store is disabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The cache file path for `key`, or `None` when disabled.
    pub fn path_for(&self, key: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key}.v{FORMAT_VERSION}.txt")))
    }

    /// Attempts to satisfy a job from the cache. Returns `None` when
    /// resume is off, the entry is absent, or the entry fails to decode
    /// (a warning goes to stderr and the job re-runs — a corrupt cache
    /// entry must never kill or corrupt a figure).
    pub fn load(&self, key: &str) -> Option<RunReport> {
        if !self.resume {
            return None;
        }
        let path = self.path_for(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        match decode_report(&text) {
            Ok(report) => {
                eprintln!("[resume] cached: {key}");
                Some(report)
            }
            Err(e) => {
                eprintln!(
                    "[resume] ignoring unreadable cache entry {}: {e}",
                    path.display()
                );
                None
            }
        }
    }

    /// Persists a completed job's report with an atomic tmp+rename write.
    /// Failures are reported to stderr and otherwise ignored: the cache
    /// is an accelerator, not a correctness dependency, and a read-only
    /// or full disk must not fail the figure run.
    pub fn save(&self, key: &str, report: &RunReport) {
        let Some(path) = self.path_for(key) else {
            return;
        };
        if let Err(e) = self.try_save(&path, report) {
            eprintln!("[cache] failed to write {}: {e}", path.display());
        }
    }

    fn try_save(&self, path: &Path, report: &RunReport) -> std::io::Result<()> {
        let dir = path.parent().expect("cache paths always have a parent");
        std::fs::create_dir_all(dir)?;
        // Pid-suffixed temp name: concurrent bench processes sharing a
        // cache dir race only on the atomic rename, never on contents.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, encode_report(report))?;
        std::fs::rename(&tmp, path)
    }
}

/// Whether `GLSC_BENCH_RESUME=1` is set.
pub fn resume_requested() -> bool {
    std::env::var("GLSC_BENCH_RESUME").is_ok_and(|v| v == "1")
}
