//! # glsc-bench — experiment harness
//!
//! Regenerates every figure and table of the paper's evaluation (§5).
//! Each `cargo bench --bench <name>` target prints the corresponding
//! rows/series:
//!
//! | Target | Reproduces |
//! |--------|------------|
//! | `fig5` | Fig. 5(a) sync-time fraction and 5(b) SIMD efficiency |
//! | `fig6` | Fig. 6 Base-vs-GLSC speedups at 4-wide over four configs |
//! | `fig7` | Fig. 7 microbenchmark scenarios A–D |
//! | `fig8` | Fig. 8 Base/GLSC ratios at widths 1/4/16 |
//! | `table4` | Table 4 instruction / memory-stall / L1 / failure analysis |
//! | `ablation` | Design-choice ablations from DESIGN.md |
//! | `components` | Microbenches of the simulator substrate |
//! | `simperf` | Simulator throughput: fast-forward vs naive, parallel vs serial |
//!
//! Set `GLSC_DATASETS=tiny` to smoke-run everything on tiny inputs.
//! Independent simulations are fanned across host threads via
//! [`run_jobs`]; set `GLSC_BENCH_THREADS` to control the worker count
//! (`GLSC_BENCH_THREADS=1` forces the serial path). Results are always
//! collected in job order, so the printed tables are identical at any
//! thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use glsc_kernels::{
    build_named, micro, run_workload, run_workload_chaos, Dataset, KernelOutcome, Variant,
};
use glsc_sim::{ChaosConfig, ChaosStats, MachineConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The `m x n` machine shapes of Fig. 6.
pub const CONFIGS: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];

/// Returns the dataset pair to evaluate, honoring `GLSC_DATASETS=tiny`.
pub fn datasets() -> Vec<Dataset> {
    if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        vec![Dataset::Tiny]
    } else {
        vec![Dataset::A, Dataset::B]
    }
}

/// Short label for a dataset.
pub fn ds_label(ds: Dataset) -> &'static str {
    match ds {
        Dataset::A => "A",
        Dataset::B => "B",
        Dataset::Tiny => "T",
    }
}

/// Builds the paper machine configuration `m x n` at `width`.
pub fn config(cores: usize, tpc: usize, width: usize) -> MachineConfig {
    MachineConfig::paper(cores, tpc, width)
}

/// Runs one benchmark instance to completion (panics if the simulated
/// program fails validation — the harness must never report numbers from
/// an incorrect run).
pub fn run(
    kernel: &str,
    ds: Dataset,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let cfg = config(cores, tpc, width);
    let w = build_named(kernel, ds, variant, &cfg);
    run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs one benchmark instance with a seeded fault plan installed
/// (DESIGN.md §9). Validation still runs — the harness asserts the
/// atomicity oracle, not just survival — and the plan's injection
/// counters come back alongside the outcome. The machine gets a watchdog
/// and a generous cycle budget so a forward-progress bug surfaces as a
/// structured error instead of a hang.
pub fn run_chaos(
    kernel: &str,
    ds: Dataset,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
    chaos: ChaosConfig,
) -> (KernelOutcome, ChaosStats) {
    let cfg = config(cores, tpc, width)
        .with_max_cycles(2_000_000_000)
        .with_watchdog_window(Some(5_000_000));
    let w = build_named(kernel, ds, variant, &cfg);
    run_workload_chaos(&w, &cfg, chaos).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs one §5.2 microbenchmark scenario.
pub fn run_micro(
    scenario: micro::Scenario,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let ds = if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        Dataset::Tiny
    } else {
        Dataset::A
    };
    let cfg = config(cores, tpc, width);
    let w = micro::Micro::new(scenario, ds).build(variant, &cfg);
    run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Number of host threads the figure benches fan simulations across.
///
/// Honors `GLSC_BENCH_THREADS` (any positive integer; `1` forces the
/// serial path) and otherwise defaults to the host's available
/// parallelism.
pub fn bench_threads() -> usize {
    std::env::var("GLSC_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs independent jobs across `threads` host threads and returns their
/// results **in job order**, regardless of which worker ran which job or
/// in what order they finished — callers print from the returned vector,
/// so harness output is byte-identical to the serial path.
///
/// Uses scoped threads with an atomic work index (no new dependencies);
/// with `threads <= 1` or a single job the jobs run inline on the calling
/// thread.
///
/// # Panics
///
/// Propagates any job panic when the scope joins.
pub fn run_jobs<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i].lock().unwrap().take().expect("job taken once");
                *results[i].lock().unwrap() = Some(job());
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker stored result"))
        .collect()
}

/// Prints a boxed section header.
pub fn header(title: &str, detail: &str) {
    println!();
    println!("=== {title} ===");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!();
}

/// Formats a ratio as the paper does (e.g. `1.54x`).
pub fn ratio(base: u64, glsc: u64) -> f64 {
    base as f64 / glsc as f64
}

/// Percentage formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:6.2} %", 100.0 * x)
}

/// Geometric mean of a slice (used for "on average X% faster" summaries).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn ratio_and_pct() {
        assert_eq!(ratio(300, 200), 1.5);
        assert_eq!(pct(0.5), " 50.00 %");
    }

    #[test]
    fn run_jobs_preserves_job_order() {
        let jobs: Vec<_> = (0..23u64)
            .map(|i| {
                move || {
                    // Stagger finish times so out-of-order completion is likely.
                    std::thread::sleep(std::time::Duration::from_micros(((23 - i) % 5) * 50));
                    i * i
                }
            })
            .collect();
        let got = run_jobs(jobs, 8);
        let want: Vec<u64> = (0..23).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn run_jobs_serial_and_empty() {
        let got = run_jobs((0..4).map(|i| move || i).collect::<Vec<_>>(), 1);
        assert_eq!(got, vec![0, 1, 2, 3]);
        let empty: Vec<fn() -> i32> = Vec::new();
        assert!(run_jobs(empty, 8).is_empty());
    }

    #[test]
    fn tiny_smoke_run_via_harness() {
        std::env::set_var("GLSC_DATASETS", "tiny");
        let out = run("HIP", Dataset::Tiny, Variant::Glsc, (1, 2), 4);
        assert!(out.report.cycles > 0);
        let outm = run_micro(micro::Scenario::B, Variant::Base, (1, 1), 4);
        assert!(outm.report.cycles > 0);
    }
}
