//! # glsc-bench — experiment harness
//!
//! Regenerates every figure and table of the paper's evaluation (§5).
//! Each `cargo bench --bench <name>` target prints the corresponding
//! rows/series:
//!
//! | Target | Reproduces |
//! |--------|------------|
//! | `fig5` | Fig. 5(a) sync-time fraction and 5(b) SIMD efficiency |
//! | `fig6` | Fig. 6 Base-vs-GLSC speedups at 4-wide over four configs |
//! | `fig7` | Fig. 7 microbenchmark scenarios A–D |
//! | `fig8` | Fig. 8 Base/GLSC ratios at widths 1/4/16 |
//! | `table4` | Table 4 instruction / memory-stall / L1 / failure analysis |
//! | `ablation` | Design-choice ablations from DESIGN.md |
//! | `components` | Microbenches of the simulator substrate |
//! | `simperf` | Simulator throughput: fast-forward vs naive, parallel vs serial |
//! | `noc_contention` | Interconnect study: ideal vs crossbar vs ring across thread counts |
//!
//! Set `GLSC_DATASETS=tiny` to smoke-run everything on tiny inputs.
//! Independent simulations are fanned across host threads via
//! [`run_jobs`]; set `GLSC_BENCH_THREADS` to control the worker count
//! (`GLSC_BENCH_THREADS=1` forces the serial path). Results are always
//! collected in job order, so the printed tables are identical at any
//! thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod jobspec;
mod output;
pub mod store;

pub use output::FigureOutput;
pub use store::JobStore;

use glsc_kernels::{
    build_named, micro, run_workload, run_workload_chaos, Dataset, KernelOutcome, Variant, Workload,
};
use glsc_sim::{BackingBase, ChaosConfig, ChaosStats, Fleet, FleetJob, MachineConfig};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The `m x n` machine shapes of Fig. 6.
pub const CONFIGS: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];

/// Returns the dataset pair to evaluate, honoring `GLSC_DATASETS=tiny`.
pub fn datasets() -> Vec<Dataset> {
    if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        vec![Dataset::Tiny]
    } else {
        vec![Dataset::A, Dataset::B]
    }
}

/// Short label for a dataset.
pub fn ds_label(ds: Dataset) -> &'static str {
    match ds {
        Dataset::A => "A",
        Dataset::B => "B",
        Dataset::Tiny => "T",
    }
}

/// Builds the paper machine configuration `m x n` at `width`.
pub fn config(cores: usize, tpc: usize, width: usize) -> MachineConfig {
    MachineConfig::paper(cores, tpc, width)
}

/// Runs one benchmark instance to completion (panics if the simulated
/// program fails validation — the harness must never report numbers from
/// an incorrect run).
pub fn run(
    kernel: &str,
    ds: Dataset,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let cfg = config(cores, tpc, width);
    let w = build_named(kernel, ds, variant, &cfg).unwrap_or_else(|e| panic!("{e}"));
    run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs one benchmark instance with a seeded fault plan installed
/// (DESIGN.md §9). Validation still runs — the harness asserts the
/// atomicity oracle, not just survival — and the plan's injection
/// counters come back alongside the outcome. The machine gets a watchdog
/// and a generous cycle budget so a forward-progress bug surfaces as a
/// structured error instead of a hang.
pub fn run_chaos(
    kernel: &str,
    ds: Dataset,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
    chaos: ChaosConfig,
) -> (KernelOutcome, ChaosStats) {
    let cfg = config(cores, tpc, width)
        .with_max_cycles(2_000_000_000)
        .with_watchdog_window(Some(5_000_000));
    let w = build_named(kernel, ds, variant, &cfg).unwrap_or_else(|e| panic!("{e}"));
    run_workload_chaos(&w, &cfg, chaos).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`run`], but consulting the durable job [`store`] first: with
/// `GLSC_BENCH_RESUME=1` a previously completed identical job is
/// satisfied from its cached [`RunReport`] (the skip is logged to stderr,
/// never stdout — table output stays byte-identical), and every freshly
/// simulated job is persisted for future resumption. Job identity covers
/// the named parameters plus content fingerprints of the workload and the
/// machine configuration, so stale cache hits after a code or dataset
/// change are structurally impossible.
pub fn run_cached(
    store: &JobStore,
    kernel: &str,
    ds: Dataset,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let cfg = config(cores, tpc, width);
    let w = build_named(kernel, ds, variant, &cfg).unwrap_or_else(|e| panic!("{e}"));
    run_workload_cached(
        store,
        &w,
        &cfg,
        &[
            kernel,
            ds_label(ds),
            variant.label(),
            &format!("{cores}x{tpc}"),
            &format!("w{width}"),
        ],
    )
}

/// The cache-aware workload runner under [`run_cached`] and the bench
/// targets with custom configurations (ablations): builds the job key,
/// tries the store, simulates on a miss, persists the result.
///
/// # Panics
///
/// Panics if the simulation fails or the workload's validator rejects the
/// result (the harness must never report numbers from an incorrect run);
/// [`run_jobs`] converts such a panic into a per-job [`JobError`].
pub fn run_workload_cached(
    store: &JobStore,
    w: &Workload,
    cfg: &MachineConfig,
    key_parts: &[&str],
) -> KernelOutcome {
    let key = store::job_key(key_parts, w.fingerprint(), store::cfg_fingerprint(cfg));
    maybe_inject_panic(&key);
    if let Some(report) = store.load(&key) {
        return KernelOutcome { report };
    }
    let out = run_workload(w, cfg).unwrap_or_else(|e| panic!("{e}"));
    store.save(&key, &out.report);
    out
}

/// Fault-drill hook: when `GLSC_BENCH_INJECT_PANIC=<substring>` is set,
/// any cached job whose key contains the substring panics instead of
/// running. CI and tests use this to prove a poisoned job degrades to a
/// per-job error row and a nonzero exit rather than aborting the figure.
fn maybe_inject_panic(key: &str) {
    if let Ok(pat) = std::env::var("GLSC_BENCH_INJECT_PANIC") {
        if !pat.is_empty() && key.contains(&pat) {
            panic!("GLSC_BENCH_INJECT_PANIC: injected failure for job {key}");
        }
    }
}

/// Runs one §5.2 microbenchmark scenario.
pub fn run_micro(
    scenario: micro::Scenario,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let ds = if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        Dataset::Tiny
    } else {
        Dataset::A
    };
    let cfg = config(cores, tpc, width);
    let w = micro::Micro::new(scenario, ds).build(variant, &cfg);
    run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`run_micro`], but through the durable job [`store`] (see
/// [`run_cached`]).
pub fn run_micro_cached(
    store: &JobStore,
    scenario: micro::Scenario,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let ds = if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        Dataset::Tiny
    } else {
        Dataset::A
    };
    let cfg = config(cores, tpc, width);
    let w = micro::Micro::new(scenario, ds).build(variant, &cfg);
    run_workload_cached(
        store,
        &w,
        &cfg,
        &[
            "micro",
            scenario.label(),
            ds_label(ds),
            variant.label(),
            &format!("{cores}x{tpc}"),
            &format!("w{width}"),
        ],
    )
}

/// Whether sweeps should route through the fleet engine
/// ([`run_jobs_fleet`]). Opt-in: set `GLSC_BENCH_FLEET=1`. The default
/// (and `GLSC_BENCH_FLEET=0`) is the classic one-machine-per-job path.
/// Both paths produce bit-identical reports and stdout; the fleet path
/// amortizes machine construction, dataset fills, and teardown across
/// the sweep (DESIGN.md §13).
pub fn fleet_requested() -> bool {
    std::env::var("GLSC_BENCH_FLEET").is_ok_and(|v| v == "1")
}

/// One entry in a fleet sweep: everything [`run_workload_cached`] needs
/// for a single job, in owned form so batches can be packed and shipped
/// to worker threads. Build with [`fleet_kernel_job`] /
/// [`fleet_micro_job`] to match the solo paths' cache-key schemes, or
/// construct directly for custom sweeps (ablations).
pub struct FleetJobSpec {
    /// Human-readable job-key parts (same scheme as [`run_cached`]).
    pub key_parts: Vec<String>,
    /// The workload to simulate and validate.
    pub workload: Workload,
    /// Machine configuration to run under.
    pub cfg: MachineConfig,
}

/// Builds the fleet-job spec equivalent to [`run_cached`] — same
/// workload, configuration, and job key, so solo and fleet runs share
/// one cache namespace and resume across each other.
pub fn fleet_kernel_job(
    kernel: &str,
    ds: Dataset,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> FleetJobSpec {
    let cfg = config(cores, tpc, width);
    let workload = build_named(kernel, ds, variant, &cfg).unwrap_or_else(|e| panic!("{e}"));
    FleetJobSpec {
        key_parts: vec![
            kernel.to_string(),
            ds_label(ds).to_string(),
            variant.label().to_string(),
            format!("{cores}x{tpc}"),
            format!("w{width}"),
        ],
        workload,
        cfg,
    }
}

/// Builds the fleet-job spec equivalent to [`run_micro_cached`] for a
/// §5.2 microbenchmark scenario with explicit parameters.
pub fn fleet_micro_job(
    scenario: micro::Scenario,
    params: micro::MicroParams,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> FleetJobSpec {
    let cfg = config(cores, tpc, width);
    let (iters, seed) = (params.iters, params.seed);
    let workload = micro::Micro::with_params(scenario, params).build(variant, &cfg);
    FleetJobSpec {
        key_parts: vec![
            "micro".to_string(),
            scenario.label().to_string(),
            format!("i{iters}s{seed}"),
            variant.label().to_string(),
            format!("{cores}x{tpc}"),
            format!("w{width}"),
        ],
        workload,
        cfg,
    }
}

/// A deduplicated fleet work item: the first job with a given
/// (workload, config) fingerprint pair simulates; `followers` are later
/// duplicates that reuse its report under their own cache keys.
struct FleetPending {
    spec: FleetJobSpec,
    key: String,
    index: usize,
    followers: Vec<(usize, String)>,
}

/// Runs a sweep of cached jobs through the fleet engine and returns the
/// results **in job order** — the drop-in batched counterpart of calling
/// [`run_workload_cached`] per job under [`run_jobs`], with identical
/// caching, resume, dedup, and failure semantics:
///
/// * every job is keyed exactly as the solo path keys it; cached results
///   are served first (`GLSC_BENCH_RESUME=1`), and fresh results are
///   persisted under the key of *every* job they satisfy;
/// * jobs with identical workload/config fingerprints simulate once;
/// * remaining work is deduplicated, split round-robin across `threads`
///   host workers, and each worker drives one [`Fleet`] over its share —
///   pooled machines, copy-on-write dataset bases (published once per
///   distinct image), and batched stepping;
/// * a panic inside a fleet chunk (injected drill, simulation error,
///   validation failure) is contained: finished jobs keep their results
///   and the chunk's unresolved jobs fall back to the solo path with the
///   standard per-job isolation and retry, so a poisoned job degrades to
///   its own [`JobError`] row exactly as under [`run_jobs`].
///
/// Fleet-run reports are bit-identical to solo runs (enforced by the
/// fleet differential oracle), so callers may print from either path.
pub fn run_jobs_fleet(
    store: &JobStore,
    jobs: Vec<FleetJobSpec>,
    threads: usize,
) -> Vec<Result<KernelOutcome, JobError>> {
    let n = jobs.len();
    let results: Vec<Mutex<Option<Result<KernelOutcome, JobError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let set = |index: usize, r: Result<KernelOutcome, JobError>| {
        *results[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(r);
    };

    // Resolve resume hits and deduplicate the rest.
    let mut unique: Vec<FleetPending> = Vec::new();
    let mut by_fp: HashMap<(u64, u64), usize> = HashMap::new();
    for (index, spec) in jobs.into_iter().enumerate() {
        let wfp = spec.workload.fingerprint();
        let cfp = store::cfg_fingerprint(&spec.cfg);
        let parts: Vec<&str> = spec.key_parts.iter().map(String::as_str).collect();
        let key = store::job_key(&parts, wfp, cfp);
        if let Some(report) = store.load(&key) {
            set(index, Ok(KernelOutcome { report }));
            continue;
        }
        match by_fp.entry((wfp, cfp)) {
            Entry::Occupied(e) => unique[*e.get()].followers.push((index, key)),
            Entry::Vacant(v) => {
                v.insert(unique.len());
                unique.push(FleetPending {
                    spec,
                    key,
                    index,
                    followers: Vec::new(),
                });
            }
        }
    }

    if !unique.is_empty() {
        let workers = threads.max(1).min(unique.len());
        let retries = job_retries();
        let fleet = Fleet::new();
        // Each distinct initial image is published once per sweep and
        // mounted copy-on-write by every job that uses it.
        let published: Mutex<HashMap<u64, Arc<BackingBase>>> = Mutex::new(HashMap::new());
        let unique = &unique;
        std::thread::scope(|s| {
            for w in 0..workers {
                let (results, published, fleet) = (&results, &published, &fleet);
                s.spawn(move || {
                    let chunk: Vec<usize> = (w..unique.len()).step_by(workers).collect();
                    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut sim_jobs = Vec::with_capacity(chunk.len());
                        for &ui in &chunk {
                            let p = &unique[ui];
                            maybe_inject_panic(&p.key);
                            let img_fp = p.spec.workload.image.fingerprint();
                            let base = {
                                let mut cache =
                                    published.lock().unwrap_or_else(PoisonError::into_inner);
                                Arc::clone(
                                    cache
                                        .entry(img_fp)
                                        .or_insert_with(|| p.spec.workload.image.publish()),
                                )
                            };
                            sim_jobs.push(
                                FleetJob::new(p.spec.cfg.clone(), p.spec.workload.program.clone())
                                    .with_base(base),
                            );
                        }
                        fleet.run_each(sim_jobs, |local, machine, result| {
                            let p = &unique[chunk[local]];
                            let w = &p.spec.workload;
                            let report = result
                                .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", w.name));
                            if let Err(e) = (w.validate)(machine.mem().backing()) {
                                panic!("{}: validation failed: {e}", w.name);
                            }
                            store.save(&p.key, &report);
                            for (fidx, fkey) in &p.followers {
                                store.save(fkey, &report);
                                *results[*fidx]
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner) =
                                    Some(Ok(KernelOutcome {
                                        report: report.clone(),
                                    }));
                            }
                            *results[p.index]
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner) =
                                Some(Ok(KernelOutcome { report }));
                        });
                    }));
                    if attempt.is_err() {
                        // The fleet for this chunk went down mid-flight.
                        // Finished jobs already hold their results; finish
                        // the rest solo with per-job isolation so only the
                        // actually-poisoned job reports an error.
                        for &ui in &chunk {
                            let p = &unique[ui];
                            if results[p.index]
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .is_some()
                            {
                                continue;
                            }
                            let parts: Vec<&str> =
                                p.spec.key_parts.iter().map(String::as_str).collect();
                            let job = || {
                                run_workload_cached(store, &p.spec.workload, &p.spec.cfg, &parts)
                            };
                            match run_one(p.index, &p.key, &job, retries) {
                                Ok(out) => {
                                    for (fidx, fkey) in &p.followers {
                                        store.save(fkey, &out.report);
                                        *results[*fidx]
                                            .lock()
                                            .unwrap_or_else(PoisonError::into_inner) =
                                            Some(Ok(out.clone()));
                                    }
                                    *results[p.index]
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner) = Some(Ok(out));
                                }
                                Err(e) => {
                                    for (fidx, _) in &p.followers {
                                        *results[*fidx]
                                            .lock()
                                            .unwrap_or_else(PoisonError::into_inner) =
                                            Some(Err(e.clone().with_index(*fidx)));
                                    }
                                    *results[p.index]
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner) = Some(Err(e));
                                }
                            }
                        }
                    }
                });
            }
        });
    }

    results
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(JobError::Panicked {
                        index: i,
                        attempts: 0,
                        message: "worker exited without storing a result".into(),
                    })
                })
        })
        .collect()
}

/// Number of host threads the figure benches fan simulations across.
///
/// Honors `GLSC_BENCH_THREADS` (any positive integer; `1` forces the
/// serial path) and otherwise defaults to the host's available
/// parallelism.
pub fn bench_threads() -> usize {
    std::env::var("GLSC_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// One job's terminal failure. The harness reports it (figure row marked
/// with the typed [`cell`](JobError::cell), error epilogue, nonzero
/// exit) instead of aborting the whole figure. Typed by cause so
/// supervisors (`glsc-serve`) and tests can react to *why* a job died,
/// not just that it did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked on every attempt (simulation error, validation
    /// failure, or an injected drill).
    Panicked {
        /// The job's index in the submitted batch (== its table position).
        index: usize,
        /// How many attempts were made (1 + retries).
        attempts: u32,
        /// The final attempt's panic message.
        message: String,
    },
    /// A supervised job exceeded its deadline on every attempt. `Some`
    /// marks the limit that tripped (the configured budget, not the
    /// observed value). Constructed by the `glsc-serve` supervisor.
    Deadline {
        /// The job's index in the submitted batch.
        index: usize,
        /// How many attempts were made (1 + retries).
        attempts: u32,
        /// Wall-clock budget in milliseconds, if that limit tripped.
        wall_ms: Option<u64>,
        /// Simulated-cycle budget, if that limit tripped.
        cycles: Option<u64>,
    },
    /// A supervised job was quarantined: it burned its whole failure
    /// budget across service restarts, so the supervisor stopped
    /// retrying it. Constructed by the `glsc-serve` supervisor.
    Quarantined {
        /// The job's index in the submitted batch.
        index: usize,
        /// Total failures recorded against the job before quarantine.
        failures: u32,
    },
    /// A job was rejected by admission control: the service's bounded
    /// queue was full and the job's priority did not beat anything
    /// already queued. Constructed by the `glsc-serve` admission layer;
    /// the job never ran.
    Shed {
        /// The job's index in the submitted batch.
        index: usize,
        /// Jobs queued when the shed decision was made.
        queued: usize,
        /// The queue's capacity.
        capacity: usize,
    },
}

impl JobError {
    /// The job's index in the submitted batch (== its table position).
    pub fn index(&self) -> usize {
        match self {
            JobError::Panicked { index, .. }
            | JobError::Deadline { index, .. }
            | JobError::Quarantined { index, .. }
            | JobError::Shed { index, .. } => *index,
        }
    }

    /// How many attempts were made (failures counted, for quarantine;
    /// zero for a shed job, which never ran).
    pub fn attempts(&self) -> u32 {
        match self {
            JobError::Panicked { attempts, .. } | JobError::Deadline { attempts, .. } => *attempts,
            JobError::Quarantined { failures, .. } => *failures,
            JobError::Shed { .. } => 0,
        }
    }

    /// Human-readable cause (the panic message, or a rendering of the
    /// deadline / quarantine / shed condition).
    pub fn message(&self) -> String {
        match self {
            JobError::Panicked { message, .. } => message.clone(),
            JobError::Deadline {
                wall_ms, cycles, ..
            } => match (wall_ms, cycles) {
                (Some(ms), _) => format!("exceeded the {ms} ms wall-clock deadline"),
                (None, Some(c)) => format!("exceeded the {c}-cycle deadline"),
                (None, None) => "exceeded its deadline".to_string(),
            },
            JobError::Quarantined { failures, .. } => {
                format!("quarantined after {failures} failure(s)")
            }
            JobError::Shed {
                queued, capacity, ..
            } => {
                format!("shed by admission control (queue {queued}/{capacity})")
            }
        }
    }

    /// Fixed-width degradation-mode label for figure and sweep cells,
    /// so operators can tell *what* failed at a glance instead of a
    /// conflated `ERR`: `PANIC` (crashed attempts), `DEAD` (deadline),
    /// `QUAR` (quarantined by the supervisor), `SHED` (rejected by
    /// admission control).
    pub fn cell(&self) -> &'static str {
        match self {
            JobError::Panicked { .. } => "PANIC",
            JobError::Deadline { .. } => "DEAD",
            JobError::Quarantined { .. } => "QUAR",
            JobError::Shed { .. } => "SHED",
        }
    }

    /// The same error re-addressed to another batch slot (used when a
    /// deduplicated job's failure is fanned out to its followers).
    pub fn with_index(self, index: usize) -> Self {
        match self {
            JobError::Panicked {
                attempts, message, ..
            } => JobError::Panicked {
                index,
                attempts,
                message,
            },
            JobError::Deadline {
                attempts,
                wall_ms,
                cycles,
                ..
            } => JobError::Deadline {
                index,
                attempts,
                wall_ms,
                cycles,
            },
            JobError::Quarantined { failures, .. } => JobError::Quarantined { index, failures },
            JobError::Shed {
                queued, capacity, ..
            } => JobError::Shed {
                index,
                queued,
                capacity,
            },
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Quarantined { index, .. } | JobError::Shed { index, .. } => {
                write!(f, "job {index} {}", self.message())
            }
            _ => write!(
                f,
                "job {} failed after {} attempt(s): {}",
                self.index(),
                self.attempts(),
                self.message()
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// Retry budget for failing jobs: `GLSC_BENCH_RETRIES` (default 1, i.e.
/// two attempts per job). Deterministic failures burn the retries and
/// surface as a [`JobError`]; the budget exists for environmental flakes
/// (OOM-killed children, transient IO) on long figure runs. The delay
/// before each retry is [`backoff_jittered_ms`]: exponential base with a
/// deterministic per-(job, attempt) spread seeded by `GLSC_BENCH_SEED`.
pub fn job_retries() -> u32 {
    std::env::var("GLSC_BENCH_RETRIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Base backoff before retry `attempt + 1`: 25 ms doubling per failed
/// attempt, capped at 1 s. Deliberately pure — no clock reads — so a
/// figure run's retry timeline is reproducible and the logged delays can
/// be asserted in tests. Retrying callers add the deterministic
/// per-(job, attempt) spread from [`backoff_jittered_ms`] on top so
/// co-failing jobs do not retry in lockstep.
pub fn backoff_ms(attempt: u32) -> u64 {
    (25u64 << (attempt - 1).min(6)).min(1_000)
}

/// The sweep seed, `GLSC_BENCH_SEED` (default 0): the single source of
/// retry-jitter randomness. Same seed, same job, same attempt → same
/// delay, across runs and machines.
pub fn bench_seed() -> u64 {
    std::env::var("GLSC_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Backoff with deterministic jitter: the [`backoff_ms`] base plus up to
/// 25% spread, derived by FNV-1a from `(seed, label, attempt)` — no
/// clock, no global RNG. Jobs that fail together (a wedged cache volume,
/// an OOM burst) get distinct, reproducible retry offsets instead of a
/// synchronized thundering herd, and a test can pin the exact schedule
/// for a given seed.
pub fn backoff_jittered_ms(seed: u64, label: &str, attempt: u32) -> u64 {
    let base = backoff_ms(attempt);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in seed
        .to_le_bytes()
        .into_iter()
        .chain(label.bytes())
        .chain(attempt.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    base + h % (base / 4 + 1)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job with panic isolation and bounded retry-with-backoff.
/// Every failed attempt and every backoff delay is logged to stderr with
/// the attempt number and, when the caller supplied one (see
/// [`run_jobs_labeled`]), the job key.
fn run_one<T, F: Fn() -> T>(
    index: usize,
    label: &str,
    job: &F,
    retries: u32,
) -> Result<T, JobError> {
    let attempts = retries + 1;
    let tag = if label.is_empty() {
        String::new()
    } else {
        format!(" ({label})")
    };
    let seed = bench_seed();
    let mut message = String::new();
    for attempt in 1..=attempts {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
            Ok(v) => return Ok(v),
            Err(payload) => {
                message = panic_message(payload.as_ref());
                eprintln!(
                    "[jobs] job {index}{tag} attempt {attempt}/{attempts} panicked: {message}"
                );
                if attempt < attempts {
                    let delay = backoff_jittered_ms(seed, label, attempt);
                    eprintln!("[jobs] job {index}{tag} retrying after {delay}ms");
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
            }
        }
    }
    Err(JobError::Panicked {
        index,
        attempts,
        message,
    })
}

/// Runs independent jobs across `threads` host threads and returns their
/// results **in job order**, regardless of which worker ran which job or
/// in what order they finished — callers print from the returned vector,
/// so harness output is byte-identical to the serial path.
///
/// Each job runs under `catch_unwind` with bounded retry-with-backoff
/// (see [`job_retries`]): a poisoned job degrades to a per-slot
/// [`JobError`] while every other job completes normally. Workers hold no
/// lock while a job runs, and result-slot locking tolerates poisoning, so
/// a panicking job can neither wedge a slot nor cascade-abort the
/// harness.
///
/// Uses scoped threads with an atomic work index (no new dependencies);
/// with `threads <= 1` or a single job the jobs run inline on the calling
/// thread.
pub fn run_jobs<T, F>(jobs: Vec<F>, threads: usize) -> Vec<Result<T, JobError>>
where
    T: Send,
    F: Fn() -> T + Send + Sync,
{
    run_jobs_labeled(
        jobs.into_iter().map(|j| (String::new(), j)).collect(),
        threads,
    )
}

/// As [`run_jobs`], but each job carries a label (normally its job key)
/// that retry logging includes, so a flaky job on a long figure run can
/// be identified from stderr alone.
pub fn run_jobs_labeled<T, F>(jobs: Vec<(String, F)>, threads: usize) -> Vec<Result<T, JobError>>
where
    T: Send,
    F: Fn() -> T + Send + Sync,
{
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));
    let retries = job_retries();
    if threads <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(i, (label, job))| run_one(i, label, job, retries))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<T, JobError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The job runs before the slot lock is taken: a panicking
                // job (already contained by run_one) can never poison a
                // result slot, and lock acquisition stays poison-tolerant
                // anyway for defense in depth.
                let (label, job) = &jobs[i];
                let result = run_one(i, label, job, retries);
                *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(JobError::Panicked {
                        index: i,
                        attempts: 0,
                        message: "worker exited without storing a result".into(),
                    })
                })
        })
        .collect()
}

/// Clones the failures out of a [`run_jobs`] result batch.
pub fn collect_errors<T>(results: &[Result<T, JobError>]) -> Vec<JobError> {
    results
        .iter()
        .filter_map(|r| r.as_ref().err().cloned())
        .collect()
}

/// Ends a figure run: appends the error epilogue (if any job failed),
/// atomically writes the captured output to its `results/` file, and
/// returns the process exit code (`0` clean, `1` when any job failed).
/// Bench mains call `std::process::exit(finish_figure(out, &errors))`.
pub fn finish_figure(mut out: FigureOutput, errors: &[JobError]) -> i32 {
    if !errors.is_empty() {
        out.blank();
        out.line(format!(
            "!! {} job(s) failed; affected cells above are printed as ERR:",
            errors.len()
        ));
        for e in errors {
            out.line(format!("!!   {e}"));
        }
    }
    out.finish();
    if errors.is_empty() {
        0
    } else {
        1
    }
}

/// Prints a boxed section header.
pub fn header(title: &str, detail: &str) {
    println!();
    println!("=== {title} ===");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!();
}

/// Formats a ratio as the paper does (e.g. `1.54x`).
pub fn ratio(base: u64, glsc: u64) -> f64 {
    base as f64 / glsc as f64
}

/// Percentage formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:6.2} %", 100.0 * x)
}

/// Geometric mean of a slice (used for "on average X% faster" summaries).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn ratio_and_pct() {
        assert_eq!(ratio(300, 200), 1.5);
        assert_eq!(pct(0.5), " 50.00 %");
    }

    #[test]
    fn backoff_schedule_is_deterministic() {
        assert_eq!(backoff_ms(1), 25);
        assert_eq!(backoff_ms(2), 50);
        assert_eq!(backoff_ms(3), 100);
        assert_eq!(backoff_ms(6), 800);
        // Capped from attempt 7 on; later attempts never exceed the cap.
        assert_eq!(backoff_ms(7), 1_000);
        assert_eq!(backoff_ms(1_000), 1_000);
        // Pure function: same input, same delay, no jitter.
        assert_eq!(backoff_ms(4), backoff_ms(4));
    }

    #[test]
    fn backoff_jitter_schedule_is_pinned() {
        // The jittered schedule is a pure function of (seed, label,
        // attempt): these exact values must never drift, or retry
        // timelines stop being reproducible across runs.
        let label = "HIP-T-glsc-4x4-w4";
        assert_eq!(backoff_jittered_ms(0, label, 1), 28);
        assert_eq!(backoff_jittered_ms(0, label, 2), 60);
        assert_eq!(backoff_jittered_ms(0, label, 3), 103);
        assert_eq!(backoff_jittered_ms(0, label, 7), 1_222);
        assert_eq!(backoff_jittered_ms(7, label, 1), 31);
        assert_eq!(backoff_jittered_ms(7, label, 2), 59);
        assert_eq!(backoff_jittered_ms(7, label, 3), 116);
        assert_eq!(backoff_jittered_ms(0, "GBC-T-base-1x4-w4", 1), 29);
        // Always within [base, base + 25%]; deterministic on repeat.
        for attempt in 1..=10 {
            let b = backoff_ms(attempt);
            let j = backoff_jittered_ms(42, label, attempt);
            assert!(j >= b && j <= b + b / 4, "attempt {attempt}: {j} vs {b}");
            assert_eq!(j, backoff_jittered_ms(42, label, attempt));
        }
    }

    #[test]
    fn run_jobs_preserves_job_order() {
        let jobs: Vec<_> = (0..23u64)
            .map(|i| {
                move || {
                    // Stagger finish times so out-of-order completion is likely.
                    std::thread::sleep(std::time::Duration::from_micros(((23 - i) % 5) * 50));
                    i * i
                }
            })
            .collect();
        let got = run_jobs(jobs, 8);
        let want: Vec<Result<u64, JobError>> = (0..23).map(|i| Ok(i * i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn run_jobs_serial_and_empty() {
        let got = run_jobs((0..4).map(|i| move || i).collect::<Vec<_>>(), 1);
        assert_eq!(got, vec![Ok(0), Ok(1), Ok(2), Ok(3)]);
        let empty: Vec<fn() -> i32> = Vec::new();
        assert!(run_jobs(empty, 8).is_empty());
    }

    #[test]
    fn run_jobs_clamps_worker_count() {
        // More workers requested than jobs exist: the pool is clamped to
        // the job count, so no worker spawns only to exit idle, and
        // results stay in job order.
        let got = run_jobs((0..3).map(|i| move || i * 2).collect::<Vec<_>>(), 1_000);
        assert_eq!(got, vec![Ok(0), Ok(2), Ok(4)]);
        // A zero-thread request is forced up to one (the serial path).
        let got = run_jobs((0..3).map(|i| move || i + 7).collect::<Vec<_>>(), 0);
        assert_eq!(got, vec![Ok(7), Ok(8), Ok(9)]);
        // Empty batches are fine at any thread request, zero included.
        let empty: Vec<fn() -> i32> = Vec::new();
        assert!(run_jobs(empty, 0).is_empty());
        let empty: Vec<fn() -> i32> = Vec::new();
        assert!(run_jobs(empty, usize::MAX).is_empty());
    }

    #[test]
    fn run_jobs_isolates_panicking_jobs() {
        // One poisoned job in the middle of the batch: its slot reports a
        // JobError carrying the panic message, every other job completes,
        // and order is preserved. Exercised at both thread counts so the
        // serial path's isolation is covered too.
        for threads in [1, 4] {
            let jobs: Vec<Box<dyn Fn() -> u64 + Send + Sync>> = (0..6u64)
                .map(|i| {
                    Box::new(move || {
                        if i == 3 {
                            panic!("job {i} is cursed");
                        }
                        i * 10
                    }) as Box<dyn Fn() -> u64 + Send + Sync>
                })
                .collect();
            let got = run_jobs(jobs, threads);
            assert_eq!(got.len(), 6);
            for (i, r) in got.iter().enumerate() {
                if i == 3 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index(), 3);
                    assert!(e.attempts() >= 1);
                    assert!(e.message().contains("cursed"), "message: {}", e.message());
                    assert!(e.to_string().contains("job 3 failed"));
                    assert!(matches!(e, JobError::Panicked { .. }));
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i as u64 * 10));
                }
            }
            let errs = collect_errors(&got);
            assert_eq!(errs.len(), 1);
            assert_eq!(errs[0].index(), 3);
        }
    }

    #[test]
    fn tiny_smoke_run_via_harness() {
        std::env::set_var("GLSC_DATASETS", "tiny");
        let out = run("HIP", Dataset::Tiny, Variant::Glsc, (1, 2), 4);
        assert!(out.report.cycles > 0);
        let outm = run_micro(micro::Scenario::B, Variant::Base, (1, 1), 4);
        assert!(outm.report.cycles > 0);
    }

    #[test]
    fn degradation_cells_are_pinned() {
        // Operators grep these exact labels out of figure tables and the
        // CI panic drill greps PANIC; changing one is a breaking change
        // to the output format.
        let panicked = JobError::Panicked {
            index: 0,
            attempts: 2,
            message: "boom".into(),
        };
        let dead = JobError::Deadline {
            index: 1,
            attempts: 1,
            wall_ms: None,
            cycles: Some(50_000),
        };
        let quar = JobError::Quarantined {
            index: 2,
            failures: 3,
        };
        let shed = JobError::Shed {
            index: 3,
            queued: 8,
            capacity: 8,
        };
        assert_eq!(panicked.cell(), "PANIC");
        assert_eq!(dead.cell(), "DEAD");
        assert_eq!(quar.cell(), "QUAR");
        assert_eq!(shed.cell(), "SHED");
        assert_eq!(shed.message(), "shed by admission control (queue 8/8)");
        assert_eq!(shed.attempts(), 0);
        assert_eq!(shed.clone().with_index(7).index(), 7);
        assert_eq!(
            shed.to_string(),
            "job 3 shed by admission control (queue 8/8)"
        );
    }
}
