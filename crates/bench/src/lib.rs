//! # glsc-bench — experiment harness
//!
//! Regenerates every figure and table of the paper's evaluation (§5).
//! Each `cargo bench --bench <name>` target prints the corresponding
//! rows/series:
//!
//! | Target | Reproduces |
//! |--------|------------|
//! | `fig5` | Fig. 5(a) sync-time fraction and 5(b) SIMD efficiency |
//! | `fig6` | Fig. 6 Base-vs-GLSC speedups at 4-wide over four configs |
//! | `fig7` | Fig. 7 microbenchmark scenarios A–D |
//! | `fig8` | Fig. 8 Base/GLSC ratios at widths 1/4/16 |
//! | `table4` | Table 4 instruction / memory-stall / L1 / failure analysis |
//! | `components` | Criterion microbenches of the simulator substrate |
//!
//! Set `GLSC_DATASETS=tiny` to smoke-run everything on tiny inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use glsc_kernels::{build_named, micro, run_workload, Dataset, KernelOutcome, Variant};
use glsc_sim::MachineConfig;

/// The `m x n` machine shapes of Fig. 6.
pub const CONFIGS: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];

/// Returns the dataset pair to evaluate, honoring `GLSC_DATASETS=tiny`.
pub fn datasets() -> Vec<Dataset> {
    if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        vec![Dataset::Tiny]
    } else {
        vec![Dataset::A, Dataset::B]
    }
}

/// Short label for a dataset.
pub fn ds_label(ds: Dataset) -> &'static str {
    match ds {
        Dataset::A => "A",
        Dataset::B => "B",
        Dataset::Tiny => "T",
    }
}

/// Builds the paper machine configuration `m x n` at `width`.
pub fn config(cores: usize, tpc: usize, width: usize) -> MachineConfig {
    MachineConfig::paper(cores, tpc, width)
}

/// Runs one benchmark instance to completion (panics if the simulated
/// program fails validation — the harness must never report numbers from
/// an incorrect run).
pub fn run(
    kernel: &str,
    ds: Dataset,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let cfg = config(cores, tpc, width);
    let w = build_named(kernel, ds, variant, &cfg);
    run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs one §5.2 microbenchmark scenario.
pub fn run_micro(
    scenario: micro::Scenario,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let ds = if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        Dataset::Tiny
    } else {
        Dataset::A
    };
    let cfg = config(cores, tpc, width);
    let w = micro::Micro::new(scenario, ds).build(variant, &cfg);
    run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Prints a boxed section header.
pub fn header(title: &str, detail: &str) {
    println!();
    println!("=== {title} ===");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!();
}

/// Formats a ratio as the paper does (e.g. `1.54x`).
pub fn ratio(base: u64, glsc: u64) -> f64 {
    base as f64 / glsc as f64
}

/// Percentage formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:6.2} %", 100.0 * x)
}

/// Geometric mean of a slice (used for "on average X% faster" summaries).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn ratio_and_pct() {
        assert_eq!(ratio(300, 200), 1.5);
        assert_eq!(pct(0.5), " 50.00 %");
    }

    #[test]
    fn tiny_smoke_run_via_harness() {
        std::env::set_var("GLSC_DATASETS", "tiny");
        let out = run("HIP", Dataset::Tiny, Variant::Glsc, (1, 2), 4);
        assert!(out.report.cycles > 0);
        let outm = run_micro(micro::Scenario::B, Variant::Base, (1, 1), 4);
        assert!(outm.report.cycles > 0);
    }
}
