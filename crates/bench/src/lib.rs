//! # glsc-bench — experiment harness
//!
//! Regenerates every figure and table of the paper's evaluation (§5).
//! Each `cargo bench --bench <name>` target prints the corresponding
//! rows/series:
//!
//! | Target | Reproduces |
//! |--------|------------|
//! | `fig5` | Fig. 5(a) sync-time fraction and 5(b) SIMD efficiency |
//! | `fig6` | Fig. 6 Base-vs-GLSC speedups at 4-wide over four configs |
//! | `fig7` | Fig. 7 microbenchmark scenarios A–D |
//! | `fig8` | Fig. 8 Base/GLSC ratios at widths 1/4/16 |
//! | `table4` | Table 4 instruction / memory-stall / L1 / failure analysis |
//! | `ablation` | Design-choice ablations from DESIGN.md |
//! | `components` | Microbenches of the simulator substrate |
//! | `simperf` | Simulator throughput: fast-forward vs naive, parallel vs serial |
//! | `noc_contention` | Interconnect study: ideal vs crossbar vs ring across thread counts |
//!
//! Set `GLSC_DATASETS=tiny` to smoke-run everything on tiny inputs.
//! Independent simulations are fanned across host threads via
//! [`run_jobs`]; set `GLSC_BENCH_THREADS` to control the worker count
//! (`GLSC_BENCH_THREADS=1` forces the serial path). Results are always
//! collected in job order, so the printed tables are identical at any
//! thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod output;
pub mod store;

pub use output::FigureOutput;
pub use store::JobStore;

use glsc_kernels::{
    build_named, micro, run_workload, run_workload_chaos, Dataset, KernelOutcome, Variant, Workload,
};
use glsc_sim::{ChaosConfig, ChaosStats, MachineConfig};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// The `m x n` machine shapes of Fig. 6.
pub const CONFIGS: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];

/// Returns the dataset pair to evaluate, honoring `GLSC_DATASETS=tiny`.
pub fn datasets() -> Vec<Dataset> {
    if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        vec![Dataset::Tiny]
    } else {
        vec![Dataset::A, Dataset::B]
    }
}

/// Short label for a dataset.
pub fn ds_label(ds: Dataset) -> &'static str {
    match ds {
        Dataset::A => "A",
        Dataset::B => "B",
        Dataset::Tiny => "T",
    }
}

/// Builds the paper machine configuration `m x n` at `width`.
pub fn config(cores: usize, tpc: usize, width: usize) -> MachineConfig {
    MachineConfig::paper(cores, tpc, width)
}

/// Runs one benchmark instance to completion (panics if the simulated
/// program fails validation — the harness must never report numbers from
/// an incorrect run).
pub fn run(
    kernel: &str,
    ds: Dataset,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let cfg = config(cores, tpc, width);
    let w = build_named(kernel, ds, variant, &cfg);
    run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs one benchmark instance with a seeded fault plan installed
/// (DESIGN.md §9). Validation still runs — the harness asserts the
/// atomicity oracle, not just survival — and the plan's injection
/// counters come back alongside the outcome. The machine gets a watchdog
/// and a generous cycle budget so a forward-progress bug surfaces as a
/// structured error instead of a hang.
pub fn run_chaos(
    kernel: &str,
    ds: Dataset,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
    chaos: ChaosConfig,
) -> (KernelOutcome, ChaosStats) {
    let cfg = config(cores, tpc, width)
        .with_max_cycles(2_000_000_000)
        .with_watchdog_window(Some(5_000_000));
    let w = build_named(kernel, ds, variant, &cfg);
    run_workload_chaos(&w, &cfg, chaos).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`run`], but consulting the durable job [`store`] first: with
/// `GLSC_BENCH_RESUME=1` a previously completed identical job is
/// satisfied from its cached [`RunReport`] (the skip is logged to stderr,
/// never stdout — table output stays byte-identical), and every freshly
/// simulated job is persisted for future resumption. Job identity covers
/// the named parameters plus content fingerprints of the workload and the
/// machine configuration, so stale cache hits after a code or dataset
/// change are structurally impossible.
pub fn run_cached(
    store: &JobStore,
    kernel: &str,
    ds: Dataset,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let cfg = config(cores, tpc, width);
    let w = build_named(kernel, ds, variant, &cfg);
    run_workload_cached(
        store,
        &w,
        &cfg,
        &[
            kernel,
            ds_label(ds),
            variant.label(),
            &format!("{cores}x{tpc}"),
            &format!("w{width}"),
        ],
    )
}

/// The cache-aware workload runner under [`run_cached`] and the bench
/// targets with custom configurations (ablations): builds the job key,
/// tries the store, simulates on a miss, persists the result.
///
/// # Panics
///
/// Panics if the simulation fails or the workload's validator rejects the
/// result (the harness must never report numbers from an incorrect run);
/// [`run_jobs`] converts such a panic into a per-job [`JobError`].
pub fn run_workload_cached(
    store: &JobStore,
    w: &Workload,
    cfg: &MachineConfig,
    key_parts: &[&str],
) -> KernelOutcome {
    let key = store::job_key(key_parts, w.fingerprint(), store::cfg_fingerprint(cfg));
    maybe_inject_panic(&key);
    if let Some(report) = store.load(&key) {
        return KernelOutcome { report };
    }
    let out = run_workload(w, cfg).unwrap_or_else(|e| panic!("{e}"));
    store.save(&key, &out.report);
    out
}

/// Fault-drill hook: when `GLSC_BENCH_INJECT_PANIC=<substring>` is set,
/// any cached job whose key contains the substring panics instead of
/// running. CI and tests use this to prove a poisoned job degrades to a
/// per-job error row and a nonzero exit rather than aborting the figure.
fn maybe_inject_panic(key: &str) {
    if let Ok(pat) = std::env::var("GLSC_BENCH_INJECT_PANIC") {
        if !pat.is_empty() && key.contains(&pat) {
            panic!("GLSC_BENCH_INJECT_PANIC: injected failure for job {key}");
        }
    }
}

/// Runs one §5.2 microbenchmark scenario.
pub fn run_micro(
    scenario: micro::Scenario,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let ds = if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        Dataset::Tiny
    } else {
        Dataset::A
    };
    let cfg = config(cores, tpc, width);
    let w = micro::Micro::new(scenario, ds).build(variant, &cfg);
    run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`run_micro`], but through the durable job [`store`] (see
/// [`run_cached`]).
pub fn run_micro_cached(
    store: &JobStore,
    scenario: micro::Scenario,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) -> KernelOutcome {
    let ds = if std::env::var("GLSC_DATASETS").is_ok_and(|v| v == "tiny") {
        Dataset::Tiny
    } else {
        Dataset::A
    };
    let cfg = config(cores, tpc, width);
    let w = micro::Micro::new(scenario, ds).build(variant, &cfg);
    run_workload_cached(
        store,
        &w,
        &cfg,
        &[
            "micro",
            scenario.label(),
            ds_label(ds),
            variant.label(),
            &format!("{cores}x{tpc}"),
            &format!("w{width}"),
        ],
    )
}

/// Number of host threads the figure benches fan simulations across.
///
/// Honors `GLSC_BENCH_THREADS` (any positive integer; `1` forces the
/// serial path) and otherwise defaults to the host's available
/// parallelism.
pub fn bench_threads() -> usize {
    std::env::var("GLSC_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// One job's terminal failure: it panicked on every attempt. The harness
/// reports it (figure row marked `ERR`, error epilogue, nonzero exit)
/// instead of aborting the whole figure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobError {
    /// The job's index in the submitted batch (== its table position).
    pub index: usize,
    /// How many attempts were made (1 + retries).
    pub attempts: u32,
    /// The final attempt's panic message.
    pub message: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} failed after {} attempt(s): {}",
            self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for JobError {}

/// Retry budget for failing jobs: `GLSC_BENCH_RETRIES` (default 1, i.e.
/// two attempts per job). Deterministic failures burn the retries and
/// surface as a [`JobError`]; the budget exists for environmental flakes
/// (OOM-killed children, transient IO) on long figure runs.
pub fn job_retries() -> u32 {
    std::env::var("GLSC_BENCH_RETRIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Backoff before retry `attempt + 1`: 25 ms doubling per failed attempt,
/// capped at 1 s. Deliberately pure — no jitter, no clock reads — so a
/// figure run's retry timeline is reproducible and the logged delays can
/// be asserted in tests.
pub fn backoff_ms(attempt: u32) -> u64 {
    (25u64 << (attempt - 1).min(6)).min(1_000)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job with panic isolation and bounded retry-with-backoff.
/// Every failed attempt and every backoff delay is logged to stderr with
/// the attempt number and, when the caller supplied one (see
/// [`run_jobs_labeled`]), the job key.
fn run_one<T, F: Fn() -> T>(
    index: usize,
    label: &str,
    job: &F,
    retries: u32,
) -> Result<T, JobError> {
    let attempts = retries + 1;
    let tag = if label.is_empty() {
        String::new()
    } else {
        format!(" ({label})")
    };
    let mut message = String::new();
    for attempt in 1..=attempts {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
            Ok(v) => return Ok(v),
            Err(payload) => {
                message = panic_message(payload.as_ref());
                eprintln!(
                    "[jobs] job {index}{tag} attempt {attempt}/{attempts} panicked: {message}"
                );
                if attempt < attempts {
                    let delay = backoff_ms(attempt);
                    eprintln!("[jobs] job {index}{tag} retrying after {delay}ms");
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
            }
        }
    }
    Err(JobError {
        index,
        attempts,
        message,
    })
}

/// Runs independent jobs across `threads` host threads and returns their
/// results **in job order**, regardless of which worker ran which job or
/// in what order they finished — callers print from the returned vector,
/// so harness output is byte-identical to the serial path.
///
/// Each job runs under `catch_unwind` with bounded retry-with-backoff
/// (see [`job_retries`]): a poisoned job degrades to a per-slot
/// [`JobError`] while every other job completes normally. Workers hold no
/// lock while a job runs, and result-slot locking tolerates poisoning, so
/// a panicking job can neither wedge a slot nor cascade-abort the
/// harness.
///
/// Uses scoped threads with an atomic work index (no new dependencies);
/// with `threads <= 1` or a single job the jobs run inline on the calling
/// thread.
pub fn run_jobs<T, F>(jobs: Vec<F>, threads: usize) -> Vec<Result<T, JobError>>
where
    T: Send,
    F: Fn() -> T + Send + Sync,
{
    run_jobs_labeled(
        jobs.into_iter().map(|j| (String::new(), j)).collect(),
        threads,
    )
}

/// As [`run_jobs`], but each job carries a label (normally its job key)
/// that retry logging includes, so a flaky job on a long figure run can
/// be identified from stderr alone.
pub fn run_jobs_labeled<T, F>(jobs: Vec<(String, F)>, threads: usize) -> Vec<Result<T, JobError>>
where
    T: Send,
    F: Fn() -> T + Send + Sync,
{
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));
    let retries = job_retries();
    if threads <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(i, (label, job))| run_one(i, label, job, retries))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<T, JobError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The job runs before the slot lock is taken: a panicking
                // job (already contained by run_one) can never poison a
                // result slot, and lock acquisition stays poison-tolerant
                // anyway for defense in depth.
                let (label, job) = &jobs[i];
                let result = run_one(i, label, job, retries);
                *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(JobError {
                        index: i,
                        attempts: 0,
                        message: "worker exited without storing a result".into(),
                    })
                })
        })
        .collect()
}

/// Clones the failures out of a [`run_jobs`] result batch.
pub fn collect_errors<T>(results: &[Result<T, JobError>]) -> Vec<JobError> {
    results
        .iter()
        .filter_map(|r| r.as_ref().err().cloned())
        .collect()
}

/// Ends a figure run: appends the error epilogue (if any job failed),
/// atomically writes the captured output to its `results/` file, and
/// returns the process exit code (`0` clean, `1` when any job failed).
/// Bench mains call `std::process::exit(finish_figure(out, &errors))`.
pub fn finish_figure(mut out: FigureOutput, errors: &[JobError]) -> i32 {
    if !errors.is_empty() {
        out.blank();
        out.line(format!(
            "!! {} job(s) failed; affected cells above are printed as ERR:",
            errors.len()
        ));
        for e in errors {
            out.line(format!("!!   {e}"));
        }
    }
    out.finish();
    if errors.is_empty() {
        0
    } else {
        1
    }
}

/// Prints a boxed section header.
pub fn header(title: &str, detail: &str) {
    println!();
    println!("=== {title} ===");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!();
}

/// Formats a ratio as the paper does (e.g. `1.54x`).
pub fn ratio(base: u64, glsc: u64) -> f64 {
    base as f64 / glsc as f64
}

/// Percentage formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:6.2} %", 100.0 * x)
}

/// Geometric mean of a slice (used for "on average X% faster" summaries).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn ratio_and_pct() {
        assert_eq!(ratio(300, 200), 1.5);
        assert_eq!(pct(0.5), " 50.00 %");
    }

    #[test]
    fn backoff_schedule_is_deterministic() {
        assert_eq!(backoff_ms(1), 25);
        assert_eq!(backoff_ms(2), 50);
        assert_eq!(backoff_ms(3), 100);
        assert_eq!(backoff_ms(6), 800);
        // Capped from attempt 7 on; later attempts never exceed the cap.
        assert_eq!(backoff_ms(7), 1_000);
        assert_eq!(backoff_ms(1_000), 1_000);
        // Pure function: same input, same delay, no jitter.
        assert_eq!(backoff_ms(4), backoff_ms(4));
    }

    #[test]
    fn run_jobs_preserves_job_order() {
        let jobs: Vec<_> = (0..23u64)
            .map(|i| {
                move || {
                    // Stagger finish times so out-of-order completion is likely.
                    std::thread::sleep(std::time::Duration::from_micros(((23 - i) % 5) * 50));
                    i * i
                }
            })
            .collect();
        let got = run_jobs(jobs, 8);
        let want: Vec<Result<u64, JobError>> = (0..23).map(|i| Ok(i * i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn run_jobs_serial_and_empty() {
        let got = run_jobs((0..4).map(|i| move || i).collect::<Vec<_>>(), 1);
        assert_eq!(got, vec![Ok(0), Ok(1), Ok(2), Ok(3)]);
        let empty: Vec<fn() -> i32> = Vec::new();
        assert!(run_jobs(empty, 8).is_empty());
    }

    #[test]
    fn run_jobs_isolates_panicking_jobs() {
        // One poisoned job in the middle of the batch: its slot reports a
        // JobError carrying the panic message, every other job completes,
        // and order is preserved. Exercised at both thread counts so the
        // serial path's isolation is covered too.
        for threads in [1, 4] {
            let jobs: Vec<Box<dyn Fn() -> u64 + Send + Sync>> = (0..6u64)
                .map(|i| {
                    Box::new(move || {
                        if i == 3 {
                            panic!("job {i} is cursed");
                        }
                        i * 10
                    }) as Box<dyn Fn() -> u64 + Send + Sync>
                })
                .collect();
            let got = run_jobs(jobs, threads);
            assert_eq!(got.len(), 6);
            for (i, r) in got.iter().enumerate() {
                if i == 3 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 3);
                    assert!(e.attempts >= 1);
                    assert!(e.message.contains("cursed"), "message: {}", e.message);
                    assert!(e.to_string().contains("job 3 failed"));
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i as u64 * 10));
                }
            }
            let errs = collect_errors(&got);
            assert_eq!(errs.len(), 1);
            assert_eq!(errs[0].index, 3);
        }
    }

    #[test]
    fn tiny_smoke_run_via_harness() {
        std::env::set_var("GLSC_DATASETS", "tiny");
        let out = run("HIP", Dataset::Tiny, Variant::Glsc, (1, 2), 4);
        assert!(out.report.cycles > 0);
        let outm = run_micro(micro::Scenario::B, Variant::Base, (1, 1), 4);
        assert!(outm.report.cycles > 0);
    }
}
