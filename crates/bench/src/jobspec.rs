//! The wire job-spec codec shared by the `glsc-serve` protocol front-end
//! and its clients.
//!
//! A [`WireJobSpec`] is the *untrusted* form of a job: exactly what a
//! client frames onto the socket. [`WireJobSpec::validate`] is the
//! admission boundary — every field is bounds-checked against the same
//! limits [`glsc_sim::ConfigError`] enforces before any machine, dataset
//! image, or queue slot is allocated for it, so a hostile spec costs a
//! typed rejection, never memory or a panic deeper in the stack.
//!
//! The id scheme ([`WireJobSpec::id`]) matches the supervisor's
//! (`HIP-T-GLSC-4x4-w4`, `-chaos<seed>` when a fault plan is requested,
//! `-p<priority>` never — priority is routing metadata, not identity),
//! so a resubmitted job keys into the same journal ledger and result
//! cache and is served without re-running.

use crate::ds_label;
use glsc_kernels::{Dataset, Variant, KERNEL_NAMES};
use glsc_wire::{wire_struct, Wire};

/// Dataset tag values on the wire (`Dataset` itself lives in
/// `glsc-kernels` and stays wire-agnostic).
pub const DATASET_TAGS: [(u8, Dataset); 3] = [(0, Dataset::Tiny), (1, Dataset::A), (2, Dataset::B)];

/// One job as submitted over the protocol. All fields are untrusted
/// until [`validate`](WireJobSpec::validate) passes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireJobSpec {
    /// Kernel name (one of [`glsc_kernels::KERNEL_NAMES`]).
    pub kernel: String,
    /// Dataset tag: 0 = Tiny, 1 = A, 2 = B.
    pub dataset: u8,
    /// Variant tag: 0 = Base, 1 = Glsc.
    pub variant: u8,
    /// Core count (1..=32).
    pub cores: u32,
    /// SMT threads per core (1..=8).
    pub tpc: u32,
    /// SIMD width (1..=[`glsc_isa::MAX_SIMD_WIDTH`]).
    pub width: u32,
    /// Fault-plan seed: `Some` runs the job under seeded chaos.
    pub chaos: Option<u64>,
    /// Per-job simulated-cycle deadline.
    pub deadline_cycles: Option<u64>,
    /// Per-job wall-clock deadline in milliseconds.
    pub deadline_wall_ms: Option<u64>,
}

wire_struct!(WireJobSpec {
    kernel,
    dataset,
    variant,
    cores,
    tpc,
    width,
    chaos,
    deadline_cycles,
    deadline_wall_ms,
});

/// Why a [`WireJobSpec`] was rejected at admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// Kernel name is not one of the seven RMS kernels.
    UnknownKernel(String),
    /// Dataset tag outside the defined range.
    BadDataset(u8),
    /// Variant tag outside the defined range.
    BadVariant(u8),
    /// A machine-shape field outside the simulator's configured bounds.
    ShapeOutOfRange {
        /// Which field tripped (`"cores"`, `"threads/core"`, `"SIMD width"`).
        field: &'static str,
        /// The rejected value.
        value: u32,
        /// Inclusive upper bound (lower bound is always 1).
        max: u32,
    },
    /// A deadline of zero can never be met; reject it at the boundary.
    ZeroDeadline,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownKernel(k) => write!(f, "unknown kernel {k:?}"),
            SpecError::BadDataset(t) => write!(f, "dataset tag {t} outside 0..=2"),
            SpecError::BadVariant(t) => write!(f, "variant tag {t} outside 0..=1"),
            SpecError::ShapeOutOfRange { field, value, max } => {
                write!(f, "{field} must be 1..={max} (got {value})")
            }
            SpecError::ZeroDeadline => write!(f, "deadline must be non-zero"),
        }
    }
}

impl std::error::Error for SpecError {}

impl WireJobSpec {
    /// A plain kernel job on a Fig. 6 shape with no chaos or deadlines.
    pub fn kernel(
        kernel: &str,
        ds: Dataset,
        variant: Variant,
        (cores, tpc): (usize, usize),
        width: usize,
    ) -> Self {
        Self {
            kernel: kernel.to_string(),
            dataset: DATASET_TAGS
                .iter()
                .find(|(_, d)| *d == ds)
                .map(|(t, _)| *t)
                .unwrap_or(0),
            variant: match variant {
                Variant::Base => 0,
                Variant::Glsc => 1,
            },
            cores: cores as u32,
            tpc: tpc as u32,
            width: width as u32,
            chaos: None,
            deadline_cycles: None,
            deadline_wall_ms: None,
        }
    }

    /// Bounds-checks every field. Passing means the spec can be resolved
    /// into a dataset image and a valid [`glsc_sim::MachineConfig`]
    /// without panicking or allocating absurd amounts of memory.
    pub fn validate(&self) -> Result<(), SpecError> {
        if !KERNEL_NAMES.contains(&self.kernel.as_str()) {
            return Err(SpecError::UnknownKernel(self.kernel.clone()));
        }
        if self.dataset > 2 {
            return Err(SpecError::BadDataset(self.dataset));
        }
        if self.variant > 1 {
            return Err(SpecError::BadVariant(self.variant));
        }
        let max_width = glsc_isa::MAX_SIMD_WIDTH as u32;
        for (field, value, max) in [
            ("cores", self.cores, 32),
            ("threads/core", self.tpc, 8),
            ("SIMD width", self.width, max_width),
        ] {
            if value == 0 || value > max {
                return Err(SpecError::ShapeOutOfRange { field, value, max });
            }
        }
        if self.deadline_cycles == Some(0) || self.deadline_wall_ms == Some(0) {
            return Err(SpecError::ZeroDeadline);
        }
        Ok(())
    }

    /// The validated spec's dataset.
    ///
    /// # Panics
    ///
    /// Panics on an unvalidated tag; call [`validate`](Self::validate)
    /// first.
    pub fn resolve_dataset(&self) -> Dataset {
        DATASET_TAGS
            .iter()
            .find(|(t, _)| *t == self.dataset)
            .map(|(_, d)| *d)
            .expect("validated dataset tag")
    }

    /// The validated spec's variant.
    ///
    /// # Panics
    ///
    /// Panics on an unvalidated tag; call [`validate`](Self::validate)
    /// first.
    pub fn resolve_variant(&self) -> Variant {
        match self.variant {
            0 => Variant::Base,
            1 => Variant::Glsc,
            t => panic!("unvalidated variant tag {t}"),
        }
    }

    /// Stable job id, matching the supervisor's naming for the same
    /// workload (`HIP-T-GLSC-4x4-w4`, plus `-chaos<seed>`).
    pub fn id(&self) -> String {
        let ds = DATASET_TAGS
            .iter()
            .find(|(t, _)| *t == self.dataset)
            .map(|(_, d)| ds_label(*d))
            .unwrap_or("?");
        let variant = match self.variant {
            0 => Variant::Base.label(),
            1 => Variant::Glsc.label(),
            _ => "?",
        };
        let mut id = format!(
            "{}-{ds}-{variant}-{}x{}-w{}",
            self.kernel, self.cores, self.tpc, self.width
        );
        if let Some(seed) = self.chaos {
            id.push_str(&format!("-chaos{seed}"));
        }
        id
    }

    /// Encodes the spec as a standalone byte string (for journaling and
    /// framing).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = glsc_wire::Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a spec produced by [`to_bytes`](Self::to_bytes). The
    /// result is still *unvalidated*.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, glsc_wire::WireError> {
        let mut r = glsc_wire::Reader::new(bytes);
        let spec = Self::decode(&mut r)?;
        r.finish()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> WireJobSpec {
        WireJobSpec::kernel("HIP", Dataset::Tiny, Variant::Glsc, (4, 4), 4)
    }

    #[test]
    fn roundtrips_and_ids_match_supervisor_naming() {
        let mut spec = good();
        spec.chaos = Some(0x5EED);
        spec.deadline_cycles = Some(1_000_000);
        let back = WireJobSpec::from_bytes(&spec.to_bytes()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.id(), "HIP-T-GLSC-4x4-w4-chaos24301");
        assert!(back.validate().is_ok());
    }

    #[test]
    fn hostile_specs_are_typed_rejections() {
        let mut s = good();
        s.kernel = "EVIL".into();
        assert!(matches!(s.validate(), Err(SpecError::UnknownKernel(_))));

        let mut s = good();
        s.dataset = 9;
        assert_eq!(s.validate(), Err(SpecError::BadDataset(9)));

        let mut s = good();
        s.variant = 2;
        assert_eq!(s.validate(), Err(SpecError::BadVariant(2)));

        // A multi-billion-core "machine" must bounce at the boundary —
        // this is the allocation guard, not a style check.
        let mut s = good();
        s.cores = u32::MAX;
        assert!(matches!(
            s.validate(),
            Err(SpecError::ShapeOutOfRange { field: "cores", .. })
        ));
        let mut s = good();
        s.tpc = 9;
        assert!(matches!(
            s.validate(),
            Err(SpecError::ShapeOutOfRange {
                field: "threads/core",
                ..
            })
        ));
        let mut s = good();
        s.width = 0;
        assert!(matches!(
            s.validate(),
            Err(SpecError::ShapeOutOfRange {
                field: "SIMD width",
                ..
            })
        ));

        let mut s = good();
        s.deadline_wall_ms = Some(0);
        assert_eq!(s.validate(), Err(SpecError::ZeroDeadline));
    }

    #[test]
    fn truncated_bytes_decode_to_typed_error() {
        let bytes = good().to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(WireJobSpec::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is an error too, not silently ignored.
        let mut padded = bytes.clone();
        padded.push(0xFF);
        assert!(WireJobSpec::from_bytes(&padded).is_err());
    }
}
