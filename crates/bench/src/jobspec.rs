//! The wire job-spec codec shared by the `glsc-serve` protocol front-end
//! and its clients.
//!
//! A [`WireJobSpec`] is the *untrusted* form of a job: exactly what a
//! client frames onto the socket. [`WireJobSpec::validate`] is the
//! admission boundary — every field is bounds-checked against the same
//! limits [`glsc_sim::ConfigError`] enforces before any machine, dataset
//! image, or queue slot is allocated for it, so a hostile spec costs a
//! typed rejection, never memory or a panic deeper in the stack.
//!
//! A job is either a named RMS kernel (`kernel` set, `pattern` empty) or
//! a pattern workload (`pattern` carrying a `glsc-patterns` spec string,
//! `kernel` empty) — the `pattern:<spec>` namespace of
//! [`glsc_kernels::build_named`] carried over the wire.
//!
//! The codec is versioned like the report codec: [`SPEC_FORMAT_VERSION`]
//! leads every encoding, and a stale journal entry decodes to a typed
//! [`SpecCodecError::VersionMismatch`] instead of shifted-field garbage.
//! (Version 1 was the unversioned pre-pattern layout, which led with the
//! kernel string; its length prefix lands in the version slot, so v1
//! bytes also fail loudly as a mismatch.)
//!
//! The id scheme ([`WireJobSpec::id`]) matches the supervisor's
//! (`HIP-T-GLSC-4x4-w4`, `-chaos<seed>` when a fault plan is requested,
//! `-p<priority>` never — priority is routing metadata, not identity),
//! so a resubmitted job keys into the same journal ledger and result
//! cache and is served without re-running. Pattern jobs get a
//! filesystem-safe hashed id (`pat-stride-<fnv16>-T-GLSC-4x4-w4`) since
//! spec strings contain `:*@` and can be arbitrarily long.

use crate::ds_label;
use glsc_kernels::{Dataset, Variant, KERNEL_NAMES};
use glsc_mem::MemoryOrder;
use glsc_wire::{Reader, Wire, WireError, Writer};

/// Dataset tag values on the wire (`Dataset` itself lives in
/// `glsc-kernels` and stays wire-agnostic).
pub const DATASET_TAGS: [(u8, Dataset); 3] = [(0, Dataset::Tiny), (1, Dataset::A), (2, Dataset::B)];

/// Current job-spec wire format. v2 added the `pattern` field and the
/// version prefix itself; v3 added the `memory_order` consistency-model
/// field (DESIGN.md §17).
pub const SPEC_FORMAT_VERSION: u32 = 3;

/// One job as submitted over the protocol. All fields are untrusted
/// until [`validate`](WireJobSpec::validate) passes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireJobSpec {
    /// Kernel name (one of [`glsc_kernels::KERNEL_NAMES`]); empty for
    /// pattern jobs.
    pub kernel: String,
    /// Pattern spec string (`glsc-patterns` grammar, e.g.
    /// `stride:4x1024`); `None` for kernel jobs.
    pub pattern: Option<String>,
    /// Dataset tag: 0 = Tiny, 1 = A, 2 = B. For pattern jobs this
    /// selects the iteration tier (Tiny scales the spec down).
    pub dataset: u8,
    /// Variant tag: 0 = Base, 1 = Glsc.
    pub variant: u8,
    /// Core count (1..=32).
    pub cores: u32,
    /// SMT threads per core (1..=8).
    pub tpc: u32,
    /// SIMD width (1..=[`glsc_isa::MAX_SIMD_WIDTH`]).
    pub width: u32,
    /// Memory consistency model the job's machine runs under
    /// ([`MemoryOrder::Sc`] is the paper's baseline and the default).
    pub memory_order: MemoryOrder,
    /// Fault-plan seed: `Some` runs the job under seeded chaos.
    pub chaos: Option<u64>,
    /// Per-job simulated-cycle deadline.
    pub deadline_cycles: Option<u64>,
    /// Per-job wall-clock deadline in milliseconds.
    pub deadline_wall_ms: Option<u64>,
}

impl Wire for WireJobSpec {
    fn encode(&self, w: &mut Writer) {
        SPEC_FORMAT_VERSION.encode(w);
        self.kernel.encode(w);
        self.pattern.encode(w);
        self.dataset.encode(w);
        self.variant.encode(w);
        self.cores.encode(w);
        self.tpc.encode(w);
        self.width.encode(w);
        self.memory_order.encode(w);
        self.chaos.encode(w);
        self.deadline_cycles.encode(w);
        self.deadline_wall_ms.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        if u32::decode(r)? != SPEC_FORMAT_VERSION {
            return Err(r.invalid("jobspec format version"));
        }
        Ok(Self {
            kernel: String::decode(r)?,
            pattern: Option::<String>::decode(r)?,
            dataset: u8::decode(r)?,
            variant: u8::decode(r)?,
            cores: u32::decode(r)?,
            tpc: u32::decode(r)?,
            width: u32::decode(r)?,
            memory_order: MemoryOrder::decode(r)?,
            chaos: Option::<u64>::decode(r)?,
            deadline_cycles: Option::<u64>::decode(r)?,
            deadline_wall_ms: Option::<u64>::decode(r)?,
        })
    }
}

/// Why a [`WireJobSpec`] was rejected at admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// Kernel name is not one of the seven RMS kernels.
    UnknownKernel(String),
    /// Pattern spec string failed the `glsc-patterns` parser or its
    /// bounds checks (the rendered parse error).
    BadPattern(String),
    /// Both `kernel` and `pattern` set — a job is one or the other.
    KernelAndPattern,
    /// Dataset tag outside the defined range.
    BadDataset(u8),
    /// Variant tag outside the defined range.
    BadVariant(u8),
    /// A machine-shape field outside the simulator's configured bounds.
    ShapeOutOfRange {
        /// Which field tripped (`"cores"`, `"threads/core"`, `"SIMD width"`).
        field: &'static str,
        /// The rejected value.
        value: u32,
        /// Inclusive upper bound (lower bound is always 1).
        max: u32,
    },
    /// A deadline of zero can never be met; reject it at the boundary.
    ZeroDeadline,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownKernel(k) => write!(f, "unknown kernel {k:?}"),
            SpecError::BadPattern(e) => write!(f, "bad pattern spec: {e}"),
            SpecError::KernelAndPattern => {
                write!(f, "spec sets both kernel and pattern; pick one")
            }
            SpecError::BadDataset(t) => write!(f, "dataset tag {t} outside 0..=2"),
            SpecError::BadVariant(t) => write!(f, "variant tag {t} outside 0..=1"),
            SpecError::ShapeOutOfRange { field, value, max } => {
                write!(f, "{field} must be 1..={max} (got {value})")
            }
            SpecError::ZeroDeadline => write!(f, "deadline must be non-zero"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Why raw spec bytes failed to decode: version skew (e.g. a journal
/// written by an older build) or malformed bytes. Mirrors the report
/// codec's error split so callers can log skew distinctly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecCodecError {
    /// Leading version word is not [`SPEC_FORMAT_VERSION`].
    VersionMismatch {
        /// The version word found.
        found: u32,
    },
    /// Structurally bad bytes under the current version.
    Wire(WireError),
}

impl std::fmt::Display for SpecCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecCodecError::VersionMismatch { found } => write!(
                f,
                "jobspec format version {found} (this build reads {SPEC_FORMAT_VERSION})"
            ),
            SpecCodecError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpecCodecError {}

impl From<WireError> for SpecCodecError {
    fn from(e: WireError) -> Self {
        SpecCodecError::Wire(e)
    }
}

impl WireJobSpec {
    /// A plain kernel job on a Fig. 6 shape with no chaos or deadlines.
    pub fn kernel(
        kernel: &str,
        ds: Dataset,
        variant: Variant,
        (cores, tpc): (usize, usize),
        width: usize,
    ) -> Self {
        Self {
            kernel: kernel.to_string(),
            pattern: None,
            dataset: DATASET_TAGS
                .iter()
                .find(|(_, d)| *d == ds)
                .map(|(t, _)| *t)
                .unwrap_or(0),
            variant: match variant {
                Variant::Base => 0,
                Variant::Glsc => 1,
            },
            cores: cores as u32,
            tpc: tpc as u32,
            width: width as u32,
            memory_order: MemoryOrder::Sc,
            chaos: None,
            deadline_cycles: None,
            deadline_wall_ms: None,
        }
    }

    /// A pattern job: `spec` is a `glsc-patterns` spec string (e.g.
    /// `conflict:p=0.25x256*100`), untrusted until
    /// [`validate`](Self::validate) parses it.
    pub fn pattern(
        spec: &str,
        ds: Dataset,
        variant: Variant,
        shape: (usize, usize),
        width: usize,
    ) -> Self {
        let mut s = Self::kernel("", ds, variant, shape, width);
        s.pattern = Some(spec.to_string());
        s
    }

    /// Bounds-checks every field. Passing means the spec can be resolved
    /// into a dataset image and a valid [`glsc_sim::MachineConfig`]
    /// without panicking or allocating absurd amounts of memory — for
    /// pattern jobs that includes a full parse and bounds check of the
    /// spec string.
    pub fn validate(&self) -> Result<(), SpecError> {
        match &self.pattern {
            Some(p) => {
                if !self.kernel.is_empty() {
                    return Err(SpecError::KernelAndPattern);
                }
                glsc_patterns::PatternSpec::parse(p)
                    .map_err(|e| SpecError::BadPattern(e.to_string()))?;
            }
            None => {
                if !KERNEL_NAMES.contains(&self.kernel.as_str()) {
                    return Err(SpecError::UnknownKernel(self.kernel.clone()));
                }
            }
        }
        if self.dataset > 2 {
            return Err(SpecError::BadDataset(self.dataset));
        }
        if self.variant > 1 {
            return Err(SpecError::BadVariant(self.variant));
        }
        let max_width = glsc_isa::MAX_SIMD_WIDTH as u32;
        for (field, value, max) in [
            ("cores", self.cores, 32),
            ("threads/core", self.tpc, 8),
            ("SIMD width", self.width, max_width),
        ] {
            if value == 0 || value > max {
                return Err(SpecError::ShapeOutOfRange { field, value, max });
            }
        }
        if self.deadline_cycles == Some(0) || self.deadline_wall_ms == Some(0) {
            return Err(SpecError::ZeroDeadline);
        }
        Ok(())
    }

    /// The name [`glsc_kernels::build_named`] dispatches on: the kernel
    /// name, or `pattern:<spec>` for pattern jobs.
    pub fn kernel_name(&self) -> String {
        match &self.pattern {
            Some(p) => format!("pattern:{p}"),
            None => self.kernel.clone(),
        }
    }

    /// The validated spec's dataset.
    ///
    /// # Panics
    ///
    /// Panics on an unvalidated tag; call [`validate`](Self::validate)
    /// first.
    pub fn resolve_dataset(&self) -> Dataset {
        DATASET_TAGS
            .iter()
            .find(|(t, _)| *t == self.dataset)
            .map(|(_, d)| *d)
            .expect("validated dataset tag")
    }

    /// The validated spec's variant.
    ///
    /// # Panics
    ///
    /// Panics on an unvalidated tag; call [`validate`](Self::validate)
    /// first.
    pub fn resolve_variant(&self) -> Variant {
        match self.variant {
            0 => Variant::Base,
            1 => Variant::Glsc,
            t => panic!("unvalidated variant tag {t}"),
        }
    }

    /// Stable job id, matching the supervisor's naming for the same
    /// workload (`HIP-T-GLSC-4x4-w4`, plus `-tso`/`-relaxed` when the
    /// job runs under a non-default memory model, plus `-chaos<seed>`).
    /// Pattern jobs
    /// hash the spec string into a short filesystem-safe stem
    /// (`pat-stride-<fnv16>`); the id keys the journal, checkpoint
    /// files, and reply frames, so it must never contain `:*@,`.
    pub fn id(&self) -> String {
        let ds = DATASET_TAGS
            .iter()
            .find(|(t, _)| *t == self.dataset)
            .map(|(_, d)| ds_label(*d))
            .unwrap_or("?");
        let variant = match self.variant {
            0 => Variant::Base.label(),
            1 => Variant::Glsc.label(),
            _ => "?",
        };
        let stem = match &self.pattern {
            Some(p) => {
                // Kind prefix for human scanning; full-spec hash for
                // identity (specs can be long and contain separators).
                let kind = p.split(':').next().unwrap_or("spec");
                format!("pat-{kind}-{:016x}", glsc_wire::fnv64(p.as_bytes()))
            }
            None => self.kernel.clone(),
        };
        let mut id = format!(
            "{stem}-{ds}-{variant}-{}x{}-w{}",
            self.cores, self.tpc, self.width
        );
        // SC is the baseline and stays unsuffixed so every pre-existing
        // journal ledger and result-cache key keeps resolving; relaxed
        // models are a different workload and must not alias it.
        if self.memory_order != MemoryOrder::Sc {
            id.push_str(&format!("-{}", self.memory_order.name()));
        }
        if let Some(seed) = self.chaos {
            id.push_str(&format!("-chaos{seed}"));
        }
        id
    }

    /// Encodes the spec as a standalone byte string (for journaling and
    /// framing), led by [`SPEC_FORMAT_VERSION`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = glsc_wire::Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a spec produced by [`to_bytes`](Self::to_bytes). The
    /// result is still *unvalidated*. Stale-version bytes (including the
    /// unversioned v1 layout) report [`SpecCodecError::VersionMismatch`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SpecCodecError> {
        let mut peek = glsc_wire::Reader::new(bytes);
        let found = u32::decode(&mut peek)?;
        if found != SPEC_FORMAT_VERSION {
            return Err(SpecCodecError::VersionMismatch { found });
        }
        let mut r = glsc_wire::Reader::new(bytes);
        let spec = Self::decode(&mut r)?;
        r.finish()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> WireJobSpec {
        WireJobSpec::kernel("HIP", Dataset::Tiny, Variant::Glsc, (4, 4), 4)
    }

    fn good_pattern() -> WireJobSpec {
        WireJobSpec::pattern(
            "conflict:p=0.25x256*10",
            Dataset::Tiny,
            Variant::Glsc,
            (4, 4),
            4,
        )
    }

    #[test]
    fn roundtrips_and_ids_match_supervisor_naming() {
        let mut spec = good();
        spec.chaos = Some(0x5EED);
        spec.deadline_cycles = Some(1_000_000);
        let back = WireJobSpec::from_bytes(&spec.to_bytes()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.id(), "HIP-T-GLSC-4x4-w4-chaos24301");
        assert!(back.validate().is_ok());
    }

    #[test]
    fn pattern_specs_roundtrip_validate_and_dispatch() {
        let spec = good_pattern();
        let back = WireJobSpec::from_bytes(&spec.to_bytes()).unwrap();
        assert_eq!(back, spec);
        assert!(back.validate().is_ok());
        assert_eq!(back.kernel_name(), "pattern:conflict:p=0.25x256*10");
        // Hashed id: stable, filesystem-safe, distinct per spec.
        let id = back.id();
        assert!(id.starts_with("pat-conflict-"), "{id}");
        assert!(id.ends_with("-T-GLSC-4x4-w4"), "{id}");
        assert!(!id.contains([':', '*', '@', ',']), "{id}");
        let other = WireJobSpec::pattern("stride:4x1024", Dataset::Tiny, Variant::Glsc, (4, 4), 4);
        assert_ne!(other.id(), id);
        assert_eq!(back.id(), good_pattern().id(), "id is deterministic");
    }

    #[test]
    fn memory_order_roundtrips_and_suffixes_the_id() {
        // SC is the default and stays unsuffixed, so pre-existing journal
        // ledgers and result caches keep resolving.
        let sc = good();
        assert_eq!(sc.memory_order, MemoryOrder::Sc);
        assert_eq!(sc.id(), "HIP-T-GLSC-4x4-w4");

        for (order, suffix) in [
            (MemoryOrder::Tso, "-tso"),
            (MemoryOrder::RelaxedFence, "-relaxed"),
        ] {
            let mut spec = good();
            spec.memory_order = order;
            let back = WireJobSpec::from_bytes(&spec.to_bytes()).unwrap();
            assert_eq!(back, spec);
            assert!(back.validate().is_ok());
            assert_eq!(back.id(), format!("HIP-T-GLSC-4x4-w4{suffix}"));
            assert_ne!(back.id(), sc.id(), "relaxed jobs must not alias SC");
        }

        // Suffix order: model before chaos, matching the supervisor.
        let mut spec = good();
        spec.memory_order = MemoryOrder::Tso;
        spec.chaos = Some(7);
        assert_eq!(spec.id(), "HIP-T-GLSC-4x4-w4-tso-chaos7");
    }

    #[test]
    fn hostile_specs_are_typed_rejections() {
        let mut s = good();
        s.kernel = "EVIL".into();
        assert!(matches!(s.validate(), Err(SpecError::UnknownKernel(_))));

        let mut s = good();
        s.dataset = 9;
        assert_eq!(s.validate(), Err(SpecError::BadDataset(9)));

        let mut s = good();
        s.variant = 2;
        assert_eq!(s.validate(), Err(SpecError::BadVariant(2)));

        // A multi-billion-core "machine" must bounce at the boundary —
        // this is the allocation guard, not a style check.
        let mut s = good();
        s.cores = u32::MAX;
        assert!(matches!(
            s.validate(),
            Err(SpecError::ShapeOutOfRange { field: "cores", .. })
        ));
        let mut s = good();
        s.tpc = 9;
        assert!(matches!(
            s.validate(),
            Err(SpecError::ShapeOutOfRange {
                field: "threads/core",
                ..
            })
        ));
        let mut s = good();
        s.width = 0;
        assert!(matches!(
            s.validate(),
            Err(SpecError::ShapeOutOfRange {
                field: "SIMD width",
                ..
            })
        ));

        let mut s = good();
        s.deadline_wall_ms = Some(0);
        assert_eq!(s.validate(), Err(SpecError::ZeroDeadline));

        // Hostile pattern strings: typed rejection carrying the parse
        // error, never a panic or a giant allocation.
        for bad in [
            "",
            "evil:1",
            "stride:0x4",
            "stride:4x99999999",
            "stride:4x1024*1*1",
        ] {
            let s = WireJobSpec::pattern(bad, Dataset::Tiny, Variant::Glsc, (1, 1), 4);
            assert!(
                matches!(s.validate(), Err(SpecError::BadPattern(_))),
                "{bad:?}"
            );
        }
        let mut s = good_pattern();
        s.kernel = "HIP".into();
        assert_eq!(s.validate(), Err(SpecError::KernelAndPattern));
    }

    #[test]
    fn truncated_bytes_decode_to_typed_error() {
        let bytes = good().to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(WireJobSpec::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is an error too, not silently ignored.
        let mut padded = bytes.clone();
        padded.push(0xFF);
        assert!(WireJobSpec::from_bytes(&padded).is_err());
    }

    #[test]
    fn stale_version_bytes_are_version_mismatch() {
        // A stale v2 journal entry (no memory_order field) must decode
        // to typed skew, not shifted-field garbage.
        let mut w = glsc_wire::Writer::new();
        2u32.encode(&mut w); // SPEC_FORMAT_VERSION at the time
        "HIP".to_string().encode(&mut w);
        None::<String>.encode(&mut w); // pattern
        0u8.encode(&mut w); // dataset
        1u8.encode(&mut w); // variant
        4u32.encode(&mut w); // cores
        4u32.encode(&mut w); // tpc
        4u32.encode(&mut w); // width
        None::<u64>.encode(&mut w); // chaos
        None::<u64>.encode(&mut w); // deadline_cycles
        None::<u64>.encode(&mut w); // deadline_wall_ms
        let v2 = w.into_bytes();
        assert_eq!(
            WireJobSpec::from_bytes(&v2),
            Err(SpecCodecError::VersionMismatch { found: 2 }),
            "v2 bytes must fail loudly as skew, not decode as garbage"
        );

        // The v1 (unversioned) layout led with the kernel string; its
        // u64 length prefix puts the name length in the version slot, so
        // a 3-char kernel name collides with today's version word — the
        // payload after it is still structurally garbage and must error.
        let mut w = glsc_wire::Writer::new();
        "HIP".to_string().encode(&mut w);
        0u8.encode(&mut w); // dataset
        1u8.encode(&mut w); // variant
        4u32.encode(&mut w); // cores
        4u32.encode(&mut w); // tpc
        4u32.encode(&mut w); // width
        None::<u64>.encode(&mut w); // chaos
        None::<u64>.encode(&mut w); // deadline_cycles
        None::<u64>.encode(&mut w); // deadline_wall_ms
        let v1 = w.into_bytes();
        assert!(
            WireJobSpec::from_bytes(&v1).is_err(),
            "v1 bytes must fail loudly, not decode as garbage"
        );

        // A future version is skew too.
        let mut w = glsc_wire::Writer::new();
        (SPEC_FORMAT_VERSION + 1).encode(&mut w);
        let future = w.into_bytes();
        assert_eq!(
            WireJobSpec::from_bytes(&future),
            Err(SpecCodecError::VersionMismatch {
                found: SPEC_FORMAT_VERSION + 1
            })
        );

        // Current-version round-trip still works after the bump.
        let spec = good_pattern();
        assert_eq!(WireJobSpec::from_bytes(&spec.to_bytes()).unwrap(), spec);
    }
}
