//! Disassembler/parser round-trip: every instruction the builder can emit
//! must disassemble to text that parses back to the identical `Instr`.
//!
//! This locks `disasm.rs` and `parse.rs` against drifting apart: a change
//! to either side's syntax that is not mirrored in the other fails here,
//! for every mnemonic, operand form, and mask/immediate/broadcast
//! combination in the ISA.

use glsc_isa::{
    parse_instr, AluOp, CmpOp, FpOp, Instr, LaneSel, MReg, Operand, Program, ProgramBuilder, Reg,
    VReg, VSrc,
};

/// Builds one program exercising every `ProgramBuilder` emit method (and
/// through them every `Instr` variant), with both register and immediate
/// operand forms where the ISA offers a choice.
fn program_with_every_builder_method() -> Program {
    let mut b = ProgramBuilder::new();
    let (r1, r2, r3) = (Reg::new(1), Reg::new(2), Reg::new(3));
    let (v1, v2, v3) = (VReg::new(1), VReg::new(2), VReg::new(3));
    let (f0, f1, f2) = (MReg::new(0), MReg::new(1), MReg::new(2));
    let l = b.here();

    b.li(r1, -42);
    b.mv(r2, r1);
    b.alu(AluOp::Add, r1, r2, r3);
    b.add(r1, r2, 7);
    b.addi(r1, r2, -7);
    b.sub(r1, r2, r3);
    b.mul(r1, r2, 3);
    b.divu(r1, r2, r3);
    b.remu(r1, r2, 5);
    b.and(r1, r2, 0xff);
    b.or(r1, r2, r3);
    b.xor(r1, r2, r3);
    b.shl(r1, r2, 4);
    b.shr(r1, r2, r3);
    b.minu(r1, r2, 9);
    b.fadd(r1, r2, r3);
    b.fsub(r1, r2, r3);
    b.fmul(r1, r2, r3);
    b.fdiv(r1, r2, r3);
    b.cmp(CmpOp::Eq, r1, r2, 5);
    b.cmp(CmpOp::Ne, r1, r2, r3);
    b.fcmp(CmpOp::Lt, r1, r2, r3);
    b.cvt_i2f(r1, r2);
    b.cvt_f2i(r1, r2);
    b.branch(CmpOp::Le, r1, 3, l);
    b.beq(r1, 0, l);
    b.bne(r1, r2, l);
    b.blt(r1, -1, l);
    b.ble(r1, 2, l);
    b.bgt(r1, r2, l);
    b.bge(r1, 0, l);
    b.jmp(l);
    b.bmz(f0, l);
    b.bmnz(f1, l);
    b.barrier();
    b.nop();
    b.fence();
    b.fence_acq();
    b.fence_rel();
    b.ld(r1, r2, 8);
    b.st(r1, r2, -8);
    b.sync_on();
    b.ll(r1, r2, 0);
    b.sc(r1, r2, r3, 4);
    b.sync_off();
    b.valu(AluOp::Max, v1, v2, v3, Some(f0));
    b.vadd(v1, v2, 1, None);
    b.vsub(v1, v2, v3, Some(f1));
    b.vmul(v1, v2, r3, None);
    b.vmod(v1, v2, 3, None);
    b.vshl(v1, v2, 2, Some(f0));
    b.vshr(v1, v2, v3, None);
    b.vand(v1, v2, 1, None);
    b.vfp(FpOp::Min, v1, v2, v3, Some(f2));
    b.vfadd(v1, v2, v3, None);
    b.vfsub(v1, v2, v3, Some(f0));
    b.vfmul(v1, v2, v3, None);
    b.vcmp(CmpOp::Eq, f0, v1, 0, Some(f2));
    b.vcmp(CmpOp::Gt, f0, v1, v2, None);
    b.vfcmp(CmpOp::Ge, f0, v1, v2, Some(f1));
    b.vsplat(v1, r2);
    b.viota(v1);
    b.vextract(r1, v2, 3u8);
    b.vextract(r1, v2, r3);
    b.vinsert(v1, r3, 2u8);
    b.vinsert(v1, r3, r2);
    b.mall(f0);
    b.mclear(f1);
    b.mnot(f0, f1);
    b.mand(f0, f1, f2);
    b.mor(f0, f1, f2);
    b.mxor(f0, f1, f2);
    b.mmov(f0, f1);
    b.mpop(r1, f0);
    b.r2m(f0, r1);
    b.m2r(r1, f0);
    b.vload(v1, r2, 8, Some(f0));
    b.vstore(v1, r2, -64, None);
    b.vgather(v1, r2, v3, Some(f1));
    b.vscatter(v1, r2, v3, None);
    b.vgatherlink(f1, v1, r1, v2, f0);
    b.vscattercond(f1, v1, r1, v2, f1);
    b.halt();
    b.build().unwrap()
}

#[test]
fn every_builder_instruction_round_trips() {
    let p = program_with_every_builder_method();
    for pc in 0..p.len() {
        let i = *p.fetch(pc).unwrap();
        let text = i.to_string();
        assert_eq!(
            parse_instr(&text),
            Ok(i),
            "pc {pc}: {text:?} did not round-trip"
        );
    }
}

#[test]
fn program_listing_lines_round_trip() {
    // The full program Display format (pc prefix, "; sync" comments) must
    // also parse line by line.
    let p = program_with_every_builder_method();
    let listing = p.to_string();
    let mut pcs = 0;
    for line in listing.lines() {
        let parsed = parse_instr(line).unwrap_or_else(|e| panic!("line {line:?}: {e}"));
        assert_eq!(parsed, *p.fetch(pcs).unwrap(), "listing line {line:?}");
        pcs += 1;
    }
    assert_eq!(pcs, p.len());
}

/// Operand-form edge cases the builder program can't hit naturally:
/// extreme immediates, register 31 / f7 boundaries, and every VSrc form
/// under every mask in one place.
#[test]
fn operand_edge_cases_round_trip() {
    let r31 = Reg::new(31);
    let v31 = VReg::new(31);
    let f7 = MReg::new(7);
    let cases = vec![
        Instr::Li {
            rd: r31,
            imm: i64::MIN,
        },
        Instr::Li {
            rd: Reg::new(0),
            imm: i64::MAX,
        },
        Instr::Alu {
            op: AluOp::Shl,
            rd: r31,
            rs: r31,
            src2: Operand::Reg(r31),
        },
        Instr::VAlu {
            op: AluOp::Sub,
            vd: v31,
            vs: v31,
            src2: VSrc::Imm(-9),
            mask: Some(f7),
        },
        Instr::VAlu {
            op: AluOp::Or,
            vd: v31,
            vs: v31,
            src2: VSrc::Bcast(r31),
            mask: Some(f7),
        },
        Instr::VCmp {
            op: CmpOp::Ne,
            fd: f7,
            vs: v31,
            src2: VSrc::Bcast(Reg::new(0)),
            mask: None,
        },
        Instr::VExtract {
            rd: r31,
            vs: v31,
            lane: LaneSel::Imm(15),
        },
        Instr::VInsert {
            vd: v31,
            rs: r31,
            lane: LaneSel::Reg(Reg::new(0)),
        },
        Instr::Load {
            rd: r31,
            base: r31,
            offset: i64::MIN,
        },
        Instr::Store {
            rs: r31,
            base: r31,
            offset: i64::MAX,
        },
    ];
    for i in cases {
        let text = i.to_string();
        assert_eq!(parse_instr(&text), Ok(i), "{text:?} did not round-trip");
    }
}
