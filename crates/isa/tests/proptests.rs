//! Randomized property tests for the assembler and program container.
//!
//! These were originally written with `proptest`; the offline build
//! environment cannot fetch it, so they now run as seeded loops over
//! `glsc-rng`. Each case prints its seed on failure for reproduction.

use glsc_isa::{AluOp, CmpOp, MReg, ProgramBuilder, Reg, VReg};
use glsc_rng::rngs::StdRng;
use glsc_rng::{Rng, SeedableRng};

/// Any sequence of emissions assembles, preserves order and count, and
/// every instruction disassembles to non-empty text.
#[test]
fn arbitrary_emissions_assemble() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x15A_0001 ^ seed);
        let n = rng.random_range(1..100usize);
        let ops: Vec<(usize, u8, u8, i32)> = (0..n)
            .map(|_| {
                (
                    rng.random_range(0..8usize),
                    rng.random_range(0..32u8),
                    rng.random_range(0..32u8),
                    rng.random::<u32>() as i32,
                )
            })
            .collect();
        let mut b = ProgramBuilder::new();
        for (kind, x, y, imm) in &ops {
            let (rx, ry) = (Reg::new(x % 32), Reg::new(y % 32));
            let (vx, vy) = (VReg::new(x % 32), VReg::new(y % 32));
            let (fx, fy) = (MReg::new(x % 8), MReg::new(y % 8));
            match kind {
                0 => {
                    b.li(rx, *imm as i64);
                }
                1 => {
                    b.alu(AluOp::Add, rx, ry, *imm as i64);
                }
                2 => {
                    b.cmp(CmpOp::Lt, rx, ry, *imm as i64);
                }
                3 => {
                    b.vadd(vx, vy, *imm as i64, Some(fx));
                }
                4 => {
                    b.mand(fx, fy, fx);
                }
                5 => {
                    b.ld(rx, ry, (*imm as i64) & 0xfff);
                }
                6 => {
                    b.vgatherlink(fx, vx, rx, vy, fy);
                }
                _ => {
                    b.vscattercond(fx, vx, rx, vy, fy);
                }
            }
        }
        b.halt();
        let p = b.build().expect("assembles");
        assert_eq!(p.len(), ops.len() + 1, "seed {seed}");
        for i in 0..p.len() {
            let text = p.fetch(i).unwrap().to_string();
            assert!(!text.is_empty(), "seed {seed}, pc {i}");
        }
        // Whole-program disassembly contains one line per instruction.
        assert_eq!(p.to_string().lines().count(), p.len(), "seed {seed}");
    }
}

/// Labels bound at arbitrary positions resolve to those positions.
#[test]
fn labels_resolve_to_bind_positions() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x15A_0002 ^ seed);
        let n = rng.random_range(1..10usize);
        let mut positions: Vec<usize> = (0..n).map(|_| rng.random_range(0..50usize)).collect();
        positions.sort_unstable();
        positions.dedup();
        let mut b = ProgramBuilder::new();
        let mut pending: Vec<(usize, glsc_isa::Label)> = Vec::new();
        for pos in &positions {
            // Emit nops until the desired position, then bind a label.
            while b.pc() < *pos {
                b.nop();
            }
            let l = b.label();
            b.bind(l).unwrap();
            pending.push((*pos, l));
        }
        // Reference every label so build() validates them.
        for (_, l) in &pending {
            b.jmp(*l);
        }
        b.halt();
        let p = b.build().unwrap();
        for (pos, l) in pending {
            assert_eq!(p.target(l), pos, "seed {seed}");
        }
    }
}

/// Sync regions flag exactly the instructions inside them.
#[test]
fn sync_regions_flag_exact_ranges() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x15A_0003 ^ seed);
        let n = rng.random_range(1..20usize);
        let segments: Vec<(usize, bool)> = (0..n)
            .map(|_| (rng.random_range(1..10usize), rng.random::<bool>()))
            .collect();
        let mut b = ProgramBuilder::new();
        let mut expected = Vec::new();
        for (len, sync) in &segments {
            if *sync {
                b.sync_on();
            } else {
                b.sync_off();
            }
            for _ in 0..*len {
                b.nop();
                expected.push(*sync);
            }
        }
        b.sync_off();
        b.halt();
        expected.push(false);
        let p = b.build().unwrap();
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(p.is_sync(i), *want, "seed {seed}, pc {i}");
        }
    }
}
