//! Property tests for the assembler and program container.

use glsc_isa::{AluOp, CmpOp, MReg, ProgramBuilder, Reg, VReg};
use proptest::prelude::*;

proptest! {
    /// Any sequence of emissions assembles, preserves order and count, and
    /// every instruction disassembles to non-empty text.
    #[test]
    fn arbitrary_emissions_assemble(
        ops in proptest::collection::vec((0usize..8, 0u8..32, 0u8..32, any::<i32>()), 1..100)
    ) {
        let mut b = ProgramBuilder::new();
        for (kind, x, y, imm) in &ops {
            let (rx, ry) = (Reg::new(x % 32), Reg::new(y % 32));
            let (vx, vy) = (VReg::new(x % 32), VReg::new(y % 32));
            let (fx, fy) = (MReg::new(x % 8), MReg::new(y % 8));
            match kind {
                0 => { b.li(rx, *imm as i64); }
                1 => { b.alu(AluOp::Add, rx, ry, *imm as i64); }
                2 => { b.cmp(CmpOp::Lt, rx, ry, *imm as i64); }
                3 => { b.vadd(vx, vy, *imm as i64, Some(fx)); }
                4 => { b.mand(fx, fy, fx); }
                5 => { b.ld(rx, ry, (*imm as i64) & 0xfff); }
                6 => { b.vgatherlink(fx, vx, rx, vy, fy); }
                _ => { b.vscattercond(fx, vx, rx, vy, fy); }
            }
        }
        b.halt();
        let p = b.build().expect("assembles");
        prop_assert_eq!(p.len(), ops.len() + 1);
        for i in 0..p.len() {
            let text = p.fetch(i).unwrap().to_string();
            prop_assert!(!text.is_empty());
        }
        // Whole-program disassembly contains one line per instruction.
        prop_assert_eq!(p.to_string().lines().count(), p.len());
    }

    /// Labels bound at arbitrary positions resolve to those positions.
    #[test]
    fn labels_resolve_to_bind_positions(positions in proptest::collection::btree_set(0usize..50, 1..10)) {
        let mut b = ProgramBuilder::new();
        let mut pending: Vec<(usize, glsc_isa::Label)> = Vec::new();
        for pos in &positions {
            // Emit nops until the desired position, then bind a label.
            while b.pc() < *pos {
                b.nop();
            }
            let l = b.label();
            b.bind(l).unwrap();
            pending.push((*pos, l));
        }
        // Reference every label so build() validates them.
        for (_, l) in &pending {
            b.jmp(*l);
        }
        b.halt();
        let p = b.build().unwrap();
        for (pos, l) in pending {
            prop_assert_eq!(p.target(l), pos);
        }
    }

    /// Sync regions flag exactly the instructions inside them.
    #[test]
    fn sync_regions_flag_exact_ranges(segments in proptest::collection::vec((1usize..10, any::<bool>()), 1..20)) {
        let mut b = ProgramBuilder::new();
        let mut expected = Vec::new();
        for (len, sync) in &segments {
            if *sync {
                b.sync_on();
            } else {
                b.sync_off();
            }
            for _ in 0..*len {
                b.nop();
                expected.push(*sync);
            }
        }
        b.sync_off();
        b.halt();
        expected.push(false);
        let p = b.build().unwrap();
        for (i, want) in expected.iter().enumerate() {
            prop_assert_eq!(p.is_sync(i), *want, "pc {}", i);
        }
    }
}
