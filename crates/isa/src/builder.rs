//! A tiny assembler: emits [`Instr`]s, manages labels, and tracks
//! synchronization regions.

use crate::instr::{AluOp, CmpOp, FenceKind, FpOp, Instr, LaneSel, Operand, VSrc};
use crate::program::{Label, Program};
use crate::reg::{MReg, Reg, VReg};
use std::error::Error;
use std::fmt;

/// Error returned by [`ProgramBuilder::build`] and [`ProgramBuilder::bind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A label was used as a branch target but never bound to a position.
    UnboundLabel(Label),
    /// [`ProgramBuilder::bind`] was called twice for the same label.
    RebindLabel(Label),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label {l} used but never bound"),
            BuildError::RebindLabel(l) => write!(f, "label {l} bound twice"),
        }
    }
}

impl Error for BuildError {}

/// Incrementally builds a [`Program`].
///
/// All emit methods return `&mut Self` for chaining. Labels support forward
/// references: create with [`label`](Self::label), bind with
/// [`bind`](Self::bind); [`here`](Self::here) creates and binds in one step
/// (for backward branches).
///
/// ```
/// use glsc_isa::{ProgramBuilder, Reg};
/// # fn main() -> Result<(), glsc_isa::BuildError> {
/// let mut b = ProgramBuilder::new();
/// let r = Reg::new(4);
/// b.li(r, 10);
/// let top = b.here();
/// b.addi(r, r, -1);
/// b.bgt(r, 0, top);
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(p.target(top), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    sync: Vec<bool>,
    labels: Vec<Option<u32>>,
    in_sync: bool,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far (the PC of the next emission).
    pub fn pc(&self) -> usize {
        self.instrs.len()
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::RebindLabel`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), BuildError> {
        let slot = &mut self.labels[label.0 as usize];
        if slot.is_some() {
            return Err(BuildError::RebindLabel(label));
        }
        *slot = Some(self.instrs.len() as u32);
        Ok(())
    }

    /// Creates a label bound to the current position (for backward
    /// branches).
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l).expect("fresh label cannot be bound");
        l
    }

    /// Starts a synchronization region: subsequently emitted instructions
    /// are flagged so the simulator attributes their time to
    /// synchronization (paper Fig. 5(a)).
    pub fn sync_on(&mut self) -> &mut Self {
        self.in_sync = true;
        self
    }

    /// Ends a synchronization region.
    pub fn sync_off(&mut self) -> &mut Self {
        self.in_sync = false;
        self
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self.sync.push(self.in_sync);
        self
    }

    /// Finishes the program, resolving all labels.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnboundLabel`] if any label used by an emitted
    /// branch was never bound.
    pub fn build(self) -> Result<Program, BuildError> {
        let mut targets = Vec::with_capacity(self.labels.len());
        for (i, t) in self.labels.iter().enumerate() {
            match t {
                Some(pc) => targets.push(*pc),
                None => {
                    let l = Label(i as u32);
                    if self.uses_label(l) {
                        return Err(BuildError::UnboundLabel(l));
                    }
                    targets.push(u32::MAX);
                }
            }
        }
        Ok(Program {
            instrs: self.instrs,
            sync: self.sync,
            label_targets: targets,
        })
    }

    fn uses_label(&self, l: Label) -> bool {
        self.instrs.iter().any(|i| match i {
            Instr::Branch { target, .. }
            | Instr::Jump { target }
            | Instr::BranchMaskZero { target, .. }
            | Instr::BranchMaskNotZero { target, .. } => *target == l,
            _ => false,
        })
    }

    // ---- scalar arithmetic ----

    /// `rd <- imm`
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::Li { rd, imm })
    }

    /// `rd <- rs` (register move).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Add,
            rd,
            rs,
            src2: Operand::Imm(0),
        })
    }

    /// Generic scalar ALU emission.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.emit(Instr::Alu {
            op,
            rd,
            rs,
            src2: src2.into(),
        })
    }

    /// `rd <- rs + src2`
    pub fn add(&mut self, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Add, rd, rs, src2)
    }

    /// `rd <- rs + imm` (alias of [`add`](Self::add) with an immediate).
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i64) -> &mut Self {
        self.alu(AluOp::Add, rd, rs, imm)
    }

    /// `rd <- rs - src2`
    pub fn sub(&mut self, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs, src2)
    }

    /// `rd <- rs * src2`
    pub fn mul(&mut self, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Mul, rd, rs, src2)
    }

    /// `rd <- rs / src2` (unsigned).
    pub fn divu(&mut self, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Div, rd, rs, src2)
    }

    /// `rd <- rs % src2` (unsigned).
    pub fn remu(&mut self, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Rem, rd, rs, src2)
    }

    /// `rd <- rs & src2`
    pub fn and(&mut self, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::And, rd, rs, src2)
    }

    /// `rd <- rs | src2`
    pub fn or(&mut self, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Or, rd, rs, src2)
    }

    /// `rd <- rs ^ src2`
    pub fn xor(&mut self, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Xor, rd, rs, src2)
    }

    /// `rd <- rs << src2`
    pub fn shl(&mut self, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Shl, rd, rs, src2)
    }

    /// `rd <- rs >> src2` (logical).
    pub fn shr(&mut self, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Shr, rd, rs, src2)
    }

    /// `rd <- min(rs, src2)` (unsigned).
    pub fn minu(&mut self, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Min, rd, rs, src2)
    }

    /// `rd <- f32(rs) + f32(rt)`
    pub fn fadd(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Fp {
            op: FpOp::Add,
            rd,
            rs,
            rt,
        })
    }

    /// `rd <- f32(rs) - f32(rt)`
    pub fn fsub(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Fp {
            op: FpOp::Sub,
            rd,
            rs,
            rt,
        })
    }

    /// `rd <- f32(rs) * f32(rt)`
    pub fn fmul(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Fp {
            op: FpOp::Mul,
            rd,
            rs,
            rt,
        })
    }

    /// `rd <- f32(rs) / f32(rt)`
    pub fn fdiv(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Fp {
            op: FpOp::Div,
            rd,
            rs,
            rt,
        })
    }

    /// Scalar compare producing 0/1.
    pub fn cmp(&mut self, op: CmpOp, rd: Reg, rs: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.emit(Instr::Cmp {
            op,
            rd,
            rs,
            src2: src2.into(),
        })
    }

    /// Scalar float compare producing 0/1.
    pub fn fcmp(&mut self, op: CmpOp, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::FCmp { op, rd, rs, rt })
    }

    /// Signed int -> f32 conversion.
    pub fn cvt_i2f(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::CvtIntToF32 { rd, rs })
    }

    /// f32 -> truncated signed int conversion.
    pub fn cvt_f2i(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::CvtF32ToInt { rd, rs })
    }

    // ---- control flow ----

    /// Generic conditional branch.
    pub fn branch(
        &mut self,
        op: CmpOp,
        rs: Reg,
        src2: impl Into<Operand>,
        target: Label,
    ) -> &mut Self {
        self.emit(Instr::Branch {
            op,
            rs,
            src2: src2.into(),
            target,
        })
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs: Reg, src2: impl Into<Operand>, target: Label) -> &mut Self {
        self.branch(CmpOp::Eq, rs, src2, target)
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs: Reg, src2: impl Into<Operand>, target: Label) -> &mut Self {
        self.branch(CmpOp::Ne, rs, src2, target)
    }

    /// Branch if signed less-than.
    pub fn blt(&mut self, rs: Reg, src2: impl Into<Operand>, target: Label) -> &mut Self {
        self.branch(CmpOp::Lt, rs, src2, target)
    }

    /// Branch if signed less-or-equal.
    pub fn ble(&mut self, rs: Reg, src2: impl Into<Operand>, target: Label) -> &mut Self {
        self.branch(CmpOp::Le, rs, src2, target)
    }

    /// Branch if signed greater-than.
    pub fn bgt(&mut self, rs: Reg, src2: impl Into<Operand>, target: Label) -> &mut Self {
        self.branch(CmpOp::Gt, rs, src2, target)
    }

    /// Branch if signed greater-or-equal.
    pub fn bge(&mut self, rs: Reg, src2: impl Into<Operand>, target: Label) -> &mut Self {
        self.branch(CmpOp::Ge, rs, src2, target)
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.emit(Instr::Jump { target })
    }

    /// Branch if mask is all-zero.
    pub fn bmz(&mut self, f: MReg, target: Label) -> &mut Self {
        self.emit(Instr::BranchMaskZero { f, target })
    }

    /// Branch if mask has any set lane.
    pub fn bmnz(&mut self, f: MReg, target: Label) -> &mut Self {
        self.emit(Instr::BranchMaskNotZero { f, target })
    }

    /// Stop the thread.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Global thread barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.emit(Instr::Barrier)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    /// Full memory fence (`fence`).
    pub fn fence(&mut self) -> &mut Self {
        self.emit(Instr::Fence {
            kind: FenceKind::Full,
        })
    }

    /// Acquire fence (`fence.acq`).
    pub fn fence_acq(&mut self) -> &mut Self {
        self.emit(Instr::Fence {
            kind: FenceKind::Acquire,
        })
    }

    /// Release fence (`fence.rel`).
    pub fn fence_rel(&mut self) -> &mut Self {
        self.emit(Instr::Fence {
            kind: FenceKind::Release,
        })
    }

    // ---- scalar memory ----

    /// 32-bit load.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instr::Load { rd, base, offset })
    }

    /// 32-bit store.
    pub fn st(&mut self, rs: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instr::Store { rs, base, offset })
    }

    /// Load-linked.
    pub fn ll(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instr::LoadLinked { rd, base, offset })
    }

    /// Store-conditional; `rd` receives the success flag.
    pub fn sc(&mut self, rd: Reg, rs: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Instr::StoreCond {
            rd,
            rs,
            base,
            offset,
        })
    }

    // ---- vector arithmetic ----

    /// Generic masked vector integer op.
    pub fn valu(
        &mut self,
        op: AluOp,
        vd: VReg,
        vs: VReg,
        src2: impl Into<VSrc>,
        mask: Option<MReg>,
    ) -> &mut Self {
        self.emit(Instr::VAlu {
            op,
            vd,
            vs,
            src2: src2.into(),
            mask,
        })
    }

    /// Vector integer add.
    pub fn vadd(
        &mut self,
        vd: VReg,
        vs: VReg,
        src2: impl Into<VSrc>,
        mask: Option<MReg>,
    ) -> &mut Self {
        self.valu(AluOp::Add, vd, vs, src2, mask)
    }

    /// Vector integer subtract.
    pub fn vsub(
        &mut self,
        vd: VReg,
        vs: VReg,
        src2: impl Into<VSrc>,
        mask: Option<MReg>,
    ) -> &mut Self {
        self.valu(AluOp::Sub, vd, vs, src2, mask)
    }

    /// Vector integer multiply.
    pub fn vmul(
        &mut self,
        vd: VReg,
        vs: VReg,
        src2: impl Into<VSrc>,
        mask: Option<MReg>,
    ) -> &mut Self {
        self.valu(AluOp::Mul, vd, vs, src2, mask)
    }

    /// Vector unsigned remainder (`vmod` of the paper's Fig. 3).
    pub fn vmod(
        &mut self,
        vd: VReg,
        vs: VReg,
        src2: impl Into<VSrc>,
        mask: Option<MReg>,
    ) -> &mut Self {
        self.valu(AluOp::Rem, vd, vs, src2, mask)
    }

    /// Vector logical shift left.
    pub fn vshl(
        &mut self,
        vd: VReg,
        vs: VReg,
        src2: impl Into<VSrc>,
        mask: Option<MReg>,
    ) -> &mut Self {
        self.valu(AluOp::Shl, vd, vs, src2, mask)
    }

    /// Vector logical shift right.
    pub fn vshr(
        &mut self,
        vd: VReg,
        vs: VReg,
        src2: impl Into<VSrc>,
        mask: Option<MReg>,
    ) -> &mut Self {
        self.valu(AluOp::Shr, vd, vs, src2, mask)
    }

    /// Vector bitwise and.
    pub fn vand(
        &mut self,
        vd: VReg,
        vs: VReg,
        src2: impl Into<VSrc>,
        mask: Option<MReg>,
    ) -> &mut Self {
        self.valu(AluOp::And, vd, vs, src2, mask)
    }

    /// Generic masked vector float op.
    pub fn vfp(&mut self, op: FpOp, vd: VReg, vs: VReg, vt: VReg, mask: Option<MReg>) -> &mut Self {
        self.emit(Instr::VFp {
            op,
            vd,
            vs,
            vt,
            mask,
        })
    }

    /// Vector f32 add.
    pub fn vfadd(&mut self, vd: VReg, vs: VReg, vt: VReg, mask: Option<MReg>) -> &mut Self {
        self.vfp(FpOp::Add, vd, vs, vt, mask)
    }

    /// Vector f32 subtract.
    pub fn vfsub(&mut self, vd: VReg, vs: VReg, vt: VReg, mask: Option<MReg>) -> &mut Self {
        self.vfp(FpOp::Sub, vd, vs, vt, mask)
    }

    /// Vector f32 multiply.
    pub fn vfmul(&mut self, vd: VReg, vs: VReg, vt: VReg, mask: Option<MReg>) -> &mut Self {
        self.vfp(FpOp::Mul, vd, vs, vt, mask)
    }

    /// Vector integer compare into a mask.
    pub fn vcmp(
        &mut self,
        op: CmpOp,
        fd: MReg,
        vs: VReg,
        src2: impl Into<VSrc>,
        mask: Option<MReg>,
    ) -> &mut Self {
        self.emit(Instr::VCmp {
            op,
            fd,
            vs,
            src2: src2.into(),
            mask,
        })
    }

    /// Vector f32 compare into a mask.
    pub fn vfcmp(
        &mut self,
        op: CmpOp,
        fd: MReg,
        vs: VReg,
        vt: VReg,
        mask: Option<MReg>,
    ) -> &mut Self {
        self.emit(Instr::VFCmp {
            op,
            fd,
            vs,
            vt,
            mask,
        })
    }

    /// Broadcast scalar to vector.
    pub fn vsplat(&mut self, vd: VReg, rs: Reg) -> &mut Self {
        self.emit(Instr::VSplat { vd, rs })
    }

    /// Lane indices 0..width.
    pub fn viota(&mut self, vd: VReg) -> &mut Self {
        self.emit(Instr::VIota { vd })
    }

    /// Extract one lane to a scalar.
    pub fn vextract(&mut self, rd: Reg, vs: VReg, lane: impl Into<LaneSel>) -> &mut Self {
        self.emit(Instr::VExtract {
            rd,
            vs,
            lane: lane.into(),
        })
    }

    /// Insert a scalar into one lane.
    pub fn vinsert(&mut self, vd: VReg, rs: Reg, lane: impl Into<LaneSel>) -> &mut Self {
        self.emit(Instr::VInsert {
            vd,
            rs,
            lane: lane.into(),
        })
    }

    // ---- masks ----

    /// Set all lanes of a mask (the paper's `ALL_ONES`).
    pub fn mall(&mut self, f: MReg) -> &mut Self {
        self.emit(Instr::MSetAll { f })
    }

    /// Clear a mask.
    pub fn mclear(&mut self, f: MReg) -> &mut Self {
        self.emit(Instr::MClear { f })
    }

    /// Mask complement.
    pub fn mnot(&mut self, fd: MReg, fs: MReg) -> &mut Self {
        self.emit(Instr::MNot { fd, fs })
    }

    /// Mask and.
    pub fn mand(&mut self, fd: MReg, fa: MReg, fb: MReg) -> &mut Self {
        self.emit(Instr::MAnd { fd, fa, fb })
    }

    /// Mask or.
    pub fn mor(&mut self, fd: MReg, fa: MReg, fb: MReg) -> &mut Self {
        self.emit(Instr::MOr { fd, fa, fb })
    }

    /// Mask xor (the paper's `FtoDo ^= Ftmp` in Fig. 3).
    pub fn mxor(&mut self, fd: MReg, fa: MReg, fb: MReg) -> &mut Self {
        self.emit(Instr::MXor { fd, fa, fb })
    }

    /// Mask move.
    pub fn mmov(&mut self, fd: MReg, fs: MReg) -> &mut Self {
        self.emit(Instr::MMov { fd, fs })
    }

    /// Mask population count into a scalar.
    pub fn mpop(&mut self, rd: Reg, f: MReg) -> &mut Self {
        self.emit(Instr::MPopcount { rd, f })
    }

    /// Scalar -> mask.
    pub fn r2m(&mut self, f: MReg, rs: Reg) -> &mut Self {
        self.emit(Instr::MFromReg { f, rs })
    }

    /// Mask -> scalar.
    pub fn m2r(&mut self, rd: Reg, f: MReg) -> &mut Self {
        self.emit(Instr::MToReg { rd, f })
    }

    // ---- vector memory ----

    /// Unit-stride vector load.
    pub fn vload(&mut self, vd: VReg, base: Reg, offset: i64, mask: Option<MReg>) -> &mut Self {
        self.emit(Instr::VLoad {
            vd,
            base,
            offset,
            mask,
        })
    }

    /// Unit-stride vector store.
    pub fn vstore(&mut self, vs: VReg, base: Reg, offset: i64, mask: Option<MReg>) -> &mut Self {
        self.emit(Instr::VStore {
            vs,
            base,
            offset,
            mask,
        })
    }

    /// Indexed gather.
    pub fn vgather(&mut self, vd: VReg, base: Reg, vidx: VReg, mask: Option<MReg>) -> &mut Self {
        self.emit(Instr::VGather {
            vd,
            base,
            vidx,
            mask,
        })
    }

    /// Indexed scatter.
    pub fn vscatter(&mut self, vs: VReg, base: Reg, vidx: VReg, mask: Option<MReg>) -> &mut Self {
        self.emit(Instr::VScatter {
            vs,
            base,
            vidx,
            mask,
        })
    }

    /// `vgatherlink Fdst, Vdst, base, Vindx, Fsrc` (paper §3.1).
    pub fn vgatherlink(
        &mut self,
        fd: MReg,
        vd: VReg,
        base: Reg,
        vidx: VReg,
        fsrc: MReg,
    ) -> &mut Self {
        self.emit(Instr::VGatherLink {
            fd,
            vd,
            base,
            vidx,
            fsrc,
        })
    }

    /// `vscattercond Fdst, Vsrc, base, Vindx, Fsrc` (paper §3.1).
    pub fn vscattercond(
        &mut self,
        fd: MReg,
        vs: VReg,
        base: Reg,
        vidx: VReg,
        fsrc: MReg,
    ) -> &mut Self {
        self.emit(Instr::VScatterCond {
            fd,
            vs,
            base,
            vidx,
            fsrc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(1);
        let fwd = b.label();
        b.li(r, 1);
        let back = b.here();
        b.beq(r, 0, fwd);
        b.jmp(back);
        b.bind(fwd).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.target(back), 1);
        assert_eq!(p.target(fwd), 3);
    }

    #[test]
    fn unbound_used_label_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jmp(l);
        assert_eq!(b.build().unwrap_err(), BuildError::UnboundLabel(Label(0)));
    }

    #[test]
    fn unbound_unused_label_is_fine() {
        let mut b = ProgramBuilder::new();
        let _l = b.label();
        b.halt();
        assert!(b.build().is_ok());
    }

    #[test]
    fn rebinding_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.here();
        assert_eq!(b.bind(l).unwrap_err(), BuildError::RebindLabel(l));
    }

    #[test]
    fn chaining_emits_in_order() {
        let mut b = ProgramBuilder::new();
        let r = Reg::new(2);
        b.li(r, 1).addi(r, r, 2).halt();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 3);
        assert!(matches!(p.fetch(0), Some(Instr::Li { imm: 1, .. })));
        assert!(matches!(p.fetch(2), Some(Instr::Halt)));
    }

    #[test]
    fn mv_is_add_zero() {
        let mut b = ProgramBuilder::new();
        b.mv(Reg::new(3), Reg::new(4));
        let p = b.build().unwrap();
        assert!(matches!(
            p.fetch(0),
            Some(Instr::Alu {
                op: AluOp::Add,
                src2: Operand::Imm(0),
                ..
            })
        ));
    }
}
