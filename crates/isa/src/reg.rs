//! Architectural register names.
//!
//! Three register files exist, mirroring the baseline architecture of the
//! paper (§2): scalar registers, SIMD vector registers, and the dedicated
//! mask registers used for conditional SIMD execution (§2.1).

use std::fmt;

/// Number of scalar (64-bit) registers.
pub const NUM_SCALAR_REGS: usize = 32;
/// Number of vector registers. Each holds `simd_width` 32-bit elements.
pub const NUM_VECTOR_REGS: usize = 32;
/// Number of mask registers. Each holds one bit per SIMD lane.
pub const NUM_MASK_REGS: usize = 8;

macro_rules! reg_newtype {
    ($(#[$meta:meta])* $name:ident, $limit:expr, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u8);

        impl $name {
            /// Creates a register name.
            ///
            /// # Panics
            ///
            /// Panics if `index` is out of range for this register file.
            pub fn new(index: u8) -> Self {
                assert!(
                    (index as usize) < $limit,
                    concat!(stringify!($name), " index {} out of range (limit {})"),
                    index,
                    $limit
                );
                Self(index)
            }

            /// Returns the register index within its file.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

reg_newtype!(
    /// A scalar register name (`r0`–`r31`). Scalar registers hold 64-bit
    /// values; 32-bit memory data is zero-extended on load.
    Reg,
    NUM_SCALAR_REGS,
    "r"
);
reg_newtype!(
    /// A vector register name (`v0`–`v31`). Each vector register holds
    /// `simd_width` 32-bit elements (integers or IEEE-754 single floats).
    VReg,
    NUM_VECTOR_REGS,
    "v"
);
reg_newtype!(
    /// A mask register name (`f0`–`f7`), one bit per SIMD lane (§2.1).
    MReg,
    NUM_MASK_REGS,
    "f"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        assert_eq!(Reg::new(0).to_string(), "r0");
        assert_eq!(Reg::new(31).index(), 31);
        assert_eq!(VReg::new(7).to_string(), "v7");
        assert_eq!(MReg::new(3).to_string(), "f3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scalar_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mask_out_of_range_panics() {
        let _ = MReg::new(8);
    }

    #[test]
    fn ordering_and_hash_follow_index() {
        assert!(Reg::new(1) < Reg::new(2));
        assert_eq!(VReg::new(4), VReg::new(4));
    }
}
