//! Assembled programs.

use crate::instr::Instr;
use std::fmt;

/// A branch target created by [`ProgramBuilder::label`] and resolved when
/// the program is built.
///
/// [`ProgramBuilder::label`]: crate::ProgramBuilder::label
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An assembled, immutable program: a sequence of instructions plus
/// per-instruction metadata and resolved label targets.
///
/// In the simulator every hardware thread runs a `Program` (usually the same
/// SPMD program, with the thread id supplied in a register by convention).
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub(crate) instrs: Vec<Instr>,
    /// `sync[i]` is true when instruction `i` was emitted inside a
    /// synchronization region (`ProgramBuilder::sync_on`); the simulator
    /// uses it to attribute execution time to synchronization (Fig. 5(a)).
    pub(crate) sync: Vec<bool>,
    pub(crate) label_targets: Vec<u32>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Whether the instruction at `pc` is inside a synchronization region.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn is_sync(&self, pc: usize) -> bool {
        self.sync[pc]
    }

    /// Resolves a label to its instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label does not belong to this program.
    pub fn target(&self, label: Label) -> usize {
        self.label_targets[label.0 as usize] as usize
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instr;
    type IntoIter = std::slice::Iter<'a, Instr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

/// Binary serialization for durable snapshots. Instructions travel as
/// their assembly text — `parse_instr` is the exact inverse of `Display`
/// (the round-trip property pinned by `tests/roundtrip.rs`), so the text
/// form is both canonical and stable across unrelated enum-layout churn.
/// The `sync` flags and resolved label table are carried alongside; they
/// are program-build artifacts a disassembly listing alone cannot
/// recover.
impl glsc_wire::Wire for Program {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        let Self {
            instrs,
            sync,
            label_targets,
        } = self;
        let text: Vec<String> = instrs.iter().map(|i| i.to_string()).collect();
        text.encode(w);
        sync.encode(w);
        label_targets.encode(w);
    }

    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        let at = r.pos();
        let text = Vec::<String>::decode(r)?;
        let mut instrs = Vec::with_capacity(text.len());
        for line in &text {
            instrs.push(
                crate::parse_instr(line).map_err(|_| glsc_wire::WireError::Invalid {
                    at,
                    what: "instruction text",
                })?,
            );
        }
        let sync = Vec::<bool>::decode(r)?;
        let label_targets = Vec::<u32>::decode(r)?;
        if sync.len() != instrs.len() {
            return Err(glsc_wire::WireError::Invalid {
                at,
                what: "sync flag count",
            });
        }
        if label_targets.iter().any(|&t| t as usize > instrs.len()) {
            return Err(glsc_wire::WireError::Invalid {
                at,
                what: "label target",
            });
        }
        Ok(Self {
            instrs,
            sync,
            label_targets,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{ProgramBuilder, Reg};

    #[test]
    fn fetch_and_targets() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.li(Reg::new(1), 7);
        b.bind(l).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.target(l), 1);
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(2).is_none());
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn wire_round_trip_preserves_everything() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.li(Reg::new(1), 7);
        b.sync_on();
        b.bind(l).unwrap();
        b.addi(Reg::new(1), Reg::new(1), -3);
        b.sync_off();
        b.halt();
        let p = b.build().unwrap();
        let bytes = glsc_wire::to_bytes(&p);
        let q: crate::Program = glsc_wire::from_bytes(&bytes).unwrap();
        // Program has no PartialEq (label identity is builder-scoped);
        // the Debug form covers instrs, sync flags and label targets.
        assert_eq!(format!("{p:?}"), format!("{q:?}"));
        // Corrupt instruction text decodes to a typed error, not garbage.
        let mut bad = bytes.clone();
        let needle = b"li";
        let pos = bytes
            .windows(needle.len())
            .position(|v| v == needle)
            .unwrap();
        bad[pos] = b'z';
        assert!(glsc_wire::from_bytes::<crate::Program>(&bad).is_err());
    }

    #[test]
    fn sync_flags_recorded() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::new(1), 0);
        b.sync_on();
        b.li(Reg::new(2), 0);
        b.sync_off();
        b.halt();
        let p = b.build().unwrap();
        assert!(!p.is_sync(0));
        assert!(p.is_sync(1));
        assert!(!p.is_sync(2));
    }
}
