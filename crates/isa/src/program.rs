//! Assembled programs.

use crate::instr::Instr;
use std::fmt;

/// A branch target created by [`ProgramBuilder::label`] and resolved when
/// the program is built.
///
/// [`ProgramBuilder::label`]: crate::ProgramBuilder::label
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An assembled, immutable program: a sequence of instructions plus
/// per-instruction metadata and resolved label targets.
///
/// In the simulator every hardware thread runs a `Program` (usually the same
/// SPMD program, with the thread id supplied in a register by convention).
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub(crate) instrs: Vec<Instr>,
    /// `sync[i]` is true when instruction `i` was emitted inside a
    /// synchronization region (`ProgramBuilder::sync_on`); the simulator
    /// uses it to attribute execution time to synchronization (Fig. 5(a)).
    pub(crate) sync: Vec<bool>,
    pub(crate) label_targets: Vec<u32>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Whether the instruction at `pc` is inside a synchronization region.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn is_sync(&self, pc: usize) -> bool {
        self.sync[pc]
    }

    /// Resolves a label to its instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label does not belong to this program.
    pub fn target(&self, label: Label) -> usize {
        self.label_targets[label.0 as usize] as usize
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instr;
    type IntoIter = std::slice::Iter<'a, Instr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

#[cfg(test)]
mod tests {
    use crate::{ProgramBuilder, Reg};

    #[test]
    fn fetch_and_targets() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.li(Reg::new(1), 7);
        b.bind(l).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.target(l), 1);
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(2).is_none());
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn sync_flags_recorded() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::new(1), 0);
        b.sync_on();
        b.li(Reg::new(2), 0);
        b.sync_off();
        b.halt();
        let p = b.build().unwrap();
        assert!(!p.is_sync(0));
        assert!(p.is_sync(1));
        assert!(!p.is_sync(2));
    }
}
