//! # glsc-isa — the simulated vector ISA
//!
//! This crate defines the instruction set executed by the [`glsc-sim`]
//! cycle-level CMP simulator, reproducing the ISA assumed by *Atomic Vector
//! Operations on Chip Multiprocessors* (ISCA 2008):
//!
//! * a scalar RISC core subset (integer/float ALU, branches, 32-bit
//!   loads/stores, load-linked / store-conditional),
//! * masked SIMD arithmetic over configurable-width vector registers
//!   (paper §2.1),
//! * indexed **gather**/**scatter** memory operations (paper §2.2),
//! * the paper's contribution: **`vgatherlink`** and **`vscattercond`**,
//!   the atomic vector primitives (paper §3.1).
//!
//! Programs are built with [`ProgramBuilder`], a tiny assembler with labels
//! and synchronization-region annotation (used by the simulator to attribute
//! cycles to synchronization, as in Figure 5(a) of the paper).
//!
//! ```
//! use glsc_isa::{ProgramBuilder, Reg, VReg, MReg};
//!
//! # fn main() -> Result<(), glsc_isa::BuildError> {
//! let mut b = ProgramBuilder::new();
//! let (r_base, r_i) = (Reg::new(2), Reg::new(3));
//! let done = b.label();
//! b.li(r_i, 0);
//! let top = b.here();
//! b.bge(r_i, 8, done);
//! b.ld(Reg::new(4), r_base, 0);
//! b.addi(r_i, r_i, 1);
//! b.jmp(top);
//! b.bind(done)?;
//! b.halt();
//! let program = b.build()?;
//! assert_eq!(program.len(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod disasm;
mod instr;
mod parse;
mod program;
mod reg;

pub use builder::{BuildError, ProgramBuilder};
pub use instr::{AluOp, CmpOp, FenceKind, FpOp, Instr, LaneSel, Operand, VSrc};
pub use parse::{parse_instr, ParseError};
pub use program::{Label, Program};
pub use reg::{MReg, Reg, VReg, NUM_MASK_REGS, NUM_SCALAR_REGS, NUM_VECTOR_REGS};

/// Size in bytes of one SIMD data element (the paper assumes 32-bit
/// elements; see §1 "number of 32-bit data elements").
pub const ELEM_BYTES: u64 = 4;

/// Maximum SIMD width supported by the ISA encoding (mask registers are a
/// 32-bit set, so up to 32 lanes; the paper evaluates widths 1, 4 and 16).
pub const MAX_SIMD_WIDTH: usize = 32;
