//! Human-readable instruction and program formatting.

use crate::instr::{AluOp, CmpOp, FpOp, Instr, LaneSel, Operand, VSrc};
use crate::program::Program;
use std::fmt;

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for VSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VSrc::Vec(v) => write!(f, "{v}"),
            VSrc::Bcast(r) => write!(f, "{r}.bcast"),
            VSrc::Imm(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for LaneSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaneSel::Imm(v) => write!(f, "[{v}]"),
            LaneSel::Reg(r) => write!(f, "[{r}]"),
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "divu",
            AluOp::Rem => "remu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Min => "minu",
            AluOp::Max => "maxu",
        };
        f.write_str(s)
    }
}

impl fmt::Display for FpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FpOp::Add => "fadd",
            FpOp::Sub => "fsub",
            FpOp::Mul => "fmul",
            FpOp::Div => "fdiv",
            FpOp::Min => "fmin",
            FpOp::Max => "fmax",
        };
        f.write_str(s)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

fn mask_suffix(m: &Option<crate::MReg>) -> String {
    match m {
        Some(f) => format!(" ?{f}"),
        None => String::new(),
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match self {
            Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Alu { op, rd, rs, src2 } => write!(f, "{op} {rd}, {rs}, {src2}"),
            Fp { op, rd, rs, rt } => write!(f, "{op} {rd}, {rs}, {rt}"),
            Cmp { op, rd, rs, src2 } => write!(f, "cmp.{op} {rd}, {rs}, {src2}"),
            FCmp { op, rd, rs, rt } => write!(f, "fcmp.{op} {rd}, {rs}, {rt}"),
            CvtIntToF32 { rd, rs } => write!(f, "cvt.i2f {rd}, {rs}"),
            CvtF32ToInt { rd, rs } => write!(f, "cvt.f2i {rd}, {rs}"),
            Branch {
                op,
                rs,
                src2,
                target,
            } => write!(f, "b{op} {rs}, {src2}, {target}"),
            Jump { target } => write!(f, "jmp {target}"),
            BranchMaskZero { f: m, target } => write!(f, "bmz {m}, {target}"),
            BranchMaskNotZero { f: m, target } => write!(f, "bmnz {m}, {target}"),
            Halt => write!(f, "halt"),
            Barrier => write!(f, "barrier"),
            Nop => write!(f, "nop"),
            Fence { kind } => match kind {
                crate::FenceKind::Full => write!(f, "fence"),
                crate::FenceKind::Acquire => write!(f, "fence.acq"),
                crate::FenceKind::Release => write!(f, "fence.rel"),
            },
            Load { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Store { rs, base, offset } => write!(f, "st {rs}, {offset}({base})"),
            LoadLinked { rd, base, offset } => write!(f, "ll {rd}, {offset}({base})"),
            StoreCond {
                rd,
                rs,
                base,
                offset,
            } => write!(f, "sc {rd}, {rs}, {offset}({base})"),
            VAlu {
                op,
                vd,
                vs,
                src2,
                mask,
            } => {
                write!(f, "v{op} {vd}, {vs}, {src2}{}", mask_suffix(mask))
            }
            VFp {
                op,
                vd,
                vs,
                vt,
                mask,
            } => {
                write!(f, "v{op} {vd}, {vs}, {vt}{}", mask_suffix(mask))
            }
            VCmp {
                op,
                fd,
                vs,
                src2,
                mask,
            } => {
                write!(f, "vcmp.{op} {fd}, {vs}, {src2}{}", mask_suffix(mask))
            }
            VFCmp {
                op,
                fd,
                vs,
                vt,
                mask,
            } => {
                write!(f, "vfcmp.{op} {fd}, {vs}, {vt}{}", mask_suffix(mask))
            }
            VSplat { vd, rs } => write!(f, "vsplat {vd}, {rs}"),
            VIota { vd } => write!(f, "viota {vd}"),
            VExtract { rd, vs, lane } => write!(f, "vextract {rd}, {vs}{lane}"),
            VInsert { vd, rs, lane } => write!(f, "vinsert {vd}{lane}, {rs}"),
            MSetAll { f: m } => write!(f, "mall {m}"),
            MClear { f: m } => write!(f, "mclear {m}"),
            MNot { fd, fs } => write!(f, "mnot {fd}, {fs}"),
            MAnd { fd, fa, fb } => write!(f, "mand {fd}, {fa}, {fb}"),
            MOr { fd, fa, fb } => write!(f, "mor {fd}, {fa}, {fb}"),
            MXor { fd, fa, fb } => write!(f, "mxor {fd}, {fa}, {fb}"),
            MMov { fd, fs } => write!(f, "mmov {fd}, {fs}"),
            MPopcount { rd, f: m } => write!(f, "mpop {rd}, {m}"),
            MFromReg { f: m, rs } => write!(f, "r2m {m}, {rs}"),
            MToReg { rd, f: m } => write!(f, "m2r {rd}, {m}"),
            VLoad {
                vd,
                base,
                offset,
                mask,
            } => {
                write!(f, "vload {vd}, {offset}({base}){}", mask_suffix(mask))
            }
            VStore {
                vs,
                base,
                offset,
                mask,
            } => {
                write!(f, "vstore {vs}, {offset}({base}){}", mask_suffix(mask))
            }
            VGather {
                vd,
                base,
                vidx,
                mask,
            } => {
                write!(f, "vgather {vd}, ({base})[{vidx}]{}", mask_suffix(mask))
            }
            VScatter {
                vs,
                base,
                vidx,
                mask,
            } => {
                write!(f, "vscatter {vs}, ({base})[{vidx}]{}", mask_suffix(mask))
            }
            VGatherLink {
                fd,
                vd,
                base,
                vidx,
                fsrc,
            } => {
                write!(f, "vgatherlink {fd}, {vd}, ({base})[{vidx}], {fsrc}")
            }
            VScatterCond {
                fd,
                vs,
                base,
                vidx,
                fsrc,
            } => {
                write!(f, "vscattercond {fd}, {vs}, ({base})[{vidx}], {fsrc}")
            }
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, i) in self.instrs.iter().enumerate() {
            let sync = if self.sync[pc] { " ; sync" } else { "" };
            writeln!(f, "{pc:5}: {i}{sync}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{CmpOp, MReg, ProgramBuilder, Reg, VReg};

    #[test]
    fn disassembly_round_trips_key_mnemonics() {
        let mut b = ProgramBuilder::new();
        let (r1, v1, v2, f0, f1) = (
            Reg::new(1),
            VReg::new(1),
            VReg::new(2),
            MReg::new(0),
            MReg::new(1),
        );
        b.li(r1, 42);
        b.vgatherlink(f1, v1, r1, v2, f0);
        b.vadd(v1, v1, 1, Some(f1));
        b.vscattercond(f1, v1, r1, v2, f1);
        b.vcmp(CmpOp::Eq, f0, v1, 0, None);
        b.sync_on();
        b.ll(r1, r1, 4);
        b.sync_off();
        b.halt();
        let p = b.build().unwrap();
        let text = p.to_string();
        assert!(text.contains("li r1, 42"));
        assert!(text.contains("vgatherlink f1, v1, (r1)[v2], f0"));
        assert!(text.contains("vadd v1, v1, 1 ?f1"));
        assert!(text.contains("vscattercond f1, v1, (r1)[v2], f1"));
        assert!(text.contains("vcmp.eq f0, v1, 0"));
        assert!(text.contains("ll r1, 4(r1) ; sync"));
        assert!(text.contains("halt"));
    }
}
