//! Instruction parsing: the exact inverse of the disassembler in
//! `disasm.rs`.
//!
//! [`parse_instr`] accepts the assembly syntax produced by
//! [`Instr`](crate::Instr)'s `Display` impl and rebuilds the instruction,
//! so `parse_instr(&i.to_string()) == Ok(i)` holds for every well-formed
//! instruction — the round-trip property that locks the two sides of the
//! syntax against drifting apart (see `tests/roundtrip.rs`). Lines taken
//! from a [`Program`](crate::Program) listing also parse: a leading
//! `"  42: "` pc prefix and a trailing `"; sync"` comment are stripped.
//!
//! Branch targets parse to [`Label`](crate::Label)s carrying the printed
//! label id. A listing does not include label *binding* sites (ids map to
//! pcs through the program's internal label table), so parsing recovers
//! instructions, not whole linked programs.

use crate::instr::{AluOp, CmpOp, FenceKind, FpOp, Instr, LaneSel, Operand, VSrc};
use crate::program::Label;
use crate::reg::{MReg, Reg, VReg, NUM_MASK_REGS, NUM_SCALAR_REGS, NUM_VECTOR_REGS};
use std::error::Error;
use std::fmt;

/// Why a line failed to parse as an instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The line was empty (or only a pc prefix / comment).
    Empty,
    /// The mnemonic is not part of the instruction set.
    UnknownMnemonic(String),
    /// The operand list has the wrong number of entries for the mnemonic.
    OperandCount {
        /// The mnemonic whose operands were malformed.
        mnemonic: String,
        /// Number of operands the mnemonic requires.
        expected: usize,
        /// Number of operands found on the line.
        found: usize,
    },
    /// An individual operand could not be parsed.
    BadOperand {
        /// What kind of operand was expected (e.g. `"scalar register"`).
        expected: &'static str,
        /// The offending text.
        found: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty instruction"),
            ParseError::UnknownMnemonic(m) => write!(f, "unknown mnemonic {m:?}"),
            ParseError::OperandCount {
                mnemonic,
                expected,
                found,
            } => write!(
                f,
                "{mnemonic}: expected {expected} operand(s), found {found}"
            ),
            ParseError::BadOperand { expected, found } => {
                write!(f, "expected {expected}, found {found:?}")
            }
        }
    }
}

impl Error for ParseError {}

fn bad(expected: &'static str, found: &str) -> ParseError {
    ParseError::BadOperand {
        expected,
        found: found.to_string(),
    }
}

fn reg_index(s: &str, prefix: char, limit: usize, what: &'static str) -> Result<u8, ParseError> {
    let body = s.strip_prefix(prefix).ok_or_else(|| bad(what, s))?;
    let idx: u8 = body.parse().map_err(|_| bad(what, s))?;
    if (idx as usize) < limit {
        Ok(idx)
    } else {
        Err(bad(what, s))
    }
}

fn reg(s: &str) -> Result<Reg, ParseError> {
    reg_index(s, 'r', NUM_SCALAR_REGS, "scalar register").map(Reg::new)
}

fn vreg(s: &str) -> Result<VReg, ParseError> {
    reg_index(s, 'v', NUM_VECTOR_REGS, "vector register").map(VReg::new)
}

fn mreg(s: &str) -> Result<MReg, ParseError> {
    reg_index(s, 'f', NUM_MASK_REGS, "mask register").map(MReg::new)
}

fn imm(s: &str) -> Result<i64, ParseError> {
    s.parse().map_err(|_| bad("immediate", s))
}

fn operand(s: &str) -> Result<Operand, ParseError> {
    if s.starts_with('r') {
        reg(s).map(Operand::Reg)
    } else {
        imm(s).map(Operand::Imm)
    }
}

fn vsrc(s: &str) -> Result<VSrc, ParseError> {
    if let Some(r) = s.strip_suffix(".bcast") {
        reg(r).map(VSrc::Bcast)
    } else if s.starts_with('v') {
        vreg(s).map(VSrc::Vec)
    } else {
        imm(s).map(VSrc::Imm)
    }
}

fn label(s: &str) -> Result<Label, ParseError> {
    let body = s.strip_prefix('L').ok_or_else(|| bad("label", s))?;
    body.parse().map(Label).map_err(|_| bad("label", s))
}

/// `offset(base)`, e.g. `-8(r2)`.
fn mem_ref(s: &str) -> Result<(i64, Reg), ParseError> {
    let open = s.find('(').ok_or_else(|| bad("offset(base)", s))?;
    let inner = s[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| bad("offset(base)", s))?;
    Ok((imm(&s[..open])?, reg(inner)?))
}

/// `(base)[vidx]`, e.g. `(r2)[v3]`.
fn indexed(s: &str) -> Result<(Reg, VReg), ParseError> {
    let rest = s.strip_prefix('(').ok_or_else(|| bad("(base)[vidx]", s))?;
    let close = rest.find(')').ok_or_else(|| bad("(base)[vidx]", s))?;
    let idx = rest[close + 1..]
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| bad("(base)[vidx]", s))?;
    Ok((reg(&rest[..close])?, vreg(idx)?))
}

/// `vN[lane]` where `lane` is a number or a scalar register.
fn vreg_lane(s: &str) -> Result<(VReg, LaneSel), ParseError> {
    let open = s.find('[').ok_or_else(|| bad("vector[lane]", s))?;
    let inner = s[open + 1..]
        .strip_suffix(']')
        .ok_or_else(|| bad("vector[lane]", s))?;
    let lane = if inner.starts_with('r') {
        LaneSel::Reg(reg(inner)?)
    } else {
        LaneSel::Imm(inner.parse().map_err(|_| bad("lane index", inner))?)
    };
    Ok((vreg(&s[..open])?, lane))
}

/// Splits a trailing ` ?fN` mask annotation off a maskable instruction's
/// operand list.
fn split_mask(body: &str) -> Result<(&str, Option<MReg>), ParseError> {
    match body.rsplit_once(" ?") {
        Some((head, m)) => Ok((head, Some(mreg(m)?))),
        None => Ok((body, None)),
    }
}

fn scalar_alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "divu" => AluOp::Div,
        "remu" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "minu" => AluOp::Min,
        "maxu" => AluOp::Max,
        _ => return None,
    })
}

fn fp_op(m: &str) -> Option<FpOp> {
    Some(match m {
        "fadd" => FpOp::Add,
        "fsub" => FpOp::Sub,
        "fmul" => FpOp::Mul,
        "fdiv" => FpOp::Div,
        "fmin" => FpOp::Min,
        "fmax" => FpOp::Max,
        _ => return None,
    })
}

fn cmp_op(m: &str) -> Option<CmpOp> {
    Some(match m {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

/// Splits the comma-separated operand list, expecting exactly `n` entries.
fn operands<'a>(mnemonic: &str, body: &'a str, n: usize) -> Result<Vec<&'a str>, ParseError> {
    let parts: Vec<&str> = if body.is_empty() {
        Vec::new()
    } else {
        body.split(',').map(str::trim).collect()
    };
    if parts.len() == n {
        Ok(parts)
    } else {
        Err(ParseError::OperandCount {
            mnemonic: mnemonic.to_string(),
            expected: n,
            found: parts.len(),
        })
    }
}

/// Parses one instruction in the disassembler's syntax.
///
/// Accepts raw instruction text (`"vadd v1, v2, 1 ?f0"`) as well as full
/// program-listing lines (`"   12: ll r1, 4(r2) ; sync"`).
///
/// # Errors
///
/// A [`ParseError`] naming the first problem found: an empty line, an
/// unknown mnemonic, a wrong operand count, or a malformed operand
/// (including out-of-range register indices).
pub fn parse_instr(text: &str) -> Result<Instr, ParseError> {
    // Strip a listing comment and a leading "pc:" prefix, if present.
    let mut line = text.split(';').next().unwrap_or("").trim();
    if let Some((head, rest)) = line.split_once(':') {
        if !head.is_empty() && head.trim().chars().all(|c| c.is_ascii_digit()) {
            line = rest.trim();
        }
    }
    let (mnemonic, body) = match line.split_once(char::is_whitespace) {
        Some((m, b)) => (m, b.trim()),
        None if line.is_empty() => return Err(ParseError::Empty),
        None => (line, ""),
    };

    // Fixed-mnemonic forms first, then the op-family prefixes.
    match mnemonic {
        "li" => {
            let ops = operands(mnemonic, body, 2)?;
            return Ok(Instr::Li {
                rd: reg(ops[0])?,
                imm: imm(ops[1])?,
            });
        }
        "jmp" => {
            let ops = operands(mnemonic, body, 1)?;
            return Ok(Instr::Jump {
                target: label(ops[0])?,
            });
        }
        "bmz" | "bmnz" => {
            let ops = operands(mnemonic, body, 2)?;
            let (f, target) = (mreg(ops[0])?, label(ops[1])?);
            return Ok(if mnemonic == "bmz" {
                Instr::BranchMaskZero { f, target }
            } else {
                Instr::BranchMaskNotZero { f, target }
            });
        }
        "halt" => return Ok(Instr::Halt),
        "barrier" => return Ok(Instr::Barrier),
        "nop" => return Ok(Instr::Nop),
        "fence" | "fence.acq" | "fence.rel" => {
            operands(mnemonic, body, 0)?;
            return Ok(Instr::Fence {
                kind: match mnemonic {
                    "fence" => FenceKind::Full,
                    "fence.acq" => FenceKind::Acquire,
                    _ => FenceKind::Release,
                },
            });
        }
        "ld" | "ll" => {
            let ops = operands(mnemonic, body, 2)?;
            let (rd, (offset, base)) = (reg(ops[0])?, mem_ref(ops[1])?);
            return Ok(if mnemonic == "ld" {
                Instr::Load { rd, base, offset }
            } else {
                Instr::LoadLinked { rd, base, offset }
            });
        }
        "st" => {
            let ops = operands(mnemonic, body, 2)?;
            let (rs, (offset, base)) = (reg(ops[0])?, mem_ref(ops[1])?);
            return Ok(Instr::Store { rs, base, offset });
        }
        "sc" => {
            let ops = operands(mnemonic, body, 3)?;
            let (offset, base) = mem_ref(ops[2])?;
            return Ok(Instr::StoreCond {
                rd: reg(ops[0])?,
                rs: reg(ops[1])?,
                base,
                offset,
            });
        }
        "vsplat" => {
            let ops = operands(mnemonic, body, 2)?;
            return Ok(Instr::VSplat {
                vd: vreg(ops[0])?,
                rs: reg(ops[1])?,
            });
        }
        "viota" => {
            let ops = operands(mnemonic, body, 1)?;
            return Ok(Instr::VIota { vd: vreg(ops[0])? });
        }
        "vextract" => {
            let ops = operands(mnemonic, body, 2)?;
            let (vs, lane) = vreg_lane(ops[1])?;
            return Ok(Instr::VExtract {
                rd: reg(ops[0])?,
                vs,
                lane,
            });
        }
        "vinsert" => {
            let ops = operands(mnemonic, body, 2)?;
            let (vd, lane) = vreg_lane(ops[0])?;
            return Ok(Instr::VInsert {
                vd,
                rs: reg(ops[1])?,
                lane,
            });
        }
        "mall" | "mclear" => {
            let ops = operands(mnemonic, body, 1)?;
            let f = mreg(ops[0])?;
            return Ok(if mnemonic == "mall" {
                Instr::MSetAll { f }
            } else {
                Instr::MClear { f }
            });
        }
        "mnot" | "mmov" => {
            let ops = operands(mnemonic, body, 2)?;
            let (fd, fs) = (mreg(ops[0])?, mreg(ops[1])?);
            return Ok(if mnemonic == "mnot" {
                Instr::MNot { fd, fs }
            } else {
                Instr::MMov { fd, fs }
            });
        }
        "mand" | "mor" | "mxor" => {
            let ops = operands(mnemonic, body, 3)?;
            let (fd, fa, fb) = (mreg(ops[0])?, mreg(ops[1])?, mreg(ops[2])?);
            return Ok(match mnemonic {
                "mand" => Instr::MAnd { fd, fa, fb },
                "mor" => Instr::MOr { fd, fa, fb },
                _ => Instr::MXor { fd, fa, fb },
            });
        }
        "mpop" => {
            let ops = operands(mnemonic, body, 2)?;
            return Ok(Instr::MPopcount {
                rd: reg(ops[0])?,
                f: mreg(ops[1])?,
            });
        }
        "r2m" => {
            let ops = operands(mnemonic, body, 2)?;
            return Ok(Instr::MFromReg {
                f: mreg(ops[0])?,
                rs: reg(ops[1])?,
            });
        }
        "m2r" => {
            let ops = operands(mnemonic, body, 2)?;
            return Ok(Instr::MToReg {
                rd: reg(ops[0])?,
                f: mreg(ops[1])?,
            });
        }
        "vload" | "vstore" => {
            let (body, mask) = split_mask(body)?;
            let ops = operands(mnemonic, body, 2)?;
            let (v, (offset, base)) = (vreg(ops[0])?, mem_ref(ops[1])?);
            return Ok(if mnemonic == "vload" {
                Instr::VLoad {
                    vd: v,
                    base,
                    offset,
                    mask,
                }
            } else {
                Instr::VStore {
                    vs: v,
                    base,
                    offset,
                    mask,
                }
            });
        }
        "vgather" | "vscatter" => {
            let (body, mask) = split_mask(body)?;
            let ops = operands(mnemonic, body, 2)?;
            let (v, (base, vidx)) = (vreg(ops[0])?, indexed(ops[1])?);
            return Ok(if mnemonic == "vgather" {
                Instr::VGather {
                    vd: v,
                    base,
                    vidx,
                    mask,
                }
            } else {
                Instr::VScatter {
                    vs: v,
                    base,
                    vidx,
                    mask,
                }
            });
        }
        "vgatherlink" | "vscattercond" => {
            let ops = operands(mnemonic, body, 4)?;
            let (fd, v) = (mreg(ops[0])?, vreg(ops[1])?);
            let (base, vidx) = indexed(ops[2])?;
            let fsrc = mreg(ops[3])?;
            return Ok(if mnemonic == "vgatherlink" {
                Instr::VGatherLink {
                    fd,
                    vd: v,
                    base,
                    vidx,
                    fsrc,
                }
            } else {
                Instr::VScatterCond {
                    fd,
                    vs: v,
                    base,
                    vidx,
                    fsrc,
                }
            });
        }
        _ => {}
    }

    // Dotted predicate families.
    if let Some(op) = mnemonic.strip_prefix("cmp.").and_then(cmp_op) {
        let ops = operands(mnemonic, body, 3)?;
        return Ok(Instr::Cmp {
            op,
            rd: reg(ops[0])?,
            rs: reg(ops[1])?,
            src2: operand(ops[2])?,
        });
    }
    if let Some(op) = mnemonic.strip_prefix("fcmp.").and_then(cmp_op) {
        let ops = operands(mnemonic, body, 3)?;
        return Ok(Instr::FCmp {
            op,
            rd: reg(ops[0])?,
            rs: reg(ops[1])?,
            rt: reg(ops[2])?,
        });
    }
    if let Some(op) = mnemonic.strip_prefix("vcmp.").and_then(cmp_op) {
        let (body, mask) = split_mask(body)?;
        let ops = operands(mnemonic, body, 3)?;
        return Ok(Instr::VCmp {
            op,
            fd: mreg(ops[0])?,
            vs: vreg(ops[1])?,
            src2: vsrc(ops[2])?,
            mask,
        });
    }
    if let Some(op) = mnemonic.strip_prefix("vfcmp.").and_then(cmp_op) {
        let (body, mask) = split_mask(body)?;
        let ops = operands(mnemonic, body, 3)?;
        return Ok(Instr::VFCmp {
            op,
            fd: mreg(ops[0])?,
            vs: vreg(ops[1])?,
            vt: vreg(ops[2])?,
            mask,
        });
    }
    if mnemonic == "cvt.i2f" || mnemonic == "cvt.f2i" {
        let ops = operands(mnemonic, body, 2)?;
        let (rd, rs) = (reg(ops[0])?, reg(ops[1])?);
        return Ok(if mnemonic == "cvt.i2f" {
            Instr::CvtIntToF32 { rd, rs }
        } else {
            Instr::CvtF32ToInt { rd, rs }
        });
    }

    // Scalar ALU / FP, conditional branches, and their vector forms.
    if let Some(op) = scalar_alu_op(mnemonic) {
        let ops = operands(mnemonic, body, 3)?;
        return Ok(Instr::Alu {
            op,
            rd: reg(ops[0])?,
            rs: reg(ops[1])?,
            src2: operand(ops[2])?,
        });
    }
    if let Some(op) = fp_op(mnemonic) {
        let ops = operands(mnemonic, body, 3)?;
        return Ok(Instr::Fp {
            op,
            rd: reg(ops[0])?,
            rs: reg(ops[1])?,
            rt: reg(ops[2])?,
        });
    }
    if let Some(op) = mnemonic.strip_prefix('b').and_then(cmp_op) {
        let ops = operands(mnemonic, body, 3)?;
        return Ok(Instr::Branch {
            op,
            rs: reg(ops[0])?,
            src2: operand(ops[1])?,
            target: label(ops[2])?,
        });
    }
    if let Some(vm) = mnemonic.strip_prefix('v') {
        if let Some(op) = scalar_alu_op(vm) {
            let (body, mask) = split_mask(body)?;
            let ops = operands(mnemonic, body, 3)?;
            return Ok(Instr::VAlu {
                op,
                vd: vreg(ops[0])?,
                vs: vreg(ops[1])?,
                src2: vsrc(ops[2])?,
                mask,
            });
        }
        if let Some(op) = fp_op(vm) {
            let (body, mask) = split_mask(body)?;
            let ops = operands(mnemonic, body, 3)?;
            return Ok(Instr::VFp {
                op,
                vd: vreg(ops[0])?,
                vs: vreg(ops[1])?,
                vt: vreg(ops[2])?,
                mask,
            });
        }
    }

    Err(ParseError::UnknownMnemonic(mnemonic.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing_lines() {
        assert_eq!(
            parse_instr("   12: ll r1, 4(r2) ; sync"),
            Ok(Instr::LoadLinked {
                rd: Reg::new(1),
                base: Reg::new(2),
                offset: 4
            })
        );
        assert_eq!(parse_instr("halt"), Ok(Instr::Halt));
    }

    #[test]
    fn parses_fences() {
        assert_eq!(
            parse_instr("fence"),
            Ok(Instr::Fence {
                kind: FenceKind::Full
            })
        );
        assert_eq!(
            parse_instr("fence.acq"),
            Ok(Instr::Fence {
                kind: FenceKind::Acquire
            })
        );
        assert_eq!(
            parse_instr("fence.rel"),
            Ok(Instr::Fence {
                kind: FenceKind::Release
            })
        );
        assert!(matches!(
            parse_instr("fence r1"),
            Err(ParseError::OperandCount { .. })
        ));
    }

    #[test]
    fn rejects_junk() {
        assert_eq!(parse_instr("  "), Err(ParseError::Empty));
        assert!(matches!(
            parse_instr("frobnicate r1, r2"),
            Err(ParseError::UnknownMnemonic(_))
        ));
        assert!(matches!(
            parse_instr("li r1"),
            Err(ParseError::OperandCount { .. })
        ));
        // Out-of-range register indices must error, not panic.
        assert!(matches!(
            parse_instr("li r99, 0"),
            Err(ParseError::BadOperand { .. })
        ));
        assert!(matches!(
            parse_instr("mall f8"),
            Err(ParseError::BadOperand { .. })
        ));
    }

    #[test]
    fn negative_offsets_and_immediates() {
        assert_eq!(
            parse_instr("ld r3, -8(r4)"),
            Ok(Instr::Load {
                rd: Reg::new(3),
                base: Reg::new(4),
                offset: -8
            })
        );
        assert_eq!(
            parse_instr("add r1, r2, -17"),
            Ok(Instr::Alu {
                op: AluOp::Add,
                rd: Reg::new(1),
                rs: Reg::new(2),
                src2: Operand::Imm(-17)
            })
        );
    }
}
