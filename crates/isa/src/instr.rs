//! The instruction set.
//!
//! One `enum` variant per machine instruction. The simulator in `glsc-sim`
//! interprets these; `glsc-core` provides the timing model for the memory
//! instructions.

use crate::program::Label;
use crate::reg::{MReg, Reg, VReg};

/// Second source operand of scalar ALU/compare instructions: a register or
/// a 64-bit immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v as i64)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v as i64)
    }
}

/// Second source operand of vector ALU instructions: a vector register, a
/// broadcast scalar register, or a broadcast immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VSrc {
    /// Element-wise vector operand.
    Vec(VReg),
    /// Scalar register broadcast to all lanes (low 32 bits).
    Bcast(Reg),
    /// Immediate broadcast to all lanes.
    Imm(i64),
}

impl From<VReg> for VSrc {
    fn from(v: VReg) -> Self {
        VSrc::Vec(v)
    }
}

impl From<Reg> for VSrc {
    fn from(r: Reg) -> Self {
        VSrc::Bcast(r)
    }
}

impl From<i64> for VSrc {
    fn from(v: i64) -> Self {
        VSrc::Imm(v)
    }
}

impl From<i32> for VSrc {
    fn from(v: i32) -> Self {
        VSrc::Imm(v as i64)
    }
}

/// Lane selector for `VExtract`/`VInsert`: a compile-time lane number or a
/// scalar register holding the lane number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneSel {
    /// Fixed lane index.
    Imm(u8),
    /// Lane index taken from a scalar register at run time.
    Reg(Reg),
}

impl From<u8> for LaneSel {
    fn from(v: u8) -> Self {
        LaneSel::Imm(v)
    }
}

impl From<Reg> for LaneSel {
    fn from(r: Reg) -> Self {
        LaneSel::Reg(r)
    }
}

/// Integer ALU operation selector (scalar and vector forms).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division. Division by zero yields all-ones.
    Div,
    /// Unsigned remainder. Remainder by zero yields the dividend.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo the operand width).
    Shl,
    /// Logical shift right (shift amount taken modulo the operand width).
    Shr,
    /// Unsigned minimum.
    Min,
    /// Unsigned maximum.
    Max,
}

/// Floating-point operation selector (IEEE-754 single precision).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Strength of a memory fence (DESIGN.md §17).
///
/// Under the default sequentially-consistent model every fence is a
/// one-cycle no-op (the machine is already ordered); under TSO and the
/// relaxed model they constrain the issuing thread's write buffer and
/// outstanding memory operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FenceKind {
    /// `fence` — full barrier: the thread's write buffer must drain and
    /// all of its outstanding memory operations must complete before the
    /// fence retires.
    Full,
    /// `fence.acq` — acquire: later operations may not start until the
    /// thread's outstanding loads and stores in the LSU have completed
    /// (buffered stores may still be draining).
    Acquire,
    /// `fence.rel` — release: earlier stores (including buffered ones)
    /// must be globally visible before the fence retires.
    Release,
}

/// Comparison predicate for compares and conditional branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than (ordered less-than for floats).
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

/// A machine instruction.
///
/// Memory addressing: scalar accesses use `base + offset` byte addresses;
/// vector indexed accesses use `base + ELEM_BYTES * Vindx[lane]`, matching
/// the paper's `base[Vindx[i]]` form (§3.1). All memory data is 32 bits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    // ---- scalar arithmetic ----
    /// `rd <- imm`
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd <- op(rs, src2)` over 64-bit integers.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        src2: Operand,
    },
    /// `rd <- op(rs, rt)` over f32 (low 32 bits of the scalar registers).
    Fp {
        /// Operation.
        op: FpOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        rt: Reg,
    },
    /// `rd <- (rs `op` src2) ? 1 : 0` (signed integer compare).
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Destination (0 or 1).
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        src2: Operand,
    },
    /// `rd <- (f32(rs) `op` f32(rt)) ? 1 : 0`.
    FCmp {
        /// Predicate.
        op: CmpOp,
        /// Destination (0 or 1).
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        rt: Reg,
    },
    /// Convert signed integer `rs` to f32 bits in `rd`.
    CvtIntToF32 {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// Convert f32 bits in `rs` to a truncated signed integer in `rd`.
    CvtF32ToInt {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },

    // ---- control flow ----
    /// Branch to `target` if `rs op src2` (signed compare).
    Branch {
        /// Predicate.
        op: CmpOp,
        /// First source.
        rs: Reg,
        /// Second source.
        src2: Operand,
        /// Branch target.
        target: Label,
    },
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: Label,
    },
    /// Branch to `target` if mask `f` has no set lane (within SIMD width).
    BranchMaskZero {
        /// Mask tested.
        f: MReg,
        /// Branch target.
        target: Label,
    },
    /// Branch to `target` if mask `f` has at least one set lane.
    BranchMaskNotZero {
        /// Mask tested.
        f: MReg,
        /// Branch target.
        target: Label,
    },
    /// Stop this hardware thread.
    Halt,
    /// Block until every live thread in the machine reaches a barrier.
    Barrier,
    /// No operation.
    Nop,
    /// Memory fence of the given strength (`fence`, `fence.acq`,
    /// `fence.rel`). Ordering-only: no data is accessed, so fences are
    /// handled at the issue stage rather than by the LSU/GSU.
    Fence {
        /// Fence strength.
        kind: FenceKind,
    },

    // ---- scalar memory (32-bit data) ----
    /// `rd <- zext(mem32[base + offset])`
    Load {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// `mem32[base + offset] <- low32(rs)`
    Store {
        /// Source value.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Load-linked: as `Load`, additionally setting this thread's
    /// reservation on the cache line (paper §2.3).
    LoadLinked {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Store-conditional: stores iff the line reservation is still held by
    /// this thread; `rd` receives 1 on success, 0 on failure.
    StoreCond {
        /// Success flag destination.
        rd: Reg,
        /// Source value.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },

    // ---- vector arithmetic ----
    /// Element-wise integer op under optional mask; inactive lanes keep the
    /// previous destination value.
    VAlu {
        /// Operation.
        op: AluOp,
        /// Destination.
        vd: VReg,
        /// First source.
        vs: VReg,
        /// Second source.
        src2: VSrc,
        /// Optional lane mask.
        mask: Option<MReg>,
    },
    /// Element-wise f32 op under optional mask.
    VFp {
        /// Operation.
        op: FpOp,
        /// Destination.
        vd: VReg,
        /// First source.
        vs: VReg,
        /// Second source.
        vt: VReg,
        /// Optional lane mask.
        mask: Option<MReg>,
    },
    /// Element-wise integer compare producing a mask (restricted to lanes of
    /// `mask` when present; other lanes are cleared).
    VCmp {
        /// Predicate.
        op: CmpOp,
        /// Destination mask.
        fd: MReg,
        /// First source.
        vs: VReg,
        /// Second source.
        src2: VSrc,
        /// Optional lane mask.
        mask: Option<MReg>,
    },
    /// Element-wise f32 compare producing a mask.
    VFCmp {
        /// Predicate.
        op: CmpOp,
        /// Destination mask.
        fd: MReg,
        /// First source.
        vs: VReg,
        /// Second source.
        vt: VReg,
        /// Optional lane mask.
        mask: Option<MReg>,
    },
    /// Broadcast the low 32 bits of `rs` to every lane of `vd`.
    VSplat {
        /// Destination.
        vd: VReg,
        /// Source scalar.
        rs: Reg,
    },
    /// `vd[lane] <- lane` for every lane (0, 1, 2, ...).
    VIota {
        /// Destination.
        vd: VReg,
    },
    /// `rd <- zext(vs[lane])`.
    VExtract {
        /// Destination scalar.
        rd: Reg,
        /// Source vector.
        vs: VReg,
        /// Lane selector.
        lane: LaneSel,
    },
    /// `vd[lane] <- low32(rs)`.
    VInsert {
        /// Destination vector.
        vd: VReg,
        /// Source scalar.
        rs: Reg,
        /// Lane selector.
        lane: LaneSel,
    },

    // ---- mask ops ----
    /// Set the low `simd_width` bits of `f`.
    MSetAll {
        /// Destination mask.
        f: MReg,
    },
    /// Clear `f`.
    MClear {
        /// Destination mask.
        f: MReg,
    },
    /// `fd <- !fs` (restricted to SIMD width).
    MNot {
        /// Destination mask.
        fd: MReg,
        /// Source mask.
        fs: MReg,
    },
    /// `fd <- fa & fb`.
    MAnd {
        /// Destination mask.
        fd: MReg,
        /// First source.
        fa: MReg,
        /// Second source.
        fb: MReg,
    },
    /// `fd <- fa | fb`.
    MOr {
        /// Destination mask.
        fd: MReg,
        /// First source.
        fa: MReg,
        /// Second source.
        fb: MReg,
    },
    /// `fd <- fa ^ fb`.
    MXor {
        /// Destination mask.
        fd: MReg,
        /// First source.
        fa: MReg,
        /// Second source.
        fb: MReg,
    },
    /// `fd <- fs`.
    MMov {
        /// Destination mask.
        fd: MReg,
        /// Source mask.
        fs: MReg,
    },
    /// `rd <- popcount(f)`.
    MPopcount {
        /// Destination scalar.
        rd: Reg,
        /// Source mask.
        f: MReg,
    },
    /// `f <- low bits of rs` (restricted to SIMD width).
    MFromReg {
        /// Destination mask.
        f: MReg,
        /// Source scalar.
        rs: Reg,
    },
    /// `rd <- bits of f`.
    MToReg {
        /// Destination scalar.
        rd: Reg,
        /// Source mask.
        f: MReg,
    },

    // ---- vector memory ----
    /// Unit-stride vector load of `simd_width` elements starting at
    /// `base + offset`, under optional mask.
    VLoad {
        /// Destination.
        vd: VReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Optional lane mask.
        mask: Option<MReg>,
    },
    /// Unit-stride vector store.
    VStore {
        /// Source.
        vs: VReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Optional lane mask.
        mask: Option<MReg>,
    },
    /// Indexed gather: `vd[i] <- mem32[base + 4*vidx[i]]` for active lanes
    /// (paper §2.2).
    VGather {
        /// Destination.
        vd: VReg,
        /// Base address register.
        base: Reg,
        /// Index vector.
        vidx: VReg,
        /// Optional lane mask.
        mask: Option<MReg>,
    },
    /// Indexed scatter: `mem32[base + 4*vidx[i]] <- vs[i]` for active lanes.
    /// Element aliasing is *undefined* for plain scatters (§3); the
    /// simulator applies lanes in increasing order.
    VScatter {
        /// Source.
        vs: VReg,
        /// Base address register.
        base: Reg,
        /// Index vector.
        vidx: VReg,
        /// Optional lane mask.
        mask: Option<MReg>,
    },
    /// `vgatherlink Fdst, Vdst, base, Vindx, Fsrc` (paper §3.1): gathers
    /// active lanes and acquires cache-line reservations for them; `fd`
    /// reports per-lane success.
    VGatherLink {
        /// Output mask (success per lane).
        fd: MReg,
        /// Destination vector.
        vd: VReg,
        /// Base address register.
        base: Reg,
        /// Index vector.
        vidx: VReg,
        /// Input mask.
        fsrc: MReg,
    },
    /// `vscattercond Fdst, Vsrc, base, Vindx, Fsrc` (paper §3.1): scatters
    /// active lanes whose line reservations are still held; detects element
    /// aliasing and lets exactly one aliased lane succeed; `fd` reports
    /// per-lane success.
    VScatterCond {
        /// Output mask (success per lane).
        fd: MReg,
        /// Source vector.
        vs: VReg,
        /// Base address register.
        base: Reg,
        /// Index vector.
        vidx: VReg,
        /// Input mask.
        fsrc: MReg,
    },
}

impl Instr {
    /// Returns `true` for instructions that access memory (and therefore go
    /// through the LSU or GSU in the timing model).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::LoadLinked { .. }
                | Instr::StoreCond { .. }
                | Instr::VLoad { .. }
                | Instr::VStore { .. }
                | Instr::VGather { .. }
                | Instr::VScatter { .. }
                | Instr::VGatherLink { .. }
                | Instr::VScatterCond { .. }
        )
    }

    /// Returns `true` for the atomic-capable memory instructions (scalar
    /// ll/sc and the GLSC pair). Used for the "L1 accesses due to atomic
    /// operations" statistic of Table 4.
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            Instr::LoadLinked { .. }
                | Instr::StoreCond { .. }
                | Instr::VGatherLink { .. }
                | Instr::VScatterCond { .. }
        )
    }

    /// Returns `true` for instructions handled by the gather/scatter unit.
    pub fn uses_gsu(&self) -> bool {
        matches!(
            self,
            Instr::VGather { .. }
                | Instr::VScatter { .. }
                | Instr::VGatherLink { .. }
                | Instr::VScatterCond { .. }
        )
    }

    /// Returns `true` for memory fences. Fences are ordering-only: they
    /// access no data (`is_memory` is `false`) and stall at the issue
    /// stage until their ordering condition holds.
    pub fn is_fence(&self) -> bool {
        matches!(self, Instr::Fence { .. })
    }

    /// Returns `true` for control-flow instructions.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jump { .. }
                | Instr::BranchMaskZero { .. }
                | Instr::BranchMaskNotZero { .. }
                | Instr::Halt
                | Instr::Barrier
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let r = Reg::new(1);
        let v = VReg::new(1);
        let f = MReg::new(1);
        assert!(Instr::Load {
            rd: r,
            base: r,
            offset: 0
        }
        .is_memory());
        assert!(!Instr::Li { rd: r, imm: 3 }.is_memory());
        assert!(Instr::VGatherLink {
            fd: f,
            vd: v,
            base: r,
            vidx: v,
            fsrc: f
        }
        .is_atomic());
        assert!(Instr::VGatherLink {
            fd: f,
            vd: v,
            base: r,
            vidx: v,
            fsrc: f
        }
        .uses_gsu());
        assert!(!Instr::VLoad {
            vd: v,
            base: r,
            offset: 0,
            mask: None
        }
        .uses_gsu());
        assert!(Instr::Halt.is_control());
        for kind in [FenceKind::Full, FenceKind::Acquire, FenceKind::Release] {
            let fence = Instr::Fence { kind };
            assert!(fence.is_fence());
            assert!(!fence.is_memory());
            assert!(!fence.is_control());
            assert!(!fence.uses_gsu());
        }
        assert!(Instr::StoreCond {
            rd: r,
            rs: r,
            base: r,
            offset: 0
        }
        .is_atomic());
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg::new(3)), Operand::Reg(Reg::new(3)));
        assert_eq!(Operand::from(5i64), Operand::Imm(5));
        assert_eq!(VSrc::from(Reg::new(2)), VSrc::Bcast(Reg::new(2)));
        assert_eq!(VSrc::from(VReg::new(2)), VSrc::Vec(VReg::new(2)));
        assert_eq!(LaneSel::from(3u8), LaneSel::Imm(3));
    }
}
