//! Process-level drills for the two supervised-shutdown paths that the
//! kill-drill oracle does not cover:
//!
//! * **SIGTERM drain** — a real `kill -TERM` mid-sweep must checkpoint
//!   live work, exit 0 printing nothing, and a rerun must finish with
//!   output byte-identical to an uninterrupted run.
//! * **Deadline → quarantine** — `--inject-wedged` plants a job that
//!   never halts; the supervisor must trip its cycle deadline, retry
//!   with backoff, quarantine it, degrade the sweep table to a `QUAR`
//!   cell, and exit nonzero while the healthy jobs still complete.

use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_glsc-serve")
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("glsc-drain-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sweep_cmd(state: &std::path::Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(bin());
    cmd.arg("sweep")
        .arg("--state-dir")
        .arg(state)
        .arg("--checkpoint-every")
        .arg("500")
        .args(extra)
        .env_remove("GLSC_SERVE_KILL");
    cmd
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn sigterm_drains_cleanly_and_rerun_matches_solo() {
    // All seven kernels on the two largest shapes: enough work that the
    // signal lands mid-sweep, small enough to finish fast afterwards.
    let extra = ["--shapes", "4x1,4x4"];

    let solo_dir = tmp_dir("solo");
    let solo = sweep_cmd(&solo_dir, &extra).output().expect("solo run");
    assert!(solo.status.success());
    let solo_out = stdout_of(&solo);

    let drain_dir = tmp_dir("drain");
    let mut drained = false;
    // The kill window races process startup; widen it until a drain
    // lands (a run that finishes before the signal is just retried).
    for wait_ms in [10u64, 25, 50, 100, 200, 400] {
        let _ = std::fs::remove_dir_all(&drain_dir);
        let child = sweep_cmd(&drain_dir, &extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn sweep");
        std::thread::sleep(Duration::from_millis(wait_ms));
        let _ = Command::new("kill")
            .arg("-TERM")
            .arg(child.id().to_string())
            .status();
        let out = child.wait_with_output().expect("wait");
        let err = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(
            out.status.success(),
            "SIGTERM run exited nonzero (wait {wait_ms}ms): {err}"
        );
        if err.contains("drained cleanly") {
            // A drained sweep prints no table: partial output would
            // differ from the solo run and poison downstream diffs.
            assert_eq!(stdout_of(&out), "", "drained sweep printed a table");
            drained = true;
            break;
        }
        // Finished before the signal arrived; try a longer-lived window.
    }
    assert!(
        drained,
        "never caught the sweep mid-flight; widen the windows"
    );

    let resumed = sweep_cmd(&drain_dir, &extra).output().expect("resume run");
    assert!(resumed.status.success());
    assert_eq!(
        stdout_of(&resumed),
        solo_out,
        "post-drain rerun differs from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&drain_dir);
}

#[test]
fn wedged_job_quarantines_and_sweep_degrades() {
    let dir = tmp_dir("wedge");
    let out = sweep_cmd(
        &dir,
        &[
            "--kernels",
            "HIP",
            "--shapes",
            "1x2",
            "--inject-wedged",
            "--max-failures",
            "2",
        ],
    )
    .output()
    .expect("wedged sweep");

    assert_eq!(out.status.code(), Some(1), "degraded sweep must exit 1");
    let table = stdout_of(&out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        table.contains("WEDGE") && table.contains("QUAR"),
        "missing QUAR cell:\n{table}"
    );
    assert!(
        table.contains("quarantined after 2 failure(s)"),
        "missing quarantine reason:\n{table}"
    );
    assert!(
        table.contains("HIP-T-GLSC-1x2-w4") && table.contains("1 ok, 1 failed"),
        "healthy job missing from degraded table:\n{table}"
    );
    assert!(
        err.contains("cycle deadline"),
        "deadline trip not logged:\n{err}"
    );

    // Rerunning against the same state dir replays the quarantine from
    // the journal: still exit 1, same table, and fast (no re-simulation
    // of the wedge's 50k-cycle budget × retries).
    let rerun = sweep_cmd(
        &dir,
        &[
            "--kernels",
            "HIP",
            "--shapes",
            "1x2",
            "--inject-wedged",
            "--max-failures",
            "2",
        ],
    )
    .output()
    .expect("rerun");
    assert_eq!(rerun.status.code(), Some(1));
    assert_eq!(stdout_of(&rerun), table);
    let _ = std::fs::remove_dir_all(&dir);
}
