//! The kill-drill recovery oracle.
//!
//! For every kernel × Fig. 6 shape: run the service worker to completion
//! undisturbed (solo), then run it again in a fresh state dir while
//! killing it — `kill -9` semantics via `abort()` — at hostile points
//! (mid-journal-append, mid-checkpoint with a torn file under the final
//! name, mid-run), restarting after each death. The final, undisturbed
//! invocation must exit 0 and print a sweep table **byte-identical** to
//! the solo run's. A second drill pins the same property for a chaos job
//! whose injection counters ride the checkpoints.
//!
//! Set `GLSC_DRILL_KERNELS=HIP,GBC` to bound the matrix (CI smoke).

use std::path::PathBuf;
use std::process::{Command, Output};

const SHAPES: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];
const ALL_KERNELS: [&str; 7] = ["GBC", "FS", "GPS", "HIP", "SMC", "MFP", "TMS"];

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_glsc-serve")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glsc-drill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn kernels() -> Vec<String> {
    match std::env::var("GLSC_DRILL_KERNELS") {
        Ok(list) if !list.is_empty() => list.split(',').map(|s| s.trim().to_string()).collect(),
        _ => ALL_KERNELS.iter().map(|k| k.to_string()).collect(),
    }
}

/// One worker invocation: a single-job sweep over `state`, optionally
/// with an injected kill.
fn invoke(
    state: &PathBuf,
    kernel: &str,
    shape: (usize, usize),
    extra: &[&str],
    kill: Option<&str>,
) -> Output {
    let mut cmd = Command::new(bin());
    cmd.arg("sweep")
        .arg("--state-dir")
        .arg(state)
        .arg("--kernels")
        .arg(kernel)
        .arg("--shapes")
        .arg(format!("{}x{}", shape.0, shape.1))
        .arg("--checkpoint-every")
        .arg("500")
        .args(extra)
        .env_remove("GLSC_SERVE_KILL");
    if let Some(kill) = kill {
        cmd.env("GLSC_SERVE_KILL", kill);
    }
    cmd.output().expect("spawn glsc-serve")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Runs the solo baseline, then the kill gauntlet, and asserts the
/// recovered sweep's stdout is byte-identical to solo's.
fn drill(kernel: &str, shape: (usize, usize), extra: &[&str], tag: &str) {
    let solo_dir = tmp_dir(&format!("solo-{tag}"));
    let solo = invoke(&solo_dir, kernel, shape, extra, None);
    assert!(
        solo.status.success(),
        "{tag}: solo run failed: {}",
        String::from_utf8_lossy(&solo.stderr)
    );
    let solo_out = stdout_of(&solo);
    assert!(solo_out.contains("cycles"), "{tag}: empty solo table");

    let drill_dir = tmp_dir(&format!("drill-{tag}"));
    // Mid-journal-append (first append torn), mid-checkpoint (second
    // checkpoint torn *under the final name*, so recovery must detect
    // the damage and degrade), and a plain mid-run kill.
    for kill in ["journal:1", "checkpoint:2", "cycles:1500"] {
        let out = invoke(&drill_dir, kernel, shape, extra, Some(kill));
        assert!(
            !out.status.success(),
            "{tag}: injected kill {kill} did not kill the worker"
        );
    }
    let recovered = invoke(&drill_dir, kernel, shape, extra, None);
    assert!(
        recovered.status.success(),
        "{tag}: recovery run failed: {}",
        String::from_utf8_lossy(&recovered.stderr)
    );
    assert_eq!(
        stdout_of(&recovered),
        solo_out,
        "{tag}: recovered sweep output differs from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&drill_dir);
}

#[test]
fn kill_drill_every_kernel_and_shape() {
    for kernel in kernels() {
        for shape in SHAPES {
            drill(
                &kernel,
                shape,
                &[],
                &format!("{kernel}-{}x{}", shape.0, shape.1),
            );
        }
    }
}

#[test]
fn kill_drill_chaos_counters_survive_recovery() {
    // A fault plan's RNG state and injection counters ride the
    // checkpoints; the recovered table (which prints the chaos line)
    // must still match solo bit-for-bit.
    let extra = ["--chaos-seed", "24333"];
    let solo_dir = tmp_dir("chaos-solo");
    let solo = invoke(&solo_dir, "GBC", (2, 2), &extra, None);
    assert!(solo.status.success());
    let solo_out = stdout_of(&solo);
    assert!(
        solo_out.contains("chaos:"),
        "chaos line missing:\n{solo_out}"
    );

    let drill_dir = tmp_dir("chaos-drill");
    for kill in ["cycles:2000", "checkpoint:3", "journal:2", "cycles:6000"] {
        let out = invoke(&drill_dir, "GBC", (2, 2), &extra, Some(kill));
        assert!(!out.status.success(), "kill {kill} did not fire");
    }
    let recovered = invoke(&drill_dir, "GBC", (2, 2), &extra, None);
    assert!(
        recovered.status.success(),
        "chaos recovery failed: {}",
        String::from_utf8_lossy(&recovered.stderr)
    );
    assert_eq!(stdout_of(&recovered), solo_out);
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&drill_dir);
}

#[test]
fn randomized_kill_points_converge() {
    // Seeded pseudo-random mid-run kill points: however the deaths land,
    // restarts converge and the final table matches solo. The sequence
    // is deterministic (fixed seed) so a failure reproduces.
    let solo_dir = tmp_dir("rand-solo");
    let solo = invoke(&solo_dir, "HIP", (4, 4), &[], None);
    assert!(solo.status.success());
    let solo_out = stdout_of(&solo);

    use glsc_rng::{rngs::StdRng, Rng, SeedableRng};
    let drill_dir = tmp_dir("rand-drill");
    let mut rng = StdRng::seed_from_u64(0xD211);
    let mut deaths = 0;
    for round in 0..12 {
        let point = rng.random_range(300..8_300u64);
        let out = invoke(
            &drill_dir,
            "HIP",
            (4, 4),
            &[],
            Some(&format!("cycles:{point}")),
        );
        if out.status.success() {
            // The job finished before the kill point — done.
            assert_eq!(stdout_of(&out), solo_out, "round {round}");
            let _ = std::fs::remove_dir_all(&solo_dir);
            let _ = std::fs::remove_dir_all(&drill_dir);
            return;
        }
        deaths += 1;
    }
    assert!(deaths > 0);
    let recovered = invoke(&drill_dir, "HIP", (4, 4), &[], None);
    assert!(recovered.status.success());
    assert_eq!(stdout_of(&recovered), solo_out);
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&drill_dir);
}
