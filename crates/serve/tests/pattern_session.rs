//! Protocol drill for the pattern namespace: a pattern job submitted
//! over the wire runs through the fleet engine and comes back as a
//! `JobDone` frame, and hostile pattern specs are typed `Rejected`
//! replies — never a server-side panic (which would quarantine the job
//! and poison the journal for every restart after).

use glsc_bench::jobspec::WireJobSpec;
use glsc_kernels::{Dataset, Variant};
use glsc_serve::proto::{read_message, write_message, Reply, Request};
use glsc_serve::session::{run_session, SessionEnd};
use glsc_serve::ServiceConfig;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glsc-serve-pat-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn submit(buf: &mut Vec<u8>, spec: WireJobSpec) {
    write_message(buf, &Request::Submit { priority: 0, spec }).unwrap();
}

fn read_replies(mut bytes: &[u8]) -> Vec<Reply> {
    let mut replies = Vec::new();
    while let Some(reply) = read_message::<Reply>(&mut bytes).unwrap() {
        replies.push(reply);
    }
    replies
}

#[test]
fn pattern_job_over_the_wire_returns_job_done() {
    let dir = tmp_dir("done");
    let mut cfg = ServiceConfig::new(dir.clone());
    cfg.checkpoint_every = 2_000;

    let spec = WireJobSpec::pattern(
        "conflict:p=0.25x64*8",
        Dataset::Tiny,
        Variant::Glsc,
        (1, 2),
        4,
    );
    let id = spec.id();
    let mut input = Vec::new();
    submit(&mut input, spec);
    write_message(&mut input, &Request::Run).unwrap();

    let mut output = Vec::new();
    let end = run_session(&cfg, &mut &input[..], &mut output).unwrap();
    assert_eq!(end, SessionEnd::Closed);
    let replies = read_replies(&output);
    assert!(
        matches!(&replies[0], Reply::Accepted { id: got } if *got == id),
        "{replies:?}"
    );
    match &replies[1] {
        Reply::JobDone {
            id: got,
            cycles,
            report,
            chaos,
        } => {
            assert_eq!(got, &id);
            let decoded = glsc_bench::codec::decode_report(report).unwrap();
            assert_eq!(decoded.cycles, *cycles);
            assert!(*cycles > 0);
            assert_eq!(*chaos, None);
        }
        other => panic!("expected JobDone, got {other:?}"),
    }
    assert!(
        matches!(
            &replies[2],
            Reply::SweepDone {
                ok: 1,
                failed: 0,
                shed: 0
            }
        ),
        "{replies:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_pattern_specs_are_rejected_not_fatal() {
    let dir = tmp_dir("hostile");
    let mut cfg = ServiceConfig::new(dir.clone());
    cfg.checkpoint_every = 2_000;

    let mut input = Vec::new();
    for bad in ["stride:0x16", "evil:1", "", "stride:4x1024*999999999"] {
        submit(
            &mut input,
            WireJobSpec::pattern(bad, Dataset::Tiny, Variant::Glsc, (1, 2), 4),
        );
    }
    // A healthy job after the hostile ones proves the session survived.
    let good = WireJobSpec::pattern("stride:1x32*4", Dataset::Tiny, Variant::Glsc, (1, 2), 4);
    let good_id = good.id();
    submit(&mut input, good);
    write_message(&mut input, &Request::Run).unwrap();

    let mut output = Vec::new();
    run_session(&cfg, &mut &input[..], &mut output).unwrap();
    let replies = read_replies(&output);
    for reply in &replies[..4] {
        assert!(
            matches!(reply, Reply::Rejected { reason, .. } if reason.contains("pattern")),
            "{reply:?}"
        );
    }
    assert!(
        matches!(&replies[4], Reply::Accepted { id } if *id == good_id),
        "{replies:?}"
    );
    assert!(
        matches!(&replies[5], Reply::JobDone { id, .. } if *id == good_id),
        "{replies:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pattern_results_resume_from_the_store_bit_identically() {
    // Same state dir, same spec, two sessions: the second serves the
    // cached result and must stream the identical report bytes.
    let dir = tmp_dir("resume");
    let mut cfg = ServiceConfig::new(dir.clone());
    cfg.checkpoint_every = 2_000;

    let run_once = || {
        let spec = WireJobSpec::pattern("block:8/8*8", Dataset::Tiny, Variant::Glsc, (1, 2), 4);
        let mut input = Vec::new();
        submit(&mut input, spec);
        write_message(&mut input, &Request::Run).unwrap();
        let mut output = Vec::new();
        run_session(&cfg, &mut &input[..], &mut output).unwrap();
        read_replies(&output)
            .into_iter()
            .find_map(|r| match r {
                Reply::JobDone { report, .. } => Some(report),
                _ => None,
            })
            .expect("JobDone frame")
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "cached pattern result diverged");
    let _ = std::fs::remove_dir_all(&dir);
}
