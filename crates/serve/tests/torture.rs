//! Hostile-client torture oracle for the protocol-facing service.
//!
//! Drives the real `glsc-serve serve` binary over stdin and a Unix
//! socket the way a broken or malicious client would — seeded frame
//! corruption, floods past queue capacity, mid-stream disconnects,
//! injected crashes, SIGTERM under load — and pins the service's two
//! invariants:
//!
//! 1. the process exits through its own state machine (exit 0/1, typed
//!    error frames), never a panic or abort of its own; and
//! 2. every *accepted* job's result is byte-identical to what an
//!    uninterrupted solo run produces, no matter what the client or the
//!    scheduler did around it — no double-runs, no tainted results.

use glsc_bench::jobspec::WireJobSpec;
use glsc_kernels::{Dataset, Variant, KERNEL_NAMES};
use glsc_rng::{rngs::StdRng, Rng, SeedableRng};
use glsc_serve::journal::{replay, Journal};
use glsc_serve::proto::{read_message, write_frame, write_message, Reply, Request};
use std::collections::BTreeMap;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_glsc-serve")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glsc-torture-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(kernel: &str, shape: (usize, usize)) -> WireJobSpec {
    WireJobSpec::kernel(kernel, Dataset::Tiny, Variant::Glsc, shape, 4)
}

fn submit(buf: &mut Vec<u8>, priority: u8, spec: &WireJobSpec) {
    write_message(
        buf,
        &Request::Submit {
            priority,
            spec: spec.clone(),
        },
    )
    .expect("encode submit");
}

/// One full stdio session: spawn the server, feed it `input`, collect
/// its output. The writer runs on its own thread so a result stream
/// larger than the pipe buffer cannot deadlock the test.
fn serve_stdio(state: &Path, extra: &[&str], input: Vec<u8>, kill: Option<&str>) -> Output {
    let mut cmd = Command::new(bin());
    cmd.arg("serve")
        .arg("--stdio")
        .arg("--state-dir")
        .arg(state)
        .arg("--checkpoint-every")
        .arg("500")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .env_remove("GLSC_SERVE_KILL");
    if let Some(kill) = kill {
        cmd.env("GLSC_SERVE_KILL", kill);
    }
    let mut child = cmd.spawn().expect("spawn serve");
    let mut stdin = child.stdin.take().expect("stdin piped");
    let writer = std::thread::spawn(move || {
        let _ = stdin.write_all(&input);
    });
    let out = child.wait_with_output().expect("wait serve");
    let _ = writer.join();
    out
}

/// Decodes every reply frame the server wrote. Panics on a frame the
/// server itself produced being bad — the server must never emit
/// garbage, whatever it was fed.
fn replies(out: &Output) -> Vec<Reply> {
    let mut r = &out.stdout[..];
    let mut replies = Vec::new();
    loop {
        match read_message::<Reply>(&mut r) {
            Ok(Some(reply)) => replies.push(reply),
            Ok(None) => break,
            Err(e) => panic!("server emitted a bad frame: {e}"),
        }
    }
    replies
}

/// `id -> (cycles, report, chaos)` for every `JobDone` in the stream —
/// the byte-level oracle two runs are compared by.
fn done_map(replies: &[Reply]) -> BTreeMap<String, (u64, String, Option<String>)> {
    let mut map = BTreeMap::new();
    for reply in replies {
        if let Reply::JobDone {
            id,
            cycles,
            report,
            chaos,
        } = reply
        {
            map.insert(id.clone(), (*cycles, report.clone(), chaos.clone()));
        }
    }
    map
}

fn assert_no_panic(out: &Output) {
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("panicked"), "server panicked:\n{err}");
}

#[test]
fn fuzzed_frames_get_typed_errors_and_accepted_jobs_survive() {
    let dir = tmp_dir("fuzz");
    let good = [spec("HIP", (1, 2)), spec("GBC", (2, 1))];
    let mut rng = StdRng::seed_from_u64(0xF0221);

    // Interleave the two good submissions with seeded bursts of hostile
    // frames, tracking exactly what each burst must be answered with.
    let mut input = Vec::new();
    let mut want_frame_errors = 0u32;
    let mut want_rejected = 0u32;
    let mut want_accepted = 0u32;
    for s in &good {
        submit(&mut input, 0, s);
        want_accepted += 1;
        for _ in 0..4 {
            match rng.random_range(0..4u32) {
                0 => {
                    // Flip a payload or trailer byte: checksum mismatch,
                    // confined to the frame.
                    let mut frame = Vec::new();
                    write_message(&mut frame, &Request::Run).expect("encode");
                    let at = rng.random_range(4..frame.len());
                    frame[at] ^= 1 << rng.random_range(0..8u32);
                    input.extend_from_slice(&frame);
                    want_frame_errors += 1;
                }
                1 => {
                    // Well-framed garbage: decodes to no request (the
                    // first byte is never a valid tag), still confined.
                    let len = rng.random_range(1..24usize);
                    let mut garbage: Vec<u8> = (0..len)
                        .map(|_| rng.random_range(0..=255u32) as u8)
                        .collect();
                    garbage[0] = rng.random_range(3..=255u32) as u8;
                    write_frame(&mut input, &garbage).expect("encode");
                    want_frame_errors += 1;
                }
                2 => {
                    // A syntactically perfect frame carrying a hostile
                    // spec: typed rejection at admission, never queued.
                    let mut evil = spec("FS", (1, 1));
                    evil.cores = 9_999;
                    submit(&mut input, 0, &evil);
                    want_rejected += 1;
                }
                _ => {
                    // Resubmitting the job just accepted is idempotent.
                    submit(&mut input, 0, s);
                    want_accepted += 1;
                }
            }
        }
    }
    write_message(&mut input, &Request::Run).expect("encode run");

    let out = serve_stdio(&dir, &[], input, None);
    assert_no_panic(&out);
    assert!(
        out.status.success(),
        "fuzzed session exited nonzero: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let replies = replies(&out);
    let count = |f: fn(&Reply) -> bool| replies.iter().filter(|r| f(r)).count() as u32;
    assert_eq!(
        count(|r| matches!(r, Reply::FrameError { .. })),
        want_frame_errors
    );
    assert_eq!(
        count(|r| matches!(r, Reply::Rejected { .. })),
        want_rejected
    );
    assert_eq!(
        count(|r| matches!(r, Reply::Accepted { .. })),
        want_accepted
    );
    let done = done_map(&replies);
    let mut want_ids: Vec<String> = good.iter().map(|s| s.id()).collect();
    want_ids.sort();
    assert_eq!(
        done.keys().cloned().collect::<Vec<_>>(),
        want_ids,
        "accepted jobs must run despite the garbage around them"
    );
    assert!(
        replies.last()
            == Some(&Reply::SweepDone {
                ok: 2,
                failed: 0,
                shed: 0
            }),
        "bad barrier: {:?}",
        replies.last()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_and_oversized_tails_still_run_accepted_jobs() {
    // A stream that dies mid-frame (or declares an absurd length) ends
    // the read loop — but the job accepted before the damage still runs
    // to a durable result before the process exits.
    let job = spec("HIP", (1, 2));
    for (tag, tail) in [
        ("truncated", {
            let mut whole = Vec::new();
            write_message(&mut whole, &Request::Run).expect("encode");
            whole[..whole.len() / 2].to_vec()
        }),
        ("oversized", {
            let mut bad = u32::MAX.to_le_bytes().to_vec();
            bad.extend_from_slice(&[0u8; 16]);
            bad
        }),
    ] {
        let dir = tmp_dir(&format!("tail-{tag}"));
        let mut input = Vec::new();
        submit(&mut input, 0, &job);
        input.extend_from_slice(&tail);

        let out = serve_stdio(&dir, &[], input, None);
        assert_no_panic(&out);
        assert!(out.status.success(), "{tag}: session exited nonzero");
        let replies = replies(&out);
        assert!(
            replies
                .iter()
                .any(|r| matches!(r, Reply::FrameError { .. })),
            "{tag}: damage not reported"
        );
        assert!(
            done_map(&replies).contains_key(&job.id()),
            "{tag}: accepted job never ran: {replies:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn flood_past_capacity_sheds_by_priority_and_recovers() {
    let dir = tmp_dir("flood");
    let extra = ["--queue-cap", "2"];
    // Five low-priority jobs against a 2-slot queue, then one
    // high-priority job that must evict a low-priority occupant.
    let low: Vec<WireJobSpec> = [(1, 1), (1, 2), (2, 1), (2, 2), (1, 4)]
        .into_iter()
        .map(|shape| spec("FS", shape))
        .collect();
    let high = spec("HIP", (1, 2));

    let mut input = Vec::new();
    for s in &low {
        submit(&mut input, 1, s);
    }
    submit(&mut input, 9, &high);
    write_message(&mut input, &Request::Run).expect("encode run");

    let out = serve_stdio(&dir, &extra, input, None);
    assert_no_panic(&out);
    assert!(out.status.success());
    let first = replies(&out);
    let shed_ids: Vec<String> = first
        .iter()
        .filter_map(|r| match r {
            Reply::Shed { id, .. } => Some(id.clone()),
            _ => None,
        })
        .collect();
    // Three flood submissions bounced outright; the high-priority job
    // evicted the newest queued low-priority entry.
    assert_eq!(shed_ids.len(), 4, "sheds: {shed_ids:?}");
    assert!(
        shed_ids.contains(&low[1].id()),
        "the evicted victim must be named: {shed_ids:?}"
    );
    let done = done_map(&first);
    assert!(done.contains_key(&low[0].id()) && done.contains_key(&high.id()));
    assert_eq!(
        first.last(),
        Some(&Reply::SweepDone {
            ok: 2,
            failed: 0,
            shed: 4
        })
    );

    // Shedding is load shedding, not corruption: the shed jobs resubmit
    // cleanly on the next session — paced within capacity, one Run
    // barrier per batch — and the whole set completes.
    let mut input = Vec::new();
    for batch in low[1..].chunks(2) {
        for s in batch {
            submit(&mut input, 0, s);
        }
        write_message(&mut input, &Request::Run).expect("encode run");
    }
    let out = serve_stdio(&dir, &extra, input, None);
    assert_no_panic(&out);
    assert!(out.status.success());
    let second = replies(&out);
    assert!(
        !second.iter().any(|r| matches!(r, Reply::Shed { .. })),
        "paced resubmission must not shed: {second:?}"
    );
    assert_eq!(done_map(&second).len(), 4, "{second:?}");
    assert_eq!(
        second.last(),
        Some(&Reply::SweepDone {
            ok: 2,
            failed: 0,
            shed: 0
        })
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_client_mid_stream_keeps_results_durable_without_rerun() {
    let jobs = [spec("HIP", (1, 2)), spec("GBC", (2, 1))];

    // Solo baseline: one clean stdio session in a fresh state dir.
    let solo_dir = tmp_dir("drop-solo");
    let mut input = Vec::new();
    for s in &jobs {
        submit(&mut input, 0, s);
    }
    write_message(&mut input, &Request::Run).expect("encode run");
    let solo = serve_stdio(&solo_dir, &[], input, None);
    assert!(solo.status.success());
    let solo_done = done_map(&replies(&solo));
    assert_eq!(solo_done.len(), 2);

    // Socket server; the first client vanishes right after the run
    // barrier, before any result frame lands.
    let dir = tmp_dir("drop");
    let sock = std::env::temp_dir().join(format!("glsc-torture-drop-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let child = Command::new(bin())
        .arg("serve")
        .arg("--socket")
        .arg(&sock)
        .arg("--state-dir")
        .arg(&dir)
        .arg("--checkpoint-every")
        .arg("500")
        .stderr(Stdio::piped())
        .env_remove("GLSC_SERVE_KILL")
        .spawn()
        .expect("spawn socket server");
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(sock.exists(), "server never bound its socket");

    {
        let mut stream = UnixStream::connect(&sock).expect("connect");
        for s in &jobs {
            write_message(
                &mut stream,
                &Request::Submit {
                    priority: 0,
                    spec: s.clone(),
                },
            )
            .expect("submit");
        }
        write_message(&mut stream, &Request::Run).expect("run");
        // Read the two admissions, then hang up mid-stream.
        let mut accepted = 0;
        while accepted < 2 {
            match read_message::<Reply>(&mut stream).expect("reply") {
                Some(Reply::Accepted { .. }) => accepted += 1,
                Some(other) => panic!("expected admissions first, got {other:?}"),
                None => panic!("server closed early"),
            }
        }
    } // <- connection dropped here, results still streaming

    // The server must finish both jobs to durability anyway, then serve
    // the reconnecting client from the store without re-running.
    let mut second_done = BTreeMap::new();
    let mut reconnect_ok = false;
    for _ in 0..200 {
        std::thread::sleep(Duration::from_millis(25));
        let Ok(mut stream) = UnixStream::connect(&sock) else {
            continue;
        };
        for s in &jobs {
            write_message(
                &mut stream,
                &Request::Submit {
                    priority: 0,
                    spec: s.clone(),
                },
            )
            .expect("resubmit");
        }
        write_message(&mut stream, &Request::Run).expect("rerun");
        let mut collected = Vec::new();
        loop {
            match read_message::<Reply>(&mut stream).expect("reply") {
                Some(Reply::SweepDone { ok, failed, shed }) => {
                    assert_eq!((ok, failed, shed), (2, 0, 0));
                    break;
                }
                Some(other) => collected.push(other),
                None => panic!("server closed mid-sweep"),
            }
        }
        write_message(&mut stream, &Request::Shutdown).expect("shutdown");
        second_done = done_map(&collected);
        reconnect_ok = true;
        break;
    }
    assert!(reconnect_ok, "never reconnected to the server");
    assert_eq!(
        second_done, solo_done,
        "reconnect results differ from the uninterrupted solo run"
    );

    let out = child.wait_with_output().expect("server exit");
    assert_eq!(
        out.status.code(),
        Some(0),
        "server did not exit by Shutdown"
    );
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(!err.contains("panicked"), "server panicked:\n{err}");
    assert!(
        err.contains("[resume] cached:"),
        "reconnect re-ran finished jobs instead of serving the store:\n{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_file(&sock);
}

#[test]
fn kill_drill_over_the_protocol_path_matches_solo() {
    // The PR 7 recovery guarantee, rerun end-to-end through the framed
    // protocol and the fleet-routed engine: kill the server at hostile
    // points (torn journal append, torn checkpoint under the final
    // name, mid-run abort), restart, and the final results must be
    // byte-identical to an uninterrupted session — chaos counters
    // riding the checkpoints included.
    let mut chaotic = spec("GBC", (2, 2));
    chaotic.chaos = Some(24_333);
    let jobs = [spec("HIP", (4, 4)), chaotic];
    let mut input = Vec::new();
    for s in &jobs {
        submit(&mut input, 0, s);
    }
    write_message(&mut input, &Request::Run).expect("encode run");

    let solo_dir = tmp_dir("kill-solo");
    let solo = serve_stdio(&solo_dir, &[], input.clone(), None);
    assert!(solo.status.success());
    let solo_done = done_map(&replies(&solo));
    assert_eq!(solo_done.len(), 2);
    assert!(
        solo_done[&jobs[1].id()].2.is_some(),
        "chaos job carries no chaos stats"
    );

    let drill_dir = tmp_dir("kill-drill");
    for kill in ["journal:1", "checkpoint:2", "cycles:1500", "cycles:5000"] {
        let out = serve_stdio(&drill_dir, &[], input.clone(), Some(kill));
        if out.status.success() {
            // Finished before the kill point fired — the recovery
            // property must already hold.
            assert_eq!(done_map(&replies(&out)), solo_done, "kill {kill}");
            let _ = std::fs::remove_dir_all(&solo_dir);
            let _ = std::fs::remove_dir_all(&drill_dir);
            return;
        }
    }
    let recovered = serve_stdio(&drill_dir, &[], input, None);
    assert_no_panic(&recovered);
    assert!(
        recovered.status.success(),
        "recovery session failed: {}",
        String::from_utf8_lossy(&recovered.stderr)
    );
    assert_eq!(
        done_map(&replies(&recovered)),
        solo_done,
        "post-crash results differ from the uninterrupted session"
    );
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&drill_dir);
}

#[test]
fn sigterm_with_queued_jobs_drains_pending_and_replays() {
    // Drain under load: SIGTERM while the queue still holds unstarted
    // jobs must checkpoint the in-flight fleet slots, journal the rest
    // as pending (never quarantined), exit 0, and a restart must finish
    // the sweep byte-identically to an undisturbed run.
    let jobs: Vec<WireJobSpec> = KERNEL_NAMES.iter().map(|k| spec(k, (4, 4))).collect();
    let extra = ["--fleet-width", "2"];
    let mut input = Vec::new();
    for s in &jobs {
        submit(&mut input, 0, s);
    }
    write_message(&mut input, &Request::Run).expect("encode run");

    let solo_dir = tmp_dir("term-solo");
    let solo = serve_stdio(&solo_dir, &extra, input.clone(), None);
    assert!(solo.status.success());
    let solo_done = done_map(&replies(&solo));
    assert_eq!(solo_done.len(), jobs.len());

    let drill_dir = tmp_dir("term-drill");
    let mut caught_mid_run = false;
    // The kill window races process startup and job runtimes; widen it
    // until the TERM lands while queued jobs are still unstarted.
    for wait_ms in [5u64, 10, 20, 40, 80, 160, 320, 640] {
        let _ = std::fs::remove_dir_all(&drill_dir);
        let mut cmd = Command::new(bin());
        cmd.arg("serve")
            .arg("--stdio")
            .arg("--state-dir")
            .arg(&drill_dir)
            .arg("--checkpoint-every")
            .arg("500")
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .env_remove("GLSC_SERVE_KILL");
        let mut child = cmd.spawn().expect("spawn serve");
        let mut stdin = child.stdin.take().expect("stdin piped");
        let body = input.clone();
        let writer = std::thread::spawn(move || {
            let _ = stdin.write_all(&body);
            // Keep the pipe open: EOF must not end the session before
            // the signal arrives.
            std::thread::sleep(Duration::from_millis(2_000));
        });
        std::thread::sleep(Duration::from_millis(wait_ms));
        let _ = Command::new("kill")
            .arg("-TERM")
            .arg(child.id().to_string())
            .status();
        let out = child.wait_with_output().expect("wait serve");
        let _ = writer.join();
        let err = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(
            out.status.success(),
            "TERM run exited nonzero (wait {wait_ms}ms): {err}"
        );
        assert!(!err.contains("panicked"), "drain panicked:\n{err}");
        if err.contains("left pending in the journal") {
            caught_mid_run = true;
            // The journal must say so: nothing quarantined, and at
            // least one job still waiting as a pending submission.
            let (_, records) = Journal::open(&drill_dir.join("journal.log")).expect("journal");
            let ledgers = replay(&records);
            assert!(
                ledgers.values().all(|l| !l.quarantined),
                "drain quarantined a queued job"
            );
            assert!(
                ledgers.values().any(|l| l.pending.is_some()),
                "no pending submissions survived the drain"
            );
            break;
        }
        // Sweep finished before the signal: widen the window and retry.
    }
    assert!(
        caught_mid_run,
        "never caught the service with queued jobs; widen the windows"
    );

    let resumed = serve_stdio(&drill_dir, &extra, input, None);
    assert_no_panic(&resumed);
    assert!(resumed.status.success());
    let resumed_replies = replies(&resumed);
    assert_eq!(
        done_map(&resumed_replies),
        solo_done,
        "post-drain results differ from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&drill_dir);
}

#[test]
fn resubmitted_done_jobs_do_not_pollute_the_admission_queue() {
    // Regression: a resubmission of an already-finished job journals a
    // fresh `Submitted`. If serving it from the cache does not close
    // that record out, the job replays as pending at every boot and its
    // stale queue slot sheds new work forever. With --queue-cap 2, two
    // polluting entries would shed *everything* a later session submits.
    let dir = tmp_dir("repollute");
    let extra = ["--queue-cap", "2"];
    let first = [spec("HIP", (1, 2)), spec("GBC", (2, 1))];

    // Session 1: run both jobs fresh.
    let mut input = Vec::new();
    for s in &first {
        submit(&mut input, 0, s);
    }
    write_message(&mut input, &Request::Run).expect("encode run");
    let out = serve_stdio(&dir, &extra, input, None);
    assert_no_panic(&out);
    assert_eq!(done_map(&replies(&out)).len(), 2);

    // Session 2: resubmit the same two (idempotent cache hits).
    let mut input = Vec::new();
    for s in &first {
        submit(&mut input, 0, s);
    }
    write_message(&mut input, &Request::Run).expect("encode run");
    let out = serve_stdio(&dir, &extra, input, None);
    assert_no_panic(&out);
    let second = replies(&out);
    assert_eq!(done_map(&second).len(), 2, "cached resubmission must serve");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("[resume] cached:"),
        "resubmission re-ran instead of serving the store"
    );

    // The journal must show nothing pending: the cached serves closed
    // out the resubmissions' `Submitted` records.
    let (_, records) = Journal::open(&dir.join("journal.log")).expect("journal opens");
    let ledgers = replay(&records);
    assert!(
        ledgers.values().all(|l| l.pending.is_none()),
        "cache-served resubmission left a pending journal entry"
    );

    // Session 3: two *new* jobs must get both queue slots — a polluted
    // queue would shed them.
    let mut input = Vec::new();
    for s in [spec("FS", (1, 2)), spec("GPS", (1, 2))] {
        submit(&mut input, 0, &s);
    }
    write_message(&mut input, &Request::Run).expect("encode run");
    let out = serve_stdio(&dir, &extra, input, None);
    assert_no_panic(&out);
    let third = replies(&out);
    assert!(
        !third.iter().any(|r| matches!(r, Reply::Shed { .. })),
        "stale pending entries shed fresh work: {third:?}"
    );
    let done = done_map(&third);
    assert!(
        done.contains_key("FS-T-GLSC-1x2-w4") && done.contains_key("GPS-T-GLSC-1x2-w4"),
        "new jobs missing from the third session: {done:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
