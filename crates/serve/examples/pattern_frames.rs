//! Frame shim for driving `glsc-serve serve --stdio` from a shell: the
//! CI pattern drill pipes `encode`'s frames into the server and the
//! server's reply frames into `decode`, which renders one greppable
//! text line per reply.
//!
//! ```text
//! pattern_frames encode [SPEC..] | glsc-serve serve --stdio --state-dir D \
//!     | pattern_frames decode
//! ```
//!
//! `encode` submits each SPEC (default: one `conflict:p=0.25x64*8`) as
//! a Tiny/GLSC pattern job on a 1x2 w4 machine, then the `Run` barrier.
//! `decode` prints lines like `JobDone pat-conflict-...-T-GLSC-1x2-w4
//! 48819` until the stream closes.

use glsc_bench::jobspec::WireJobSpec;
use glsc_kernels::{Dataset, Variant};
use glsc_serve::proto::{read_message, write_message, Reply, Request};

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("encode") => {
            let specs: Vec<String> = args.collect();
            let specs = if specs.is_empty() {
                vec!["conflict:p=0.25x64*8".to_string()]
            } else {
                specs
            };
            let mut out = std::io::stdout().lock();
            for spec in &specs {
                let spec = WireJobSpec::pattern(spec, Dataset::Tiny, Variant::Glsc, (1, 2), 4);
                write_message(&mut out, &Request::Submit { priority: 0, spec })
                    .expect("stdout frame");
            }
            write_message(&mut out, &Request::Run).expect("stdout frame");
        }
        Some("decode") => {
            let mut input = std::io::stdin().lock();
            loop {
                match read_message::<Reply>(&mut input) {
                    Ok(Some(reply)) => match reply {
                        Reply::Accepted { id } => println!("Accepted {id}"),
                        Reply::Shed { id, .. } => println!("Shed {id}"),
                        Reply::Rejected { id, reason } => println!("Rejected {id}: {reason}"),
                        Reply::FrameError { detail } => println!("FrameError {detail}"),
                        Reply::JobDone { id, cycles, .. } => println!("JobDone {id} {cycles}"),
                        Reply::JobFailed { id, label, .. } => println!("JobFailed {id} {label}"),
                        Reply::SweepDone { ok, failed, shed } => {
                            println!("SweepDone ok={ok} failed={failed} shed={shed}")
                        }
                    },
                    Ok(None) => break,
                    Err(e) => {
                        eprintln!("bad reply frame: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        other => {
            eprintln!("usage: pattern_frames encode [SPEC..] | decode (got {other:?})");
            std::process::exit(2);
        }
    }
}
