//! SIGTERM handling for clean shutdown.
//!
//! The handler only sets an atomic flag; the supervisor polls it at
//! every pause (checkpoint boundary), drains — checkpoints the live
//! machine, journals the state — and exits 0. No allocation, locking,
//! or IO happens in signal context.
//!
//! Raw `signal(2)` FFI keeps the crate dependency-free: the function is
//! in the C library every Rust binary on this platform already links.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);

const SIGTERM: i32 = 15;

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs the SIGTERM handler. Call once, early in `main`.
pub fn install_term_handler() {
    #[cfg(unix)]
    #[allow(unsafe_code)]
    unsafe {
        signal(SIGTERM, on_term);
    }
}

/// Whether a SIGTERM has arrived (drain requested).
pub fn term_requested() -> bool {
    TERM.load(Ordering::SeqCst)
}

/// Requests a drain from inside the process — used by tests to exercise
/// the drain path without delivering a real signal.
pub fn request_term() {
    TERM.store(true, Ordering::SeqCst);
}

/// Clears the drain flag (test-only: the flag is process-global and
/// tests run many sweeps in one process).
pub fn clear_term_for_tests() {
    TERM.store(false, Ordering::SeqCst);
}
