//! # glsc-serve — crash-durable simulation service
//!
//! A supervised job daemon over the simulator: long sweeps checkpoint
//! every N cycles into versioned, checksummed snapshot files, every job
//! state transition is write-ahead journaled, and a `kill -9` at *any*
//! point — mid-checkpoint, mid-journal-append, mid-run — costs at most
//! the work since the last checkpoint. Restarting the service resumes
//! where the journal says things stood and produces output
//! byte-identical to a run that was never interrupted; the kill-drill
//! oracle in `tests/` proves this for every kernel × Fig. 6 shape,
//! chaos counters included.
//!
//! Layers (DESIGN.md §14):
//!
//! * [`journal`] — append-only WAL with per-record checksums; a torn
//!   tail decodes as "the append never happened".
//! * [`service`] — the supervisor: fleet-routed sliced execution
//!   (config-affine slots), checkpoint cadence, wall/cycle deadlines
//!   ([`glsc_bench::JobError::Deadline`]), seeded backoff retries,
//!   poison-job quarantine, SIGTERM drain.
//! * [`queue`] — bounded, priority-aware admission in front of the
//!   fleet; overload becomes typed `SHED` decisions, not memory growth.
//! * [`proto`] — the framed request/reply protocol `serve` speaks over
//!   stdin or a Unix socket; hostile frames map to typed errors.
//! * `kill` — deterministic crash injection (`GLSC_SERVE_KILL`) for the
//!   drill harness.
//! * [`signal`] — the SIGTERM flag the drain path polls.

#![warn(missing_docs)]

pub mod journal;
mod kill;
pub mod proto;
pub mod queue;
pub mod service;
pub mod session;
pub mod signal;

pub use service::{print_sweep, run_sweep, JobResult, JobSpec, ServiceConfig, SweepReport};
