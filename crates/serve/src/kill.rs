//! Deterministic crash injection for the kill-drill oracle.
//!
//! `GLSC_SERVE_KILL=<point>:<n>` makes the service die — via
//! `std::process::abort`, which like `kill -9` runs no destructors and
//! flushes nothing — at a precisely chosen durability boundary:
//!
//! * `checkpoint:<n>` — the `n`-th checkpoint write is **torn**: half the
//!   encoded snapshot lands under the final name (simulating a
//!   non-atomic filesystem losing the rename guarantee), then the
//!   process aborts. Recovery must detect the damage via the snapshot
//!   envelope and fall back to the previous good state.
//! * `journal:<n>` — the `n`-th journal append is cut mid-frame: half
//!   the frame is written and fsync'd, then the process aborts. Recovery
//!   must treat the torn record as if the append never happened.
//! * `cycles:<c>` — the process aborts at the first supervision pause at
//!   or after `c` total simulated cycles — a plain mid-run kill that
//!   loses the work since the last checkpoint.
//!
//! All counters are process-global; each service invocation is one
//! worker process, so `<n>` counts events within a single life.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum KillSpec {
    Checkpoint(u64),
    Journal(u64),
    Cycles(u64),
}

fn spec() -> Option<KillSpec> {
    static SPEC: OnceLock<Option<KillSpec>> = OnceLock::new();
    *SPEC.get_or_init(|| {
        let raw = std::env::var("GLSC_SERVE_KILL").ok()?;
        let (point, n) = raw.split_once(':')?;
        let n: u64 = n.parse().ok()?;
        match point {
            "checkpoint" => Some(KillSpec::Checkpoint(n)),
            "journal" => Some(KillSpec::Journal(n)),
            "cycles" => Some(KillSpec::Cycles(n)),
            _ => {
                eprintln!("[kill] ignoring unknown GLSC_SERVE_KILL point {point:?}");
                None
            }
        }
    })
}

static CHECKPOINTS: AtomicU64 = AtomicU64::new(0);
static JOURNAL_APPENDS: AtomicU64 = AtomicU64::new(0);
static ABORT_AFTER_APPEND: AtomicU64 = AtomicU64::new(0);

fn die(what: &str) -> ! {
    eprintln!("[kill] injected crash: {what}");
    std::process::abort();
}

/// Called once per checkpoint write. Returns `true` when this write must
/// be torn (the caller writes half the bytes to the final name, syncs,
/// and then calls [`abort_now`]).
pub(crate) fn tear_this_checkpoint() -> bool {
    let n = CHECKPOINTS.fetch_add(1, Ordering::SeqCst) + 1;
    matches!(spec(), Some(KillSpec::Checkpoint(target)) if n == target)
}

/// Aborts the process after a torn checkpoint write has been made
/// durable.
pub(crate) fn abort_now(what: &str) -> ! {
    die(what)
}

/// Journal-append hook: passes the frame through untouched normally; on
/// the targeted append, truncates it to half so the fsync'd file ends in
/// a torn record, and arms [`after_journal_append`].
pub(crate) fn mangle_journal_frame(frame: Vec<u8>) -> Vec<u8> {
    let n = JOURNAL_APPENDS.fetch_add(1, Ordering::SeqCst) + 1;
    if matches!(spec(), Some(KillSpec::Journal(target)) if n == target) {
        ABORT_AFTER_APPEND.store(1, Ordering::SeqCst);
        let half = frame.len() / 2;
        return frame[..half].to_vec();
    }
    frame
}

/// Fires the abort armed by [`mangle_journal_frame`] once the torn frame
/// is durable on disk.
pub(crate) fn after_journal_append() {
    if ABORT_AFTER_APPEND.load(Ordering::SeqCst) == 1 {
        die("mid-journal-append");
    }
}

/// Supervision-pause hook: aborts once the machine's simulated cycle
/// count reaches the `cycles:<c>` target.
pub(crate) fn check_cycles(cycle: u64) {
    if matches!(spec(), Some(KillSpec::Cycles(target)) if cycle >= target) {
        die("mid-run");
    }
}
