//! The framed job protocol `glsc-serve serve` speaks over stdin or a
//! Unix socket.
//!
//! Every message — request or reply — travels in the same frame the
//! journal and snapshot envelope already use:
//!
//! ```text
//! +--------------+------------------+---------------------------+
//! | len (u32 LE) | payload (len)    | fnv64(payload) (u64 LE)   |
//! +--------------+------------------+---------------------------+
//! ```
//!
//! with payloads encoded by `glsc-wire`. The reader is the hostile
//! boundary, and every way a frame can be bad maps to a typed
//! [`FrameError`] with an explicit resynchronization rule:
//!
//! * a length prefix over [`MAX_FRAME`] ([`FrameError::Oversized`]) or a
//!   stream that ends mid-frame ([`FrameError::Truncated`]) means frame
//!   boundaries can no longer be trusted — the session stops *reading*,
//!   but every job already accepted still runs and streams durably;
//! * a checksum mismatch ([`FrameError::BadChecksum`]) or an undecodable
//!   payload ([`FrameError::Malformed`]) is confined to one frame — the
//!   declared length still delimited it, so the session replies with a
//!   typed error frame and keeps reading.
//!
//! Nothing in this module allocates from an unvalidated length: reads
//! are capped at [`MAX_FRAME`] before any buffer is sized.

use glsc_bench::jobspec::WireJobSpec;
use glsc_wire::{fnv64, Wire, WireError};
use std::io::{self, Read, Write};

/// Hard ceiling on a frame's declared payload length (1 MiB). A job
/// spec is tens of bytes and a result frame a few KiB; anything close
/// to this is hostile or garbage.
pub const MAX_FRAME: u32 = 1 << 20;

/// What a client asks of the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit one job for admission.
    Submit {
        /// Admission priority (higher wins under overload).
        priority: u8,
        /// The job, unvalidated until admission.
        spec: WireJobSpec,
    },
    /// Run everything admitted so far, streaming a result frame per job
    /// and a [`Reply::SweepDone`] summary. Further submissions may
    /// follow on the same session.
    Run,
    /// Close the service cleanly (socket mode: stop accepting clients).
    Shutdown,
}

impl Wire for Request {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        match self {
            Request::Submit { priority, spec } => {
                0u8.encode(w);
                priority.encode(w);
                spec.encode(w);
            }
            Request::Run => 1u8.encode(w),
            Request::Shutdown => 2u8.encode(w),
        }
    }

    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        Ok(match u8::decode(r)? {
            0 => Request::Submit {
                priority: u8::decode(r)?,
                spec: WireJobSpec::decode(r)?,
            },
            1 => Request::Run,
            2 => Request::Shutdown,
            _ => {
                return Err(WireError::Invalid {
                    at,
                    what: "request tag",
                })
            }
        })
    }
}

/// What the service sends back. Result frames stream as jobs complete;
/// everything else is a direct response to one request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// The job holds a queue slot (or already did — resubmission is
    /// idempotent, including of an already-finished job, which will be
    /// answered from the result store without re-running).
    Accepted {
        /// The job's stable id.
        id: String,
    },
    /// Admission control dropped the job. `id` may name the submission
    /// itself or a lower-priority entry evicted in its favor.
    Shed {
        /// The dropped job's id.
        id: String,
        /// Jobs queued at decision time.
        queued: u32,
        /// Queue capacity.
        capacity: u32,
    },
    /// The spec failed validation and was never queued.
    Rejected {
        /// The doomed submission's id (best-effort rendering).
        id: String,
        /// The typed validation failure, rendered.
        reason: String,
    },
    /// A frame could not be read; `detail` names the [`FrameError`].
    FrameError {
        /// What was wrong with the frame.
        detail: String,
    },
    /// A job finished; its result is durable.
    JobDone {
        /// The job's id.
        id: String,
        /// Simulated cycles (the headline number).
        cycles: u64,
        /// The full report in the bench text codec
        /// (`glsc_bench::codec::decode_report` reverses it).
        report: String,
        /// Rendered chaos counters when the job ran under a fault plan.
        chaos: Option<String>,
    },
    /// A job ended without a result.
    JobFailed {
        /// The job's id.
        id: String,
        /// Degradation-mode cell: `PANIC`, `DEAD`, `QUAR`, or `SHED`.
        label: String,
        /// Human-readable cause.
        detail: String,
    },
    /// A `Run` barrier finished: every admitted job has streamed either
    /// a [`Reply::JobDone`] or a [`Reply::JobFailed`].
    SweepDone {
        /// Jobs that finished with a result.
        ok: u32,
        /// Jobs that failed (panic/deadline/quarantine).
        failed: u32,
        /// Jobs shed by admission control this session.
        shed: u32,
    },
}

impl Wire for Reply {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        match self {
            Reply::Accepted { id } => {
                0u8.encode(w);
                id.encode(w);
            }
            Reply::Shed {
                id,
                queued,
                capacity,
            } => {
                1u8.encode(w);
                id.encode(w);
                queued.encode(w);
                capacity.encode(w);
            }
            Reply::Rejected { id, reason } => {
                2u8.encode(w);
                id.encode(w);
                reason.encode(w);
            }
            Reply::FrameError { detail } => {
                3u8.encode(w);
                detail.encode(w);
            }
            Reply::JobDone {
                id,
                cycles,
                report,
                chaos,
            } => {
                4u8.encode(w);
                id.encode(w);
                cycles.encode(w);
                report.encode(w);
                chaos.encode(w);
            }
            Reply::JobFailed { id, label, detail } => {
                5u8.encode(w);
                id.encode(w);
                label.encode(w);
                detail.encode(w);
            }
            Reply::SweepDone { ok, failed, shed } => {
                6u8.encode(w);
                ok.encode(w);
                failed.encode(w);
                shed.encode(w);
            }
        }
    }

    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        Ok(match u8::decode(r)? {
            0 => Reply::Accepted {
                id: String::decode(r)?,
            },
            1 => Reply::Shed {
                id: String::decode(r)?,
                queued: u32::decode(r)?,
                capacity: u32::decode(r)?,
            },
            2 => Reply::Rejected {
                id: String::decode(r)?,
                reason: String::decode(r)?,
            },
            3 => Reply::FrameError {
                detail: String::decode(r)?,
            },
            4 => Reply::JobDone {
                id: String::decode(r)?,
                cycles: u64::decode(r)?,
                report: String::decode(r)?,
                chaos: Option::<String>::decode(r)?,
            },
            5 => Reply::JobFailed {
                id: String::decode(r)?,
                label: String::decode(r)?,
                detail: String::decode(r)?,
            },
            6 => Reply::SweepDone {
                ok: u32::decode(r)?,
                failed: u32::decode(r)?,
                shed: u32::decode(r)?,
            },
            _ => {
                return Err(WireError::Invalid {
                    at,
                    what: "reply tag",
                })
            }
        })
    }
}

/// Why a frame could not be read. See the [module docs](self) for which
/// variants end the session's read loop and which are confined to one
/// frame.
#[derive(Debug)]
pub enum FrameError {
    /// Declared payload length exceeds [`MAX_FRAME`]. Fatal to the read
    /// loop: skipping the declared span would mean trusting the hostile
    /// length.
    Oversized {
        /// The declared length.
        declared: u32,
    },
    /// The stream ended inside a frame. Fatal to the read loop.
    Truncated,
    /// The payload's FNV-64 digest does not match the trailer. Confined
    /// to this frame.
    BadChecksum,
    /// The payload decoded to garbage. Confined to this frame.
    Malformed(WireError),
    /// The transport itself failed (client gone, pipe closed).
    Io(io::Error),
}

impl FrameError {
    /// True when the read loop can keep going after this error (frame
    /// boundaries are still trustworthy).
    pub fn is_resyncable(&self) -> bool {
        matches!(self, FrameError::BadChecksum | FrameError::Malformed(_))
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { declared } => {
                write!(f, "frame length {declared} exceeds the {MAX_FRAME} cap")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::Malformed(e) => write!(f, "malformed payload: {e}"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

/// Writes `payload` as one frame.
pub fn write_frame(w: &mut (impl Write + ?Sized), payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&fnv64(payload).to_le_bytes())?;
    w.flush()
}

/// Writes one wire-encodable message as a frame.
pub fn write_message<T: Wire>(w: &mut (impl Write + ?Sized), msg: &T) -> io::Result<()> {
    write_frame(w, &glsc_wire::to_bytes(msg))
}

/// Reads one frame's payload. `Ok(None)` is a clean end of stream (EOF
/// exactly on a frame boundary); anything else that isn't a whole,
/// checksummed frame is a typed [`FrameError`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header) {
        Ok(Filled::Eof) => return Ok(None),
        Ok(Filled::Partial) => return Err(FrameError::Truncated),
        Ok(Filled::Full) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    let declared = u32::from_le_bytes(header);
    if declared > MAX_FRAME {
        return Err(FrameError::Oversized { declared });
    }
    // The allocation is bounded by MAX_FRAME, checked above — a hostile
    // length prefix cannot size this buffer.
    let mut payload = vec![0u8; declared as usize];
    match read_exact_or_eof(r, &mut payload) {
        Ok(Filled::Full) => {}
        Ok(_) => return Err(FrameError::Truncated),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let mut trailer = [0u8; 8];
    match read_exact_or_eof(r, &mut trailer) {
        Ok(Filled::Full) => {}
        Ok(_) => return Err(FrameError::Truncated),
        Err(e) => return Err(FrameError::Io(e)),
    }
    if fnv64(&payload) != u64::from_le_bytes(trailer) {
        return Err(FrameError::BadChecksum);
    }
    Ok(Some(payload))
}

/// Reads one message, decoding the frame payload as `T`.
pub fn read_message<T: Wire>(r: &mut impl Read) -> Result<Option<T>, FrameError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    match glsc_wire::from_bytes::<T>(&payload) {
        Ok(msg) => Ok(Some(msg)),
        Err(e) => Err(FrameError::Malformed(e)),
    }
}

enum Filled {
    Full,
    Partial,
    Eof,
}

/// `read_exact`, but distinguishing "EOF before any byte" from "EOF
/// mid-buffer" — the former is a clean end of stream at a frame
/// boundary, the latter a truncated frame.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<Filled> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Filled::Eof
                } else {
                    Filled::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Filled::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsc_kernels::{Dataset, Variant};

    fn sample_request() -> Request {
        Request::Submit {
            priority: 3,
            spec: WireJobSpec::kernel("GBC", Dataset::Tiny, Variant::Base, (2, 2), 4),
        }
    }

    #[test]
    fn request_and_reply_roundtrip_through_frames() {
        let mut buf = Vec::new();
        write_message(&mut buf, &sample_request()).unwrap();
        write_message(&mut buf, &Request::Run).unwrap();
        let reply = Reply::JobDone {
            id: "GBC-T-base-2x2-w4".into(),
            cycles: 12_345,
            report: "report-body".into(),
            chaos: Some("injection_points: 3".into()),
        };
        write_message(&mut buf, &reply).unwrap();

        let mut r = &buf[..];
        assert_eq!(
            read_message::<Request>(&mut r).unwrap(),
            Some(sample_request())
        );
        assert_eq!(read_message::<Request>(&mut r).unwrap(), Some(Request::Run));
        assert_eq!(read_message::<Reply>(&mut r).unwrap(), Some(reply));
        assert!(read_message::<Request>(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_truncated_and_corrupt_frames_are_typed() {
        // Oversized declared length: no allocation, typed error.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(FrameError::Oversized { declared: u32::MAX })
        ));

        // EOF mid-header, mid-payload, mid-trailer: all Truncated.
        let mut whole = Vec::new();
        write_message(&mut whole, &Request::Run).unwrap();
        for cut in 1..whole.len() {
            let e = read_frame(&mut &whole[..cut]).unwrap_err();
            assert!(matches!(e, FrameError::Truncated), "cut {cut}: {e}");
            assert!(!e.is_resyncable());
        }

        // A flipped payload byte is a checksum error, and resyncable.
        let mut corrupt = whole.clone();
        corrupt[4] ^= 0xFF;
        let e = read_frame(&mut &corrupt[..]).unwrap_err();
        assert!(matches!(e, FrameError::BadChecksum));
        assert!(e.is_resyncable());

        // A well-framed but undecodable payload is Malformed, resyncable.
        let mut bad = Vec::new();
        write_frame(&mut bad, &[0xEE, 0xEE, 0xEE]).unwrap();
        let e = read_message::<Request>(&mut &bad[..]).unwrap_err();
        assert!(matches!(e, FrameError::Malformed(_)));
        assert!(e.is_resyncable());
    }

    #[test]
    fn resync_after_bad_checksum_reads_the_next_frame() {
        let mut buf = Vec::new();
        write_message(&mut buf, &sample_request()).unwrap();
        let first_len = buf.len();
        write_message(&mut buf, &Request::Shutdown).unwrap();
        buf[5] ^= 0x40; // corrupt the first frame's payload
        let mut r = &buf[..];
        assert!(matches!(
            read_message::<Request>(&mut r),
            Err(FrameError::BadChecksum)
        ));
        // The declared length still delimited the bad frame: the next
        // read lands exactly on the second frame.
        assert_eq!(buf.len() - r.len(), first_len);
        assert_eq!(
            read_message::<Request>(&mut r).unwrap(),
            Some(Request::Shutdown)
        );
    }
}
