//! The supervised, crash-durable sweep runner.
//!
//! One [`JobSpec`] per simulation; the supervisor routes every round of
//! attempts through the fleet engine ([`glsc_sim::Fleet`]) — jobs are
//! grouped into config-affine slots and advance in batched quanta of
//! `checkpoint_every` cycles, so a sweep amortizes machine construction
//! and dataset mounting exactly as the bench harness does. At every
//! quantum boundary the supervisor writes a durable checkpoint
//! (tmp+rename of the versioned, checksummed snapshot envelope) and
//! journals every state transition (`accepted → running{checkpoint} →
//! done | quarantined`). A restart — crash or drain — replays the
//! journal, resumes every live job from its last intact checkpoint
//! ([`FleetJob::with_snapshot`]), reprints finished jobs from the result
//! store, and produces output byte-identical to an uninterrupted run
//! (the kill-drill oracle in `tests/` pins this for every kernel ×
//! Fig. 6 shape).
//!
//! Failure policy: a panicking, sim-erroring, or deadline-tripping
//! attempt appends a `Failed` record and retries next round after the
//! seeded jittered backoff; a panic is contained to its fleet member
//! (machine discarded, batch keeps stepping). A job whose failure count
//! (across restarts — the journal remembers) reaches `max_failures` is
//! quarantined and reported as a `QUAR` row while the rest of the sweep
//! completes, with a nonzero exit.

use crate::journal::{replay, JobLedger, Journal, JournalRecord};
use crate::{kill, signal};
use glsc_bench::store::{cfg_fingerprint, job_key};
use glsc_bench::{backoff_jittered_ms, JobError, JobStore};
use glsc_kernels::{build_named, Dataset, Variant, Workload};
use glsc_sim::{
    BackingBase, ChaosConfig, FaultPlan, Fleet, FleetFailure, FleetJob, Machine, MachineConfig,
    MachineSnapshot, PauseCtl, RunReport,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Service-wide knobs.
#[derive(Debug)]
pub struct ServiceConfig {
    /// Root of all durable state: `journal.log`, `checkpoints/`, `cache/`.
    pub state_dir: PathBuf,
    /// Checkpoint cadence in simulated cycles — also the fleet stepping
    /// quantum. Smaller = less lost work on a crash, more encode/write
    /// overhead (measured by the `simperf` bench's recovery part).
    pub checkpoint_every: u64,
    /// Per-attempt wall-clock budget; `None` = unlimited.
    pub deadline_wall_ms: Option<u64>,
    /// Absolute simulated-cycle budget per job; `None` = unlimited. A
    /// wedged job trips this on every attempt (resuming past the limit
    /// re-trips immediately), burns its failure budget, and quarantines.
    pub deadline_cycles: Option<u64>,
    /// Failures (across restarts) before a job is quarantined.
    pub max_failures: u32,
    /// Seed for the deterministic retry-backoff jitter.
    pub seed: u64,
    /// Fleet batch width: how many machines are live at once.
    pub fleet_width: usize,
    /// Admission-queue capacity for the protocol front-end; submissions
    /// past this bound are shed (see [`crate::queue`]).
    pub queue_capacity: usize,
}

impl ServiceConfig {
    /// Defaults: checkpoint every 20k cycles, no deadlines, quarantine
    /// after 3 failures, seed 0, fleet width 4, queue capacity 64.
    pub fn new(state_dir: PathBuf) -> Self {
        Self {
            state_dir,
            checkpoint_every: 20_000,
            deadline_wall_ms: None,
            deadline_cycles: None,
            max_failures: 3,
            seed: 0,
            fleet_width: 4,
            queue_capacity: 64,
        }
    }
}

/// One supervised simulation.
pub struct JobSpec {
    /// Stable, filesystem-safe id; names the job in the journal, the
    /// checkpoint file, the result cache, and the sweep table.
    pub id: String,
    /// What to simulate and how to validate it.
    pub workload: Workload,
    /// Machine to run it on.
    pub cfg: MachineConfig,
    /// Fault-plan seed: `Some` runs the job under seeded chaos and
    /// reports the injection counters alongside the result.
    pub chaos: Option<u64>,
    /// Per-job cycle deadline, overriding the service-wide one. The
    /// wedged drill job carries its own so it quarantines without
    /// imposing a budget on healthy jobs in the same sweep.
    pub deadline_cycles: Option<u64>,
    /// Per-job wall-clock deadline, overriding the service-wide one.
    pub deadline_wall_ms: Option<u64>,
}

impl JobSpec {
    /// Builds the spec for a named kernel on a Fig. 6 shape, keyed the
    /// same way the bench harness keys it (so ids read like
    /// `HIP-T-glsc-4x4-w4`). Chaos jobs get a `-chaos<seed>` suffix —
    /// the fault plan changes timing, so it must change identity.
    ///
    /// Kernel names (including `pattern:<spec>` strings) come from
    /// protocol clients, so an unbuildable name is a typed error the
    /// admission path can turn into a `Rejected` reply.
    pub fn kernel(
        kernel: &str,
        ds: Dataset,
        variant: Variant,
        (cores, tpc): (usize, usize),
        width: usize,
        chaos: Option<u64>,
    ) -> Result<Self, glsc_kernels::KernelError> {
        let mut cfg = MachineConfig::paper(cores, tpc, width);
        if chaos.is_some() {
            // Same guard rails as the bench chaos path: the plan slows
            // runs down, so give headroom and keep the watchdog armed.
            cfg = cfg
                .with_max_cycles(2_000_000_000)
                .with_watchdog_window(Some(5_000_000));
        }
        let workload = build_named(kernel, ds, variant, &cfg)?;
        let mut id = format!(
            "{kernel}-{}-{}-{cores}x{tpc}-w{width}",
            glsc_bench::ds_label(ds),
            variant.label()
        );
        if let Some(seed) = chaos {
            id.push_str(&format!("-chaos{seed}"));
        }
        Ok(Self {
            id,
            workload,
            cfg,
            chaos,
            deadline_cycles: None,
            deadline_wall_ms: None,
        })
    }

    /// A job that never halts: a one-instruction jump loop. The fault
    /// drill for the deadline + quarantine path (`--inject-wedged`).
    pub fn wedged() -> Self {
        let mut b = glsc_isa::ProgramBuilder::new();
        let top = b.label();
        b.bind(top).expect("fresh label");
        b.li(glsc_isa::Reg::new(1), 1);
        b.jmp(top);
        b.halt();
        Self {
            id: "WEDGE".to_string(),
            workload: Workload {
                name: "WEDGE".to_string(),
                program: b.build().expect("wedge program assembles"),
                image: glsc_kernels::MemImage::new(),
                validate: Box::new(|_| Ok(())),
            },
            cfg: MachineConfig::paper(1, 1, 4).with_max_cycles(u64::MAX / 2),
            chaos: None,
            // Self-contained drill: the wedge budgets itself, so healthy
            // jobs sharing the sweep keep running without a deadline.
            deadline_cycles: Some(50_000),
            deadline_wall_ms: None,
        }
    }

    fn cache_key(&self) -> String {
        job_key(
            &[&self.id],
            self.workload.fingerprint() ^ self.chaos.map_or(0, |s| s.wrapping_mul(0x9E37_79B9)),
            cfg_fingerprint(&self.cfg),
        )
    }
}

/// One finished job's durable result.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// The simulation report (bit-identical to an unsupervised run).
    pub report: RunReport,
    /// Rendered chaos counters when the job ran under a fault plan.
    pub chaos: Option<String>,
}

/// Per-job outcomes in submission order; `None` marks jobs not reached
/// before a drain.
pub type SweepOutcomes = Vec<Option<Result<JobResult, JobError>>>;

/// Outcome of a whole sweep.
pub struct SweepReport {
    /// Per-job outcomes, in submission order. `None` marks jobs not
    /// reached before a drain.
    pub outcomes: SweepOutcomes,
    /// A SIGTERM arrived and the service drained cleanly.
    pub drained: bool,
}

impl SweepReport {
    /// Process exit code: 0 for a clean (or cleanly drained) sweep, 1
    /// when any job failed or was quarantined.
    pub fn exit_code(&self) -> i32 {
        let failed = self
            .outcomes
            .iter()
            .flatten()
            .any(|outcome| outcome.is_err());
        i32::from(failed && !self.drained)
    }
}

/// Runs the sweep under supervision. Progress goes to stderr; the caller
/// renders the table from the returned report ([`print_sweep`]) so
/// stdout stays byte-identical across crash/recovery histories.
pub fn run_sweep(cfg: &ServiceConfig, jobs: &[JobSpec]) -> std::io::Result<SweepReport> {
    std::fs::create_dir_all(&cfg.state_dir)?;
    let store = JobStore::at(cfg.state_dir.join("cache"), true);
    let (mut journal, records) = Journal::open(&cfg.state_dir.join("journal.log"))?;
    let ledgers = replay(&records);
    let (outcomes, drained) = run_supervised(cfg, &store, &mut journal, &ledgers, jobs, |_, _| {})?;
    Ok(SweepReport { outcomes, drained })
}

/// Renders the sweep table. Deterministic: no paths, no timestamps, no
/// host state — a recovered sweep prints the same bytes as a solo one.
/// Failed rows carry the degradation-mode cell ([`JobError::cell`]):
/// `PANIC`, `DEAD`, `QUAR`, or `SHED`, never a conflated `ERR`.
pub fn print_sweep(jobs: &[JobSpec], report: &SweepReport, out: &mut impl std::io::Write) {
    if report.drained {
        // Nothing goes to the table on a drain; the next invocation
        // finishes the sweep and prints the whole thing.
        return;
    }
    let width = jobs.iter().map(|j| j.id.len()).max().unwrap_or(0).max(3);
    let _ = writeln!(out, "=== glsc-serve sweep: {} job(s) ===", jobs.len());
    let mut ok = 0usize;
    let mut failed = 0usize;
    for (job, outcome) in jobs.iter().zip(&report.outcomes) {
        match outcome {
            Some(Ok(result)) => {
                ok += 1;
                let _ = writeln!(
                    out,
                    "{:<width$}  {:>12} cycles",
                    job.id, result.report.cycles
                );
                if let Some(chaos) = &result.chaos {
                    let _ = writeln!(out, "{:<width$}  chaos: {chaos}", "");
                }
            }
            Some(Err(e)) => {
                failed += 1;
                let _ = writeln!(out, "{:<width$}  {} {}", job.id, e.cell(), e.message());
            }
            None => {
                failed += 1;
                let _ = writeln!(out, "{:<width$}  ERR not reached", job.id);
            }
        }
    }
    let _ = writeln!(out, "== {ok} ok, {failed} failed ==");
}

/// Per-job supervision state threaded across fleet rounds.
struct JobState {
    ledger: JobLedger,
    key: String,
    /// Checkpoint sequence counter, resumed from the journal.
    seq: u64,
    /// Wall-deadline clock, armed at the job's first pause this process.
    started: Option<Instant>,
    outcome: Option<Result<JobResult, JobError>>,
}

/// Everything the fleet hooks need, behind one `RefCell`: the pause and
/// completion hooks are separate `FnMut`s but never run reentrantly (the
/// fleet is single-threaded), so a runtime-checked borrow is safe.
struct RoundCtx<'a, F> {
    svc: &'a ServiceConfig,
    store: &'a JobStore,
    journal: &'a mut Journal,
    jobs: &'a [JobSpec],
    states: &'a mut [JobState],
    on_result: &'a mut F,
    /// Jobs that failed this round but still have retry budget.
    retried: Vec<usize>,
    /// First checkpoint/journal write error; halts the fleet and is
    /// re-raised once the round unwinds.
    io_err: Option<std::io::Error>,
    /// A TERM was observed mid-round; in-flight members checkpointed.
    drained: bool,
}

impl<F: FnMut(usize, &Result<JobResult, JobError>)> RoundCtx<'_, F> {
    /// Journals one failed attempt and applies the quarantine threshold.
    fn record_failure(&mut self, gi: usize, reason: String) {
        let id = &self.jobs[gi].id;
        if let Err(e) = self.journal.append(&JournalRecord::Failed {
            job: id.clone(),
            reason,
        }) {
            self.io_err.get_or_insert(e);
            return;
        }
        let st = &mut self.states[gi];
        st.ledger.failures += 1;
        if st.ledger.failures >= self.svc.max_failures {
            if let Err(e) = self.journal.append(&JournalRecord::Quarantined {
                job: id.clone(),
                failures: st.ledger.failures,
            }) {
                self.io_err.get_or_insert(e);
                return;
            }
            eprintln!(
                "[serve] {id}: quarantined after {} failure(s)",
                st.ledger.failures
            );
            let outcome = Err(JobError::Quarantined {
                index: gi,
                failures: st.ledger.failures,
            });
            (self.on_result)(gi, &outcome);
            st.outcome = Some(outcome);
        } else {
            self.retried.push(gi);
        }
    }

    /// The drain path: checkpoint this member and stop the fleet. The
    /// fleet re-offers every other live member to the pause hook before
    /// halting, so all in-flight slots checkpoint, and queued-but-unstarted
    /// jobs are never mounted (their journal state — accepted or pending —
    /// already promises them a run on restart).
    fn drain_member(&mut self, gi: usize, machine: &Machine) -> PauseCtl {
        self.drained = true;
        let st = &mut self.states[gi];
        st.seq += 1;
        let seq = st.seq;
        match write_checkpoint(self.svc, self.journal, &self.jobs[gi].id, machine, seq) {
            Ok(()) => {
                self.states[gi].ledger.checkpoint = Some((seq, machine.cycle()));
                eprintln!(
                    "[serve] {}: drained at cycle {} (checkpoint #{seq})",
                    self.jobs[gi].id,
                    machine.cycle()
                );
            }
            Err(e) => {
                self.io_err.get_or_insert(e);
            }
        }
        PauseCtl::Halt
    }

    /// Quantum-boundary hook: drain signal, deadlines, checkpoint.
    fn on_pause(&mut self, gi: usize, machine: &mut Machine) -> PauseCtl {
        if self.io_err.is_some() {
            return PauseCtl::Halt;
        }
        kill::check_cycles(machine.cycle());
        if signal::term_requested() {
            return self.drain_member(gi, machine);
        }
        let job = &self.jobs[gi];
        let failures = self.states[gi].ledger.failures;
        if let Some(limit) = job.deadline_cycles.or(self.svc.deadline_cycles) {
            if machine.cycle() >= limit {
                let e = JobError::Deadline {
                    index: gi,
                    attempts: failures + 1,
                    wall_ms: None,
                    cycles: Some(limit),
                };
                let reason = e.message();
                eprintln!("[serve] {}: {reason}", job.id);
                self.record_failure(gi, reason);
                return PauseCtl::FailJob;
            }
        }
        let started = *self.states[gi].started.get_or_insert_with(Instant::now);
        if let Some(limit) = job.deadline_wall_ms.or(self.svc.deadline_wall_ms) {
            if started.elapsed().as_millis() as u64 >= limit {
                let e = JobError::Deadline {
                    index: gi,
                    attempts: failures + 1,
                    wall_ms: Some(limit),
                    cycles: None,
                };
                let reason = e.message();
                eprintln!("[serve] {}: {reason}", job.id);
                self.record_failure(gi, reason);
                return PauseCtl::FailJob;
            }
        }
        let st = &mut self.states[gi];
        st.seq += 1;
        let seq = st.seq;
        match write_checkpoint(self.svc, self.journal, &job.id, machine, seq) {
            Ok(()) => {
                self.states[gi].ledger.checkpoint = Some((seq, machine.cycle()));
                PauseCtl::Continue
            }
            Err(e) => {
                self.io_err.get_or_insert(e);
                PauseCtl::Halt
            }
        }
    }

    /// Completion hook: validate, persist, journal, stream the result.
    fn on_done(
        &mut self,
        gi: usize,
        machine: &mut Machine,
        result: Result<RunReport, FleetFailure>,
    ) {
        let job = &self.jobs[gi];
        let report = match result {
            Ok(report) => report,
            Err(failure) => {
                let reason = failure.to_string();
                eprintln!("[serve] {}: attempt crashed: {reason}", job.id);
                self.record_failure(gi, reason);
                return;
            }
        };
        // Validation runs supervised too: a panicking validator is a
        // failed attempt, not a dead service.
        let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (job.workload.validate)(machine.mem().backing())
        }));
        let reason = match verdict {
            Ok(Ok(())) => {
                let chaos = machine
                    .mem()
                    .chaos_stats()
                    .map(|stats| format!("{stats:?}"));
                self.store.save(&self.states[gi].key, &report);
                if let Err(e) = self.journal.append(&JournalRecord::Done {
                    job: job.id.clone(),
                    chaos: chaos.clone(),
                }) {
                    self.io_err.get_or_insert(e);
                    return;
                }
                let _ = std::fs::remove_file(checkpoint_path(&self.svc.state_dir, &job.id));
                let outcome = Ok(JobResult { report, chaos });
                (self.on_result)(gi, &outcome);
                self.states[gi].outcome = Some(outcome);
                return;
            }
            Ok(Err(e)) => format!("validation failed: {e}"),
            Err(payload) => payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string()),
        };
        eprintln!("[serve] {}: attempt crashed: {reason}", job.id);
        self.record_failure(gi, reason);
    }
}

/// The fleet-routed supervision engine shared by the sweep CLI
/// ([`run_sweep`]) and the protocol front-end: every round routes the
/// still-pending jobs through [`Fleet::run_each_supervised`] with
/// checkpoints at quantum boundaries, then retries failures with seeded
/// backoff until each job is done, quarantined, or the service drains.
///
/// `on_result(index, outcome)` streams each job's final outcome the
/// moment it is durable (journaled + cached), in completion order — the
/// protocol session forwards these as result frames so a client sees
/// results as they land, not at the sweep barrier. Jobs resolved from
/// the journal/cache stream immediately.
///
/// Returns the outcomes in job order plus the drain flag.
pub fn run_supervised<F>(
    svc: &ServiceConfig,
    store: &JobStore,
    journal: &mut Journal,
    ledgers: &HashMap<String, JobLedger>,
    jobs: &[JobSpec],
    mut on_result: F,
) -> std::io::Result<(SweepOutcomes, bool)>
where
    F: FnMut(usize, &Result<JobResult, JobError>),
{
    // Resolve what the journal already settled; journal acceptance for
    // the rest.
    let mut states: Vec<JobState> = Vec::with_capacity(jobs.len());
    for (gi, job) in jobs.iter().enumerate() {
        let mut ledger = ledgers.get(&job.id).cloned().unwrap_or_default();
        let key = job.cache_key();
        let mut outcome = None;
        if ledger.quarantined {
            outcome = Some(Err(JobError::Quarantined {
                index: gi,
                failures: ledger.failures,
            }));
        } else if let Some(chaos) = &ledger.done {
            if let Some(report) = store.load(&key) {
                // A resubmission of a finished job journaled a fresh
                // `Submitted`; close it out, or the job replays as
                // pending at every boot and its stale queue slot sheds
                // new work forever.
                if ledger.pending.is_some() {
                    journal.append(&JournalRecord::Done {
                        job: job.id.clone(),
                        chaos: chaos.clone(),
                    })?;
                    ledger.pending = None;
                }
                outcome = Some(Ok(JobResult {
                    report,
                    chaos: chaos.clone(),
                }));
            } else {
                // Done in the journal but the cached report is gone or
                // corrupt: re-run — correctness never depends on the
                // cache surviving.
                eprintln!(
                    "[serve] {}: done in journal but report missing; re-running",
                    job.id
                );
            }
        }
        if outcome.is_none() && !ledger.accepted {
            journal.append(&JournalRecord::Accepted {
                job: job.id.clone(),
            })?;
            ledger.accepted = true;
        }
        if let Some(o) = &outcome {
            on_result(gi, o);
        }
        states.push(JobState {
            ledger,
            key,
            seq: 0,
            started: None,
            outcome,
        });
    }
    for st in &mut states {
        st.seq = st.ledger.checkpoint.map_or(0, |(seq, _)| seq);
    }

    let mut drained = false;
    loop {
        let pending: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.outcome.is_none())
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() || drained {
            break;
        }
        if signal::term_requested() {
            drained = true;
            break;
        }

        // Mount the round: checkpointed jobs resume from their snapshot,
        // fresh jobs share published copy-on-write dataset bases.
        let mut published: HashMap<u64, Arc<BackingBase>> = HashMap::new();
        let mut fleet_jobs = Vec::with_capacity(pending.len());
        for &gi in &pending {
            let job = &jobs[gi];
            let mut fj = FleetJob::new(job.cfg.clone(), job.workload.program.clone());
            match load_snapshot(svc, &states[gi].ledger, &job.id) {
                Some(snap) => fj = fj.with_snapshot(Arc::new(snap)),
                None => {
                    let base = published
                        .entry(job.workload.image.fingerprint())
                        .or_insert_with(|| job.workload.image.publish());
                    fj = fj.with_base(Arc::clone(base));
                    if let Some(seed) = job.chaos {
                        fj = fj.with_fault_plan(FaultPlan::new(ChaosConfig::from_seed(seed)));
                    }
                }
            }
            fleet_jobs.push(fj);
        }

        let ctx = RefCell::new(RoundCtx {
            svc,
            store,
            journal,
            jobs,
            states: &mut states,
            on_result: &mut on_result,
            retried: Vec::new(),
            io_err: None,
            drained: false,
        });
        Fleet::new()
            .with_quantum(svc.checkpoint_every)
            .with_width(svc.fleet_width)
            .run_each_supervised(
                fleet_jobs,
                |local, machine| ctx.borrow_mut().on_pause(pending[local], machine),
                |local, machine, result| ctx.borrow_mut().on_done(pending[local], machine, result),
            );
        let round = ctx.into_inner();
        if let Some(e) = round.io_err {
            return Err(e);
        }
        if round.drained {
            drained = true;
            break;
        }
        if round.retried.is_empty() {
            continue;
        }
        // One backoff between rounds: each retried job reports its own
        // seeded delay, the fleet sleeps the longest of them.
        let mut delay = 0u64;
        for &gi in &round.retried {
            let id = &jobs[gi].id;
            let failures = states[gi].ledger.failures;
            let d = backoff_jittered_ms(svc.seed, id, failures);
            eprintln!(
                "[serve] {id}: retrying (attempt {}) after {d}ms",
                failures + 1
            );
            delay = delay.max(d);
        }
        std::thread::sleep(std::time::Duration::from_millis(delay));
    }
    Ok((states.into_iter().map(|s| s.outcome).collect(), drained))
}

fn checkpoint_path(state_dir: &Path, id: &str) -> PathBuf {
    state_dir.join("checkpoints").join(format!("{id}.ckpt"))
}

/// Loads the job's checkpoint if one is announced and intact. Any damage
/// (torn write on a non-atomic filesystem, bit rot, version skew) is a
/// logged fallback to a fresh run, never a crash or garbage state.
fn load_snapshot(svc: &ServiceConfig, ledger: &JobLedger, id: &str) -> Option<MachineSnapshot> {
    let (seq, cycle) = ledger.checkpoint?;
    let path = checkpoint_path(&svc.state_dir, id);
    match std::fs::read(&path) {
        Ok(bytes) => match MachineSnapshot::from_bytes(&bytes) {
            Ok(snap) => {
                eprintln!("[serve] {id}: resuming from checkpoint #{seq} at cycle {cycle}");
                Some(snap)
            }
            Err(e) => {
                eprintln!("[serve] {id}: checkpoint #{seq} unusable ({e}); starting fresh");
                let _ = std::fs::remove_file(&path);
                None
            }
        },
        Err(e) => {
            eprintln!("[serve] {id}: checkpoint #{seq} unreadable ({e}); starting fresh");
            None
        }
    }
}

/// Writes one durable checkpoint: encode, tmp+rename, fsync, journal.
/// The kill hook may turn this into a torn write + abort (see
/// [`crate::kill`]).
fn write_checkpoint(
    cfg: &ServiceConfig,
    journal: &mut Journal,
    id: &str,
    machine: &Machine,
    seq: u64,
) -> std::io::Result<()> {
    let path = checkpoint_path(&cfg.state_dir, id);
    // `checkpoint_path` always joins two components, but a hostile id
    // reaching here must degrade to an IO error, never a panic.
    let parent = path.parent().ok_or_else(|| {
        std::io::Error::other(format!("checkpoint path {} has no parent", path.display()))
    })?;
    std::fs::create_dir_all(parent)?;
    let bytes = machine.snapshot().to_bytes();
    if kill::tear_this_checkpoint() {
        // Simulate a non-atomic filesystem: half the snapshot lands
        // under the final name, then the process dies.
        std::fs::write(&path, &bytes[..bytes.len() / 2])?;
        kill::abort_now("mid-checkpoint");
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, &path)?;
    journal.append(&JournalRecord::Running {
        job: id.to_string(),
        seq,
        cycle: machine.cycle(),
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("glsc-serve-svc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fig6_job() -> JobSpec {
        JobSpec::kernel("HIP", Dataset::Tiny, Variant::Glsc, (1, 2), 4, None).unwrap()
    }

    #[test]
    fn sweep_matches_unsupervised_run() {
        let dir = tmp_dir("clean");
        let mut cfg = ServiceConfig::new(dir.clone());
        cfg.checkpoint_every = 2_000;
        let jobs = vec![fig6_job()];
        let report = run_sweep(&cfg, &jobs).unwrap();
        let solo = glsc_kernels::run_workload(&jobs[0].workload, &jobs[0].cfg).unwrap();
        let got = report.outcomes[0].as_ref().unwrap().as_ref().unwrap();
        assert_eq!(got.report, solo.report);
        assert_eq!(got.chaos, None);
        assert_eq!(report.exit_code(), 0);

        // A second sweep over the same state dir serves from the store
        // and prints the same table.
        let mut first = Vec::new();
        print_sweep(&jobs, &report, &mut first);
        let report2 = run_sweep(&cfg, &jobs).unwrap();
        let mut second = Vec::new();
        print_sweep(&jobs, &report2, &mut second);
        assert_eq!(first, second);
        assert!(!first.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wedged_job_deadlines_then_quarantines_and_sweep_degrades() {
        let dir = tmp_dir("wedge");
        let mut cfg = ServiceConfig::new(dir.clone());
        cfg.checkpoint_every = 1_000;
        cfg.max_failures = 3;
        let jobs = vec![JobSpec::wedged(), fig6_job()];
        let report = run_sweep(&cfg, &jobs).unwrap();
        match report.outcomes[0].as_ref().unwrap() {
            Err(JobError::Quarantined { failures, .. }) => assert_eq!(*failures, 3),
            other => panic!("wedge ended as {other:?}"),
        }
        // The healthy job still completed; the sweep exits nonzero.
        assert!(report.outcomes[1].as_ref().unwrap().is_ok());
        assert_eq!(report.exit_code(), 1);
        let mut table = Vec::new();
        print_sweep(&jobs, &report, &mut table);
        let text = String::from_utf8(table).unwrap();
        assert!(
            text.contains("QUAR quarantined after 3 failure(s)"),
            "{text}"
        );
        assert!(text.contains("cycles"), "{text}");
        assert!(text.contains("== 1 ok, 1 failed =="), "{text}");

        // The journal pins the exact failure history: 3 deadline
        // failures, then quarantine; and a re-run skips the wedge
        // immediately (still quarantined, no new attempts).
        let (_, records) = Journal::open(&dir.join("journal.log")).unwrap();
        let fails = records
            .iter()
            .filter(|r| matches!(r, JournalRecord::Failed { job, .. } if job == "WEDGE"))
            .count();
        assert_eq!(fails, 3);
        let before = records.len();
        let report2 = run_sweep(&cfg, &jobs).unwrap();
        assert!(matches!(
            report2.outcomes[0].as_ref().unwrap(),
            Err(JobError::Quarantined { .. })
        ));
        let (_, records2) = Journal::open(&dir.join("journal.log")).unwrap();
        let new_wedge_records = records2[before..]
            .iter()
            .filter(|r| r.job() == "WEDGE")
            .count();
        assert_eq!(new_wedge_records, 0, "quarantined job was retried");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_checkpoints_and_next_run_finishes_identically() {
        let dir = tmp_dir("drain");
        let mut cfg = ServiceConfig::new(dir.clone());
        cfg.checkpoint_every = 1_000;
        let jobs = vec![fig6_job()];

        // First run drains immediately: the TERM flag is set before the
        // first round, so the sweep reports a drain instead of a result.
        signal::request_term();
        let drained = run_sweep(&cfg, &jobs).unwrap();
        assert!(drained.drained);
        assert!(drained.outcomes[0].is_none());
        assert_eq!(drained.exit_code(), 0);
        let mut table = Vec::new();
        print_sweep(&jobs, &drained, &mut table);
        assert!(table.is_empty(), "drained sweep wrote to the table");

        // Clear the flag (tests share the process-global) and finish.
        super::signal::clear_term_for_tests();
        let report = run_sweep(&cfg, &jobs).unwrap();
        let got = report.outcomes[0].as_ref().unwrap().as_ref().unwrap();
        let solo = glsc_kernels::run_workload(&jobs[0].workload, &jobs[0].cfg).unwrap();
        assert_eq!(got.report, solo.report, "resumed-from-drain run diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_job_reports_counters_and_resumes_bit_identically() {
        let dir = tmp_dir("chaos");
        let mut cfg = ServiceConfig::new(dir.clone());
        cfg.checkpoint_every = 3_000;
        let jobs =
            vec![
                JobSpec::kernel("GBC", Dataset::Tiny, Variant::Glsc, (2, 2), 4, Some(0x5EED))
                    .unwrap(),
            ];
        let report = run_sweep(&cfg, &jobs).unwrap();
        let got = report.outcomes[0].as_ref().unwrap().as_ref().unwrap();
        let chaos = got.chaos.as_ref().expect("chaos job must report counters");
        assert!(chaos.contains("injection_points"), "{chaos}");

        // Re-sweeping serves the cached report with the *journaled*
        // chaos line — byte-identical table.
        let mut first = Vec::new();
        print_sweep(&jobs, &report, &mut first);
        let report2 = run_sweep(&cfg, &jobs).unwrap();
        let mut second = Vec::new();
        print_sweep(&jobs, &report2, &mut second);
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn results_stream_as_they_become_durable() {
        let dir = tmp_dir("stream");
        let mut cfg = ServiceConfig::new(dir.clone());
        cfg.checkpoint_every = 2_000;
        let jobs = vec![fig6_job()];
        std::fs::create_dir_all(&cfg.state_dir).unwrap();
        let store = JobStore::at(cfg.state_dir.join("cache"), true);
        let (mut journal, records) = Journal::open(&cfg.state_dir.join("journal.log")).unwrap();
        let ledgers = replay(&records);
        let mut streamed = Vec::new();
        let (outcomes, drained) =
            run_supervised(&cfg, &store, &mut journal, &ledgers, &jobs, |gi, o| {
                streamed.push((gi, o.is_ok()));
            })
            .unwrap();
        assert!(!drained);
        assert_eq!(streamed, vec![(0, true)]);
        assert!(outcomes[0].as_ref().unwrap().is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
