//! The supervised, crash-durable sweep runner.
//!
//! One [`JobSpec`] per simulation; the supervisor drives each job in
//! cycle slices ([`glsc_sim::SlicedRun`]), writing a durable checkpoint
//! every `checkpoint_every` cycles (tmp+rename of the versioned,
//! checksummed snapshot envelope) and journaling every state transition
//! (`accepted → running{checkpoint} → done | quarantined`). A restart —
//! crash or drain — replays the journal, resumes every live job from its
//! last intact checkpoint, reprints finished jobs from the result store,
//! and produces output byte-identical to an uninterrupted run (the
//! kill-drill oracle in `tests/` pins this for every kernel × Fig. 6
//! shape).
//!
//! Failure policy: a panicking or deadline-tripping attempt appends a
//! `Failed` record, sleeps the seeded jittered backoff, and retries; a
//! job whose failure count (across restarts — the journal remembers)
//! reaches `max_failures` is quarantined and reported as an `ERR` row
//! while the rest of the sweep completes, with a nonzero exit.

use crate::journal::{replay, JobLedger, Journal, JournalRecord};
use crate::{kill, signal};
use glsc_bench::store::{cfg_fingerprint, job_key};
use glsc_bench::{backoff_jittered_ms, JobError, JobStore};
use glsc_kernels::{build_named, Dataset, Variant, Workload};
use glsc_sim::{
    ChaosConfig, FaultPlan, Machine, MachineConfig, MachineSnapshot, RunReport, SlicedRun,
};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Service-wide knobs.
#[derive(Debug)]
pub struct ServiceConfig {
    /// Root of all durable state: `journal.log`, `checkpoints/`, `cache/`.
    pub state_dir: PathBuf,
    /// Checkpoint cadence in simulated cycles. Smaller = less lost work
    /// on a crash, more encode/write overhead (measured by the `simperf`
    /// bench's recovery part).
    pub checkpoint_every: u64,
    /// Per-attempt wall-clock budget; `None` = unlimited.
    pub deadline_wall_ms: Option<u64>,
    /// Absolute simulated-cycle budget per job; `None` = unlimited. A
    /// wedged job trips this on every attempt (resuming past the limit
    /// re-trips immediately), burns its failure budget, and quarantines.
    pub deadline_cycles: Option<u64>,
    /// Failures (across restarts) before a job is quarantined.
    pub max_failures: u32,
    /// Seed for the deterministic retry-backoff jitter.
    pub seed: u64,
}

impl ServiceConfig {
    /// Defaults: checkpoint every 20k cycles, no deadlines, quarantine
    /// after 3 failures, seed 0.
    pub fn new(state_dir: PathBuf) -> Self {
        Self {
            state_dir,
            checkpoint_every: 20_000,
            deadline_wall_ms: None,
            deadline_cycles: None,
            max_failures: 3,
            seed: 0,
        }
    }
}

/// One supervised simulation.
pub struct JobSpec {
    /// Stable, filesystem-safe id; names the job in the journal, the
    /// checkpoint file, the result cache, and the sweep table.
    pub id: String,
    /// What to simulate and how to validate it.
    pub workload: Workload,
    /// Machine to run it on.
    pub cfg: MachineConfig,
    /// Fault-plan seed: `Some` runs the job under seeded chaos and
    /// reports the injection counters alongside the result.
    pub chaos: Option<u64>,
    /// Per-job cycle deadline, overriding the service-wide one. The
    /// wedged drill job carries its own so it quarantines without
    /// imposing a budget on healthy jobs in the same sweep.
    pub deadline_cycles: Option<u64>,
    /// Per-job wall-clock deadline, overriding the service-wide one.
    pub deadline_wall_ms: Option<u64>,
}

impl JobSpec {
    /// Builds the spec for a named kernel on a Fig. 6 shape, keyed the
    /// same way the bench harness keys it (so ids read like
    /// `HIP-T-glsc-4x4-w4`). Chaos jobs get a `-chaos<seed>` suffix —
    /// the fault plan changes timing, so it must change identity.
    pub fn kernel(
        kernel: &str,
        ds: Dataset,
        variant: Variant,
        (cores, tpc): (usize, usize),
        width: usize,
        chaos: Option<u64>,
    ) -> Self {
        let mut cfg = MachineConfig::paper(cores, tpc, width);
        if chaos.is_some() {
            // Same guard rails as the bench chaos path: the plan slows
            // runs down, so give headroom and keep the watchdog armed.
            cfg = cfg
                .with_max_cycles(2_000_000_000)
                .with_watchdog_window(Some(5_000_000));
        }
        let workload = build_named(kernel, ds, variant, &cfg);
        let mut id = format!(
            "{kernel}-{}-{}-{cores}x{tpc}-w{width}",
            glsc_bench::ds_label(ds),
            variant.label()
        );
        if let Some(seed) = chaos {
            id.push_str(&format!("-chaos{seed}"));
        }
        Self {
            id,
            workload,
            cfg,
            chaos,
            deadline_cycles: None,
            deadline_wall_ms: None,
        }
    }

    /// A job that never halts: a one-instruction jump loop. The fault
    /// drill for the deadline + quarantine path (`--inject-wedged`).
    pub fn wedged() -> Self {
        let mut b = glsc_isa::ProgramBuilder::new();
        let top = b.label();
        b.bind(top).expect("fresh label");
        b.li(glsc_isa::Reg::new(1), 1);
        b.jmp(top);
        b.halt();
        Self {
            id: "WEDGE".to_string(),
            workload: Workload {
                name: "WEDGE".to_string(),
                program: b.build().expect("wedge program assembles"),
                image: glsc_kernels::MemImage::new(),
                validate: Box::new(|_| Ok(())),
            },
            cfg: MachineConfig::paper(1, 1, 4).with_max_cycles(u64::MAX / 2),
            chaos: None,
            // Self-contained drill: the wedge budgets itself, so healthy
            // jobs sharing the sweep keep running without a deadline.
            deadline_cycles: Some(50_000),
            deadline_wall_ms: None,
        }
    }

    fn cache_key(&self) -> String {
        job_key(
            &[&self.id],
            self.workload.fingerprint() ^ self.chaos.map_or(0, |s| s.wrapping_mul(0x9E37_79B9)),
            cfg_fingerprint(&self.cfg),
        )
    }
}

/// One finished job's durable result.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// The simulation report (bit-identical to an unsupervised run).
    pub report: RunReport,
    /// Rendered chaos counters when the job ran under a fault plan.
    pub chaos: Option<String>,
}

/// Outcome of a whole sweep.
pub struct SweepReport {
    /// Per-job outcomes, in submission order. `None` marks jobs not
    /// reached before a drain.
    pub outcomes: Vec<Option<Result<JobResult, JobError>>>,
    /// A SIGTERM arrived and the service drained cleanly.
    pub drained: bool,
}

impl SweepReport {
    /// Process exit code: 0 for a clean (or cleanly drained) sweep, 1
    /// when any job failed or was quarantined.
    pub fn exit_code(&self) -> i32 {
        let failed = self
            .outcomes
            .iter()
            .flatten()
            .any(|outcome| outcome.is_err());
        i32::from(failed && !self.drained)
    }
}

enum Supervised {
    Finished(Box<JobResult>),
    Failed(JobError),
    Drained,
}

enum AttemptEnd {
    Finished(Box<JobResult>),
    Deadline {
        wall_ms: Option<u64>,
        cycles: Option<u64>,
    },
    Crashed(String),
    Drained,
}

/// Runs the sweep under supervision. Progress goes to stderr; the caller
/// renders the table from the returned report ([`print_sweep`]) so
/// stdout stays byte-identical across crash/recovery histories.
pub fn run_sweep(cfg: &ServiceConfig, jobs: &[JobSpec]) -> std::io::Result<SweepReport> {
    std::fs::create_dir_all(&cfg.state_dir)?;
    let store = JobStore::at(cfg.state_dir.join("cache"), true);
    let (mut journal, records) = Journal::open(&cfg.state_dir.join("journal.log"))?;
    let ledgers = replay(&records);
    let mut outcomes: Vec<Option<Result<JobResult, JobError>>> = vec![None; jobs.len()];
    let mut drained = false;
    for (index, job) in jobs.iter().enumerate() {
        if drained {
            break;
        }
        let ledger = ledgers.get(&job.id).cloned().unwrap_or_default();
        match supervise(cfg, &store, &mut journal, ledger, job, index)? {
            Supervised::Finished(result) => outcomes[index] = Some(Ok(*result)),
            Supervised::Failed(e) => outcomes[index] = Some(Err(e)),
            Supervised::Drained => drained = true,
        }
    }
    Ok(SweepReport { outcomes, drained })
}

/// Renders the sweep table. Deterministic: no paths, no timestamps, no
/// host state — a recovered sweep prints the same bytes as a solo one.
pub fn print_sweep(jobs: &[JobSpec], report: &SweepReport, out: &mut impl std::io::Write) {
    if report.drained {
        // Nothing goes to the table on a drain; the next invocation
        // finishes the sweep and prints the whole thing.
        return;
    }
    let width = jobs.iter().map(|j| j.id.len()).max().unwrap_or(0).max(3);
    let _ = writeln!(out, "=== glsc-serve sweep: {} job(s) ===", jobs.len());
    let mut ok = 0usize;
    let mut failed = 0usize;
    for (job, outcome) in jobs.iter().zip(&report.outcomes) {
        match outcome {
            Some(Ok(result)) => {
                ok += 1;
                let _ = writeln!(
                    out,
                    "{:<width$}  {:>12} cycles",
                    job.id, result.report.cycles
                );
                if let Some(chaos) = &result.chaos {
                    let _ = writeln!(out, "{:<width$}  chaos: {chaos}", "");
                }
            }
            Some(Err(e)) => {
                failed += 1;
                let _ = writeln!(out, "{:<width$}  ERR {}", job.id, e.message());
            }
            None => {
                failed += 1;
                let _ = writeln!(out, "{:<width$}  ERR not reached", job.id);
            }
        }
    }
    let _ = writeln!(out, "== {ok} ok, {failed} failed ==");
}

fn supervise(
    cfg: &ServiceConfig,
    store: &JobStore,
    journal: &mut Journal,
    mut ledger: JobLedger,
    job: &JobSpec,
    index: usize,
) -> std::io::Result<Supervised> {
    if ledger.quarantined {
        return Ok(Supervised::Failed(JobError::Quarantined {
            index,
            failures: ledger.failures,
        }));
    }
    let key = job.cache_key();
    if let Some(chaos) = &ledger.done {
        if let Some(report) = store.load(&key) {
            return Ok(Supervised::Finished(Box::new(JobResult {
                report,
                chaos: chaos.clone(),
            })));
        }
        // Done in the journal but the cached report is gone or corrupt:
        // fall through and re-run — correctness never depends on the
        // cache surviving.
        eprintln!(
            "[serve] {}: done in journal but report missing; re-running",
            job.id
        );
    }
    if !ledger.accepted {
        journal.append(&JournalRecord::Accepted {
            job: job.id.clone(),
        })?;
        ledger.accepted = true;
    }
    loop {
        let end = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_attempt(cfg, store, journal, &mut ledger, job, &key)
        }))
        .unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Ok(AttemptEnd::Crashed(message))
        })?;
        let reason = match end {
            AttemptEnd::Finished(result) => return Ok(Supervised::Finished(result)),
            AttemptEnd::Drained => return Ok(Supervised::Drained),
            AttemptEnd::Deadline { wall_ms, cycles } => {
                let e = JobError::Deadline {
                    index,
                    attempts: ledger.failures + 1,
                    wall_ms,
                    cycles,
                };
                let reason = e.message();
                eprintln!("[serve] {}: {reason}", job.id);
                reason
            }
            AttemptEnd::Crashed(message) => {
                eprintln!("[serve] {}: attempt crashed: {message}", job.id);
                message
            }
        };
        journal.append(&JournalRecord::Failed {
            job: job.id.clone(),
            reason: reason.clone(),
        })?;
        ledger.failures += 1;
        if ledger.failures >= cfg.max_failures {
            journal.append(&JournalRecord::Quarantined {
                job: job.id.clone(),
                failures: ledger.failures,
            })?;
            eprintln!(
                "[serve] {}: quarantined after {} failure(s)",
                job.id, ledger.failures
            );
            // Typed by cause: a job that only ever died on its deadline
            // reports Deadline semantics through the quarantine message.
            return Ok(Supervised::Failed(JobError::Quarantined {
                index,
                failures: ledger.failures,
            }));
        }
        let delay = backoff_jittered_ms(cfg.seed, &job.id, ledger.failures);
        eprintln!(
            "[serve] {}: retrying (attempt {}) after {delay}ms",
            job.id,
            ledger.failures + 1
        );
        std::thread::sleep(std::time::Duration::from_millis(delay));
    }
}

fn checkpoint_path(state_dir: &Path, id: &str) -> PathBuf {
    state_dir.join("checkpoints").join(format!("{id}.ckpt"))
}

/// Loads the job's checkpoint if one is announced and intact. Any damage
/// (torn write on a non-atomic filesystem, bit rot, version skew) is a
/// logged fallback to a fresh run, never a crash or garbage state.
fn restore_machine(cfg: &ServiceConfig, ledger: &JobLedger, job: &JobSpec) -> (Machine, u64) {
    if let Some((seq, cycle)) = ledger.checkpoint {
        let path = checkpoint_path(&cfg.state_dir, &job.id);
        match std::fs::read(&path) {
            Ok(bytes) => match MachineSnapshot::from_bytes(&bytes) {
                Ok(snap) => {
                    eprintln!(
                        "[serve] {}: resuming from checkpoint #{seq} at cycle {cycle}",
                        job.id
                    );
                    return (Machine::from_snapshot(&snap), seq);
                }
                Err(e) => {
                    eprintln!(
                        "[serve] {}: checkpoint #{seq} unusable ({e}); starting fresh",
                        job.id
                    );
                    let _ = std::fs::remove_file(&path);
                }
            },
            Err(e) => {
                eprintln!(
                    "[serve] {}: checkpoint #{seq} unreadable ({e}); starting fresh",
                    job.id
                );
            }
        }
    }
    let mut m = Machine::new(job.cfg.clone());
    if let Some(seed) = job.chaos {
        m.mem_mut()
            .install_fault_plan(FaultPlan::new(ChaosConfig::from_seed(seed)));
    }
    job.workload.image.apply(m.mem_mut().backing_mut());
    m.load_program(job.workload.program.clone());
    (m, 0)
}

/// Writes one durable checkpoint: encode, tmp+rename, fsync, journal.
/// The kill hook may turn this into a torn write + abort (see
/// [`crate::kill`]).
fn write_checkpoint(
    cfg: &ServiceConfig,
    journal: &mut Journal,
    job: &JobSpec,
    machine: &Machine,
    seq: u64,
) -> std::io::Result<()> {
    let path = checkpoint_path(&cfg.state_dir, &job.id);
    std::fs::create_dir_all(path.parent().expect("checkpoint path has a parent"))?;
    let bytes = machine.snapshot().to_bytes();
    if kill::tear_this_checkpoint() {
        // Simulate a non-atomic filesystem: half the snapshot lands
        // under the final name, then the process dies.
        std::fs::write(&path, &bytes[..bytes.len() / 2])?;
        kill::abort_now("mid-checkpoint");
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, &path)?;
    journal.append(&JournalRecord::Running {
        job: job.id.clone(),
        seq,
        cycle: machine.cycle(),
    })?;
    Ok(())
}

fn run_attempt(
    cfg: &ServiceConfig,
    store: &JobStore,
    journal: &mut Journal,
    ledger: &mut JobLedger,
    job: &JobSpec,
    key: &str,
) -> std::io::Result<AttemptEnd> {
    let (mut machine, mut seq) = restore_machine(cfg, ledger, job);
    let mut run = SlicedRun::new(&machine);
    let started = Instant::now();
    loop {
        if signal::term_requested() {
            seq += 1;
            write_checkpoint(cfg, journal, job, &machine, seq)?;
            ledger.checkpoint = Some((seq, machine.cycle()));
            eprintln!(
                "[serve] {}: drained at cycle {} (checkpoint #{seq})",
                job.id,
                machine.cycle()
            );
            return Ok(AttemptEnd::Drained);
        }
        let report = match machine.run_for(&mut run, cfg.checkpoint_every) {
            Ok(report) => report,
            Err(e) => return Ok(AttemptEnd::Crashed(format!("simulation failed: {e}"))),
        };
        if let Some(report) = report {
            if let Err(e) = (job.workload.validate)(machine.mem().backing()) {
                return Ok(AttemptEnd::Crashed(format!("validation failed: {e}")));
            }
            let chaos = machine
                .mem()
                .chaos_stats()
                .map(|stats| format!("{stats:?}"));
            store.save(key, &report);
            journal.append(&JournalRecord::Done {
                job: job.id.clone(),
                chaos: chaos.clone(),
            })?;
            let _ = std::fs::remove_file(checkpoint_path(&cfg.state_dir, &job.id));
            return Ok(AttemptEnd::Finished(Box::new(JobResult { report, chaos })));
        }
        kill::check_cycles(machine.cycle());
        if let Some(limit) = job.deadline_cycles.or(cfg.deadline_cycles) {
            if machine.cycle() >= limit {
                return Ok(AttemptEnd::Deadline {
                    wall_ms: None,
                    cycles: Some(limit),
                });
            }
        }
        if let Some(limit) = job.deadline_wall_ms.or(cfg.deadline_wall_ms) {
            if started.elapsed().as_millis() as u64 >= limit {
                return Ok(AttemptEnd::Deadline {
                    wall_ms: Some(limit),
                    cycles: None,
                });
            }
        }
        seq += 1;
        write_checkpoint(cfg, journal, job, &machine, seq)?;
        ledger.checkpoint = Some((seq, machine.cycle()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("glsc-serve-svc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fig6_job() -> JobSpec {
        JobSpec::kernel("HIP", Dataset::Tiny, Variant::Glsc, (1, 2), 4, None)
    }

    #[test]
    fn sweep_matches_unsupervised_run() {
        let dir = tmp_dir("clean");
        let mut cfg = ServiceConfig::new(dir.clone());
        cfg.checkpoint_every = 2_000;
        let jobs = vec![fig6_job()];
        let report = run_sweep(&cfg, &jobs).unwrap();
        let solo = glsc_kernels::run_workload(&jobs[0].workload, &jobs[0].cfg).unwrap();
        let got = report.outcomes[0].as_ref().unwrap().as_ref().unwrap();
        assert_eq!(got.report, solo.report);
        assert_eq!(got.chaos, None);
        assert_eq!(report.exit_code(), 0);

        // A second sweep over the same state dir serves from the store
        // and prints the same table.
        let mut first = Vec::new();
        print_sweep(&jobs, &report, &mut first);
        let report2 = run_sweep(&cfg, &jobs).unwrap();
        let mut second = Vec::new();
        print_sweep(&jobs, &report2, &mut second);
        assert_eq!(first, second);
        assert!(!first.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wedged_job_deadlines_then_quarantines_and_sweep_degrades() {
        let dir = tmp_dir("wedge");
        let mut cfg = ServiceConfig::new(dir.clone());
        cfg.checkpoint_every = 1_000;
        cfg.max_failures = 3;
        let jobs = vec![JobSpec::wedged(), fig6_job()];
        let report = run_sweep(&cfg, &jobs).unwrap();
        match report.outcomes[0].as_ref().unwrap() {
            Err(JobError::Quarantined { failures, .. }) => assert_eq!(*failures, 3),
            other => panic!("wedge ended as {other:?}"),
        }
        // The healthy job still completed; the sweep exits nonzero.
        assert!(report.outcomes[1].as_ref().unwrap().is_ok());
        assert_eq!(report.exit_code(), 1);
        let mut table = Vec::new();
        print_sweep(&jobs, &report, &mut table);
        let text = String::from_utf8(table).unwrap();
        assert!(
            text.contains("ERR quarantined after 3 failure(s)"),
            "{text}"
        );
        assert!(text.contains("cycles"), "{text}");
        assert!(text.contains("== 1 ok, 1 failed =="), "{text}");

        // The journal pins the exact failure history: 3 deadline
        // failures, then quarantine; and a re-run skips the wedge
        // immediately (still quarantined, no new attempts).
        let (_, records) = Journal::open(&dir.join("journal.log")).unwrap();
        let fails = records
            .iter()
            .filter(|r| matches!(r, JournalRecord::Failed { job, .. } if job == "WEDGE"))
            .count();
        assert_eq!(fails, 3);
        let before = records.len();
        let report2 = run_sweep(&cfg, &jobs).unwrap();
        assert!(matches!(
            report2.outcomes[0].as_ref().unwrap(),
            Err(JobError::Quarantined { .. })
        ));
        let (_, records2) = Journal::open(&dir.join("journal.log")).unwrap();
        let new_wedge_records = records2[before..]
            .iter()
            .filter(|r| r.job() == "WEDGE")
            .count();
        assert_eq!(new_wedge_records, 0, "quarantined job was retried");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_checkpoints_and_next_run_finishes_identically() {
        let dir = tmp_dir("drain");
        let mut cfg = ServiceConfig::new(dir.clone());
        cfg.checkpoint_every = 1_000;
        let jobs = vec![fig6_job()];

        // First run drains immediately: the TERM flag is set before the
        // first pause, so the job checkpoints and the sweep reports a
        // drain instead of a result.
        signal::request_term();
        let drained = run_sweep(&cfg, &jobs).unwrap();
        assert!(drained.drained);
        assert!(drained.outcomes[0].is_none());
        assert_eq!(drained.exit_code(), 0);
        let mut table = Vec::new();
        print_sweep(&jobs, &drained, &mut table);
        assert!(table.is_empty(), "drained sweep wrote to the table");

        // Clear the flag (tests share the process-global) and finish.
        super::signal::clear_term_for_tests();
        let report = run_sweep(&cfg, &jobs).unwrap();
        let got = report.outcomes[0].as_ref().unwrap().as_ref().unwrap();
        let solo = glsc_kernels::run_workload(&jobs[0].workload, &jobs[0].cfg).unwrap();
        assert_eq!(got.report, solo.report, "resumed-from-drain run diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_job_reports_counters_and_resumes_bit_identically() {
        let dir = tmp_dir("chaos");
        let mut cfg = ServiceConfig::new(dir.clone());
        cfg.checkpoint_every = 3_000;
        let jobs = vec![JobSpec::kernel(
            "GBC",
            Dataset::Tiny,
            Variant::Glsc,
            (2, 2),
            4,
            Some(0x5EED),
        )];
        let report = run_sweep(&cfg, &jobs).unwrap();
        let got = report.outcomes[0].as_ref().unwrap().as_ref().unwrap();
        let chaos = got.chaos.as_ref().expect("chaos job must report counters");
        assert!(chaos.contains("injection_points"), "{chaos}");

        // Re-sweeping serves the cached report with the *journaled*
        // chaos line — byte-identical table.
        let mut first = Vec::new();
        print_sweep(&jobs, &report, &mut first);
        let report2 = run_sweep(&cfg, &jobs).unwrap();
        let mut second = Vec::new();
        print_sweep(&jobs, &report2, &mut second);
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
