//! One protocol session: framed requests in, framed replies and
//! streaming results out (DESIGN.md §15).
//!
//! A session alternates between an **admission phase** — reading
//! [`Request`] frames, applying the [`AdmissionQueue`] policy, and
//! journaling every decision (`Submitted` / `Shed`) before the reply
//! frame leaves — and a **run phase**, entered on [`Request::Run`] (or
//! end of stream with work queued), which routes the queue through the
//! fleet-routed supervisor and streams a result frame per job as it
//! becomes durable.
//!
//! The hostile-client contract, pinned by the torture oracle in
//! `tests/`:
//!
//! * a malformed or checksum-corrupt frame gets a typed
//!   [`Reply::FrameError`] and the session keeps reading — the declared
//!   length still delimited the bad frame, so framing stays in sync;
//! * an oversized or truncated frame ends the *reading* half only:
//!   every job already accepted still runs and is journaled/cached;
//! * a client that disconnects mid-stream loses its socket, not its
//!   jobs — the run finishes durably, and a reconnecting client
//!   resubmitting the same specs is served from the result store
//!   without a single cycle re-simulated;
//! * a `SIGTERM` drains: in-flight fleet slots checkpoint, and
//!   queued-but-unstarted jobs stay journaled as `Submitted`-pending, so
//!   the next service start re-queues and runs them even if the client
//!   never returns.

use crate::journal::{replay, JobLedger, Journal, JournalRecord};
use crate::proto::{read_message, write_message, FrameError, Reply, Request};
use crate::queue::{Admission, AdmissionQueue, QueueEntry};
use crate::service::{run_supervised, JobSpec, ServiceConfig};
use crate::signal;
use glsc_bench::jobspec::WireJobSpec;
use glsc_bench::{codec::encode_report, JobStore};
use std::collections::HashMap;
use std::io::{self, Read, Write};

/// How a session ended.
#[derive(Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client's stream ended (EOF, disconnect, or an unrecoverable
    /// frame error); all accepted work ran to durability first.
    Closed,
    /// The client asked the service to shut down. Queued-but-unstarted
    /// jobs stay journaled as pending and run on the next start.
    Shutdown,
    /// A SIGTERM drained the service mid-session.
    Drained,
}

/// Runs one session over any byte stream (stdin/stdout or a Unix socket
/// connection). Returns how the session ended; IO errors from the
/// *durable* side (journal, checkpoints) are real errors, while client
/// write failures only mark the client gone — accepted jobs always run
/// to durability.
pub fn run_session(
    cfg: &ServiceConfig,
    input: &mut impl Read,
    output: &mut impl Write,
) -> io::Result<SessionEnd> {
    std::fs::create_dir_all(&cfg.state_dir)?;
    let store = JobStore::at(cfg.state_dir.join("cache"), true);
    let (mut journal, records) = Journal::open(&cfg.state_dir.join("journal.log"))?;
    let mut ledgers = replay(&records);

    let mut queue = AdmissionQueue::new(cfg.queue_capacity);
    restore_pending(&records, &ledgers, &mut queue);

    // Client liveness is best-effort: once a write fails the session
    // stops talking but keeps working.
    let mut client_gone = false;
    let mut shed: u32 = 0;
    let send = |output: &mut dyn Write, gone: &mut bool, reply: &Reply| {
        if !*gone && write_message(output, reply).is_err() {
            *gone = true;
        }
    };

    loop {
        if signal::term_requested() {
            return Ok(SessionEnd::Drained);
        }
        let request = match read_message::<Request>(input) {
            Ok(Some(req)) => req,
            Ok(None) => {
                // Clean EOF: run whatever was queued, then close.
                if queue.is_empty() {
                    return Ok(SessionEnd::Closed);
                }
                let drained = run_queue(
                    cfg,
                    &store,
                    &mut journal,
                    &mut ledgers,
                    &mut queue,
                    output,
                    &mut client_gone,
                    &mut shed,
                )?;
                return Ok(if drained {
                    SessionEnd::Drained
                } else {
                    SessionEnd::Closed
                });
            }
            Err(e) if e.is_resyncable() => {
                // One bad frame; framing is still in sync. Typed reply,
                // keep reading.
                send(
                    output,
                    &mut client_gone,
                    &Reply::FrameError {
                        detail: e.to_string(),
                    },
                );
                continue;
            }
            Err(e) => {
                // Frame boundaries are gone (oversized/truncated) or the
                // transport died. Stop reading, but accepted jobs still
                // run durably.
                if !matches!(e, FrameError::Io(_)) {
                    send(
                        output,
                        &mut client_gone,
                        &Reply::FrameError {
                            detail: e.to_string(),
                        },
                    );
                } else {
                    client_gone = true;
                }
                if queue.is_empty() {
                    return Ok(SessionEnd::Closed);
                }
                let drained = run_queue(
                    cfg,
                    &store,
                    &mut journal,
                    &mut ledgers,
                    &mut queue,
                    output,
                    &mut client_gone,
                    &mut shed,
                )?;
                return Ok(if drained {
                    SessionEnd::Drained
                } else {
                    SessionEnd::Closed
                });
            }
        };
        match request {
            Request::Submit { priority, spec } => {
                if let Err(e) = spec.validate() {
                    send(
                        output,
                        &mut client_gone,
                        &Reply::Rejected {
                            id: spec.id(),
                            reason: e.to_string(),
                        },
                    );
                    continue;
                }
                let id = spec.id();
                match queue.offer(QueueEntry {
                    id: id.clone(),
                    priority,
                    spec: spec.clone(),
                }) {
                    Admission::Duplicate => {
                        send(output, &mut client_gone, &Reply::Accepted { id });
                    }
                    Admission::Enqueued => {
                        journal_submit(&mut journal, &mut ledgers, &id, priority, &spec)?;
                        send(output, &mut client_gone, &Reply::Accepted { id });
                    }
                    Admission::Shed { queued, capacity } => {
                        journal_shed(&mut journal, &mut ledgers, &id)?;
                        shed += 1;
                        send(
                            output,
                            &mut client_gone,
                            &Reply::Shed {
                                id,
                                queued: queued as u32,
                                capacity: capacity as u32,
                            },
                        );
                    }
                    Admission::Evicted { victim } => {
                        // The victim's late shed and the incoming job's
                        // admission are both journaled before either
                        // reply leaves.
                        journal_shed(&mut journal, &mut ledgers, &victim.id)?;
                        journal_submit(&mut journal, &mut ledgers, &id, priority, &spec)?;
                        shed += 1;
                        send(
                            output,
                            &mut client_gone,
                            &Reply::Shed {
                                id: victim.id,
                                queued: queue.len() as u32,
                                capacity: queue.capacity() as u32,
                            },
                        );
                        send(output, &mut client_gone, &Reply::Accepted { id });
                    }
                }
            }
            Request::Run => {
                let drained = run_queue(
                    cfg,
                    &store,
                    &mut journal,
                    &mut ledgers,
                    &mut queue,
                    output,
                    &mut client_gone,
                    &mut shed,
                )?;
                if drained {
                    return Ok(SessionEnd::Drained);
                }
            }
            Request::Shutdown => return Ok(SessionEnd::Shutdown),
        }
    }
}

/// Journals one admission and mirrors it into the in-memory ledgers (the
/// session's view must match what a restart would replay).
fn journal_submit(
    journal: &mut Journal,
    ledgers: &mut HashMap<String, JobLedger>,
    id: &str,
    priority: u8,
    spec: &WireJobSpec,
) -> io::Result<()> {
    journal.append(&JournalRecord::Submitted {
        job: id.to_string(),
        priority,
        spec: spec.to_bytes(),
    })?;
    let ledger = ledgers.entry(id.to_string()).or_default();
    ledger.accepted = true;
    ledger.pending = Some((priority, spec.to_bytes()));
    Ok(())
}

/// Journals one shed decision (admission refusal or eviction).
fn journal_shed(
    journal: &mut Journal,
    ledgers: &mut HashMap<String, JobLedger>,
    id: &str,
) -> io::Result<()> {
    journal.append(&JournalRecord::Shed {
        job: id.to_string(),
    })?;
    if let Some(ledger) = ledgers.get_mut(id) {
        ledger.pending = None;
    }
    Ok(())
}

/// Re-queues every journal-replayed pending job, in original submission
/// order, ahead of anything this session submits. The journal's record
/// order is the source of truth — ledger maps lose it.
fn restore_pending(
    records: &[JournalRecord],
    ledgers: &HashMap<String, JobLedger>,
    queue: &mut AdmissionQueue,
) {
    let mut order: Vec<&str> = Vec::new();
    for rec in records {
        if let JournalRecord::Submitted { job, .. } = rec {
            order.retain(|id| id != job);
            order.push(job);
        }
    }
    // `restore` pushes to the front, so feed it newest-first to leave
    // the queue oldest-first.
    for id in order.iter().rev() {
        let Some(ledger) = ledgers.get(*id) else {
            continue;
        };
        let Some((priority, spec_bytes)) = &ledger.pending else {
            continue;
        };
        match WireJobSpec::from_bytes(spec_bytes) {
            Ok(spec) => {
                // Replayed specs were validated at admission, but the
                // validator may have tightened since (or the journal may
                // carry bytes an older build admitted) — re-check before
                // trusting them enough to build workloads.
                if let Err(e) = spec.validate() {
                    eprintln!("[serve] {id}: journaled spec no longer valid ({e}); dropping");
                    continue;
                }
                eprintln!("[serve] {id}: re-queued from journal (pending submission)");
                queue.restore(QueueEntry {
                    id: (*id).to_string(),
                    priority: *priority,
                    spec,
                });
            }
            Err(e) => {
                // A journaled spec that no longer decodes is a version
                // skew or corruption the checksum missed; drop it loudly
                // rather than crash the boot.
                eprintln!("[serve] {id}: journaled spec undecodable ({e}); dropping");
            }
        }
    }
}

/// Lowers one validated wire spec into a supervised job. The job id is
/// forced to the wire spec's id so reply frames, ledgers, and journal
/// entries all key identically (pattern jobs hash their spec string into
/// the id; the supervisor's raw naming would leak `:*@` into filenames).
///
/// Total, not panicking: specs normally validated at admission, but the
/// queue can also hold journal-replayed bytes an older (looser) build
/// admitted, and the validator and the workload builder can drift — a
/// spec that no longer lowers is a typed failure the session reports,
/// never a dead service.
fn spec_to_job(spec: &WireJobSpec) -> Result<JobSpec, String> {
    spec.validate().map_err(|e| e.to_string())?;
    let mut job = JobSpec::kernel(
        &spec.kernel_name(),
        spec.resolve_dataset(),
        spec.resolve_variant(),
        (spec.cores as usize, spec.tpc as usize),
        spec.width as usize,
        spec.chaos,
    )
    .map_err(|e| e.to_string())?;
    job.id = spec.id();
    // The consistency model reaches the machine through the config; the
    // wire id already carries the `-tso`/`-relaxed` suffix, so relaxed
    // jobs key their own journal ledgers, checkpoints, and cache rows.
    job.cfg = job.cfg.with_memory_order(spec.memory_order);
    job.deadline_cycles = spec.deadline_cycles;
    job.deadline_wall_ms = spec.deadline_wall_ms;
    Ok(job)
}

/// Runs everything queued through the fleet-routed supervisor, streaming
/// one result frame per job as it lands, then the sweep summary. Returns
/// whether a drain interrupted the run.
#[allow(clippy::too_many_arguments)]
fn run_queue(
    cfg: &ServiceConfig,
    store: &JobStore,
    journal: &mut Journal,
    ledgers: &mut HashMap<String, JobLedger>,
    queue: &mut AdmissionQueue,
    output: &mut impl Write,
    client_gone: &mut bool,
    shed: &mut u32,
) -> io::Result<bool> {
    let drained_entries = queue.drain();
    let mut ok: u32 = 0;
    let mut failed: u32 = 0;
    // Lower each spec; one that no longer builds (validator drift, a
    // journal entry from a looser build) fails typed and is closed out
    // in the journal so it does not replay as pending forever.
    let mut entries = Vec::with_capacity(drained_entries.len());
    let mut jobs: Vec<JobSpec> = Vec::with_capacity(drained_entries.len());
    for entry in drained_entries {
        match spec_to_job(&entry.spec) {
            Ok(job) => {
                jobs.push(job);
                entries.push(entry);
            }
            Err(detail) => {
                eprintln!(
                    "[serve] {}: spec no longer lowers ({detail}); failing",
                    entry.id
                );
                journal_shed(journal, ledgers, &entry.id)?;
                failed += 1;
                let reply = Reply::JobFailed {
                    id: entry.id.clone(),
                    label: "REJ".to_string(),
                    detail,
                };
                if !*client_gone && write_message(output, &reply).is_err() {
                    *client_gone = true;
                }
            }
        }
    }
    let (outcomes, drained) =
        run_supervised(cfg, store, journal, ledgers, &jobs, |gi, outcome| {
            let reply = match outcome {
                Ok(result) => {
                    ok += 1;
                    Reply::JobDone {
                        id: jobs[gi].id.clone(),
                        cycles: result.report.cycles,
                        report: encode_report(&result.report),
                        chaos: result.chaos.clone(),
                    }
                }
                Err(e) => {
                    failed += 1;
                    Reply::JobFailed {
                        id: jobs[gi].id.clone(),
                        label: e.cell().to_string(),
                        detail: e.message(),
                    }
                }
            };
            if !*client_gone && write_message(output, &reply).is_err() {
                *client_gone = true;
            }
        })?;

    // Mirror what the journal now says back into the session's ledgers,
    // so a later `Run` in the same session serves finished jobs from the
    // store instead of re-running them.
    for (entry, outcome) in entries.iter().zip(&outcomes) {
        let ledger = ledgers.entry(entry.id.clone()).or_default();
        match outcome {
            Some(Ok(result)) => {
                ledger.done = Some(result.chaos.clone());
                ledger.pending = None;
            }
            Some(Err(glsc_bench::JobError::Quarantined { failures, .. })) => {
                ledger.quarantined = true;
                ledger.failures = *failures;
                ledger.pending = None;
            }
            Some(Err(_)) | None => {}
        }
    }

    if drained {
        let unreached = outcomes.iter().filter(|o| o.is_none()).count();
        eprintln!("[serve] drained: {unreached} queued job(s) left pending in the journal",);
        return Ok(true);
    }
    if !*client_gone
        && write_message(
            output,
            &Reply::SweepDone {
                ok,
                failed,
                shed: *shed,
            },
        )
        .is_err()
    {
        *client_gone = true;
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsc_kernels::{Dataset, Variant};
    use glsc_wire::to_bytes;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("glsc-serve-sess-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg(dir: &std::path::Path) -> ServiceConfig {
        let mut cfg = ServiceConfig::new(dir.to_path_buf());
        cfg.checkpoint_every = 2_000;
        cfg.queue_capacity = 2;
        cfg
    }

    fn submit(buf: &mut Vec<u8>, priority: u8, spec: WireJobSpec) {
        crate::proto::write_message(buf, &Request::Submit { priority, spec }).unwrap();
    }

    fn read_replies(mut bytes: &[u8]) -> Vec<Reply> {
        let mut replies = Vec::new();
        while let Some(reply) = read_message::<Reply>(&mut bytes).unwrap() {
            replies.push(reply);
        }
        replies
    }

    fn hip_spec() -> WireJobSpec {
        WireJobSpec::kernel("HIP", Dataset::Tiny, Variant::Glsc, (1, 2), 4)
    }

    #[test]
    fn submit_run_streams_result_and_summary() {
        let dir = tmp_dir("basic");
        let cfg = small_cfg(&dir);
        let mut input = Vec::new();
        submit(&mut input, 0, hip_spec());
        crate::proto::write_message(&mut input, &Request::Run).unwrap();
        let mut output = Vec::new();
        let end = run_session(&cfg, &mut &input[..], &mut output).unwrap();
        assert_eq!(end, SessionEnd::Closed);
        let replies = read_replies(&output);
        assert!(
            matches!(&replies[0], Reply::Accepted { id } if id == "HIP-T-GLSC-1x2-w4"),
            "{replies:?}"
        );
        match &replies[1] {
            Reply::JobDone {
                id,
                cycles,
                report,
                chaos,
            } => {
                assert_eq!(id, "HIP-T-GLSC-1x2-w4");
                let decoded = glsc_bench::codec::decode_report(report).unwrap();
                assert_eq!(decoded.cycles, *cycles);
                assert_eq!(*chaos, None);
            }
            other => panic!("expected JobDone, got {other:?}"),
        }
        assert!(
            matches!(
                &replies[2],
                Reply::SweepDone {
                    ok: 1,
                    failed: 0,
                    shed: 0
                }
            ),
            "{replies:?}"
        );
        assert_eq!(replies.len(), 3, "EOF on an empty queue adds nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overflow_is_shed_and_bad_frames_get_typed_errors() {
        let dir = tmp_dir("shed");
        let cfg = small_cfg(&dir); // capacity 2
        let mut input = Vec::new();
        submit(&mut input, 0, hip_spec());
        submit(
            &mut input,
            0,
            WireJobSpec::kernel("GBC", Dataset::Tiny, Variant::Glsc, (1, 2), 4),
        );
        submit(
            &mut input,
            0,
            WireJobSpec::kernel("FS", Dataset::Tiny, Variant::Glsc, (1, 2), 4),
        );
        // A checksum-corrupt frame in the middle: typed error, session
        // keeps going.
        let mut bad = Vec::new();
        crate::proto::write_message(&mut bad, &Request::Run).unwrap();
        *bad.last_mut().unwrap() ^= 0xFF;
        input.extend_from_slice(&bad);
        // An invalid spec: rejected, never queued.
        let mut hostile = hip_spec();
        hostile.cores = 9999;
        submit(&mut input, 0, hostile);
        let mut output = Vec::new();
        let end = run_session(&cfg, &mut &input[..], &mut output).unwrap();
        assert_eq!(end, SessionEnd::Closed);
        let replies = read_replies(&output);
        assert!(matches!(&replies[0], Reply::Accepted { .. }));
        assert!(matches!(&replies[1], Reply::Accepted { .. }));
        assert!(
            matches!(&replies[2], Reply::Shed { id, queued: 2, capacity: 2 } if id == "FS-T-GLSC-1x2-w4"),
            "{replies:?}"
        );
        assert!(
            matches!(&replies[3], Reply::FrameError { .. }),
            "{replies:?}"
        );
        assert!(
            matches!(&replies[4], Reply::Rejected { reason, .. } if reason.contains("cores")),
            "{replies:?}"
        );
        // EOF ran the two accepted jobs; the summary counts the shed.
        let done = replies
            .iter()
            .filter(|r| matches!(r, Reply::JobDone { .. }))
            .count();
        assert_eq!(done, 2);
        assert!(
            matches!(
                replies.last(),
                Some(Reply::SweepDone {
                    ok: 2,
                    failed: 0,
                    shed: 1
                })
            ),
            "{replies:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_stream_still_runs_accepted_jobs_durably() {
        let dir = tmp_dir("trunc");
        let cfg = small_cfg(&dir);
        let mut input = Vec::new();
        submit(&mut input, 0, hip_spec());
        // A frame that dies mid-payload: unrecoverable for reading.
        let tail = to_bytes(&Request::Run);
        input.extend_from_slice(&(tail.len() as u32).to_le_bytes());
        input.extend_from_slice(&tail[..tail.len() - 1]);
        let mut output = Vec::new();
        let end = run_session(&cfg, &mut &input[..], &mut output).unwrap();
        assert_eq!(end, SessionEnd::Closed);
        let replies = read_replies(&output);
        assert!(matches!(&replies[0], Reply::Accepted { .. }));
        assert!(
            replies
                .iter()
                .any(|r| matches!(r, Reply::FrameError { detail } if detail.contains("mid-frame"))),
            "{replies:?}"
        );
        assert!(
            replies.iter().any(|r| matches!(r, Reply::JobDone { .. })),
            "accepted job must run despite the truncated stream: {replies:?}"
        );
        // And the result is durable: a fresh session resubmitting the
        // same spec is served from the store (journal says done).
        let mut input2 = Vec::new();
        submit(&mut input2, 0, hip_spec());
        crate::proto::write_message(&mut input2, &Request::Run).unwrap();
        let mut output2 = Vec::new();
        run_session(&cfg, &mut &input2[..], &mut output2).unwrap();
        let replies2 = read_replies(&output2);
        let (first, second) = (find_done(&replies), find_done(&replies2));
        assert_eq!(first, second, "reconnect must re-deliver, not re-run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn find_done(replies: &[Reply]) -> (u64, String) {
        replies
            .iter()
            .find_map(|r| match r {
                Reply::JobDone { cycles, report, .. } => Some((*cycles, report.clone())),
                _ => None,
            })
            .expect("a JobDone reply")
    }

    #[test]
    fn unbuildable_spec_fails_typed_instead_of_panicking() {
        // A spec that skipped validation (journal bytes admitted by a
        // looser build) must lower to a typed error, never a panic.
        let mut hostile = hip_spec();
        hostile.kernel = "EVIL".into();
        let err = spec_to_job(&hostile).err().expect("EVIL must not lower");
        assert!(err.contains("EVIL"), "{err}");

        let mut hostile = hip_spec();
        hostile.dataset = 9;
        assert!(spec_to_job(&hostile).is_err());
    }

    #[test]
    fn queue_entry_that_no_longer_lowers_streams_a_typed_failure() {
        let dir = tmp_dir("lower");
        let cfg = small_cfg(&dir);
        std::fs::create_dir_all(&cfg.state_dir).unwrap();
        let store = JobStore::at(cfg.state_dir.join("cache"), true);
        let (mut journal, records) = Journal::open(&cfg.state_dir.join("journal.log")).unwrap();
        let mut ledgers = replay(&records);
        // Force a hostile entry past admission, as a drifted validator
        // would have.
        let mut queue = AdmissionQueue::new(4);
        let mut bad = hip_spec();
        bad.kernel = "EVIL".into();
        queue.offer(QueueEntry {
            id: bad.id(),
            priority: 0,
            spec: bad,
        });
        let mut output = Vec::new();
        let (mut gone, mut shed) = (false, 0u32);
        let drained = run_queue(
            &cfg,
            &store,
            &mut journal,
            &mut ledgers,
            &mut queue,
            &mut output,
            &mut gone,
            &mut shed,
        )
        .unwrap();
        assert!(!drained);
        let replies = read_replies(&output);
        assert!(
            matches!(&replies[0], Reply::JobFailed { label, .. } if label == "REJ"),
            "{replies:?}"
        );
        assert!(
            matches!(
                replies.last(),
                Some(Reply::SweepDone {
                    ok: 0,
                    failed: 1,
                    ..
                })
            ),
            "{replies:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tso_job_runs_under_tso_and_keys_its_own_id() {
        let dir = tmp_dir("tso");
        let cfg = small_cfg(&dir);
        let mut spec = hip_spec();
        spec.memory_order = glsc_sim::MemoryOrder::Tso;
        let mut input = Vec::new();
        submit(&mut input, 0, spec);
        crate::proto::write_message(&mut input, &Request::Run).unwrap();
        let mut output = Vec::new();
        run_session(&cfg, &mut &input[..], &mut output).unwrap();
        let replies = read_replies(&output);
        assert!(
            matches!(&replies[0], Reply::Accepted { id } if id == "HIP-T-GLSC-1x2-w4-tso"),
            "{replies:?}"
        );
        let report = replies
            .iter()
            .find_map(|r| match r {
                Reply::JobDone { id, report, .. } => {
                    assert_eq!(id, "HIP-T-GLSC-1x2-w4-tso");
                    Some(report.clone())
                }
                _ => None,
            })
            .expect("TSO job must finish");
        // The report records the model the machine actually ran under —
        // proof the config axis survived the whole wire → job → machine
        // path, not just the id suffix. (GLSC-variant kernels store
        // through the GSU scatter path, so the scalar write buffers may
        // legitimately stay empty.)
        let decoded = glsc_bench::codec::decode_report(&report).unwrap();
        assert_eq!(decoded.memory_order, glsc_sim::MemoryOrder::Tso);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_leaves_queued_jobs_pending_for_next_start() {
        let dir = tmp_dir("pending");
        let cfg = small_cfg(&dir);
        let mut input = Vec::new();
        submit(&mut input, 0, hip_spec());
        crate::proto::write_message(&mut input, &Request::Shutdown).unwrap();
        let mut output = Vec::new();
        let end = run_session(&cfg, &mut &input[..], &mut output).unwrap();
        assert_eq!(end, SessionEnd::Shutdown);
        assert!(
            !read_replies(&output)
                .iter()
                .any(|r| matches!(r, Reply::JobDone { .. })),
            "shutdown must not run the queue"
        );

        // Next start replays the pending submission and runs it with no
        // client input at all.
        let mut output2 = Vec::new();
        let end = run_session(&cfg, &mut &[][..], &mut output2).unwrap();
        assert_eq!(end, SessionEnd::Closed);
        let replies = read_replies(&output2);
        assert!(
            matches!(&replies[0], Reply::JobDone { id, .. } if id == "HIP-T-GLSC-1x2-w4"),
            "{replies:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
