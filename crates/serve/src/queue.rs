//! Admission control: the bounded, priority-aware job queue in front of
//! the fleet (DESIGN.md §15).
//!
//! The queue is the service's only elastic buffer — everything behind it
//! (fleet slots, checkpoints, the journal) is sized by configuration, so
//! overload pressure must be absorbed *here*, as typed `SHED` decisions,
//! instead of as unbounded memory growth or latency. The policy:
//!
//! * under capacity, every valid submission is enqueued (FIFO);
//! * at capacity, a submission that outranks the lowest-priority queued
//!   entry **evicts** it (the newest such entry — earlier equal-priority
//!   submitters keep their FIFO claim) and takes the slot;
//! * otherwise the incoming job is shed.
//!
//! Resubmitting an id already queued is idempotent: the existing entry
//! is kept (its place in line included) and the duplicate reported as
//! such, so a reconnecting client cannot double-queue work.

use glsc_bench::jobspec::WireJobSpec;
use std::collections::VecDeque;

/// One admitted submission, in queue order.
#[derive(Clone, Debug)]
pub struct QueueEntry {
    /// Stable job id (see [`WireJobSpec::id`]).
    pub id: String,
    /// Admission priority (higher wins under overload).
    pub priority: u8,
    /// The validated spec.
    pub spec: WireJobSpec,
}

/// What [`AdmissionQueue::offer`] decided.
#[derive(Debug)]
pub enum Admission {
    /// The job took a free slot.
    Enqueued,
    /// The id is already queued; nothing changed.
    Duplicate,
    /// Queue full and the job did not outrank anything: it is dropped.
    Shed {
        /// Jobs queued at decision time.
        queued: usize,
        /// Queue capacity.
        capacity: usize,
    },
    /// The job took the slot of a lower-priority entry, which is dropped.
    Evicted {
        /// The entry that lost its slot (the caller journals and reports
        /// the late shed).
        victim: QueueEntry,
    },
}

/// The bounded queue. See the [module docs](self) for the policy.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    entries: VecDeque<QueueEntry>,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a service that can accept nothing
    /// is a misconfiguration, not a policy.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission queue capacity must be positive");
        Self {
            capacity,
            entries: VecDeque::new(),
        }
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Applies the admission policy to one submission.
    pub fn offer(&mut self, entry: QueueEntry) -> Admission {
        if self.entries.iter().any(|e| e.id == entry.id) {
            return Admission::Duplicate;
        }
        if self.entries.len() < self.capacity {
            self.entries.push_back(entry);
            return Admission::Enqueued;
        }
        let min = self
            .entries
            .iter()
            .map(|e| e.priority)
            .min()
            .expect("capacity > 0, so a full queue is non-empty");
        if entry.priority > min {
            let victim_at = self
                .entries
                .iter()
                .rposition(|e| e.priority == min)
                .expect("an entry carries the minimum");
            let victim = self
                .entries
                .remove(victim_at)
                .expect("rposition is in range");
            self.entries.push_back(entry);
            return Admission::Evicted { victim };
        }
        Admission::Shed {
            queued: self.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Force-enqueues a journal-replayed job, bypassing the capacity
    /// check: the job was already admitted (and journaled) in a previous
    /// life of the service, so shedding it now would renege on a durable
    /// promise. Replays go to the *front* in reverse call order — callers
    /// iterate newest-first — keeping them ahead of this session's new
    /// submissions.
    pub fn restore(&mut self, entry: QueueEntry) {
        if !self.entries.iter().any(|e| e.id == entry.id) {
            self.entries.push_front(entry);
        }
    }

    /// Removes and returns the whole queue in run order.
    pub fn drain(&mut self) -> Vec<QueueEntry> {
        self.entries.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsc_kernels::{Dataset, Variant};

    fn entry(id: &str, priority: u8) -> QueueEntry {
        QueueEntry {
            id: id.to_string(),
            priority,
            spec: WireJobSpec::kernel("HIP", Dataset::Tiny, Variant::Glsc, (1, 1), 4),
        }
    }

    #[test]
    fn fifo_under_capacity_and_shed_at_capacity() {
        let mut q = AdmissionQueue::new(2);
        assert!(matches!(q.offer(entry("a", 0)), Admission::Enqueued));
        assert!(matches!(q.offer(entry("b", 0)), Admission::Enqueued));
        match q.offer(entry("c", 0)) {
            Admission::Shed { queued, capacity } => {
                assert_eq!((queued, capacity), (2, 2));
            }
            other => panic!("expected shed, got {other:?}"),
        }
        let order: Vec<_> = q.drain().into_iter().map(|e| e.id).collect();
        assert_eq!(order, ["a", "b"]);
    }

    #[test]
    fn higher_priority_evicts_newest_lowest() {
        let mut q = AdmissionQueue::new(3);
        q.offer(entry("low-old", 1));
        q.offer(entry("mid", 5));
        q.offer(entry("low-new", 1));
        match q.offer(entry("vip", 9)) {
            Admission::Evicted { victim } => assert_eq!(victim.id, "low-new"),
            other => panic!("expected eviction, got {other:?}"),
        }
        // Equal priority does not evict — strict inequality only.
        assert!(matches!(q.offer(entry("peer", 1)), Admission::Shed { .. }));
        let order: Vec<_> = q.drain().into_iter().map(|e| e.id).collect();
        assert_eq!(order, ["low-old", "mid", "vip"]);
    }

    #[test]
    fn duplicates_and_restores_are_idempotent() {
        let mut q = AdmissionQueue::new(2);
        q.offer(entry("a", 0));
        assert!(matches!(q.offer(entry("a", 9)), Admission::Duplicate));
        assert_eq!(q.len(), 1);
        // Restore bypasses capacity and lands in front.
        q.offer(entry("b", 0));
        q.restore(entry("replayed", 0));
        assert_eq!(q.len(), 3);
        q.restore(entry("replayed", 0));
        assert_eq!(q.len(), 3, "restore is idempotent");
        let order: Vec<_> = q.drain().into_iter().map(|e| e.id).collect();
        assert_eq!(order, ["replayed", "a", "b"]);
    }
}
