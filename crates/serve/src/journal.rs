//! Write-ahead journal of job state.
//!
//! An append-only log of [`JournalRecord`]s, one frame per record:
//!
//! ```text
//! +--------------+------------------+---------------------------+
//! | len (u32 LE) | payload (len)    | fnv64(payload) (u64 LE)   |
//! +--------------+------------------+---------------------------+
//! ```
//!
//! The journal is the service's source of truth for where every job
//! stands (`accepted → running{checkpoint} → done | quarantined`, with
//! `failed` marks in between). Appends are flushed and fsync'd before
//! the supervisor acts on them, so a `kill -9` at any byte boundary
//! leaves at worst a torn final frame. Recovery scans from the start,
//! keeps the longest prefix of intact frames, **truncates the file to
//! that prefix**, and treats the job as being in whatever state the
//! surviving records imply — a torn record is indistinguishable from the
//! crash having happened just before the append, which is exactly the
//! semantics the kill-drill oracle pins.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// One durable fact about a job, in the order the supervisor learns it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// The job entered the sweep.
    Accepted {
        /// Stable job id (the bench cache key parts joined with `-`).
        job: String,
    },
    /// The job has a durable checkpoint on disk at this cycle.
    Running {
        /// Stable job id.
        job: String,
        /// Monotonic checkpoint sequence number (per job).
        seq: u64,
        /// Simulated cycle the checkpoint captures.
        cycle: u64,
    },
    /// The job finished; its report is in the service's result store.
    Done {
        /// Stable job id.
        job: String,
        /// Rendered chaos counters when the job ran under a fault plan
        /// (reprinted verbatim for cached jobs so recovered sweep output
        /// stays byte-identical to an uninterrupted run).
        chaos: Option<String>,
    },
    /// One supervised attempt failed (panic or deadline); the failure
    /// count across restarts is the number of these records.
    Failed {
        /// Stable job id.
        job: String,
        /// Why the attempt died.
        reason: String,
    },
    /// The job burned its failure budget and is out of the rotation.
    Quarantined {
        /// Stable job id.
        job: String,
        /// Failures recorded against it at quarantine time.
        failures: u32,
    },
    /// A protocol client submitted the job. The encoded
    /// [`WireJobSpec`](glsc_bench::jobspec::WireJobSpec) rides in the
    /// record so a queued-but-unstarted job survives a crash or drain:
    /// on restart the service rebuilds it from these bytes and runs it
    /// even if the client never reconnects.
    Submitted {
        /// Stable job id.
        job: String,
        /// Admission priority the client asked for.
        priority: u8,
        /// The wire-encoded job spec (validated before this was written).
        spec: Vec<u8>,
    },
    /// Admission control dropped the job (queue full, or evicted by a
    /// higher-priority submission). It will not run unless resubmitted.
    Shed {
        /// Stable job id.
        job: String,
    },
}

impl glsc_wire::Wire for JournalRecord {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        match self {
            JournalRecord::Accepted { job } => {
                0u8.encode(w);
                job.encode(w);
            }
            JournalRecord::Running { job, seq, cycle } => {
                1u8.encode(w);
                job.encode(w);
                seq.encode(w);
                cycle.encode(w);
            }
            JournalRecord::Done { job, chaos } => {
                2u8.encode(w);
                job.encode(w);
                chaos.encode(w);
            }
            JournalRecord::Failed { job, reason } => {
                3u8.encode(w);
                job.encode(w);
                reason.encode(w);
            }
            JournalRecord::Quarantined { job, failures } => {
                4u8.encode(w);
                job.encode(w);
                failures.encode(w);
            }
            JournalRecord::Submitted {
                job,
                priority,
                spec,
            } => {
                5u8.encode(w);
                job.encode(w);
                priority.encode(w);
                spec.encode(w);
            }
            JournalRecord::Shed { job } => {
                6u8.encode(w);
                job.encode(w);
            }
        }
    }

    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        let at = r.pos();
        Ok(match u8::decode(r)? {
            0 => JournalRecord::Accepted {
                job: String::decode(r)?,
            },
            1 => JournalRecord::Running {
                job: String::decode(r)?,
                seq: u64::decode(r)?,
                cycle: u64::decode(r)?,
            },
            2 => JournalRecord::Done {
                job: String::decode(r)?,
                chaos: Option::<String>::decode(r)?,
            },
            3 => JournalRecord::Failed {
                job: String::decode(r)?,
                reason: String::decode(r)?,
            },
            4 => JournalRecord::Quarantined {
                job: String::decode(r)?,
                failures: u32::decode(r)?,
            },
            5 => JournalRecord::Submitted {
                job: String::decode(r)?,
                priority: u8::decode(r)?,
                spec: Vec::<u8>::decode(r)?,
            },
            6 => JournalRecord::Shed {
                job: String::decode(r)?,
            },
            _ => {
                return Err(glsc_wire::WireError::Invalid {
                    at,
                    what: "journal record tag",
                })
            }
        })
    }
}

impl JournalRecord {
    /// The job this record is about.
    pub fn job(&self) -> &str {
        match self {
            JournalRecord::Accepted { job }
            | JournalRecord::Running { job, .. }
            | JournalRecord::Done { job, .. }
            | JournalRecord::Failed { job, .. }
            | JournalRecord::Quarantined { job, .. }
            | JournalRecord::Submitted { job, .. }
            | JournalRecord::Shed { job } => job,
        }
    }
}

/// Where the journal says a job stands, after replaying every surviving
/// record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobLedger {
    /// The job has an `Accepted` record.
    pub accepted: bool,
    /// Latest checkpoint `(seq, cycle)` announced via `Running`.
    pub checkpoint: Option<(u64, u64)>,
    /// `Done` record, with its preserved chaos rendering.
    pub done: Option<Option<String>>,
    /// Number of `Failed` records (survives restarts — this is what the
    /// quarantine threshold compares against).
    pub failures: u32,
    /// `Quarantined` record present.
    pub quarantined: bool,
    /// Latest protocol submission still owed a run: `(priority, spec
    /// bytes)`. Cleared by `Done`, `Quarantined`, and `Shed` — what
    /// remains after replay is exactly the set of queued-but-unstarted
    /// jobs a restart must pick back up.
    pub pending: Option<(u8, Vec<u8>)>,
}

/// Replays records into per-job ledgers.
pub fn replay(records: &[JournalRecord]) -> HashMap<String, JobLedger> {
    let mut map: HashMap<String, JobLedger> = HashMap::new();
    for rec in records {
        let entry = map.entry(rec.job().to_string()).or_default();
        match rec {
            JournalRecord::Accepted { .. } => entry.accepted = true,
            JournalRecord::Running { seq, cycle, .. } => entry.checkpoint = Some((*seq, *cycle)),
            JournalRecord::Done { chaos, .. } => {
                entry.done = Some(chaos.clone());
                entry.pending = None;
            }
            JournalRecord::Failed { .. } => entry.failures += 1,
            JournalRecord::Quarantined { .. } => {
                entry.quarantined = true;
                entry.pending = None;
            }
            JournalRecord::Submitted { priority, spec, .. } => {
                entry.accepted = true;
                entry.pending = Some((*priority, spec.clone()));
            }
            JournalRecord::Shed { .. } => entry.pending = None,
        }
    }
    map
}

/// The append-only journal file.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replaying every intact
    /// frame and truncating away a torn tail if the last append was cut
    /// short by a crash. Returns the journal positioned for appends plus
    /// the surviving records in write order.
    pub fn open(path: &Path) -> std::io::Result<(Self, Vec<JournalRecord>)> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid) = scan(&bytes);
        if valid < bytes.len() {
            eprintln!(
                "[journal] torn tail: keeping {valid} of {} bytes ({} intact record(s))",
                bytes.len(),
                records.len()
            );
            file.set_len(valid as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid as u64))?;
        Ok((Self { file }, records))
    }

    /// Appends one record durably: the frame is written, flushed, and
    /// fsync'd before this returns, so a state transition the supervisor
    /// acts on is never lost to a later crash.
    pub fn append(&mut self, rec: &JournalRecord) -> std::io::Result<()> {
        let frame = frame(rec);
        let frame = crate::kill::mangle_journal_frame(frame);
        self.file.write_all(&frame)?;
        self.file.sync_all()?;
        crate::kill::after_journal_append();
        Ok(())
    }
}

/// Encodes one record as a length-prefixed, checksummed frame.
fn frame(rec: &JournalRecord) -> Vec<u8> {
    let payload = glsc_wire::to_bytes(rec);
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&glsc_wire::fnv64(&payload).to_le_bytes());
    out
}

/// Scans `bytes` for intact frames; returns the decoded records and the
/// byte length of the valid prefix. Stops at the first torn or corrupt
/// frame — everything after it is unreachable garbage by construction
/// (appends only ever land after a durable frame).
fn scan(bytes: &[u8]) -> (Vec<JournalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let Some(frame_len) = len.checked_add(12) else {
            break;
        };
        if rest.len() < frame_len {
            break;
        }
        let payload = &rest[4..4 + len];
        let recorded = u64::from_le_bytes(rest[4 + len..frame_len].try_into().expect("8 bytes"));
        if glsc_wire::fnv64(payload) != recorded {
            break;
        }
        match glsc_wire::from_bytes::<JournalRecord>(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break,
        }
        pos += frame_len;
    }
    (records, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("glsc-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    fn sample() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Accepted { job: "a".into() },
            JournalRecord::Running {
                job: "a".into(),
                seq: 1,
                cycle: 5_000,
            },
            JournalRecord::Failed {
                job: "b".into(),
                reason: "wedged".into(),
            },
            JournalRecord::Done {
                job: "a".into(),
                chaos: Some("destructive=3".into()),
            },
            JournalRecord::Quarantined {
                job: "b".into(),
                failures: 3,
            },
        ]
    }

    #[test]
    fn append_reopen_replay() {
        let path = tmp("roundtrip");
        let (mut j, initial) = Journal::open(&path).unwrap();
        assert!(initial.is_empty());
        for rec in sample() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let (_, records) = Journal::open(&path).unwrap();
        assert_eq!(records, sample());
        let ledgers = replay(&records);
        let a = &ledgers["a"];
        assert!(a.accepted);
        assert_eq!(a.checkpoint, Some((1, 5_000)));
        assert_eq!(a.done, Some(Some("destructive=3".into())));
        assert_eq!(a.failures, 0);
        let b = &ledgers["b"];
        assert_eq!(b.failures, 1);
        assert!(b.quarantined);
        assert!(!b.accepted);
    }

    #[test]
    fn torn_tail_is_the_prior_state() {
        let path = tmp("torn");
        let (mut j, _) = Journal::open(&path).unwrap();
        for rec in sample() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Cut the file at every byte boundary inside the final frame: the
        // first four records must survive untouched, the fifth vanishes.
        let keep = {
            let (_, valid) = scan(&full[..full.len() - 1]);
            valid
        };
        for cut in keep..full.len() - 1 {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, records) = Journal::open(&path).unwrap();
            assert_eq!(records, sample()[..4].to_vec(), "cut at {cut}");
            // Recovery truncated the torn bytes away.
            assert_eq!(std::fs::read(&path).unwrap().len(), keep, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_mid_frame_drops_the_suffix() {
        let path = tmp("bitflip");
        let (mut j, _) = Journal::open(&path).unwrap();
        for rec in sample() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the third frame's payload.
        let (_, two) = scan(&bytes[..]);
        let _ = two;
        let frames: Vec<usize> = {
            let mut offs = Vec::new();
            let mut pos = 0;
            while pos + 4 <= bytes.len() {
                offs.push(pos);
                let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize + 12;
                pos += len;
            }
            offs
        };
        bytes[frames[2] + 6] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = Journal::open(&path).unwrap();
        assert_eq!(records, sample()[..2].to_vec());
        // Appends after recovery land cleanly on the truncated prefix.
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(&JournalRecord::Accepted { job: "c".into() })
            .unwrap();
        drop(j);
        let (_, records) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2], JournalRecord::Accepted { job: "c".into() });
    }

    #[test]
    fn submitted_and_shed_replay_into_pending_state() {
        let path = tmp("pending");
        let (mut j, _) = Journal::open(&path).unwrap();
        let spec = vec![1u8, 2, 3];
        j.append(&JournalRecord::Submitted {
            job: "p".into(),
            priority: 7,
            spec: spec.clone(),
        })
        .unwrap();
        j.append(&JournalRecord::Submitted {
            job: "q".into(),
            priority: 0,
            spec: spec.clone(),
        })
        .unwrap();
        j.append(&JournalRecord::Shed { job: "q".into() }).unwrap();
        j.append(&JournalRecord::Submitted {
            job: "r".into(),
            priority: 1,
            spec: spec.clone(),
        })
        .unwrap();
        j.append(&JournalRecord::Done {
            job: "r".into(),
            chaos: None,
        })
        .unwrap();
        drop(j);
        let (_, records) = Journal::open(&path).unwrap();
        let ledgers = replay(&records);
        // p is still owed a run; q was shed; r finished.
        assert_eq!(ledgers["p"].pending, Some((7, spec)));
        assert!(ledgers["p"].accepted);
        assert_eq!(ledgers["q"].pending, None);
        assert_eq!(ledgers["r"].pending, None);
        assert!(ledgers["r"].done.is_some());
    }

    #[test]
    fn hostile_length_prefix_is_a_torn_tail_not_an_allocation() {
        // A frame header declaring u32::MAX (or any length beyond the
        // remaining file) must be treated as a torn tail: scan slices,
        // never allocates from the declared length, and open truncates
        // the garbage away while keeping the intact prefix.
        let path = tmp("hostile-len");
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(&JournalRecord::Accepted { job: "ok".into() })
            .unwrap();
        j.append(&JournalRecord::Done {
            job: "ok".into(),
            chaos: None,
        })
        .unwrap();
        drop(j);
        let intact = std::fs::read(&path).unwrap();
        for declared in [u32::MAX, u32::MAX - 11, 1 << 30, intact.len() as u32 + 1] {
            let mut bytes = intact.clone();
            bytes.extend_from_slice(&declared.to_le_bytes());
            bytes.extend_from_slice(b"garbage that is much shorter than declared");
            std::fs::write(&path, &bytes).unwrap();
            let (_, records) = Journal::open(&path).unwrap();
            assert_eq!(records.len(), 2, "declared {declared}");
            assert_eq!(
                std::fs::read(&path).unwrap(),
                intact,
                "declared {declared}: torn tail must be truncated away"
            );
        }
    }

    #[test]
    fn appends_survive_reopen_interleaving() {
        let path = tmp("interleave");
        for i in 0..5u64 {
            let (mut j, records) = Journal::open(&path).unwrap();
            assert_eq!(records.len() as u64, i);
            j.append(&JournalRecord::Running {
                job: "x".into(),
                seq: i,
                cycle: i * 100,
            })
            .unwrap();
        }
        let (_, records) = Journal::open(&path).unwrap();
        assert_eq!(replay(&records)["x"].checkpoint, Some((4, 400)));
    }
}
