//! `glsc-serve` — run a supervised, crash-durable simulation sweep.
//!
//! ```text
//! glsc-serve sweep --state-dir DIR [options]
//!
//!   --state-dir DIR        durable state root (or GLSC_SERVE_DIR)
//!   --kernels A,B,..       kernels to run (default: all seven)
//!   --shapes MxN,..        machine shapes (default: 1x1,1x4,4x1,4x4)
//!   --variant glsc|base    kernel variant (default: glsc)
//!   --width N              SIMD width (default: 4)
//!   --dataset tiny|a|b     dataset (default: tiny)
//!   --checkpoint-every N   checkpoint cadence in cycles (default: 20000)
//!   --deadline-wall-ms N   per-attempt wall-clock budget
//!   --deadline-cycles N    absolute simulated-cycle budget per job
//!   --max-failures K       failures before quarantine (default: 3)
//!   --chaos-seed S         run every job under a seeded fault plan
//!   --seed S               retry-backoff jitter seed (default: 0)
//!   --inject-wedged        prepend a never-halting drill job
//! ```
//!
//! Exit code 0 on a clean sweep or a SIGTERM drain, 1 when any job
//! failed or was quarantined. Killing the process at any moment is safe:
//! rerunning the same command resumes from the journal and checkpoints
//! and prints the same table an uninterrupted run would have printed.

use glsc_kernels::{Dataset, Variant, KERNEL_NAMES};
use glsc_serve::{print_sweep, run_sweep, signal, JobSpec, ServiceConfig};
use std::path::PathBuf;
use std::process::exit;

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: glsc-serve sweep --state-dir DIR [options] (see --help)");
    exit(2);
}

struct Args {
    state_dir: Option<PathBuf>,
    kernels: Vec<String>,
    shapes: Vec<(usize, usize)>,
    variant: Variant,
    width: usize,
    dataset: Dataset,
    checkpoint_every: u64,
    deadline_wall_ms: Option<u64>,
    deadline_cycles: Option<u64>,
    max_failures: u32,
    chaos_seed: Option<u64>,
    seed: u64,
    inject_wedged: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        state_dir: std::env::var("GLSC_SERVE_DIR").ok().map(PathBuf::from),
        kernels: KERNEL_NAMES.iter().map(|k| k.to_string()).collect(),
        shapes: vec![(1, 1), (1, 4), (4, 1), (4, 4)],
        variant: Variant::Glsc,
        width: 4,
        dataset: Dataset::Tiny,
        checkpoint_every: 20_000,
        deadline_wall_ms: None,
        deadline_cycles: None,
        max_failures: 3,
        chaos_seed: None,
        seed: 0,
        inject_wedged: false,
    };
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        Some("sweep") => {}
        Some("--help") | Some("-h") => {
            eprintln!("see the crate docs (src/main.rs header) for usage");
            exit(0);
        }
        other => usage(&format!("expected the `sweep` subcommand, got {other:?}")),
    }
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--state-dir" => args.state_dir = Some(PathBuf::from(value("--state-dir"))),
            "--kernels" => {
                args.kernels = value("--kernels")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--shapes" => {
                args.shapes = value("--shapes")
                    .split(',')
                    .map(|s| {
                        let (m, n) = s
                            .trim()
                            .split_once('x')
                            .unwrap_or_else(|| usage(&format!("bad shape {s:?} (want MxN)")));
                        (
                            m.parse().unwrap_or_else(|_| usage("bad shape cores")),
                            n.parse().unwrap_or_else(|_| usage("bad shape threads")),
                        )
                    })
                    .collect();
            }
            "--variant" => {
                args.variant = match value("--variant").as_str() {
                    "glsc" => Variant::Glsc,
                    "base" => Variant::Base,
                    v => usage(&format!("unknown variant {v:?}")),
                }
            }
            "--width" => {
                args.width = value("--width")
                    .parse()
                    .unwrap_or_else(|_| usage("bad width"))
            }
            "--dataset" => {
                args.dataset = match value("--dataset").to_ascii_lowercase().as_str() {
                    "tiny" | "t" => Dataset::Tiny,
                    "a" => Dataset::A,
                    "b" => Dataset::B,
                    v => usage(&format!("unknown dataset {v:?}")),
                }
            }
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("bad --checkpoint-every"))
            }
            "--deadline-wall-ms" => {
                args.deadline_wall_ms = Some(
                    value("--deadline-wall-ms")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --deadline-wall-ms")),
                )
            }
            "--deadline-cycles" => {
                args.deadline_cycles = Some(
                    value("--deadline-cycles")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --deadline-cycles")),
                )
            }
            "--max-failures" => {
                args.max_failures = value("--max-failures")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("bad --max-failures"))
            }
            "--chaos-seed" => {
                args.chaos_seed = Some(
                    value("--chaos-seed")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --chaos-seed")),
                )
            }
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--inject-wedged" => args.inject_wedged = true,
            f => usage(&format!("unknown flag {f:?}")),
        }
    }
    args
}

fn main() {
    signal::install_term_handler();
    let args = parse_args();
    let Some(state_dir) = args.state_dir.clone() else {
        usage("--state-dir (or GLSC_SERVE_DIR) is required");
    };
    let mut cfg = ServiceConfig::new(state_dir);
    cfg.checkpoint_every = args.checkpoint_every;
    cfg.deadline_wall_ms = args.deadline_wall_ms;
    cfg.deadline_cycles = args.deadline_cycles;
    cfg.max_failures = args.max_failures;
    cfg.seed = args.seed;

    let mut jobs = Vec::new();
    if args.inject_wedged {
        jobs.push(JobSpec::wedged());
    }
    for kernel in &args.kernels {
        for &shape in &args.shapes {
            jobs.push(JobSpec::kernel(
                kernel,
                args.dataset,
                args.variant,
                shape,
                args.width,
                args.chaos_seed,
            ));
        }
    }

    match run_sweep(&cfg, &jobs) {
        Ok(report) => {
            let mut stdout = std::io::stdout().lock();
            print_sweep(&jobs, &report, &mut stdout);
            if report.drained {
                eprintln!("[serve] drained cleanly; rerun to finish the sweep");
            }
            exit(report.exit_code());
        }
        Err(e) => {
            eprintln!("[serve] state-dir IO error: {e}");
            exit(3);
        }
    }
}
